# Convenience targets mirroring .github/workflows/ci.yml.

# Crates this project actively develops; vendored offline stubs under
# vendor/ are exempt from lints.
CRATES := -p unintt-gpu-sim -p unintt-core -p unintt-fri -p unintt-zkp \
          -p unintt-msm -p unintt-bench -p unintt-suite

.PHONY: verify fmt clippy build test e13

verify: fmt clippy build test

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --release $(CRATES) --all-targets -- -D warnings

build:
	cargo build --release --workspace

test:
	cargo test -q --release --workspace

e13:
	cargo run --release -p unintt-bench --bin harness -- --quick e13
