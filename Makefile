# Convenience targets mirroring .github/workflows/ci.yml.

# Whole workspace except the vendored offline stubs under vendor/.
EXCLUDE_VENDOR := --exclude criterion --exclude proptest --exclude rand \
                  --exclude serde --exclude serde_derive

.PHONY: verify fmt clippy build bench-check test e13 e14 e15 serve-smoke trace-smoke chaos-smoke kernel-smoke pipeline-smoke stream-smoke slo-smoke perf-gate

verify: fmt clippy build bench-check test kernel-smoke serve-smoke e15 trace-smoke chaos-smoke pipeline-smoke stream-smoke slo-smoke perf-gate

fmt:
	cargo fmt --all --check

# Perf lints are warnings-as-errors on the hot paths.
clippy:
	cargo clippy --release --workspace $(EXCLUDE_VENDOR) --all-targets -- -D warnings -D clippy::perf

build:
	cargo build --release --workspace

# Also compile the benches with the host's full ISA so the explicit
# AVX2/AVX-512 kernel paths stay buildable under -Ctarget-cpu=native.
bench-check:
	cargo bench --no-run
	RUSTFLAGS="-Ctarget-cpu=native" cargo bench --no-run

test:
	cargo test -q --release --workspace

e13:
	cargo run --release -p unintt-bench --bin harness -- --quick e13

e14:
	cargo run --release -p unintt-bench --bin harness -- --quick e14

# Communication-overlap smoke: the chunked pipeline and its blocking
# escape hatch must both run end to end.
e15:
	cargo run --release -p unintt-bench --bin harness -- --quick e15
	cargo run --release -p unintt-bench --bin harness -- --quick --blocking-comm e15

# Proving-service smoke: run the example and the E14 quick sweep.
serve-smoke:
	cargo run --release --example proof_service
	cargo run --release -p unintt-bench --bin harness -- --quick e14

# Telemetry smoke: E16 writes trace.json/trace.folded/BENCH_obs.json and
# validates the Chrome/Perfetto JSON before writing; the trace subcommand
# exercises the generic per-experiment capture path.
trace-smoke:
	cargo run --release -p unintt-bench --bin harness -- --quick e16
	cargo run --release -p unintt-bench --bin harness -- --quick trace e12

# Kernel smoke: the bit-identity property suite (vector vs scalar vs
# legacy, portable vs native, both fields, both directions), then the
# quick vector-kernel sweep on the detected backend and again pinned to
# portable lanes. Fails if any kernel family's output moves by one bit.
kernel-smoke:
	cargo test --release -p unintt-ntt --test shoup_properties
	cargo run --release -p unintt-bench --bin harness -- --quick e18
	cargo run --release -p unintt-bench --bin harness -- --quick --portable-lanes e18

# Pipeline smoke: the DAG bit-identity proptests (DAG-scheduled proofs
# vs monolithic across seeds, sizes and injected stage faults), then the
# quick E19 cell — which itself asserts per-job digest identity between
# the DAG and monolithic runs and that pipelining wins at high load.
pipeline-smoke:
	cargo test --release -p unintt-pipeline
	cargo run --release -p unintt-bench --bin harness -- --quick e19

# Stream smoke: the intra-lease overlap suite (bit-identity across queue
# counts, fault injection and the forced one-queue clock-identity check),
# then the quick E20 cell twice — streamed, and pinned back to one queue
# via --serial-streams. E20 itself asserts per-job digest identity
# against the monolithic reference in every cell.
stream-smoke:
	cargo test --release -p unintt-serve --test stream_overlap
	cargo run --release -p unintt-bench --bin harness -- --quick e20
	cargo run --release -p unintt-bench --bin harness -- --quick --serial-streams e20

# Chaos smoke: the fleet example plus the E17 quick sweep. E17 asserts
# zero accepted-job failures and bit-identical outputs vs the fault-free
# baseline in every cell, so this target fails if resilience regresses.
chaos-smoke:
	cargo run --release --example fleet_chaos
	cargo run --release -p unintt-bench --bin harness -- --quick e17

# SLO smoke: the quick E21 cell — burn-rate alerts must fire inside
# every injected degradation window and never on the clean baseline
# (asserted inside the experiment), streaming quantiles must track the
# exact percentiles, and the attribution verdicts must match the known
# workload classes. Also prints the attribution report.
slo-smoke:
	cargo run --release -p unintt-bench --bin harness -- --quick e21
	cargo run --release -p unintt-bench --bin harness -- attribute all

# Perf-regression gate: rerun the experiment behind every committed
# BENCH_*.json in its committed mode and byte-compare (the wall-clock
# BENCH_ntt.json is shape-checked and warn-only). Fails on any diff in
# a deterministic artifact.
perf-gate:
	cargo run --release -p unintt-bench --bin harness -- perf-gate
