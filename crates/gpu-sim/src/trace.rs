//! Cost accounting: categories, hierarchy levels, and accumulated stats.

use serde::{Deserialize, Serialize};

/// Where simulated time is spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Arithmetic (field butterflies, twiddle products).
    Compute,
    /// Global-memory (HBM) traffic.
    GlobalMem,
    /// Shared-memory traffic within a thread block.
    SharedMem,
    /// Register-shuffle exchanges within a warp.
    Shuffle,
    /// Kernel-launch overhead.
    Launch,
    /// Inter-GPU communication.
    Interconnect,
    /// Fault handling: detection timeouts, chunk retransmissions, and
    /// recovery backoff. The fault-category share of total time is the
    /// recovery overhead of a run.
    Fault,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 7] = [
        Category::Compute,
        Category::GlobalMem,
        Category::SharedMem,
        Category::Shuffle,
        Category::Launch,
        Category::Interconnect,
        Category::Fault,
    ];

    /// The hierarchy level this category's hardware lives at.
    pub fn level(self) -> Level {
        match self {
            Category::Shuffle => Level::Warp,
            Category::SharedMem => Level::Block,
            Category::Compute | Category::GlobalMem | Category::Launch => Level::Device,
            Category::Interconnect | Category::Fault => Level::MultiGpu,
        }
    }

    /// Stable lowercase name (also what [`core::fmt::Display`] prints);
    /// `&'static` so telemetry can attach it without allocating.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::GlobalMem => "global-mem",
            Category::SharedMem => "shared-mem",
            Category::Shuffle => "shuffle",
            Category::Launch => "launch",
            Category::Interconnect => "interconnect",
            Category::Fault => "fault",
        }
    }
}

impl core::fmt::Display for Category {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The four levels of the multi-GPU hierarchy the paper optimizes across.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// 32 lanes exchanging through registers.
    Warp,
    /// Warps in a thread block exchanging through shared memory.
    Block,
    /// Thread blocks on one GPU exchanging through global memory.
    Device,
    /// GPUs exchanging through the interconnect.
    MultiGpu,
}

impl Level {
    /// All levels, innermost first.
    pub const ALL: [Level; 4] = [Level::Warp, Level::Block, Level::Device, Level::MultiGpu];
}

impl core::fmt::Display for Level {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Level::Warp => "warp",
            Level::Block => "block",
            Level::Device => "device",
            Level::MultiGpu => "multi-gpu",
        };
        f.write_str(s)
    }
}

/// One collective operation as seen by the machine: what ran, how many
/// bytes crossed the fabric, over how many links, and how much of the
/// communication time an overlapped schedule hid behind compute.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CollectiveEvent {
    /// Operation name (`"all-to-all"`, `"all-to-all-overlapped"`, …).
    pub op: &'static str,
    /// Total bytes moved across the fabric by all participants.
    pub bytes: u64,
    /// Number of fabric links the schedule occupied.
    pub links_used: u32,
    /// Wall (simulated) time charged for the operation, ns.
    pub time_ns: f64,
    /// Communication nanoseconds hidden behind caller-supplied compute
    /// (0 for blocking collectives).
    pub hidden_ns: f64,
}

/// Accumulated simulation statistics (per device, mergeable).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Simulated nanoseconds charged, by bottleneck category. Each kernel's
    /// full roofline time lands on the single category that dominated it.
    pub time_ns: TimeByCategory,
    /// Raw (overlap-ignoring) component nanoseconds: every kernel adds each
    /// of its pipeline components here, whether or not it was the
    /// bottleneck. Use for "where does the work live" breakdowns; sums to
    /// more than the makespan by construction.
    pub raw_time_ns: TimeByCategory,
    /// Bytes read from global memory.
    pub global_bytes_read: u64,
    /// Bytes written to global memory.
    pub global_bytes_written: u64,
    /// Bytes this device injected into the inter-GPU fabric.
    pub interconnect_bytes_sent: u64,
    /// Bytes re-sent after checksum-detected corruption.
    pub interconnect_bytes_retransmitted: u64,
    /// Interconnect nanoseconds hidden behind compute by overlapped
    /// collectives (already *excluded* from `time_ns.interconnect`; the
    /// raw, overlap-blind charge is in `raw_time_ns.interconnect`).
    #[serde(default)]
    pub comm_hidden_ns: f64,
    /// Kernel launches.
    pub kernels_launched: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Injected faults observed by this device.
    pub faults_injected: u64,
    /// Collective attempts retried after transient failures.
    pub retries: u64,
    /// Field multiplications executed.
    pub field_muls: u64,
    /// Field additions executed.
    pub field_adds: u64,
    /// Warp-shuffle operations.
    pub shuffle_ops: u64,
    /// Shared-memory accesses (bank-conflict-weighted accesses are charged
    /// in time, this counts raw accesses).
    pub shared_accesses: u64,
}

/// Nanoseconds indexed by [`Category`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeByCategory {
    /// See [`Category::Compute`].
    pub compute: f64,
    /// See [`Category::GlobalMem`].
    pub global_mem: f64,
    /// See [`Category::SharedMem`].
    pub shared_mem: f64,
    /// See [`Category::Shuffle`].
    pub shuffle: f64,
    /// See [`Category::Launch`].
    pub launch: f64,
    /// See [`Category::Interconnect`].
    pub interconnect: f64,
    /// See [`Category::Fault`].
    pub fault: f64,
}

impl TimeByCategory {
    /// Mutable access by category.
    pub fn get_mut(&mut self, cat: Category) -> &mut f64 {
        match cat {
            Category::Compute => &mut self.compute,
            Category::GlobalMem => &mut self.global_mem,
            Category::SharedMem => &mut self.shared_mem,
            Category::Shuffle => &mut self.shuffle,
            Category::Launch => &mut self.launch,
            Category::Interconnect => &mut self.interconnect,
            Category::Fault => &mut self.fault,
        }
    }

    /// Read access by category.
    pub fn get(&self, cat: Category) -> f64 {
        match cat {
            Category::Compute => self.compute,
            Category::GlobalMem => self.global_mem,
            Category::SharedMem => self.shared_mem,
            Category::Shuffle => self.shuffle,
            Category::Launch => self.launch,
            Category::Interconnect => self.interconnect,
            Category::Fault => self.fault,
        }
    }

    /// Total across categories.
    pub fn total(&self) -> f64 {
        Category::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Element-wise maximum (used when merging per-device critical paths).
    pub fn max_merge(&mut self, other: &Self) {
        for cat in Category::ALL {
            let m = self.get(cat).max(other.get(cat));
            *self.get_mut(cat) = m;
        }
    }

    /// Nanoseconds aggregated to hierarchy levels.
    pub fn by_level(&self) -> [(Level, f64); 4] {
        let mut out = [
            (Level::Warp, 0.0),
            (Level::Block, 0.0),
            (Level::Device, 0.0),
            (Level::MultiGpu, 0.0),
        ];
        for cat in Category::ALL {
            let idx = match cat.level() {
                Level::Warp => 0,
                Level::Block => 1,
                Level::Device => 2,
                Level::MultiGpu => 3,
            };
            out[idx].1 += self.get(cat);
        }
        out
    }
}

impl Stats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another device's stats: counters sum, per-category times take
    /// the maximum (devices run concurrently, so the per-category critical
    /// path is the max across symmetric devices).
    pub fn merge_concurrent(&mut self, other: &Stats) {
        self.time_ns.max_merge(&other.time_ns);
        self.raw_time_ns.max_merge(&other.raw_time_ns);
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.interconnect_bytes_sent += other.interconnect_bytes_sent;
        self.interconnect_bytes_retransmitted += other.interconnect_bytes_retransmitted;
        self.comm_hidden_ns = self.comm_hidden_ns.max(other.comm_hidden_ns);
        self.kernels_launched += other.kernels_launched;
        self.collectives += other.collectives;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.field_muls += other.field_muls;
        self.field_adds += other.field_adds;
        self.shuffle_ops += other.shuffle_ops;
        self.shared_accesses += other.shared_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_level_mapping() {
        assert_eq!(Category::Shuffle.level(), Level::Warp);
        assert_eq!(Category::SharedMem.level(), Level::Block);
        assert_eq!(Category::GlobalMem.level(), Level::Device);
        assert_eq!(Category::Interconnect.level(), Level::MultiGpu);
    }

    #[test]
    fn time_by_category_accessors() {
        let mut t = TimeByCategory::default();
        *t.get_mut(Category::Compute) += 5.0;
        *t.get_mut(Category::Interconnect) += 7.0;
        assert_eq!(t.get(Category::Compute), 5.0);
        assert_eq!(t.total(), 12.0);
    }

    #[test]
    fn by_level_aggregates_device_categories() {
        let t = TimeByCategory {
            compute: 1.0,
            global_mem: 2.0,
            launch: 3.0,
            shuffle: 10.0,
            ..TimeByCategory::default()
        };
        let by = t.by_level();
        assert_eq!(by[0], (Level::Warp, 10.0));
        assert_eq!(by[2], (Level::Device, 6.0));
    }

    #[test]
    fn merge_concurrent_sums_counters_maxes_times() {
        let mut a = Stats::new();
        a.global_bytes_read = 100;
        a.time_ns.compute = 5.0;
        let mut b = Stats::new();
        b.global_bytes_read = 50;
        b.time_ns.compute = 9.0;
        a.merge_concurrent(&b);
        assert_eq!(a.global_bytes_read, 150);
        assert_eq!(a.time_ns.compute, 9.0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Level::MultiGpu.to_string(), "multi-gpu");
        assert_eq!(Category::GlobalMem.to_string(), "global-mem");
    }
}
