//! NCCL-style collectives over the simulated fabric.
//!
//! Each collective does two things: *functionally* moves the data between
//! the per-device shards (so downstream computation is bit-exact), and
//! charges α–β time from [`crate::cost::CostModel`] to every participant.
//! All collectives imply a clock synchronization first, as NCCL kernels do.
//!
//! # Faults
//!
//! Every collective consumes one sequence number from the machine's
//! monotone collective counter and consults the installed [`FaultPlan`]
//! (if any). Argument bugs and injected faults both surface as typed
//! [`FabricError`]s instead of panics:
//!
//! * **Drop** — atomic: no data moves, a detection timeout (one modeled
//!   collective duration) is charged as fault time, and
//!   [`FabricError::CollectiveDropped`] is returned. Retrying is safe.
//! * **Corrupt** — the collective *succeeds* with one damaged chunk.
//!   [`Machine::all_to_all_checked`] detects this by per-chunk checksum
//!   and re-requests only the bad chunks (charged as fault time +
//!   retransmitted bytes); the plain variant delivers it silently.
//! * **Delay / Straggler** — the collective succeeds; extra time is
//!   charged (once, or persistently on the slow device).
//! * **DeviceLoss** — the device dies; this and every later collective
//!   return [`FabricError::DeviceLost`] until the caller re-plans.
//!
//! Legacy `*_unchecked` shims keep the old panicking signatures for
//! callers that neither install fault plans nor want `Result`s.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use std::hash::{Hash, Hasher};

use crate::fault::{CollectiveReport, FabricError, FaultKind};
use crate::machine::Machine;
use crate::timeline::TraceEvent;
use crate::trace::Category;

/// Order-sensitive checksum of one chunk (std SipHash with fixed keys:
/// deterministic across runs and platforms for `Hash`-stable types).
fn chunk_checksum<T: Hash>(chunk: &[T]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for x in chunk {
        x.hash(&mut h);
    }
    h.finish()
}

impl Machine {
    /// Synchronizes clocks and charges `ns` of interconnect time plus
    /// `egress_bytes` to every alive device.
    fn charge_collective(&mut self, ns: f64, egress_bytes: u64) {
        self.barrier();
        for d in self.devices_mut().iter_mut().filter(|d| d.alive) {
            d.timeline.push(TraceEvent {
                name: "collective",
                start_ns: d.clock_ns,
                duration_ns: ns,
                category: Category::Interconnect,
            });
            d.clock_ns += ns;
            *d.stats.time_ns.get_mut(Category::Interconnect) += ns;
            *d.stats.raw_time_ns.get_mut(Category::Interconnect) += ns;
            d.stats.interconnect_bytes_sent += egress_bytes;
            d.stats.collectives += 1;
        }
    }

    /// Fails fast if a device has already died.
    fn ensure_all_alive(&self) -> Result<(), FabricError> {
        match self.first_dead_device() {
            Some(device) => Err(FabricError::DeviceLost {
                device,
                seq: self.collective_seq(),
            }),
            None => Ok(()),
        }
    }

    /// Handles the fault kinds common to every collective. Returns the
    /// fault back for collective-specific handling (corruption, delay)
    /// when the collective should proceed.
    fn apply_pre_fault(
        &mut self,
        seq: u64,
        fault: Option<FaultKind>,
        base_ns: f64,
    ) -> Result<Option<FaultKind>, FabricError> {
        match fault {
            Some(FaultKind::Drop) => {
                // The fabric waits out one modeled completion window
                // before declaring the collective dead.
                self.charge_fault_ns("collective-timeout", base_ns);
                Err(FabricError::CollectiveDropped { seq })
            }
            Some(FaultKind::DeviceLoss { device }) => {
                self.charge_fault_ns("device-loss-detect", base_ns);
                self.fail_device(device);
                Err(FabricError::DeviceLost { device, seq })
            }
            Some(FaultKind::Straggler { device, factor }) => {
                self.degrade_device(device, factor);
                Ok(None)
            }
            other => Ok(other),
        }
    }

    /// Charges the post-completion cost of a transient delay fault.
    fn apply_delay_fault(&mut self, fault: Option<FaultKind>, base_ns: f64) {
        if let Some(FaultKind::Delay { factor }) = fault {
            self.charge_fault_ns("collective-delay", (factor - 1.0).max(0.0) * base_ns);
        }
    }

    fn validate_equal_shards<T>(&self, shards: &[Vec<T>]) -> Result<usize, FabricError> {
        let d = self.num_devices();
        if shards.len() != d {
            return Err(FabricError::ShardCountMismatch {
                expected: d,
                got: shards.len(),
            });
        }
        let len = shards[0].len();
        if !shards.iter().all(|s| s.len() == len) {
            return Err(FabricError::UnequalShardLengths);
        }
        Ok(len)
    }

    /// All-to-all (NCCL `ncclAllToAll`): shard `d` is split into `D` equal
    /// chunks and chunk `c` of device `d` is delivered to device `c`, where
    /// it lands as chunk `d`.
    ///
    /// Viewing the global array as a `D×D` grid of chunks, this is the chunk
    /// transpose at the heart of every distributed four-step NTT.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] / [`UnequalShardLengths`] /
    /// [`IndivisibleShard`] on argument bugs;
    /// [`CollectiveDropped`] / [`DeviceLost`] on injected faults. An
    /// injected *corruption* is **not** an error here — it silently
    /// damages one chunk; use [`Machine::all_to_all_checked`] to detect
    /// and repair it.
    ///
    /// [`UnequalShardLengths`]: FabricError::UnequalShardLengths
    /// [`IndivisibleShard`]: FabricError::IndivisibleShard
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn all_to_all<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) -> Result<CollectiveReport, FabricError> {
        let (report, _snapshot) = self.all_to_all_core(shards, elem_bytes, false)?;
        Ok(report)
    }

    /// [`Machine::all_to_all`] plus per-chunk checksum verification: every
    /// received chunk is checked against a checksum of what the sender
    /// dispatched, and mismatching chunks are re-requested point-to-point
    /// (charged as fault time and counted as retransmitted bytes). The
    /// returned report says how much was repaired.
    ///
    /// # Errors
    ///
    /// As [`Machine::all_to_all`].
    pub fn all_to_all_checked<T: Copy + Send + Hash>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) -> Result<CollectiveReport, FabricError> {
        let (mut report, snapshot) = self.all_to_all_core(shards, elem_bytes, true)?;
        let Some(old) = snapshot else {
            return Ok(report); // single device: nothing moved
        };
        let d = self.num_devices();
        let chunk = shards[0].len() / d;
        let chunk_bytes = (chunk * elem_bytes) as u64;
        for dst in 0..d {
            for src in 0..d {
                let received = &shards[dst][src * chunk..(src + 1) * chunk];
                let sent = &old[src][dst * chunk..(dst + 1) * chunk];
                if chunk_checksum(received) != chunk_checksum(sent) {
                    // Re-request the damaged chunk from its sender.
                    shards[dst][src * chunk..(src + 1) * chunk].copy_from_slice(sent);
                    let ns = self.model().p2p_ns(chunk_bytes);
                    self.charge_fault_ns("chunk-retransmit", ns);
                    self.devices_mut()[src]
                        .stats
                        .interconnect_bytes_retransmitted += chunk_bytes;
                    report.retransmitted_chunks += 1;
                    report.retransmitted_bytes += chunk_bytes;
                }
            }
        }
        Ok(report)
    }

    /// Shared body of the checked/unchecked all-to-all. Returns the
    /// pre-exchange snapshot when `keep_snapshot` (for checksum repair).
    #[allow(clippy::type_complexity)]
    fn all_to_all_core<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
        keep_snapshot: bool,
    ) -> Result<(CollectiveReport, Option<Vec<Vec<T>>>), FabricError> {
        let d = self.num_devices();
        let len = self.validate_equal_shards(shards)?;
        if d <= 1 {
            return Ok((CollectiveReport::default(), None));
        }
        if len % d != 0 {
            return Err(FabricError::IndivisibleShard { len, devices: d });
        }
        self.ensure_all_alive()?;
        let chunk = len / d;
        let bytes_per_device = (len * elem_bytes) as u64;
        let base_ns = self.model().all_to_all_ns(bytes_per_device);

        let (seq, fault) = self.take_fault_decision();
        let fault = self.apply_pre_fault(seq, fault, base_ns)?;

        // Functional exchange.
        let old: Vec<Vec<T>> = shards.to_vec();
        for (dst_dev, shard) in shards.iter_mut().enumerate() {
            for src_dev in 0..d {
                shard[src_dev * chunk..(src_dev + 1) * chunk]
                    .copy_from_slice(&old[src_dev][dst_dev * chunk..(dst_dev + 1) * chunk]);
            }
        }

        // In-flight corruption: one element of the (src → dst) chunk is
        // overwritten by a neighbouring element from another chunk. The
        // position is a pure function of the sequence number.
        if let Some(FaultKind::Corrupt { src, dst }) = fault {
            let off = (crate::fault::splitmix64(seq ^ 0xc0ff_ee00) % chunk as u64) as usize;
            let pos = src * chunk + off;
            let other = (pos + chunk) % len;
            shards[dst][pos] = shards[dst][other];
        }

        // Timing.
        self.charge_all_to_all(bytes_per_device);
        self.apply_delay_fault(fault, base_ns);

        let report = CollectiveReport {
            seq,
            injected: fault,
            ..CollectiveReport::default()
        };
        Ok((report, keep_snapshot.then_some(old)))
    }

    /// Legacy panicking shim over [`Machine::all_to_all`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults — only
    /// use on machines without a fault plan.
    pub fn all_to_all_unchecked<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) {
        if let Err(e) = self.all_to_all(shards, elem_bytes) {
            panic!("{e}");
        }
    }

    /// Charges the time and bytes of an all-to-all of `bytes_per_device`
    /// without moving any data. Cost-only simulations (large-size sweeps)
    /// use this to stay in lock-step with the functional path; it is
    /// fault-blind and consumes no collective sequence number.
    pub fn charge_all_to_all(&mut self, bytes_per_device: u64) {
        let d = self.num_devices();
        if d <= 1 {
            return;
        }
        let ns = self.model().all_to_all_ns(bytes_per_device);
        let egress = bytes_per_device * (d as u64 - 1) / d as u64;
        self.charge_collective(ns, egress);
    }

    /// All-gather: every device ends with the concatenation of all shards
    /// (device order). Returns the gathered copies.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] / [`UnequalShardLengths`] on
    /// argument bugs; [`CollectiveDropped`] / [`DeviceLost`] on injected
    /// faults. Injected corruption damages one element of one device's
    /// gathered copy (silently — gathers carry no checksums here).
    ///
    /// [`UnequalShardLengths`]: FabricError::UnequalShardLengths
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn all_gather<T: Copy + Send>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Result<Vec<Vec<T>>, FabricError> {
        let d = self.num_devices();
        let len = self.validate_equal_shards(shards)?;

        let mut gathered = Vec::with_capacity(len * d);
        for s in shards {
            gathered.extend_from_slice(s);
        }
        let mut out = vec![gathered; d];

        if d > 1 {
            self.ensure_all_alive()?;
            let bytes_per_device = (len * elem_bytes) as u64;
            let base_ns = self.model().all_gather_ns(bytes_per_device);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            if let Some(FaultKind::Corrupt { src, dst }) = fault {
                if len > 0 && out[dst].len() > 1 {
                    let pos = src * len
                        + (crate::fault::splitmix64(seq ^ 0xc0ff_ee01) % len as u64) as usize;
                    let other = (pos + 1) % out[dst].len();
                    out[dst][pos] = out[dst][other];
                }
            }
            let egress = bytes_per_device * (d as u64 - 1);
            self.charge_collective(base_ns, egress);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(out)
    }

    /// Legacy panicking shim over [`Machine::all_gather`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn all_gather_unchecked<T: Copy + Send>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Vec<Vec<T>> {
        match self.all_gather(shards, elem_bytes) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Tree reduction to device 0 using a caller-supplied combiner
    /// (e.g. field addition, curve-point addition). Returns the reduced
    /// value; time is `ceil(log2 D)` point-to-point rounds of the full
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] if `values.len()` differs from
    /// the device count; [`CollectiveDropped`] / [`DeviceLost`] on
    /// injected faults. Injected corruption is ignored (reductions are
    /// assumed end-to-end verified by their small size).
    ///
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn reduce_to_root<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> Result<T, FabricError> {
        let d = self.num_devices();
        if values.len() != d {
            return Err(FabricError::ShardCountMismatch {
                expected: d,
                got: values.len(),
            });
        }
        let mut acc = values[0].clone();
        for v in &values[1..] {
            acc = combine(&acc, v);
        }
        if d > 1 {
            self.ensure_all_alive()?;
            let rounds = (d as f64).log2().ceil();
            let base_ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            self.charge_collective(base_ns, elem_bytes as u64);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(acc)
    }

    /// Legacy panicking shim over [`Machine::reduce_to_root`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn reduce_to_root_unchecked<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> T {
        match self.reduce_to_root(values, elem_bytes, combine) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Broadcast from device 0: returns one copy per device; time is a
    /// `ceil(log2 D)`-round binomial tree.
    ///
    /// # Errors
    ///
    /// [`CollectiveDropped`] / [`DeviceLost`] on injected faults.
    /// Injected corruption is ignored, as for reductions.
    ///
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn broadcast<T: Clone + Send>(
        &mut self,
        value: &T,
        elem_bytes: usize,
    ) -> Result<Vec<T>, FabricError> {
        let d = self.num_devices();
        if d > 1 {
            self.ensure_all_alive()?;
            let rounds = (d as f64).log2().ceil();
            let base_ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            self.charge_collective(base_ns, elem_bytes as u64);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(vec![value.clone(); d])
    }

    /// Legacy panicking shim over [`Machine::broadcast`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn broadcast_unchecked<T: Clone + Send>(&mut self, value: &T, elem_bytes: usize) -> Vec<T> {
        match self.broadcast(value, elem_bytes) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Host → device transfer (PCIe staging of inputs). Charges only the
    /// target device.
    pub fn host_to_device_ns(&mut self, device: usize, bytes: u64) {
        // PCIe 4.0 x16 effective rate, the host link on every preset.
        const HOST_LINK_GBPS: f64 = 25.0;
        let ns = bytes as f64 / (HOST_LINK_GBPS * 1e9) * 1e9;
        let dev = &mut self.devices_mut()[device];
        dev.clock_ns += ns;
        *dev.stats.time_ns.get_mut(Category::Interconnect) += ns;
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FieldSpec;
    use crate::fault::{FabricError, FaultEvent, FaultKind, FaultPlan, FaultRates};
    use crate::machine::Machine;
    use crate::presets;
    use crate::trace::Category;

    fn machine(gpus: usize) -> Machine {
        Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks())
    }

    fn scripted(machine: &mut Machine, seq: u64, kind: FaultKind) {
        machine.set_fault_plan(FaultPlan::scripted(vec![FaultEvent { seq, kind }]));
    }

    #[test]
    fn all_to_all_is_chunk_transpose() {
        let d = 4;
        let mut m = machine(d);
        let chunk = 3;
        // shard[dev][c*chunk + i] = dev*100 + c*10 + i
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| {
                (0..d * chunk)
                    .map(|j| (dev * 100 + (j / chunk) * 10 + j % chunk) as u64)
                    .collect()
            })
            .collect();
        m.all_to_all(&mut shards, 8).unwrap();
        for (dev, shard) in shards.iter().enumerate() {
            for c in 0..d {
                for i in 0..chunk {
                    // After exchange: device `dev` chunk `c` came from
                    // device `c` chunk `dev`.
                    assert_eq!(shard[c * chunk + i], (c * 100 + dev * 10 + i) as u64);
                }
            }
        }
        assert!(m.max_clock_ns() > 0.0);
        assert!(m.stats().interconnect_bytes_sent > 0);
    }

    #[test]
    fn all_to_all_involution() {
        let d = 8;
        let mut m = machine(d);
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| (0..64).map(|j| (dev * 64 + j) as u64).collect())
            .collect();
        let original = shards.clone();
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, original);
        m.all_to_all(&mut shards, 8).unwrap();
        assert_eq!(shards, original, "all-to-all must be an involution");
    }

    #[test]
    fn all_to_all_single_device_noop() {
        let mut m = machine(1);
        let mut shards = vec![vec![1u64, 2, 3, 4]];
        m.all_to_all(&mut shards, 8).unwrap();
        assert_eq!(shards[0], vec![1, 2, 3, 4]);
        assert_eq!(m.max_clock_ns(), 0.0);
    }

    #[test]
    fn all_gather_concatenates_in_device_order() {
        let mut m = machine(3);
        let shards = vec![vec![1u64], vec![2], vec![3]];
        let gathered = m.all_gather(&shards, 8).unwrap();
        assert_eq!(gathered.len(), 3);
        for g in gathered {
            assert_eq!(g, vec![1, 2, 3]);
        }
    }

    #[test]
    fn reduce_to_root_combines_all() {
        let mut m = machine(4);
        let values = vec![1u64, 10, 100, 1000];
        let sum = m.reduce_to_root(&values, 8, |a, b| a + b).unwrap();
        assert_eq!(sum, 1111);
        assert!(m.max_clock_ns() > 0.0);
    }

    #[test]
    fn broadcast_replicates() {
        let mut m = machine(4);
        let copies = m.broadcast(&42u64, 8).unwrap();
        assert_eq!(copies, vec![42; 4]);
    }

    #[test]
    fn all_to_all_indivisible_is_typed_error() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 6]).collect();
        assert_eq!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::IndivisibleShard { len: 6, devices: 4 })
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn all_to_all_unchecked_indivisible_panics() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 6]).collect();
        m.all_to_all_unchecked(&mut shards, 8);
    }

    #[test]
    fn shard_count_mismatch_is_typed_error() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..3).map(|_| vec![0; 4]).collect();
        assert_eq!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::ShardCountMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(
            m.all_gather(&shards, 8),
            Err(FabricError::ShardCountMismatch {
                expected: 4,
                got: 3
            })
        );
    }

    #[test]
    fn collective_time_grows_with_bytes() {
        let mut m1 = machine(4);
        let mut small: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 10]).collect();
        m1.all_to_all(&mut small, 8).unwrap();
        let t_small = m1.max_clock_ns();

        let mut m2 = machine(4);
        let mut big: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 16]).collect();
        m2.all_to_all(&mut big, 8).unwrap();
        assert!(m2.max_clock_ns() > t_small);
    }

    #[test]
    fn dropped_collective_moves_no_data_and_charges_timeout() {
        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Drop);
        let mut shards: Vec<Vec<u64>> = (0..4)
            .map(|dev| (0..8).map(|j| (dev * 8 + j) as u64).collect())
            .collect();
        let before = shards.clone();
        let err = m.all_to_all(&mut shards, 8).unwrap_err();
        assert_eq!(err, FabricError::CollectiveDropped { seq: 0 });
        assert_eq!(shards, before, "drop must be atomic");
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
        // The retry (seq 1) is clean and completes.
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, before);
        assert_eq!(m.fault_log().len(), 1);
    }

    #[test]
    fn corruption_is_silent_unchecked_but_repaired_checked() {
        let kind = FaultKind::Corrupt { src: 2, dst: 1 };
        let make_shards = || -> Vec<Vec<u64>> {
            (0..4)
                .map(|dev| (0..16).map(|j| (dev * 1000 + j) as u64).collect())
                .collect()
        };
        // Expected result of a clean exchange.
        let mut clean = make_shards();
        machine(4).all_to_all(&mut clean, 8).unwrap();

        // Unchecked: corruption lands in the (src=2 → dst=1) chunk.
        let mut m = machine(4);
        scripted(&mut m, 0, kind);
        let mut shards = make_shards();
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, clean, "corruption should damage the data");

        // Checked: detected, repaired, and billed.
        let mut m = machine(4);
        scripted(&mut m, 0, kind);
        let mut shards = make_shards();
        let report = m.all_to_all_checked(&mut shards, 8).unwrap();
        assert_eq!(shards, clean, "checksum repair must restore the data");
        assert_eq!(report.retransmitted_chunks, 1);
        assert!(report.retransmitted_bytes > 0);
        assert!(m.stats().interconnect_bytes_retransmitted > 0);
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
    }

    #[test]
    fn checked_clean_run_retransmits_nothing() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4)
            .map(|dev| (0..16).map(|j| (dev * 16 + j) as u64).collect())
            .collect();
        let report = m.all_to_all_checked(&mut shards, 8).unwrap();
        assert_eq!(report.retransmitted_chunks, 0);
        assert_eq!(m.stats().time_ns.get(Category::Fault), 0.0);
    }

    #[test]
    fn device_loss_fails_this_and_later_collectives() {
        let mut m = machine(4);
        scripted(&mut m, 1, FaultKind::DeviceLoss { device: 2 });
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![7u64; 8]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        let err = m.all_to_all(&mut shards, 8).unwrap_err();
        assert_eq!(err, FabricError::DeviceLost { device: 2, seq: 1 });
        assert!(!m.is_alive(2));
        assert_eq!(m.alive_devices(), 3);
        // Every later collective keeps failing until the caller re-plans.
        assert!(matches!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::DeviceLost { device: 2, .. })
        ));
    }

    #[test]
    fn delay_charges_extra_fault_time() {
        let mut clean = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 1 << 10]).collect();
        clean.all_to_all(&mut shards, 8).unwrap();
        let t_clean = clean.max_clock_ns();

        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Delay { factor: 5.0 });
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 1 << 10]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        assert!(m.max_clock_ns() > t_clean);
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
    }

    #[test]
    fn straggler_slows_subsequent_kernels() {
        use crate::device::KernelProfile;
        let run = |straggle: bool| -> f64 {
            let mut m = machine(2);
            if straggle {
                scripted(
                    &mut m,
                    0,
                    FaultKind::Straggler {
                        device: 0,
                        factor: 3.0,
                    },
                );
            }
            let mut shards: Vec<Vec<u64>> = (0..2).map(|_| vec![0u64; 8]).collect();
            m.all_to_all(&mut shards, 8).unwrap();
            m.parallel_phase(&mut shards, |ctx, _, _| {
                let mut p = KernelProfile::named("work");
                p.global_bytes_read = 1 << 24;
                ctx.launch(&p);
            });
            m.max_clock_ns()
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn random_plan_replays_identically() {
        let run = || {
            let mut m = machine(4);
            m.set_fault_plan(FaultPlan::random(99, FaultRates::transfers_only(0.2)));
            let mut shards: Vec<Vec<u64>> = (0..4)
                .map(|dev| (0..16).map(|j| (dev * 16 + j) as u64).collect())
                .collect();
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(
                    m.all_to_all_checked(&mut shards, 8)
                        .map(|r| r.retransmitted_chunks),
                );
            }
            (outcomes, m.fault_log().to_vec(), m.max_clock_ns(), shards)
        };
        assert_eq!(run(), run());
    }
}
