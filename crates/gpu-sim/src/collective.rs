//! NCCL-style collectives over the simulated fabric.
//!
//! Each collective does two things: *functionally* moves the data between
//! the per-device shards (so downstream computation is bit-exact), and
//! charges α–β time from [`crate::cost::CostModel`] to every participant.
//! All collectives imply a clock synchronization first, as NCCL kernels do.
//!
//! # Faults
//!
//! Every collective consumes one sequence number from the machine's
//! monotone collective counter and consults the installed [`FaultPlan`]
//! (if any). Argument bugs and injected faults both surface as typed
//! [`FabricError`]s instead of panics:
//!
//! * **Drop** — atomic: no data moves, a detection timeout (one modeled
//!   collective duration) is charged as fault time, and
//!   [`FabricError::CollectiveDropped`] is returned. Retrying is safe.
//! * **Corrupt** — the collective *succeeds* with one damaged chunk.
//!   [`Machine::all_to_all_checked`] detects this by per-chunk checksum
//!   and re-requests only the bad chunks (charged as fault time +
//!   retransmitted bytes); the plain variant delivers it silently.
//! * **Delay / Straggler** — the collective succeeds; extra time is
//!   charged (once, or persistently on the slow device).
//! * **DeviceLoss** — the device dies; this and every later collective
//!   return [`FabricError::DeviceLost`] until the caller re-plans.
//!
//! Legacy `*_unchecked` shims keep the old panicking signatures for
//! callers that neither install fault plans nor want `Result`s.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use std::hash::{Hash, Hasher};

use crate::device::KernelProfile;
use crate::fault::{CollectiveReport, FabricError, FaultKind};
use crate::machine::Machine;
use crate::timeline::TraceEvent;
use crate::trace::{Category, CollectiveEvent};

/// Order-sensitive checksum of one chunk (std SipHash with fixed keys:
/// deterministic across runs and platforms for `Hash`-stable types).
fn chunk_checksum<T: Hash>(chunk: &[T]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for x in chunk {
        x.hash(&mut h);
    }
    h.finish()
}

/// Caller-supplied compute to interleave with an overlapped collective.
///
/// `producers` are the kernels that *generate* the outgoing data (e.g.
/// the final local butterfly pass of a distributed NTT): their work time
/// is sliced evenly across the chunks and each chunk is injected into
/// the fabric as soon as its slice completes. `consumers` are the
/// kernels that *use* the received data (e.g. the outer NTT): each
/// consumer slice starts as soon as its chunk has landed. Launch
/// overheads are charged once per kernel, not once per chunk — the
/// pipeline models a captured graph replayed per chunk, not `chunks`
/// separate host launches.
#[derive(Clone, Copy, Debug)]
pub struct OverlapCompute<'a> {
    /// Kernels producing the outgoing chunks (sliced before injection).
    pub producers: &'a [KernelProfile],
    /// Kernels consuming the arriving chunks (sliced after arrival).
    pub consumers: &'a [KernelProfile],
    /// Number of pipeline chunks (clamped to ≥ 1; `1` degenerates to the
    /// blocking order compute → transfer → compute).
    pub chunks: u32,
}

/// Timing outcome of one overlapped collective.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OverlapReport {
    /// Fault/repair outcome of the underlying exchange.
    pub collective: CollectiveReport,
    /// End-to-end pipeline time: producers, transfer, and consumers with
    /// all overlap applied (what the makespan advanced by).
    pub elapsed_ns: f64,
    /// The full (blocking-equivalent) communication charge the pipeline
    /// was working to hide.
    pub comm_ns: f64,
    /// Communication nanoseconds actually hidden behind compute.
    pub hidden_comm_ns: f64,
}

impl Machine {
    /// Synchronizes clocks and charges `ns` of interconnect time plus
    /// `egress_bytes` to every alive device, then logs one
    /// [`CollectiveEvent`] for the operation.
    fn charge_collective(&mut self, op: &'static str, ns: f64, egress_bytes: u64, links_used: u32) {
        self.barrier();
        let mut participants = 0u64;
        for d in self.devices_mut().iter_mut().filter(|d| d.alive) {
            d.timeline.push(TraceEvent {
                name: "collective",
                start_ns: d.clock_ns,
                duration_ns: ns,
                category: Category::Interconnect,
                queue: 0,
            });
            d.clock_ns += ns;
            *d.stats.time_ns.get_mut(Category::Interconnect) += ns;
            *d.stats.raw_time_ns.get_mut(Category::Interconnect) += ns;
            d.stats.interconnect_bytes_sent += egress_bytes;
            d.stats.collectives += 1;
            participants += 1;
        }
        self.record_collective_event(CollectiveEvent {
            op,
            bytes: egress_bytes * participants,
            links_used,
            time_ns: ns,
            hidden_ns: 0.0,
        });
    }

    /// Fails fast if a device has already died.
    fn ensure_all_alive(&self) -> Result<(), FabricError> {
        match self.first_dead_device() {
            Some(device) => Err(FabricError::DeviceLost {
                device,
                seq: self.collective_seq(),
            }),
            None => Ok(()),
        }
    }

    /// Handles the fault kinds common to every collective. Returns the
    /// fault back for collective-specific handling (corruption, delay)
    /// when the collective should proceed.
    fn apply_pre_fault(
        &mut self,
        seq: u64,
        fault: Option<FaultKind>,
        base_ns: f64,
    ) -> Result<Option<FaultKind>, FabricError> {
        match fault {
            Some(FaultKind::Drop) => {
                // The fabric waits out one modeled completion window
                // before declaring the collective dead.
                self.charge_fault_ns("collective-timeout", base_ns);
                Err(FabricError::CollectiveDropped { seq })
            }
            Some(FaultKind::DeviceLoss { device }) => {
                self.charge_fault_ns("device-loss-detect", base_ns);
                self.fail_device(device);
                Err(FabricError::DeviceLost { device, seq })
            }
            Some(FaultKind::ClusterLoss) => {
                // The whole machine drops out at once; detection costs the
                // same window as a single loss, but afterwards no healthy
                // device remains, so no local re-plan can succeed.
                self.charge_fault_ns("cluster-loss-detect", base_ns);
                for device in 0..self.num_devices() {
                    self.fail_device(device);
                }
                Err(FabricError::DeviceLost { device: 0, seq })
            }
            Some(FaultKind::Straggler { device, factor }) => {
                self.degrade_device(device, factor);
                Ok(None)
            }
            other => Ok(other),
        }
    }

    /// Charges the post-completion cost of a transient delay fault.
    fn apply_delay_fault(&mut self, fault: Option<FaultKind>, base_ns: f64) {
        if let Some(FaultKind::Delay { factor }) = fault {
            self.charge_fault_ns("collective-delay", (factor - 1.0).max(0.0) * base_ns);
        }
    }

    fn validate_equal_shards<T>(&self, shards: &[Vec<T>]) -> Result<usize, FabricError> {
        let d = self.num_devices();
        if shards.len() != d {
            return Err(FabricError::ShardCountMismatch {
                expected: d,
                got: shards.len(),
            });
        }
        let len = shards[0].len();
        if !shards.iter().all(|s| s.len() == len) {
            return Err(FabricError::UnequalShardLengths);
        }
        Ok(len)
    }

    /// All-to-all (NCCL `ncclAllToAll`): shard `d` is split into `D` equal
    /// chunks and chunk `c` of device `d` is delivered to device `c`, where
    /// it lands as chunk `d`.
    ///
    /// Viewing the global array as a `D×D` grid of chunks, this is the chunk
    /// transpose at the heart of every distributed four-step NTT.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] / [`UnequalShardLengths`] /
    /// [`IndivisibleShard`] on argument bugs;
    /// [`CollectiveDropped`] / [`DeviceLost`] on injected faults. An
    /// injected *corruption* is **not** an error here — it silently
    /// damages one chunk; use [`Machine::all_to_all_checked`] to detect
    /// and repair it.
    ///
    /// [`UnequalShardLengths`]: FabricError::UnequalShardLengths
    /// [`IndivisibleShard`]: FabricError::IndivisibleShard
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn all_to_all<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) -> Result<CollectiveReport, FabricError> {
        let (report, _snapshot) = self.all_to_all_core(shards, elem_bytes, false)?;
        Ok(report)
    }

    /// [`Machine::all_to_all`] plus per-chunk checksum verification: every
    /// received chunk is checked against a checksum of what the sender
    /// dispatched, and mismatching chunks are re-requested point-to-point
    /// (charged as fault time and counted as retransmitted bytes). The
    /// returned report says how much was repaired.
    ///
    /// # Errors
    ///
    /// As [`Machine::all_to_all`].
    pub fn all_to_all_checked<T: Copy + Send + Hash>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) -> Result<CollectiveReport, FabricError> {
        let (mut report, snapshot) = self.all_to_all_core(shards, elem_bytes, true)?;
        let Some(old) = snapshot else {
            return Ok(report); // single device: nothing moved
        };
        let d = self.num_devices();
        let chunk = shards[0].len() / d;
        let chunk_bytes = (chunk * elem_bytes) as u64;
        for dst in 0..d {
            for src in 0..d {
                let received = &shards[dst][src * chunk..(src + 1) * chunk];
                let sent = &old[src][dst * chunk..(dst + 1) * chunk];
                if chunk_checksum(received) != chunk_checksum(sent) {
                    // Re-request the damaged chunk from its sender.
                    shards[dst][src * chunk..(src + 1) * chunk].copy_from_slice(sent);
                    let ns = self.model().p2p_ns(chunk_bytes);
                    self.charge_fault_ns("chunk-retransmit", ns);
                    self.record_retransmission(src, chunk_bytes);
                    self.devices_mut()[src]
                        .stats
                        .interconnect_bytes_retransmitted += chunk_bytes;
                    report.retransmitted_chunks += 1;
                    report.retransmitted_bytes += chunk_bytes;
                }
            }
        }
        Ok(report)
    }

    /// Shared body of the checked/unchecked all-to-all. Returns the
    /// pre-exchange snapshot when `keep_snapshot` (for checksum repair).
    #[allow(clippy::type_complexity)]
    fn all_to_all_core<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
        keep_snapshot: bool,
    ) -> Result<(CollectiveReport, Option<Vec<Vec<T>>>), FabricError> {
        let d = self.num_devices();
        let len = self.validate_equal_shards(shards)?;
        if d <= 1 {
            return Ok((CollectiveReport::default(), None));
        }
        if len % d != 0 {
            return Err(FabricError::IndivisibleShard { len, devices: d });
        }
        self.ensure_all_alive()?;
        let chunk = len / d;
        let bytes_per_device = (len * elem_bytes) as u64;
        let base_ns = self.model().all_to_all_ns(bytes_per_device);

        let (seq, fault) = self.take_fault_decision();
        let fault = self.apply_pre_fault(seq, fault, base_ns)?;

        // Functional exchange.
        let old: Vec<Vec<T>> = shards.to_vec();
        for (dst_dev, shard) in shards.iter_mut().enumerate() {
            for src_dev in 0..d {
                shard[src_dev * chunk..(src_dev + 1) * chunk]
                    .copy_from_slice(&old[src_dev][dst_dev * chunk..(dst_dev + 1) * chunk]);
            }
        }

        // In-flight corruption: one element of the (src → dst) chunk is
        // overwritten by a neighbouring element from another chunk. The
        // position is a pure function of the sequence number.
        if let Some(FaultKind::Corrupt { src, dst }) = fault {
            let off = (crate::fault::splitmix64(seq ^ 0xc0ff_ee00) % chunk as u64) as usize;
            let pos = src * chunk + off;
            let other = (pos + chunk) % len;
            shards[dst][pos] = shards[dst][other];
        }

        // Timing.
        self.charge_all_to_all(bytes_per_device);
        self.apply_delay_fault(fault, base_ns);

        let report = CollectiveReport {
            seq,
            injected: fault,
            ..CollectiveReport::default()
        };
        Ok((report, keep_snapshot.then_some(old)))
    }

    /// Legacy panicking shim over [`Machine::all_to_all`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults — only
    /// use on machines without a fault plan.
    pub fn all_to_all_unchecked<T: Copy + Send>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
    ) {
        if let Err(e) = self.all_to_all(shards, elem_bytes) {
            panic!("{e}");
        }
    }

    /// Charges the time and bytes of an all-to-all of `bytes_per_device`
    /// without moving any data. Cost-only simulations (large-size sweeps)
    /// use this to stay in lock-step with the functional path; it is
    /// fault-blind and consumes no collective sequence number.
    pub fn charge_all_to_all(&mut self, bytes_per_device: u64) {
        let d = self.num_devices();
        if d <= 1 {
            return;
        }
        let (lat, wire) = self.fabric_mut().record_all_to_all(bytes_per_device);
        let links = self.fabric().links_used_all_to_all();
        let egress = bytes_per_device * (d as u64 - 1) / d as u64;
        self.charge_collective("all-to-all", lat + wire, egress, links);
    }

    /// Shared engine of the overlapped all-to-all: records the transfer
    /// on the fabric graph, software-pipelines producer slices → chunk
    /// transfers → consumer slices, and charges every alive device the
    /// resulting schedule. Communication is charged in full to
    /// `raw_time_ns.interconnect`; only the *exposed* part (what the
    /// pipeline failed to hide) lands on `time_ns.interconnect`, and the
    /// difference accumulates in [`crate::Stats::comm_hidden_ns`].
    ///
    /// Returns `(elapsed_ns, comm_ns, hidden_ns)`, maxed over devices.
    fn run_overlap_pipeline(
        &mut self,
        op: &'static str,
        bytes_per_device: u64,
        compute: &OverlapCompute<'_>,
    ) -> (f64, f64, f64) {
        let d = self.num_devices();
        let chunks = compute.chunks.max(1) as usize;
        self.barrier();

        let prod_costs: Vec<crate::cost::KernelCost> = compute
            .producers
            .iter()
            .map(|p| self.model().kernel_cost(p))
            .collect();
        let cons_costs: Vec<crate::cost::KernelCost> = compute
            .consumers
            .iter()
            .map(|p| self.model().kernel_cost(p))
            .collect();

        let (lat, wire) = self.fabric_mut().record_all_to_all(bytes_per_device);
        let links = self.fabric().links_used_all_to_all();
        let comm_ns = lat + wire;
        let egress = bytes_per_device * (d as u64 - 1) / d as u64;

        // Work/launch split of a kernel list at straggler factor `s`.
        // Launch overhead is paid once per kernel; only the work part is
        // sliced across chunks (graph replay, not per-chunk launches).
        let split = |costs: &[crate::cost::KernelCost], s: f64| -> (f64, f64) {
            let mut work = 0.0;
            let mut launch = 0.0;
            for c in costs {
                work += (c.total_ns - c.launch_ns) * s;
                launch += c.launch_ns * s;
            }
            (work, launch)
        };

        // Chunk k of the send buffer is ready once the *slowest* alive
        // device has produced slices 0..=k (the fabric is shared).
        let dev_info: Vec<(bool, f64)> = self
            .devices_mut()
            .iter()
            .map(|dev| (dev.alive, dev.speed_factor))
            .collect();
        let mut avail = vec![0.0f64; chunks];
        for &(alive, s) in &dev_info {
            if !alive {
                continue;
            }
            let (work, launch) = split(&prod_costs, s);
            for (k, a) in avail.iter_mut().enumerate() {
                let t = launch + work * (k as f64 + 1.0) / chunks as f64;
                if t > *a {
                    *a = t;
                }
            }
        }

        // Chunk transfers serialize on the shared fabric; each arrives
        // one fabric latency after its wire slice completes.
        let wire_chunk = wire / chunks as f64;
        let mut arrivals = vec![0.0f64; chunks];
        let mut x = 0.0f64;
        for (k, arr) in arrivals.iter_mut().enumerate() {
            x = x.max(avail[k]) + wire_chunk;
            *arr = x + lat;
        }

        let mut elapsed_max = 0.0f64;
        let mut hidden_max = 0.0f64;
        for dev in self.devices_mut().iter_mut().filter(|dev| dev.alive) {
            let s = dev.speed_factor;
            let (cons_work, cons_launch) = split(&cons_costs, s);
            let elapsed = if cons_work + cons_launch > 0.0 {
                let slice = cons_work / chunks as f64;
                let mut done = 0.0f64;
                for &arr in &arrivals {
                    done = done.max(arr) + slice;
                }
                done + cons_launch
            } else {
                arrivals.last().copied().unwrap_or(0.0)
            };

            // Charge the interleaved kernels exactly as a plain launch
            // would: same counters, same bottleneck/raw accounting.
            let mut compute_total = 0.0;
            for (profile, cost) in compute
                .producers
                .iter()
                .zip(&prod_costs)
                .chain(compute.consumers.iter().zip(&cons_costs))
            {
                let st = &mut dev.stats;
                st.kernels_launched += 1;
                st.field_muls += profile.field_muls;
                st.field_adds += profile.field_adds;
                st.global_bytes_read += profile.global_bytes_read;
                st.global_bytes_written += profile.global_bytes_written;
                st.shuffle_ops += profile.shuffle_ops;
                st.shared_accesses += profile.shared_accesses;
                *st.time_ns.get_mut(cost.bottleneck) += (cost.total_ns - cost.launch_ns) * s;
                *st.time_ns.get_mut(Category::Launch) += cost.launch_ns * s;
                st.raw_time_ns.compute += cost.compute_ns * s;
                st.raw_time_ns.global_mem += cost.global_mem_ns * s;
                st.raw_time_ns.shared_mem += cost.shared_mem_ns * s;
                st.raw_time_ns.shuffle += cost.shuffle_ns * s;
                st.raw_time_ns.launch += cost.launch_ns * s;
                compute_total += cost.total_ns * s;
            }

            let exposed = (elapsed - compute_total).max(0.0);
            let hidden = (comm_ns - exposed).clamp(0.0, comm_ns);
            let st = &mut dev.stats;
            *st.time_ns.get_mut(Category::Interconnect) += exposed;
            *st.raw_time_ns.get_mut(Category::Interconnect) += comm_ns;
            st.comm_hidden_ns += hidden;
            st.interconnect_bytes_sent += egress;
            st.collectives += 1;
            dev.timeline.push(TraceEvent {
                name: "overlapped-collective",
                start_ns: dev.clock_ns,
                duration_ns: elapsed,
                category: Category::Interconnect,
                queue: 0,
            });
            dev.clock_ns += elapsed;
            elapsed_max = elapsed_max.max(elapsed);
            hidden_max = hidden_max.max(hidden);
        }
        let alive = self.alive_devices() as u64;
        self.record_collective_event(CollectiveEvent {
            op,
            bytes: egress * alive,
            links_used: links,
            time_ns: elapsed_max,
            hidden_ns: hidden_max,
        });
        (elapsed_max, comm_ns, hidden_max)
    }

    /// Charges `compute`'s kernels at their ordinary (non-pipelined)
    /// cost on every alive device — the degenerate path when there is no
    /// fabric to overlap against.
    fn charge_overlap_compute_flat(&mut self, compute: &OverlapCompute<'_>) {
        let profiles: Vec<KernelProfile> = compute
            .producers
            .iter()
            .chain(compute.consumers.iter())
            .copied()
            .collect();
        for dev in 0..self.num_devices() {
            if !self.is_alive(dev) {
                continue;
            }
            self.on_device(dev, &mut (), |ctx, _| {
                for p in &profiles {
                    ctx.launch(p);
                }
            });
        }
    }

    /// Charges the time of an overlapped all-to-all of `bytes_per_device`
    /// plus its interleaved compute, without moving any data. The
    /// cost-only twin of [`Machine::all_to_all_overlapped`], exactly as
    /// [`Machine::charge_all_to_all`] is the twin of
    /// [`Machine::all_to_all`]; fault-blind, consumes no sequence number.
    ///
    /// With `chunks == 1` the schedule degenerates to the blocking order
    /// (produce, transfer, consume) and charges identical time to
    /// launching the kernels normally around a blocking all-to-all.
    pub fn charge_all_to_all_overlapped(
        &mut self,
        bytes_per_device: u64,
        compute: &OverlapCompute<'_>,
    ) -> OverlapReport {
        if self.num_devices() <= 1 {
            self.charge_overlap_compute_flat(compute);
            return OverlapReport::default();
        }
        let (elapsed, comm, hidden) =
            self.run_overlap_pipeline("all-to-all-overlapped", bytes_per_device, compute);
        OverlapReport {
            collective: CollectiveReport::default(),
            elapsed_ns: elapsed,
            comm_ns: comm,
            hidden_comm_ns: hidden,
        }
    }

    /// All-to-all with communication–compute overlap: functionally
    /// identical to [`Machine::all_to_all_checked`] (same chunk
    /// transpose, same deterministic corruption position, same
    /// checksum-repair semantics when `verify_checksums` is set), but
    /// charged as a software pipeline that interleaves chunk transfers
    /// with the caller's producer/consumer kernels. After the exchange
    /// completes — and any repairs have landed — `consume_chunk(device,
    /// k, shard)` runs for every pipeline chunk `k` on every device, so
    /// the caller can apply the consumer transformation whose cost the
    /// pipeline already charged.
    ///
    /// # Errors
    ///
    /// As [`Machine::all_to_all`]. Drops are atomic: no data moves, no
    /// pipeline time is charged beyond the detection timeout, and no
    /// consumer closure runs, so retrying is always safe.
    pub fn all_to_all_overlapped<T, C>(
        &mut self,
        shards: &mut [Vec<T>],
        elem_bytes: usize,
        compute: &OverlapCompute<'_>,
        verify_checksums: bool,
        mut consume_chunk: C,
    ) -> Result<OverlapReport, FabricError>
    where
        T: Copy + Send + Hash,
        C: FnMut(usize, usize, &mut Vec<T>),
    {
        let d = self.num_devices();
        let len = self.validate_equal_shards(shards)?;
        let pipeline_chunks = compute.chunks.max(1) as usize;
        if d <= 1 {
            self.charge_overlap_compute_flat(compute);
            for (dev, shard) in shards.iter_mut().enumerate() {
                for k in 0..pipeline_chunks {
                    consume_chunk(dev, k, shard);
                }
            }
            return Ok(OverlapReport::default());
        }
        if len % d != 0 {
            return Err(FabricError::IndivisibleShard { len, devices: d });
        }
        self.ensure_all_alive()?;
        let chunk = len / d;
        let bytes_per_device = (len * elem_bytes) as u64;
        let base_ns = self.model().all_to_all_ns(bytes_per_device);

        let (seq, fault) = self.take_fault_decision();
        let fault = self.apply_pre_fault(seq, fault, base_ns)?;

        // Functional exchange + in-flight corruption, byte-identical to
        // the blocking path: overlap changes *when* things happen, never
        // *what* data lands where.
        let old: Vec<Vec<T>> = shards.to_vec();
        for (dst_dev, shard) in shards.iter_mut().enumerate() {
            for src_dev in 0..d {
                shard[src_dev * chunk..(src_dev + 1) * chunk]
                    .copy_from_slice(&old[src_dev][dst_dev * chunk..(dst_dev + 1) * chunk]);
            }
        }
        if let Some(FaultKind::Corrupt { src, dst }) = fault {
            let off = (crate::fault::splitmix64(seq ^ 0xc0ff_ee00) % chunk as u64) as usize;
            let pos = src * chunk + off;
            let other = (pos + chunk) % len;
            shards[dst][pos] = shards[dst][other];
        }

        // Timing: the pipelined schedule instead of a blocking charge.
        let (elapsed, comm, hidden) =
            self.run_overlap_pipeline("all-to-all-overlapped", bytes_per_device, compute);
        let mut report = CollectiveReport {
            seq,
            injected: fault,
            ..CollectiveReport::default()
        };

        // Checksum verification + repair run before any consumer slice
        // touches the data, exactly as in the blocking checked variant.
        if verify_checksums {
            let chunk_bytes = (chunk * elem_bytes) as u64;
            for dst in 0..d {
                for src in 0..d {
                    let received = &shards[dst][src * chunk..(src + 1) * chunk];
                    let sent = &old[src][dst * chunk..(dst + 1) * chunk];
                    if chunk_checksum(received) != chunk_checksum(sent) {
                        shards[dst][src * chunk..(src + 1) * chunk].copy_from_slice(sent);
                        let ns = self.model().p2p_ns(chunk_bytes);
                        self.charge_fault_ns("chunk-retransmit", ns);
                        self.record_retransmission(src, chunk_bytes);
                        self.devices_mut()[src]
                            .stats
                            .interconnect_bytes_retransmitted += chunk_bytes;
                        report.retransmitted_chunks += 1;
                        report.retransmitted_bytes += chunk_bytes;
                    }
                }
            }
        }
        self.apply_delay_fault(fault, base_ns);

        for (dev, shard) in shards.iter_mut().enumerate() {
            for k in 0..pipeline_chunks {
                consume_chunk(dev, k, shard);
            }
        }
        Ok(OverlapReport {
            collective: report,
            elapsed_ns: elapsed,
            comm_ns: comm,
            hidden_comm_ns: hidden,
        })
    }

    /// All-gather: every device ends with the concatenation of all shards
    /// (device order). Returns the gathered copies.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] / [`UnequalShardLengths`] on
    /// argument bugs; [`CollectiveDropped`] / [`DeviceLost`] on injected
    /// faults. Injected corruption damages one element of one device's
    /// gathered copy (silently — gathers carry no checksums here).
    ///
    /// [`UnequalShardLengths`]: FabricError::UnequalShardLengths
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn all_gather<T: Copy + Send>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Result<Vec<Vec<T>>, FabricError> {
        let d = self.num_devices();
        let len = self.validate_equal_shards(shards)?;

        let mut gathered = Vec::with_capacity(len * d);
        for s in shards {
            gathered.extend_from_slice(s);
        }
        let mut out = vec![gathered; d];

        if d > 1 {
            self.ensure_all_alive()?;
            let bytes_per_device = (len * elem_bytes) as u64;
            let base_ns = self.model().all_gather_ns(bytes_per_device);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            if let Some(FaultKind::Corrupt { src, dst }) = fault {
                if len > 0 && out[dst].len() > 1 {
                    let pos = src * len
                        + (crate::fault::splitmix64(seq ^ 0xc0ff_ee01) % len as u64) as usize;
                    let other = (pos + 1) % out[dst].len();
                    out[dst][pos] = out[dst][other];
                }
            }
            let egress = bytes_per_device * (d as u64 - 1);
            self.charge_collective("all-gather", base_ns, egress, d as u32);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(out)
    }

    /// [`Machine::all_gather`] plus per-source checksum verification:
    /// every gathered segment is checked against the shard its source
    /// dispatched, and damaged segments are re-requested point-to-point
    /// (charged as fault time and counted as retransmitted bytes). The
    /// returned report says what was injected and how much was repaired.
    ///
    /// # Errors
    ///
    /// As [`Machine::all_gather`].
    pub fn all_gather_checked<T: Copy + Send + Hash>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Result<(Vec<Vec<T>>, CollectiveReport), FabricError> {
        let seq = self.collective_seq();
        let mut out = self.all_gather(shards, elem_bytes)?;
        let d = self.num_devices();
        let mut report = CollectiveReport::default();
        if d <= 1 {
            return Ok((out, report));
        }
        report.seq = seq;
        report.injected = self
            .fault_log()
            .iter()
            .rev()
            .find(|e| e.seq == seq)
            .map(|e| e.kind);
        let len = shards[0].len();
        let seg_bytes = (len * elem_bytes) as u64;
        let sums: Vec<u64> = shards.iter().map(|s| chunk_checksum(s)).collect();
        for row in out.iter_mut() {
            for src in 0..d {
                let seg = &row[src * len..(src + 1) * len];
                if chunk_checksum(seg) != sums[src] {
                    row[src * len..(src + 1) * len].copy_from_slice(&shards[src]);
                    let ns = self.model().p2p_ns(seg_bytes);
                    self.charge_fault_ns("chunk-retransmit", ns);
                    self.record_retransmission(src, seg_bytes);
                    self.devices_mut()[src]
                        .stats
                        .interconnect_bytes_retransmitted += seg_bytes;
                    report.retransmitted_chunks += 1;
                    report.retransmitted_bytes += seg_bytes;
                }
            }
        }
        Ok((out, report))
    }

    /// Legacy panicking shim over [`Machine::all_gather`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn all_gather_unchecked<T: Copy + Send>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Vec<Vec<T>> {
        match self.all_gather(shards, elem_bytes) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Tree reduction to device 0 using a caller-supplied combiner
    /// (e.g. field addition, curve-point addition). Returns the reduced
    /// value; time is `ceil(log2 D)` point-to-point rounds of the full
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShardCountMismatch`] if `values.len()` differs from
    /// the device count; [`CollectiveDropped`] / [`DeviceLost`] on
    /// injected faults. Injected corruption is ignored (reductions are
    /// assumed end-to-end verified by their small size).
    ///
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn reduce_to_root<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> Result<T, FabricError> {
        let d = self.num_devices();
        if values.len() != d {
            return Err(FabricError::ShardCountMismatch {
                expected: d,
                got: values.len(),
            });
        }
        let mut acc = values[0].clone();
        for v in &values[1..] {
            acc = combine(&acc, v);
        }
        if d > 1 {
            self.ensure_all_alive()?;
            let rounds = (d as f64).log2().ceil();
            let base_ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            self.charge_collective("reduce-to-root", base_ns, elem_bytes as u64, d as u32 - 1);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(acc)
    }

    /// [`Machine::reduce_to_root`] with checksummed contributions: a
    /// corrupted transfer is detected at the combining end by checksum
    /// and the damaged contribution is re-requested (charged as fault
    /// time plus retransmitted bytes), so the reduced value is always
    /// computed from pristine inputs.
    ///
    /// # Errors
    ///
    /// As [`Machine::reduce_to_root`].
    pub fn reduce_to_root_checked<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> Result<(T, CollectiveReport), FabricError> {
        let seq = self.collective_seq();
        let acc = self.reduce_to_root(values, elem_bytes, combine)?;
        let mut report = CollectiveReport::default();
        if self.num_devices() <= 1 {
            return Ok((acc, report));
        }
        report.seq = seq;
        report.injected = self
            .fault_log()
            .iter()
            .rev()
            .find(|e| e.seq == seq)
            .map(|e| e.kind);
        if let Some(FaultKind::Corrupt { src, .. }) = report.injected {
            let bytes = elem_bytes as u64;
            let ns = self.model().p2p_ns(bytes);
            self.charge_fault_ns("chunk-retransmit", ns);
            self.record_retransmission(src, bytes);
            self.devices_mut()[src]
                .stats
                .interconnect_bytes_retransmitted += bytes;
            report.retransmitted_chunks += 1;
            report.retransmitted_bytes += bytes;
        }
        Ok((acc, report))
    }

    /// Legacy panicking shim over [`Machine::reduce_to_root`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn reduce_to_root_unchecked<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> T {
        match self.reduce_to_root(values, elem_bytes, combine) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Broadcast from device 0: returns one copy per device; time is a
    /// `ceil(log2 D)`-round binomial tree.
    ///
    /// # Errors
    ///
    /// [`CollectiveDropped`] / [`DeviceLost`] on injected faults.
    /// Injected corruption is ignored, as for reductions.
    ///
    /// [`CollectiveDropped`]: FabricError::CollectiveDropped
    /// [`DeviceLost`]: FabricError::DeviceLost
    pub fn broadcast<T: Clone + Send>(
        &mut self,
        value: &T,
        elem_bytes: usize,
    ) -> Result<Vec<T>, FabricError> {
        let d = self.num_devices();
        if d > 1 {
            self.ensure_all_alive()?;
            let rounds = (d as f64).log2().ceil();
            let base_ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            let (seq, fault) = self.take_fault_decision();
            let fault = self.apply_pre_fault(seq, fault, base_ns)?;
            self.charge_collective("broadcast", base_ns, elem_bytes as u64, d as u32 - 1);
            self.apply_delay_fault(fault, base_ns);
        }
        Ok(vec![value.clone(); d])
    }

    /// Legacy panicking shim over [`Machine::broadcast`].
    ///
    /// # Panics
    ///
    /// Panics on any [`FabricError`], including injected faults.
    pub fn broadcast_unchecked<T: Clone + Send>(&mut self, value: &T, elem_bytes: usize) -> Vec<T> {
        match self.broadcast(value, elem_bytes) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Host → device transfer (PCIe staging of inputs). Charges only the
    /// target device.
    pub fn host_to_device_ns(&mut self, device: usize, bytes: u64) {
        // PCIe 4.0 x16 effective rate, the host link on every preset.
        const HOST_LINK_GBPS: f64 = 25.0;
        let ns = bytes as f64 / (HOST_LINK_GBPS * 1e9) * 1e9;
        let dev = &mut self.devices_mut()[device];
        dev.clock_ns += ns;
        *dev.stats.time_ns.get_mut(Category::Interconnect) += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::{OverlapCompute, OverlapReport};
    use crate::config::FieldSpec;
    use crate::device::KernelProfile;
    use crate::fault::{FabricError, FaultEvent, FaultKind, FaultPlan, FaultRates};
    use crate::machine::Machine;
    use crate::presets;
    use crate::trace::Category;

    fn machine(gpus: usize) -> Machine {
        Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks())
    }

    fn scripted(machine: &mut Machine, seq: u64, kind: FaultKind) {
        machine.set_fault_plan(FaultPlan::scripted(vec![FaultEvent { seq, kind }]));
    }

    #[test]
    fn all_to_all_is_chunk_transpose() {
        let d = 4;
        let mut m = machine(d);
        let chunk = 3;
        // shard[dev][c*chunk + i] = dev*100 + c*10 + i
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| {
                (0..d * chunk)
                    .map(|j| (dev * 100 + (j / chunk) * 10 + j % chunk) as u64)
                    .collect()
            })
            .collect();
        m.all_to_all(&mut shards, 8).unwrap();
        for (dev, shard) in shards.iter().enumerate() {
            for c in 0..d {
                for i in 0..chunk {
                    // After exchange: device `dev` chunk `c` came from
                    // device `c` chunk `dev`.
                    assert_eq!(shard[c * chunk + i], (c * 100 + dev * 10 + i) as u64);
                }
            }
        }
        assert!(m.max_clock_ns() > 0.0);
        assert!(m.stats().interconnect_bytes_sent > 0);
    }

    #[test]
    fn all_to_all_involution() {
        let d = 8;
        let mut m = machine(d);
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| (0..64).map(|j| (dev * 64 + j) as u64).collect())
            .collect();
        let original = shards.clone();
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, original);
        m.all_to_all(&mut shards, 8).unwrap();
        assert_eq!(shards, original, "all-to-all must be an involution");
    }

    #[test]
    fn all_to_all_single_device_noop() {
        let mut m = machine(1);
        let mut shards = vec![vec![1u64, 2, 3, 4]];
        m.all_to_all(&mut shards, 8).unwrap();
        assert_eq!(shards[0], vec![1, 2, 3, 4]);
        assert_eq!(m.max_clock_ns(), 0.0);
    }

    #[test]
    fn all_gather_concatenates_in_device_order() {
        let mut m = machine(3);
        let shards = vec![vec![1u64], vec![2], vec![3]];
        let gathered = m.all_gather(&shards, 8).unwrap();
        assert_eq!(gathered.len(), 3);
        for g in gathered {
            assert_eq!(g, vec![1, 2, 3]);
        }
    }

    #[test]
    fn reduce_to_root_combines_all() {
        let mut m = machine(4);
        let values = vec![1u64, 10, 100, 1000];
        let sum = m.reduce_to_root(&values, 8, |a, b| a + b).unwrap();
        assert_eq!(sum, 1111);
        assert!(m.max_clock_ns() > 0.0);
    }

    #[test]
    fn broadcast_replicates() {
        let mut m = machine(4);
        let copies = m.broadcast(&42u64, 8).unwrap();
        assert_eq!(copies, vec![42; 4]);
    }

    #[test]
    fn all_to_all_indivisible_is_typed_error() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 6]).collect();
        assert_eq!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::IndivisibleShard { len: 6, devices: 4 })
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn all_to_all_unchecked_indivisible_panics() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 6]).collect();
        m.all_to_all_unchecked(&mut shards, 8);
    }

    #[test]
    fn shard_count_mismatch_is_typed_error() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..3).map(|_| vec![0; 4]).collect();
        assert_eq!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::ShardCountMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(
            m.all_gather(&shards, 8),
            Err(FabricError::ShardCountMismatch {
                expected: 4,
                got: 3
            })
        );
    }

    #[test]
    fn collective_time_grows_with_bytes() {
        let mut m1 = machine(4);
        let mut small: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 10]).collect();
        m1.all_to_all(&mut small, 8).unwrap();
        let t_small = m1.max_clock_ns();

        let mut m2 = machine(4);
        let mut big: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 16]).collect();
        m2.all_to_all(&mut big, 8).unwrap();
        assert!(m2.max_clock_ns() > t_small);
    }

    #[test]
    fn dropped_collective_moves_no_data_and_charges_timeout() {
        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Drop);
        let mut shards: Vec<Vec<u64>> = (0..4)
            .map(|dev| (0..8).map(|j| (dev * 8 + j) as u64).collect())
            .collect();
        let before = shards.clone();
        let err = m.all_to_all(&mut shards, 8).unwrap_err();
        assert_eq!(err, FabricError::CollectiveDropped { seq: 0 });
        assert_eq!(shards, before, "drop must be atomic");
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
        // The retry (seq 1) is clean and completes.
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, before);
        assert_eq!(m.fault_log().len(), 1);
    }

    #[test]
    fn corruption_is_silent_unchecked_but_repaired_checked() {
        let kind = FaultKind::Corrupt { src: 2, dst: 1 };
        let make_shards = || -> Vec<Vec<u64>> {
            (0..4)
                .map(|dev| (0..16).map(|j| (dev * 1000 + j) as u64).collect())
                .collect()
        };
        // Expected result of a clean exchange.
        let mut clean = make_shards();
        machine(4).all_to_all(&mut clean, 8).unwrap();

        // Unchecked: corruption lands in the (src=2 → dst=1) chunk.
        let mut m = machine(4);
        scripted(&mut m, 0, kind);
        let mut shards = make_shards();
        m.all_to_all(&mut shards, 8).unwrap();
        assert_ne!(shards, clean, "corruption should damage the data");

        // Checked: detected, repaired, and billed.
        let mut m = machine(4);
        scripted(&mut m, 0, kind);
        let mut shards = make_shards();
        let report = m.all_to_all_checked(&mut shards, 8).unwrap();
        assert_eq!(shards, clean, "checksum repair must restore the data");
        assert_eq!(report.retransmitted_chunks, 1);
        assert!(report.retransmitted_bytes > 0);
        assert!(m.stats().interconnect_bytes_retransmitted > 0);
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
    }

    #[test]
    fn cluster_loss_kills_every_device_at_once() {
        let mut m = machine(4);
        scripted(&mut m, 1, FaultKind::ClusterLoss);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![7u64; 8]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        let err = m.all_to_all(&mut shards, 8).unwrap_err();
        assert!(matches!(err, FabricError::DeviceLost { .. }));
        assert_eq!(m.alive_devices(), 0, "the whole machine must be dead");
        // No local re-plan can succeed: every later collective fails too.
        assert!(matches!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::DeviceLost { .. })
        ));
    }

    #[test]
    fn checked_clean_run_retransmits_nothing() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4)
            .map(|dev| (0..16).map(|j| (dev * 16 + j) as u64).collect())
            .collect();
        let report = m.all_to_all_checked(&mut shards, 8).unwrap();
        assert_eq!(report.retransmitted_chunks, 0);
        assert_eq!(m.stats().time_ns.get(Category::Fault), 0.0);
    }

    #[test]
    fn device_loss_fails_this_and_later_collectives() {
        let mut m = machine(4);
        scripted(&mut m, 1, FaultKind::DeviceLoss { device: 2 });
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![7u64; 8]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        let err = m.all_to_all(&mut shards, 8).unwrap_err();
        assert_eq!(err, FabricError::DeviceLost { device: 2, seq: 1 });
        assert!(!m.is_alive(2));
        assert_eq!(m.alive_devices(), 3);
        // Every later collective keeps failing until the caller re-plans.
        assert!(matches!(
            m.all_to_all(&mut shards, 8),
            Err(FabricError::DeviceLost { device: 2, .. })
        ));
    }

    #[test]
    fn delay_charges_extra_fault_time() {
        let mut clean = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 1 << 10]).collect();
        clean.all_to_all(&mut shards, 8).unwrap();
        let t_clean = clean.max_clock_ns();

        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Delay { factor: 5.0 });
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 1 << 10]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        assert!(m.max_clock_ns() > t_clean);
        assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
    }

    #[test]
    fn straggler_slows_subsequent_kernels() {
        use crate::device::KernelProfile;
        let run = |straggle: bool| -> f64 {
            let mut m = machine(2);
            if straggle {
                scripted(
                    &mut m,
                    0,
                    FaultKind::Straggler {
                        device: 0,
                        factor: 3.0,
                    },
                );
            }
            let mut shards: Vec<Vec<u64>> = (0..2).map(|_| vec![0u64; 8]).collect();
            m.all_to_all(&mut shards, 8).unwrap();
            m.parallel_phase(&mut shards, |ctx, _, _| {
                let mut p = KernelProfile::named("work");
                p.global_bytes_read = 1 << 24;
                ctx.launch(&p);
            });
            m.max_clock_ns()
        };
        assert!(run(true) > run(false));
    }

    fn overlap_profiles() -> (KernelProfile, KernelProfile) {
        let mut prod = KernelProfile::named("producer");
        prod.blocks = 4096;
        prod.global_bytes_read = 1 << 26;
        prod.global_bytes_written = 1 << 26;
        let mut cons = KernelProfile::named("consumer");
        cons.blocks = 4096;
        cons.global_bytes_read = 1 << 26;
        cons.global_bytes_written = 1 << 26;
        cons.field_muls = 1 << 20;
        (prod, cons)
    }

    #[test]
    fn blocking_collectives_record_events() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 16]).collect();
        m.all_to_all(&mut shards, 8).unwrap();
        let _ = m.all_gather(&shards, 8).unwrap();
        let ev = m.collective_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].op, "all-to-all");
        assert_eq!(ev[1].op, "all-gather");
        assert!(ev[0].links_used > 0);
        assert!(ev[0].bytes > 0);
        assert_eq!(ev[0].hidden_ns, 0.0);
    }

    #[test]
    fn overlapped_single_chunk_matches_blocking_schedule() {
        let (prod, cons) = overlap_profiles();
        let bytes = ((1 << 16) * 8) as u64;

        let blocking = {
            let mut m = machine(4);
            let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 2]).collect();
            m.parallel_phase(&mut shards, |ctx, _, _| {
                ctx.launch(&prod);
            });
            m.charge_all_to_all(bytes);
            m.parallel_phase(&mut shards, |ctx, _, _| {
                ctx.launch(&cons);
            });
            m
        };
        let overlapped = {
            let mut m = machine(4);
            let compute = OverlapCompute {
                producers: &[prod],
                consumers: &[cons],
                chunks: 1,
            };
            m.charge_all_to_all_overlapped(bytes, &compute);
            m
        };

        let (b, o) = (blocking.max_clock_ns(), overlapped.max_clock_ns());
        assert!((b - o).abs() < 1e-6 * b, "blocking {b} vs overlapped-1 {o}");
        assert_eq!(
            blocking.stats().kernels_launched,
            overlapped.stats().kernels_launched
        );
        assert_eq!(
            blocking.stats().interconnect_bytes_sent,
            overlapped.stats().interconnect_bytes_sent
        );
        assert!(overlapped.stats().comm_hidden_ns < 1e-6);
    }

    #[test]
    fn overlap_hides_communication_with_many_chunks() {
        let (prod, cons) = overlap_profiles();
        let bytes = (1 << 24) as u64;
        let run = |chunks: u32| -> (Machine, OverlapReport) {
            let mut m = machine(8);
            let compute = OverlapCompute {
                producers: &[prod],
                consumers: &[cons],
                chunks,
            };
            let rep = m.charge_all_to_all_overlapped(bytes, &compute);
            (m, rep)
        };
        let (m1, r1) = run(1);
        let (m8, r8) = run(8);
        assert!(m8.max_clock_ns() < m1.max_clock_ns());
        assert!(r8.hidden_comm_ns > 0.0);
        assert!(r1.hidden_comm_ns.abs() < 1e-6);
        // The raw (overlap-blind) interconnect charge is identical: overlap
        // changes the exposed time, not the work done.
        let (s1, s8) = (m1.stats(), m8.stats());
        assert!((s1.raw_time_ns.interconnect - s8.raw_time_ns.interconnect).abs() < 1e-9);
        // Hidden time is exactly what left the bottleneck account.
        assert!(
            (s8.raw_time_ns.interconnect - s8.time_ns.interconnect - s8.comm_hidden_ns).abs()
                < 1e-6
        );
        assert_eq!(m8.collective_events().len(), 1);
        assert_eq!(m8.collective_events()[0].op, "all-to-all-overlapped");
        assert!(m8.collective_events()[0].hidden_ns > 0.0);
    }

    #[test]
    fn overlapped_exchange_is_bit_identical_to_blocking() {
        let d = 4;
        let make = || -> Vec<Vec<u64>> {
            (0..d)
                .map(|dev| (0..16).map(|j| (dev * 1000 + j) as u64).collect())
                .collect()
        };
        let mut blocking = make();
        machine(d).all_to_all(&mut blocking, 8).unwrap();

        let (prod, cons) = overlap_profiles();
        let compute = OverlapCompute {
            producers: &[prod],
            consumers: &[cons],
            chunks: 4,
        };
        let mut m = machine(d);
        let mut shards = make();
        let mut calls = Vec::new();
        m.all_to_all_overlapped(&mut shards, 8, &compute, true, |dev, k, _| {
            calls.push((dev, k));
        })
        .unwrap();
        assert_eq!(shards, blocking);
        assert_eq!(calls.len(), d * 4);
        assert_eq!(calls[0], (0, 0));
    }

    #[test]
    fn overlapped_corruption_repaired_and_drop_atomic() {
        let (prod, cons) = overlap_profiles();
        let compute = OverlapCompute {
            producers: &[prod],
            consumers: &[cons],
            chunks: 4,
        };
        let make = || -> Vec<Vec<u64>> {
            (0..4)
                .map(|dev| (0..16).map(|j| (dev * 1000 + j) as u64).collect())
                .collect()
        };
        let mut clean = make();
        machine(4).all_to_all(&mut clean, 8).unwrap();

        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Corrupt { src: 2, dst: 1 });
        let mut shards = make();
        let rep = m
            .all_to_all_overlapped(&mut shards, 8, &compute, true, |_, _, _| {})
            .unwrap();
        assert_eq!(shards, clean, "checksum repair must restore the data");
        assert_eq!(rep.collective.retransmitted_chunks, 1);
        assert!(m.stats().interconnect_bytes_retransmitted > 0);

        let mut m = machine(4);
        scripted(&mut m, 0, FaultKind::Drop);
        let mut shards = make();
        let before = shards.clone();
        let mut calls = 0;
        let err = m
            .all_to_all_overlapped(&mut shards, 8, &compute, true, |_, _, _| calls += 1)
            .unwrap_err();
        assert_eq!(err, FabricError::CollectiveDropped { seq: 0 });
        assert_eq!(shards, before, "drop must be atomic");
        assert_eq!(calls, 0, "no consumer closure may run on a drop");
        // The retry (seq 1) is clean and completes.
        m.all_to_all_overlapped(&mut shards, 8, &compute, true, |_, _, _| {})
            .unwrap();
        assert_eq!(shards, clean);
    }

    #[test]
    fn random_plan_replays_identically() {
        let run = || {
            let mut m = machine(4);
            m.set_fault_plan(FaultPlan::random(99, FaultRates::transfers_only(0.2)));
            let mut shards: Vec<Vec<u64>> = (0..4)
                .map(|dev| (0..16).map(|j| (dev * 16 + j) as u64).collect())
                .collect();
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(
                    m.all_to_all_checked(&mut shards, 8)
                        .map(|r| r.retransmitted_chunks),
                );
            }
            (outcomes, m.fault_log().to_vec(), m.max_clock_ns(), shards)
        };
        assert_eq!(run(), run());
    }
}
