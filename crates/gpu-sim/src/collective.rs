//! NCCL-style collectives over the simulated fabric.
//!
//! Each collective does two things: *functionally* moves the data between
//! the per-device shards (so downstream computation is bit-exact), and
//! charges α–β time from [`crate::cost::CostModel`] to every participant.
//! All collectives imply a clock synchronization first, as NCCL kernels do.

use crate::machine::Machine;
use crate::timeline::TraceEvent;
use crate::trace::Category;

impl Machine {
    /// Synchronizes clocks and charges `ns` of interconnect time plus
    /// `egress_bytes` to every device.
    fn charge_collective(&mut self, ns: f64, egress_bytes: u64) {
        self.barrier();
        for d in self.devices_mut() {
            d.timeline.push(TraceEvent {
                name: "collective",
                start_ns: d.clock_ns,
                duration_ns: ns,
                category: Category::Interconnect,
            });
            d.clock_ns += ns;
            *d.stats.time_ns.get_mut(Category::Interconnect) += ns;
            *d.stats.raw_time_ns.get_mut(Category::Interconnect) += ns;
            d.stats.interconnect_bytes_sent += egress_bytes;
            d.stats.collectives += 1;
        }
    }

    /// All-to-all (NCCL `ncclAllToAll`): shard `d` is split into `D` equal
    /// chunks and chunk `c` of device `d` is delivered to device `c`, where
    /// it lands as chunk `d`.
    ///
    /// Viewing the global array as a `D×D` grid of chunks, this is the chunk
    /// transpose at the heart of every distributed four-step NTT.
    ///
    /// # Panics
    ///
    /// Panics if shard lengths differ, or are not divisible by the device
    /// count, or `shards.len() != num_devices`.
    pub fn all_to_all<T: Copy + Send>(&mut self, shards: &mut [Vec<T>], elem_bytes: usize) {
        let d = self.num_devices();
        assert_eq!(shards.len(), d, "need exactly one shard per device");
        if d <= 1 {
            return;
        }
        let len = shards[0].len();
        assert!(
            shards.iter().all(|s| s.len() == len),
            "all shards must have equal length"
        );
        assert_eq!(len % d, 0, "shard length {len} not divisible by {d} devices");
        let chunk = len / d;

        // Functional exchange.
        let old: Vec<Vec<T>> = shards.iter().map(|s| s.clone()).collect();
        for (dst_dev, shard) in shards.iter_mut().enumerate() {
            for src_dev in 0..d {
                shard[src_dev * chunk..(src_dev + 1) * chunk]
                    .copy_from_slice(&old[src_dev][dst_dev * chunk..(dst_dev + 1) * chunk]);
            }
        }

        // Timing.
        self.charge_all_to_all((len * elem_bytes) as u64);
    }

    /// Charges the time and bytes of an all-to-all of `bytes_per_device`
    /// without moving any data. Cost-only simulations (large-size sweeps)
    /// use this to stay in lock-step with the functional path.
    pub fn charge_all_to_all(&mut self, bytes_per_device: u64) {
        let d = self.num_devices();
        if d <= 1 {
            return;
        }
        let ns = self.model().all_to_all_ns(bytes_per_device);
        let egress = bytes_per_device * (d as u64 - 1) / d as u64;
        self.charge_collective(ns, egress);
    }

    /// All-gather: every device ends with the concatenation of all shards
    /// (device order). Returns the gathered copies.
    ///
    /// # Panics
    ///
    /// Panics if shard lengths differ or `shards.len() != num_devices`.
    pub fn all_gather<T: Copy + Send>(
        &mut self,
        shards: &[Vec<T>],
        elem_bytes: usize,
    ) -> Vec<Vec<T>> {
        let d = self.num_devices();
        assert_eq!(shards.len(), d, "need exactly one shard per device");
        let len = shards[0].len();
        assert!(
            shards.iter().all(|s| s.len() == len),
            "all shards must have equal length"
        );

        let mut gathered = Vec::with_capacity(len * d);
        for s in shards {
            gathered.extend_from_slice(s);
        }
        let out = vec![gathered; d];

        if d > 1 {
            let bytes_per_device = (len * elem_bytes) as u64;
            let ns = self.model().all_gather_ns(bytes_per_device);
            let egress = bytes_per_device * (d as u64 - 1);
            self.charge_collective(ns, egress);
        }
        out
    }

    /// Tree reduction to device 0 using a caller-supplied combiner
    /// (e.g. field addition, curve-point addition). Returns the reduced
    /// value; time is `ceil(log2 D)` point-to-point rounds of the full
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_devices` or `values` is empty.
    pub fn reduce_to_root<T: Clone + Send>(
        &mut self,
        values: &[T],
        elem_bytes: usize,
        combine: impl Fn(&T, &T) -> T,
    ) -> T {
        let d = self.num_devices();
        assert_eq!(values.len(), d, "need exactly one value per device");
        let mut acc = values[0].clone();
        for v in &values[1..] {
            acc = combine(&acc, v);
        }
        if d > 1 {
            let rounds = (d as f64).log2().ceil();
            let ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            self.charge_collective(ns, elem_bytes as u64);
        }
        acc
    }

    /// Broadcast from device 0: returns one copy per device; time is a
    /// `ceil(log2 D)`-round binomial tree.
    pub fn broadcast<T: Clone + Send>(&mut self, value: &T, elem_bytes: usize) -> Vec<T> {
        let d = self.num_devices();
        if d > 1 {
            let rounds = (d as f64).log2().ceil();
            let ns = rounds * self.model().p2p_ns(elem_bytes as u64);
            self.charge_collective(ns, elem_bytes as u64);
        }
        vec![value.clone(); d]
    }

    /// Host → device transfer (PCIe staging of inputs). Charges only the
    /// target device.
    pub fn host_to_device_ns(&mut self, device: usize, bytes: u64) {
        // PCIe 4.0 x16 effective rate, the host link on every preset.
        const HOST_LINK_GBPS: f64 = 25.0;
        let ns = bytes as f64 / (HOST_LINK_GBPS * 1e9) * 1e9;
        let dev = &mut self.devices_mut()[device];
        dev.clock_ns += ns;
        *dev.stats.time_ns.get_mut(Category::Interconnect) += ns;
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FieldSpec;
    use crate::machine::Machine;
    use crate::presets;

    fn machine(gpus: usize) -> Machine {
        Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks())
    }

    #[test]
    fn all_to_all_is_chunk_transpose() {
        let d = 4;
        let mut m = machine(d);
        let chunk = 3;
        // shard[dev][c*chunk + i] = dev*100 + c*10 + i
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| {
                (0..d * chunk)
                    .map(|j| (dev * 100 + (j / chunk) * 10 + j % chunk) as u64)
                    .collect()
            })
            .collect();
        m.all_to_all(&mut shards, 8);
        for dev in 0..d {
            for c in 0..d {
                for i in 0..chunk {
                    // After exchange: device `dev` chunk `c` came from
                    // device `c` chunk `dev`.
                    assert_eq!(
                        shards[dev][c * chunk + i],
                        (c * 100 + dev * 10 + i) as u64
                    );
                }
            }
        }
        assert!(m.max_clock_ns() > 0.0);
        assert!(m.stats().interconnect_bytes_sent > 0);
    }

    #[test]
    fn all_to_all_involution() {
        let d = 8;
        let mut m = machine(d);
        let mut shards: Vec<Vec<u64>> = (0..d)
            .map(|dev| (0..64).map(|j| (dev * 64 + j) as u64).collect())
            .collect();
        let original = shards.clone();
        m.all_to_all(&mut shards, 8);
        assert_ne!(shards, original);
        m.all_to_all(&mut shards, 8);
        assert_eq!(shards, original, "all-to-all must be an involution");
    }

    #[test]
    fn all_to_all_single_device_noop() {
        let mut m = machine(1);
        let mut shards = vec![vec![1u64, 2, 3, 4]];
        m.all_to_all(&mut shards, 8);
        assert_eq!(shards[0], vec![1, 2, 3, 4]);
        assert_eq!(m.max_clock_ns(), 0.0);
    }

    #[test]
    fn all_gather_concatenates_in_device_order() {
        let mut m = machine(3);
        let shards = vec![vec![1u64], vec![2], vec![3]];
        let gathered = m.all_gather(&shards, 8);
        assert_eq!(gathered.len(), 3);
        for g in gathered {
            assert_eq!(g, vec![1, 2, 3]);
        }
    }

    #[test]
    fn reduce_to_root_combines_all() {
        let mut m = machine(4);
        let values = vec![1u64, 10, 100, 1000];
        let sum = m.reduce_to_root(&values, 8, |a, b| a + b);
        assert_eq!(sum, 1111);
        assert!(m.max_clock_ns() > 0.0);
    }

    #[test]
    fn broadcast_replicates() {
        let mut m = machine(4);
        let copies = m.broadcast(&42u64, 8);
        assert_eq!(copies, vec![42; 4]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn all_to_all_indivisible_panics() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 6]).collect();
        m.all_to_all(&mut shards, 8);
    }

    #[test]
    fn collective_time_grows_with_bytes() {
        let mut m1 = machine(4);
        let mut small: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 10]).collect();
        m1.all_to_all(&mut small, 8);
        let t_small = m1.max_clock_ns();

        let mut m2 = machine(4);
        let mut big: Vec<Vec<u64>> = (0..4).map(|_| vec![0; 1 << 16]).collect();
        m2.all_to_all(&mut big, 8);
        assert!(m2.max_clock_ns() > t_small);
    }
}
