//! The simulated multi-GPU machine.
//!
//! [`Machine`] owns one [`DeviceState`] per GPU plus the shared
//! [`CostModel`]. Engines drive it in *phases*:
//!
//! 1. [`Machine::parallel_phase`] — run a closure on every device
//!    concurrently (real OS threads), each closure transforming its own
//!    data shard and charging kernel costs through a [`DeviceCtx`];
//! 2. collectives ([`Machine::all_to_all`] & friends in
//!    [`crate::collective`]) — functional data movement between shards plus
//!    an α–β time charge;
//! 3. [`Machine::barrier`] — clock synchronization.
//!
//! Per-device clocks advance independently inside a phase and are re-synced
//! at collectives and barriers, mimicking streams + NCCL semantics.

use crate::config::{FieldSpec, MachineConfig};
use crate::cost::CostModel;
use crate::device::{DeviceCtx, DeviceState};
use crate::fabric::FabricGraph;
use crate::fault::{FaultEvent, FaultPlan};
use crate::timeline::TraceEvent;
use crate::trace::{Category, CollectiveEvent, Stats};

/// A simulated multi-GPU machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    model: CostModel,
    devices: Vec<DeviceState>,
    fabric: FabricGraph,
    fault_plan: Option<FaultPlan>,
    collective_seq: u64,
    fault_log: Vec<FaultEvent>,
    collective_events: Vec<CollectiveEvent>,
    /// Telemetry track label; also prefixes per-device track names.
    label: String,
}

impl Machine {
    /// Builds a machine from a config and the field being processed.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`MachineConfig::validate`].
    pub fn new(cfg: MachineConfig, field: FieldSpec) -> Self {
        cfg.validate().expect("invalid machine config");
        let model = CostModel::new(&cfg, field);
        let devices = (0..cfg.num_gpus).map(|_| DeviceState::default()).collect();
        let fabric = FabricGraph::new(&cfg.interconnect, cfg.num_gpus);
        Self {
            cfg,
            model,
            devices,
            fabric,
            fault_plan: None,
            collective_seq: 0,
            fault_log: Vec::new(),
            collective_events: Vec::new(),
            label: String::from("machine"),
        }
    }

    /// Names this machine's telemetry tracks (e.g. `"node3"`). Distinct
    /// labels keep concurrent machines on distinct trace tracks.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The telemetry track label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The telemetry track name for one device, `"{label}/gpu{d}"`.
    pub fn device_track(&self, device: usize) -> String {
        format!("{}/gpu{device}", self.label)
    }

    /// Number of GPUs.
    pub fn num_devices(&self) -> usize {
        self.cfg.num_gpus
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Runs `f(ctx, device_index, shard)` for every device concurrently.
    ///
    /// `shards` must hold exactly one element per device. Each closure owns
    /// its shard exclusively for the duration of the phase — exactly the
    /// isolation a real GPU has between kernels on different devices.
    /// Device closures run as tasks on the process-wide persistent worker
    /// pool ([`unintt_exec::Executor::global`]); simulated-clock accounting
    /// is unaffected because each device charges its own [`DeviceState`]
    /// regardless of which OS thread executes it.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != self.num_devices()`.
    pub fn parallel_phase<T, F>(&mut self, shards: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut DeviceCtx<'_>, usize, &mut T) + Sync,
    {
        assert_eq!(
            shards.len(),
            self.num_devices(),
            "need exactly one shard per device"
        );
        let model = &self.model;
        unintt_exec::Executor::global().scope(|scope| {
            for (id, (state, shard)) in self.devices.iter_mut().zip(shards.iter_mut()).enumerate() {
                if !state.alive {
                    continue;
                }
                let f = &f;
                scope.spawn(move || {
                    let mut ctx = DeviceCtx::new(id, model, state);
                    f(&mut ctx, id, shard);
                });
            }
        });
    }

    /// Runs a closure on a single device (stream-0 style host-driven work).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn on_device<T, F>(&mut self, device: usize, shard: &mut T, f: F)
    where
        F: FnOnce(&mut DeviceCtx<'_>, &mut T),
    {
        assert!(device < self.num_devices(), "device index out of range");
        let mut ctx = DeviceCtx::new(device, &self.model, &mut self.devices[device]);
        f(&mut ctx, shard);
    }

    /// Synchronizes all device clocks to the maximum (plus one fabric
    /// latency), like a `cudaDeviceSynchronize` across the machine.
    /// Dead devices stay frozen at their time of death.
    pub fn barrier(&mut self) {
        let max = self.max_clock_ns();
        let latency = if self.num_devices() > 1 {
            self.cfg.interconnect.latency_ns
        } else {
            0.0
        };
        for d in &mut self.devices {
            if d.alive {
                d.clock_ns = max + latency;
            }
        }
    }

    /// The current maximum device clock — the machine's makespan so far.
    pub fn max_clock_ns(&self) -> f64 {
        self.devices.iter().map(|d| d.clock_ns).fold(0.0, f64::max)
    }

    /// Merged statistics: counters summed over devices, per-category times
    /// maxed (critical path across symmetric devices).
    pub fn stats(&self) -> Stats {
        let mut out = Stats::new();
        for d in &self.devices {
            out.merge_concurrent(&d.stats);
        }
        out
    }

    /// Per-device statistics (read-only).
    pub fn device_stats(&self, device: usize) -> &Stats {
        &self.devices[device].stats
    }

    /// Per-device event timeline (read-only).
    pub fn timeline(&self, device: usize) -> &crate::timeline::Timeline {
        &self.devices[device].timeline
    }

    /// Resets clocks, stats, device health, and the fault log, keeping
    /// the configuration and any installed fault plan (so a reset machine
    /// deterministically replays the same faults).
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            *d = DeviceState::default();
        }
        self.collective_seq = 0;
        self.fault_log.clear();
        self.fabric.reset();
        self.collective_events.clear();
    }

    /// The link-level fabric graph with per-link occupancy totals.
    pub fn fabric(&self) -> &FabricGraph {
        &self.fabric
    }

    /// Every collective executed so far, with bytes, links used, and
    /// overlap-hidden nanoseconds.
    pub fn collective_events(&self) -> &[CollectiveEvent] {
        &self.collective_events
    }

    /// Installs a fault plan; subsequent collectives consult it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes the fault plan; subsequent collectives run fault-free.
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Every fault injected so far, in execution order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    /// The next collective sequence number.
    pub fn collective_seq(&self) -> u64 {
        self.collective_seq
    }

    /// Whether device `device` is still alive.
    pub fn is_alive(&self, device: usize) -> bool {
        self.devices[device].alive
    }

    /// Number of devices still alive.
    pub fn alive_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.alive).count()
    }

    /// The lowest-numbered dead device, if any.
    pub fn first_dead_device(&self) -> Option<usize> {
        self.devices.iter().position(|d| !d.alive)
    }

    /// Kills a device: its clock freezes and every later collective on
    /// this machine fails with `FabricError::DeviceLost`.
    pub fn fail_device(&mut self, device: usize) {
        self.devices[device].alive = false;
    }

    /// Makes device `device` a straggler: every subsequent kernel on it
    /// takes `factor`× the modeled time.
    pub fn degrade_device(&mut self, device: usize, factor: f64) {
        self.devices[device].speed_factor = factor;
    }

    /// Charges `ns` of fault-handling time (detection timeouts, recovery
    /// backoff) to every alive device and records it on their timelines.
    pub fn charge_fault_ns(&mut self, name: &'static str, ns: f64) {
        for d in self.devices.iter_mut().filter(|d| d.alive) {
            d.timeline.push(TraceEvent {
                name,
                start_ns: d.clock_ns,
                duration_ns: ns,
                category: Category::Fault,
                queue: 0,
            });
            d.clock_ns += ns;
            *d.stats.time_ns.get_mut(Category::Fault) += ns;
            *d.stats.raw_time_ns.get_mut(Category::Fault) += ns;
        }
    }

    /// Counts one retried collective attempt on every alive device.
    pub fn count_retry(&mut self) {
        for d in self.devices.iter_mut().filter(|d| d.alive) {
            d.stats.retries += 1;
        }
    }

    pub(crate) fn take_fault_decision(&mut self) -> (u64, Option<crate::fault::FaultKind>) {
        let seq = self.collective_seq;
        self.collective_seq += 1;
        let kind = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.decide(seq, self.num_devices()));
        if let Some(kind) = kind {
            self.fault_log.push(FaultEvent { seq, kind });
            for d in self.devices.iter_mut().filter(|d| d.alive) {
                d.stats.faults_injected += 1;
            }
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: kind.name().to_string(),
                kind: unintt_telemetry::InstantKind::Fault,
                track: self.label.clone(),
                t_ns: self.max_clock_ns(),
                attrs: vec![("seq", seq.into())],
            });
            unintt_telemetry::counter_add("sim_faults_injected", 1);
        }
        (seq, kind)
    }

    /// Marks one checksum-failed chunk retransmission for telemetry. The
    /// time and byte charges stay where they are (the collective charges
    /// them); this only emits the instant marker and counter.
    pub(crate) fn record_retransmission(&mut self, src: usize, bytes: u64) {
        unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
            name: String::from("chunk-retransmit"),
            kind: unintt_telemetry::InstantKind::Retransmission,
            track: self.device_track(src),
            t_ns: self.max_clock_ns(),
            attrs: vec![("bytes", bytes.into())],
        });
        unintt_telemetry::counter_add("sim_chunk_retransmissions", 1);
    }

    /// Exports every retained per-device timeline event as a
    /// [`unintt_telemetry::SpanLevel::Device`] span on that device's
    /// track. Call once at the end of a run, while a telemetry session
    /// is active; a no-op when telemetry is disabled.
    pub fn export_telemetry_spans(&self) {
        if !unintt_telemetry::recording() {
            return;
        }
        for d in 0..self.num_devices() {
            let track = self.device_track(d);
            for e in self.devices[d].timeline.events() {
                unintt_telemetry::record_span(|| unintt_telemetry::Span {
                    id: unintt_telemetry::fresh_id(),
                    parent: None,
                    name: e.name.to_string(),
                    level: unintt_telemetry::SpanLevel::Device,
                    category: e.category.as_str(),
                    track: track.clone(),
                    t_start_ns: e.start_ns,
                    t_end_ns: e.start_ns + e.duration_ns,
                    attrs: Vec::new(),
                });
            }
        }
    }

    /// Exports per-link fabric occupancy as
    /// [`unintt_telemetry::InstantKind::LinkUtilization`] markers (one
    /// per link, stamped at the final clock) plus a
    /// `fabric_link_utilization{link="..."}` gauge per link, where
    /// utilization is link busy time over the run's horizon. Call once
    /// at the end of a run, like [`Machine::export_telemetry_spans`];
    /// a no-op when telemetry is disabled.
    pub fn export_fabric_telemetry(&self) {
        if !unintt_telemetry::recording() {
            return;
        }
        let horizon = self.max_clock_ns();
        for link in self.fabric.links() {
            let utilization = if horizon > 0.0 {
                link.busy_ns / horizon
            } else {
                0.0
            };
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: link.name.clone(),
                kind: unintt_telemetry::InstantKind::LinkUtilization,
                track: self.label.clone(),
                t_ns: horizon,
                attrs: vec![
                    ("bandwidth_gbps", link.bandwidth_gbps.into()),
                    ("busy_ns", link.busy_ns.into()),
                    ("bytes", link.bytes_carried.into()),
                    ("utilization", utilization.into()),
                ],
            });
            unintt_telemetry::gauge_set_labeled(
                "fabric_link_utilization",
                &[("link", &link.name)],
                utilization,
            );
        }
    }

    pub(crate) fn devices_mut(&mut self) -> &mut [DeviceState] {
        &mut self.devices
    }

    pub(crate) fn fabric_mut(&mut self) -> &mut FabricGraph {
        &mut self.fabric
    }

    pub(crate) fn record_collective_event(&mut self, event: CollectiveEvent) {
        unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
            name: event.op.to_string(),
            kind: unintt_telemetry::InstantKind::Collective,
            track: self.label.clone(),
            t_ns: self.max_clock_ns(),
            attrs: vec![
                ("bytes", event.bytes.into()),
                ("links_used", event.links_used.into()),
                ("time_ns", event.time_ns.into()),
                ("hidden_ns", event.hidden_ns.into()),
            ],
        });
        unintt_telemetry::counter_add("sim_collectives", 1);
        self.collective_events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::KernelProfile;
    use crate::presets;

    fn machine(gpus: usize) -> Machine {
        Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks())
    }

    #[test]
    fn parallel_phase_transforms_all_shards() {
        let mut m = machine(4);
        let mut shards: Vec<Vec<u64>> = (0..4).map(|d| vec![d as u64; 8]).collect();
        m.parallel_phase(&mut shards, |ctx, id, shard| {
            let mut p = KernelProfile::named("inc");
            p.field_adds = shard.len() as u64;
            ctx.launch(&p);
            for v in shard.iter_mut() {
                *v += 10 + id as u64;
            }
        });
        assert_eq!(shards[0], vec![10; 8]);
        assert_eq!(shards[3], vec![16; 8]);
        assert_eq!(m.stats().kernels_launched, 4);
        assert!(m.max_clock_ns() > 0.0);
    }

    #[test]
    fn barrier_syncs_clocks() {
        let mut m = machine(2);
        let mut shards = vec![0u8, 0u8];
        // Device 1 does more work than device 0.
        m.parallel_phase(&mut shards, |ctx, id, _| {
            let mut p = KernelProfile::named("work");
            p.global_bytes_read = if id == 1 { 1 << 26 } else { 0 };
            ctx.launch(&p);
        });
        let clocks_differ = {
            let s0 = m.devices[0].clock_ns;
            let s1 = m.devices[1].clock_ns;
            (s0 - s1).abs() > 1.0
        };
        assert!(clocks_differ);
        m.barrier();
        assert!((m.devices[0].clock_ns - m.devices[1].clock_ns).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_barrier_free() {
        let mut m = machine(1);
        m.barrier();
        assert_eq!(m.max_clock_ns(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = machine(2);
        let mut shards = vec![(), ()];
        m.parallel_phase(&mut shards, |ctx, _, _| {
            ctx.launch(&KernelProfile::named("k"));
        });
        assert!(m.max_clock_ns() > 0.0);
        m.reset();
        assert_eq!(m.max_clock_ns(), 0.0);
        assert_eq!(m.stats().kernels_launched, 0);
    }

    #[test]
    fn timeline_records_kernels_and_collectives() {
        let mut m = machine(2);
        let mut shards: Vec<Vec<u64>> = vec![vec![0; 8], vec![0; 8]];
        m.parallel_phase(&mut shards, |ctx, _, _| {
            ctx.launch(&KernelProfile::named("my-kernel"));
        });
        m.all_to_all(&mut shards, 8).unwrap();
        let tl = m.timeline(0);
        assert_eq!(tl.events().len(), 2);
        assert_eq!(tl.events()[0].name, "my-kernel");
        assert_eq!(tl.events()[1].name, "collective");
        assert!(tl.events()[1].start_ns >= tl.events()[0].duration_ns);
        assert!(tl.render().contains("collective"));
    }

    #[test]
    #[should_panic(expected = "one shard per device")]
    fn shard_count_mismatch_panics() {
        let mut m = machine(2);
        let mut shards = vec![0u8];
        m.parallel_phase(&mut shards, |_, _, _| {});
    }
}
