//! The analytical cost model.
//!
//! Kernel time follows a roofline: the charged time is the *maximum* of the
//! compute, global-memory, shared-memory and shuffle components (GPUs
//! overlap these pipelines), plus a fixed launch overhead. Collective time
//! follows the standard α–β (latency–bandwidth) model specialized per
//! topology.

use crate::config::{FieldSpec, GpuConfig, InterconnectConfig, MachineConfig, Topology};
use crate::device::KernelProfile;
use crate::trace::Category;

/// Cost model for one machine and one field.
#[derive(Clone, Debug)]
pub struct CostModel {
    gpu: GpuConfig,
    interconnect: InterconnectConfig,
    num_gpus: usize,
    field: FieldSpec,
}

/// Breakdown of a single kernel's cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCost {
    /// Total charged nanoseconds (roofline max + launch).
    pub total_ns: f64,
    /// Which component dominated.
    pub bottleneck: Category,
    /// The roofline components, in ns.
    pub compute_ns: f64,
    /// Global-memory component.
    pub global_mem_ns: f64,
    /// Shared-memory component.
    pub shared_mem_ns: f64,
    /// Shuffle component.
    pub shuffle_ns: f64,
    /// Launch overhead.
    pub launch_ns: f64,
}

impl CostModel {
    /// Builds the model from a machine config and a field spec.
    pub fn new(machine: &MachineConfig, field: FieldSpec) -> Self {
        Self {
            gpu: machine.gpu.clone(),
            interconnect: machine.interconnect.clone(),
            num_gpus: machine.num_gpus,
            field,
        }
    }

    /// The field spec in force.
    pub fn field(&self) -> FieldSpec {
        self.field
    }

    /// The GPU datasheet in force.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Number of GPUs in the machine.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Charges one kernel described by `profile`.
    pub fn kernel_cost(&self, profile: &KernelProfile) -> KernelCost {
        let g = &self.gpu;
        let clock_hz = g.clock_ghz * 1e9;

        // Occupancy: a grid smaller than the SM count leaves SMs idle.
        let occupancy = if profile.blocks == 0 {
            1.0
        } else {
            (profile.blocks as f64 / g.sm_count as f64).min(1.0)
        };
        let effective_sms = g.sm_count as f64 * occupancy;

        // Compute: field ops converted to limb-multiply units.
        let limb_units = profile.field_muls as f64 * self.field.mul_cost
            + profile.field_adds as f64 * self.field.add_cost;
        let compute_ns = if limb_units > 0.0 {
            limb_units / (effective_sms * g.limb_muls_per_cycle_per_sm * clock_hz) * 1e9
        } else {
            0.0
        };

        // Global memory: bandwidth derated by the coalescing efficiency,
        // plus one latency if anything was touched.
        let bytes = profile.global_bytes_read + profile.global_bytes_written;
        let global_mem_ns = if bytes > 0 {
            let eff_bw = g.global_mem_bandwidth_gbps * 1e9 * profile.coalescing_efficiency;
            bytes as f64 / eff_bw * 1e9 + g.global_mem_latency_ns
        } else {
            0.0
        };

        // Shared memory: accesses weighted by the bank-conflict degree.
        let shared_mem_ns = if profile.shared_accesses > 0 {
            let bytes = profile.shared_accesses as f64
                * self.field.elem_bytes as f64
                * profile.bank_conflict_degree;
            let bw = g.shared_mem_bytes_per_cycle_per_sm * effective_sms * clock_hz;
            bytes / bw * 1e9
        } else {
            0.0
        };

        // Warp shuffles.
        let shuffle_ns = if profile.shuffle_ops > 0 {
            profile.shuffle_ops as f64 / (g.shuffles_per_cycle_per_sm * effective_sms * clock_hz)
                * 1e9
        } else {
            0.0
        };

        let launch_ns = g.kernel_launch_overhead_ns;

        let components = [
            (Category::Compute, compute_ns),
            (Category::GlobalMem, global_mem_ns),
            (Category::SharedMem, shared_mem_ns),
            (Category::Shuffle, shuffle_ns),
        ];
        let (bottleneck, max_ns) =
            components
                .iter()
                .copied()
                .fold((Category::Compute, 0.0f64), |acc, (c, v)| {
                    if v > acc.1 {
                        (c, v)
                    } else {
                        acc
                    }
                });

        KernelCost {
            total_ns: max_ns + launch_ns,
            bottleneck,
            compute_ns,
            global_mem_ns,
            shared_mem_ns,
            shuffle_ns,
            launch_ns,
        }
    }

    /// Time for an all-to-all where every device exchanges its share of
    /// `bytes_per_device` (the full resident shard size) with every other
    /// device. Each device keeps `1/D` locally and sends `(D-1)/D`.
    ///
    /// The per-topology schedule lives in [`crate::fabric`]: this is the
    /// latency + bottleneck-link wire time of the link-level graph, and on
    /// the full-crossbar topology it equals the shared
    /// [`crate::fabric::alpha_beta_all_to_all_ns`] charge.
    pub fn all_to_all_ns(&self, bytes_per_device: u64) -> f64 {
        let (lat, wire) =
            crate::fabric::all_to_all_split(&self.interconnect, self.num_gpus, bytes_per_device);
        lat + wire
    }

    /// Time for an all-gather: every device ends with all `D` shards of
    /// `bytes_per_device` each, i.e. receives `(D-1)` shards.
    pub fn all_gather_ns(&self, bytes_per_device: u64) -> f64 {
        let d = self.num_gpus;
        if d <= 1 {
            return 0.0;
        }
        let ic = &self.interconnect;
        let ingress = bytes_per_device as f64 * (d as f64 - 1.0);
        match ic.topology {
            Topology::AllToAll => {
                ic.latency_ns + ingress / (ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency) * 1e9
            }
            Topology::Ring => {
                let step = ic.latency_ns
                    + bytes_per_device as f64 / (ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency)
                        * 1e9;
                step * (d as f64 - 1.0)
            }
            Topology::HostBounce => {
                let per_dev =
                    2.0 * ingress / (ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency) * 1e9;
                let host_total = 2.0 * ingress * d as f64
                    / (ic.host_aggregate_bandwidth_gbps * 1e9 * ic.efficiency)
                    * 1e9;
                ic.latency_ns + per_dev.max(host_total)
            }
            Topology::Hierarchical => {
                // Staged gather: intra-node gather, node-level exchange over
                // the uplinks, intra-node broadcast of the remote shards.
                let g = ic.gpus_per_node.max(1).min(d);
                let nodes = d / g;
                let link_bw = ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency;
                if nodes <= 1 {
                    return ic.latency_ns + ingress / link_bw * 1e9;
                }
                let intra_in = bytes_per_device as f64 * (g as f64 - 1.0) / link_bw * 1e9;
                let node_bytes = bytes_per_device as f64 * g as f64 * (nodes as f64 - 1.0);
                let inter = node_bytes / (ic.inter_node_bandwidth_gbps * 1e9 * ic.efficiency) * 1e9;
                let remote_in = node_bytes / link_bw * 1e9;
                2.0 * ic.latency_ns + ic.inter_node_latency_ns + intra_in + inter + remote_in
            }
        }
    }

    /// Time for a point-to-point transfer of `bytes` (worst-case pair:
    /// cross-node on hierarchical fabrics).
    pub fn p2p_ns(&self, bytes: u64) -> f64 {
        let ic = &self.interconnect;
        let wire = bytes as f64 / (ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency) * 1e9;
        match ic.topology {
            Topology::AllToAll | Topology::Ring => ic.latency_ns + wire,
            Topology::HostBounce => ic.latency_ns + 2.0 * wire,
            Topology::Hierarchical => {
                let g = ic.gpus_per_node.max(1).min(self.num_gpus);
                if g >= self.num_gpus {
                    return ic.latency_ns + wire;
                }
                let inter_wire =
                    bytes as f64 / (ic.inter_node_bandwidth_gbps * 1e9 * ic.efficiency) * 1e9;
                ic.latency_ns + ic.inter_node_latency_ns + wire + inter_wire
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn profile(bytes: u64, muls: u64) -> KernelProfile {
        KernelProfile {
            name: "test",
            blocks: 1024,
            field_muls: muls,
            field_adds: 2 * muls,
            global_bytes_read: bytes,
            global_bytes_written: bytes,
            coalescing_efficiency: 1.0,
            shared_accesses: 0,
            bank_conflict_degree: 1.0,
            shuffle_ops: 0,
        }
    }

    fn model(gpus: usize) -> CostModel {
        CostModel::new(&presets::a100_nvlink(gpus), FieldSpec::goldilocks())
    }

    #[test]
    fn memory_bound_kernel_scales_with_bytes() {
        let m = model(1);
        let c1 = m.kernel_cost(&profile(1 << 24, 0));
        let c2 = m.kernel_cost(&profile(1 << 25, 0));
        assert_eq!(c1.bottleneck, Category::GlobalMem);
        let t1 = c1.total_ns - c1.launch_ns;
        let t2 = c2.total_ns - c2.launch_ns;
        assert!(t2 > 1.8 * t1 && t2 < 2.2 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn poor_coalescing_slows_kernel() {
        let m = model(1);
        let mut bad = profile(1 << 24, 0);
        bad.coalescing_efficiency = 0.25;
        let good_t = m.kernel_cost(&profile(1 << 24, 0)).global_mem_ns;
        let bad_t = m.kernel_cost(&bad).global_mem_ns;
        assert!(bad_t > 3.5 * good_t, "good={good_t} bad={bad_t}");
    }

    #[test]
    fn compute_bound_with_expensive_field() {
        let machine = presets::a100_nvlink(1);
        let cheap = CostModel::new(&machine, FieldSpec::goldilocks());
        let pricey = CostModel::new(&machine, FieldSpec::bn254_fr());
        let p = profile(1 << 20, 1 << 24);
        assert!(pricey.kernel_cost(&p).compute_ns > 10.0 * cheap.kernel_cost(&p).compute_ns);
    }

    #[test]
    fn occupancy_penalizes_tiny_grids() {
        let m = model(1);
        let mut small = profile(0, 1 << 20);
        small.blocks = 1;
        let mut big = profile(0, 1 << 20);
        big.blocks = 1 << 16;
        assert!(
            m.kernel_cost(&small).compute_ns > 50.0 * m.kernel_cost(&big).compute_ns,
            "1-block grid must be heavily penalized"
        );
    }

    #[test]
    fn all_to_all_zero_for_single_gpu() {
        assert_eq!(model(1).all_to_all_ns(1 << 30), 0.0);
    }

    #[test]
    fn ring_slower_than_switch() {
        let bytes = 1u64 << 28;
        let switch = CostModel::new(&presets::a100_nvlink(8), FieldSpec::goldilocks());
        let mut ring_cfg = presets::a100_nvlink(8);
        ring_cfg.interconnect.topology = Topology::Ring;
        let ring = CostModel::new(&ring_cfg, FieldSpec::goldilocks());
        assert!(ring.all_to_all_ns(bytes) > switch.all_to_all_ns(bytes));
    }

    #[test]
    fn host_bounce_much_slower_than_nvlink() {
        let bytes = 1u64 << 28;
        let nvlink = CostModel::new(&presets::a100_nvlink(4), FieldSpec::goldilocks());
        let pcie = CostModel::new(&presets::rtx4090_pcie(4), FieldSpec::goldilocks());
        assert!(pcie.all_to_all_ns(bytes) > 10.0 * nvlink.all_to_all_ns(bytes));
    }

    #[test]
    fn all_to_all_charge_pinned_to_shared_alpha_beta() {
        // Regression pin for the shared cost function: a100_nvlink(8) with
        // 2^27-byte shards charges 9 µs latency plus
        // (2^27 · 7/8) B / (600 GB/s · 0.8) = 244 667.733… ns of wire.
        let m = model(8);
        let ns = m.all_to_all_ns(1 << 27);
        let expected = 9000.0 + 117_440_512.0 / 480.0;
        assert!((ns - expected).abs() < 1e-6, "{ns} vs {expected}");
        let shared = crate::fabric::alpha_beta_all_to_all_ns(8, 1 << 27, 600.0, 9000.0, 0.8);
        assert!(
            (ns - shared).abs() < 1e-9,
            "cost model must route through the shared α–β function"
        );
    }

    #[test]
    fn hierarchical_between_switch_and_pcie() {
        let bytes = 1u64 << 28;
        let switch = model(8);
        let pod = CostModel::new(&presets::a100_superpod(2, 4), FieldSpec::goldilocks());
        let pcie = CostModel::new(&presets::rtx4090_pcie(8), FieldSpec::goldilocks());
        assert!(pod.all_to_all_ns(bytes) > switch.all_to_all_ns(bytes));
        assert!(pcie.all_to_all_ns(bytes) > pod.all_to_all_ns(bytes));
        assert!(pod.all_gather_ns(bytes) > switch.all_gather_ns(bytes));
        assert!(pod.p2p_ns(bytes) > switch.p2p_ns(bytes));
    }

    #[test]
    fn all_gather_grows_with_device_count() {
        let bytes = 1u64 << 26;
        assert!(model(8).all_gather_ns(bytes) > model(2).all_gather_ns(bytes));
    }

    #[test]
    fn p2p_includes_latency() {
        let m = model(2);
        assert!(m.p2p_ns(0) >= 9000.0);
    }
}
