//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] decides, for every collective the machine executes
//! (numbered by a monotone sequence counter), whether that collective is
//! hit by a fault and which kind. Decisions are a pure function of
//! `(plan, sequence number, device count)`, so a given seed always
//! produces the identical fault event sequence, identical simulated-time
//! totals, and identical data — the property the recovery tests and
//! experiment E13 rely on.
//!
//! Fault *timing* is charged to the simulated clock under
//! [`crate::Category::Fault`]: dropped collectives cost a detection
//! timeout, corrupted chunks cost their retransmission, stragglers
//! stretch every subsequent kernel on the slow device, and recovery
//! backoff (charged by the engines through
//! [`crate::Machine::charge_fault_ns`]) also lands there. Recovery
//! overhead is therefore directly readable from the stats as the
//! fault-category share of total time.

use serde::{Deserialize, Serialize};

/// One kind of injected fault, with its parameters resolved.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The collective is dropped atomically: no data moves, every alive
    /// device is charged a detection timeout, and the collective returns
    /// [`FabricError::CollectiveDropped`]. Retrying is always safe.
    Drop,
    /// The chunk travelling from device `src` to device `dst` is
    /// corrupted in flight (one element is overwritten). Silent unless
    /// the checksummed collective variant is used.
    Corrupt {
        /// Source device of the damaged chunk.
        src: usize,
        /// Destination device of the damaged chunk.
        dst: usize,
    },
    /// The collective completes but takes `factor`× its modeled time;
    /// the excess is charged as fault time (transient congestion).
    Delay {
        /// Slowdown multiplier, `> 1.0`.
        factor: f64,
    },
    /// Device `device` becomes persistently slow: every subsequent
    /// kernel on it takes `factor`× the modeled time.
    Straggler {
        /// The slowed device.
        device: usize,
        /// Slowdown multiplier, `> 1.0`.
        factor: f64,
    },
    /// Device `device` dies permanently at this collective. The
    /// collective fails with [`FabricError::DeviceLost`] and every
    /// later collective on this machine fails the same way until the
    /// caller re-plans around the loss.
    DeviceLoss {
        /// The lost device.
        device: usize,
    },
    /// Every device on the machine dies at once (rack power loss, fabric
    /// partition): the whole node drops out of the cluster. The
    /// collective fails with [`FabricError::DeviceLost`] for device 0 and
    /// no re-plan over this machine can succeed — recovery must route
    /// around the node (or, in the serving fleet, around the cluster).
    ClusterLoss,
}

impl FaultKind {
    /// Stable lowercase name, used for telemetry instant events.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "fault-drop",
            FaultKind::Corrupt { .. } => "fault-corrupt",
            FaultKind::Delay { .. } => "fault-delay",
            FaultKind::Straggler { .. } => "fault-straggler",
            FaultKind::DeviceLoss { .. } => "fault-device-loss",
            FaultKind::ClusterLoss => "fault-cluster-loss",
        }
    }
}

/// A fault that was actually injected, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The collective sequence number the fault hit.
    pub seq: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// Per-collective fault probabilities for [`FaultPlan::random`].
///
/// Probabilities are evaluated in the declared order against a single
/// uniform draw, so at most one fault hits any collective and the sum
/// of the rates must stay ≤ 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// P(collective dropped).
    pub drop_p: f64,
    /// P(one chunk corrupted in flight).
    pub corrupt_p: f64,
    /// P(transient delay).
    pub delay_p: f64,
    /// P(a device turns straggler at this collective).
    pub straggler_p: f64,
    /// P(a device dies at this collective).
    pub device_loss_p: f64,
    /// P(the whole machine dies at this collective). Zero in every stock
    /// profile — whole-node loss is catastrophic enough that callers opt
    /// in explicitly (the serving fleet's chaos harness does).
    pub cluster_loss_p: f64,
}

impl FaultRates {
    /// A rate profile where every per-device fault kind fires with
    /// probability `p` (whole-machine loss stays at zero; see
    /// [`FaultRates::cluster_loss_p`]).
    pub fn uniform(p: f64) -> Self {
        Self {
            drop_p: p,
            corrupt_p: p,
            delay_p: p,
            straggler_p: p,
            device_loss_p: p,
            cluster_loss_p: 0.0,
        }
    }

    /// Only transfer faults (drop + corrupt), each with probability `p`.
    /// Devices stay healthy, so single-machine recovery always suffices.
    pub fn transfers_only(p: f64) -> Self {
        Self {
            drop_p: p,
            corrupt_p: p,
            ..Self::default()
        }
    }

    fn total(&self) -> f64 {
        self.drop_p
            + self.corrupt_p
            + self.delay_p
            + self.straggler_p
            + self.device_loss_p
            + self.cluster_loss_p
    }
}

/// A deterministic schedule of faults, keyed by collective sequence
/// number.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// Explicit list of faults (targeted tests, examples). Faults whose
    /// `seq` never comes up simply never fire.
    Scripted(Vec<FaultEvent>),
    /// Independent per-collective draws from `rates`, seeded by `seed`.
    /// The decision for sequence number `s` depends only on
    /// `(seed, s, device count)`.
    Random {
        /// Seed for the per-collective hash.
        seed: u64,
        /// Per-kind probabilities.
        rates: FaultRates,
    },
}

/// SplitMix64: the per-sequence-number hash behind random plans.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform f64 in [0, 1) from 53 hash bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan that fires exactly the given faults.
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        Self::Scripted(events)
    }

    /// A seeded random plan with the given per-collective rates.
    ///
    /// # Panics
    ///
    /// Panics if the rates sum to more than 1.
    pub fn random(seed: u64, rates: FaultRates) -> Self {
        assert!(
            rates.total() <= 1.0,
            "fault rates sum to {} > 1",
            rates.total()
        );
        Self::Random { seed, rates }
    }

    /// The fault (if any) hitting collective `seq` on a machine with
    /// `num_devices` devices. Pure and deterministic.
    pub fn decide(&self, seq: u64, num_devices: usize) -> Option<FaultKind> {
        match self {
            Self::Scripted(events) => events.iter().find(|e| e.seq == seq).map(|e| e.kind),
            Self::Random { seed, rates } => {
                let h = splitmix64(seed ^ seq.wrapping_mul(0xa076_1d64_78bd_642f));
                let u = unit(h);
                // Independent streams for parameter choices.
                let p1 = splitmix64(h ^ 1);
                let p2 = splitmix64(h ^ 2);
                let d = num_devices.max(1);
                let mut lo = 0.0;
                let mut hit = |p: f64| {
                    let in_band = u >= lo && u < lo + p;
                    lo += p;
                    in_band
                };
                if hit(rates.drop_p) {
                    Some(FaultKind::Drop)
                } else if hit(rates.corrupt_p) {
                    let src = (p1 % d as u64) as usize;
                    // A distinct destination when the machine has one.
                    let dst = if d > 1 {
                        (src + 1 + (p2 % (d as u64 - 1)) as usize) % d
                    } else {
                        src
                    };
                    Some(FaultKind::Corrupt { src, dst })
                } else if hit(rates.delay_p) {
                    // 2×–10× transient slowdown.
                    Some(FaultKind::Delay {
                        factor: 2.0 + 8.0 * unit(p1),
                    })
                } else if hit(rates.straggler_p) {
                    // 1.5×–4× persistent slowdown.
                    Some(FaultKind::Straggler {
                        device: (p1 % d as u64) as usize,
                        factor: 1.5 + 2.5 * unit(p2),
                    })
                } else if hit(rates.device_loss_p) {
                    Some(FaultKind::DeviceLoss {
                        device: (p1 % d as u64) as usize,
                    })
                } else if hit(rates.cluster_loss_p) {
                    Some(FaultKind::ClusterLoss)
                } else {
                    None
                }
            }
        }
    }
}

/// Why a collective failed.
///
/// The first three variants are caller bugs (previously `panic!`s); the
/// last two are injected faults that recovery layers are expected to
/// handle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FabricError {
    /// `shards.len()` differed from the device count.
    ShardCountMismatch {
        /// Devices on the machine.
        expected: usize,
        /// Shards supplied.
        got: usize,
    },
    /// Shards had differing lengths.
    UnequalShardLengths,
    /// Shard length is not divisible by the device count.
    IndivisibleShard {
        /// Shard length supplied.
        len: usize,
        /// Device count.
        devices: usize,
    },
    /// The collective was dropped by an injected fault; no data moved,
    /// so retrying the same collective is safe.
    CollectiveDropped {
        /// Sequence number of the dropped collective.
        seq: u64,
    },
    /// A device died (now or earlier); the machine cannot complete
    /// collectives until the caller re-plans around the loss.
    DeviceLost {
        /// The dead device.
        device: usize,
        /// Sequence number at which the failure surfaced.
        seq: u64,
    },
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ShardCountMismatch { expected, got } => {
                write!(
                    f,
                    "need exactly one shard per device ({expected} devices, {got} shards)"
                )
            }
            Self::UnequalShardLengths => f.write_str("all shards must have equal length"),
            Self::IndivisibleShard { len, devices } => {
                write!(f, "shard length {len} not divisible by {devices} devices")
            }
            Self::CollectiveDropped { seq } => {
                write!(f, "collective #{seq} dropped by injected fault")
            }
            Self::DeviceLost { device, seq } => {
                write!(f, "device {device} lost (surfaced at collective #{seq})")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl FabricError {
    /// True for errors a retry of the same collective can fix
    /// (transient faults); false for caller bugs and permanent losses.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::CollectiveDropped { .. })
    }
}

/// What a successful (possibly repaired) collective did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CollectiveReport {
    /// Sequence number of this collective (`0` for degenerate
    /// single-device no-ops, which consume no sequence number).
    pub seq: u64,
    /// The fault injected into this collective, if any survived to
    /// completion (drops and losses return errors instead).
    pub injected: Option<FaultKind>,
    /// Chunks re-requested after checksum mismatch.
    pub retransmitted_chunks: u64,
    /// Bytes re-requested after checksum mismatch.
    pub retransmitted_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_fires_at_exact_seq() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            seq: 3,
            kind: FaultKind::Drop,
        }]);
        assert_eq!(plan.decide(2, 4), None);
        assert_eq!(plan.decide(3, 4), Some(FaultKind::Drop));
        assert_eq!(plan.decide(4, 4), None);
    }

    #[test]
    fn random_is_deterministic() {
        let a = FaultPlan::random(42, FaultRates::uniform(0.05));
        let b = FaultPlan::random(42, FaultRates::uniform(0.05));
        for seq in 0..1000 {
            assert_eq!(a.decide(seq, 8), b.decide(seq, 8));
        }
    }

    #[test]
    fn random_rate_roughly_respected() {
        let plan = FaultPlan::random(7, FaultRates::transfers_only(0.05));
        let hits = (0..10_000).filter(|&s| plan.decide(s, 4).is_some()).count();
        // 2 kinds × 5% = ~10% of collectives; allow wide slack.
        assert!((500..1500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::random(9, FaultRates::default());
        assert!((0..5000).all(|s| plan.decide(s, 4).is_none()));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::random(0, FaultRates::uniform(0.3));
    }

    #[test]
    fn corrupt_picks_valid_distinct_devices() {
        let plan = FaultPlan::random(
            11,
            FaultRates {
                corrupt_p: 1.0,
                ..FaultRates::default()
            },
        );
        for seq in 0..500 {
            match plan.decide(seq, 4) {
                Some(FaultKind::Corrupt { src, dst }) => {
                    assert!(src < 4 && dst < 4 && src != dst);
                }
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_display_matches_legacy_messages() {
        let e = FabricError::IndivisibleShard { len: 6, devices: 4 };
        assert!(e.to_string().contains("not divisible"));
        let e = FabricError::ShardCountMismatch {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("one shard per device"));
    }

    #[test]
    fn transience_classification() {
        assert!(FabricError::CollectiveDropped { seq: 0 }.is_transient());
        assert!(!FabricError::DeviceLost { device: 1, seq: 0 }.is_transient());
        assert!(!FabricError::UnequalShardLengths.is_transient());
    }
}
