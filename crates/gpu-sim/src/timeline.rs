//! Per-device event timelines: what ran, when, and why it took that long.
//!
//! Every kernel launch and collective appends a [`TraceEvent`] to its
//! device's timeline (bounded; see [`MAX_EVENTS`]). The timeline is the
//! simulator's equivalent of an Nsight trace — the tool for answering
//! "where did the 400 µs go" questions that aggregate [`crate::Stats`]
//! cannot.

use serde::{Deserialize, Serialize};

use crate::trace::Category;

/// Maximum events retained per device; beyond this, events are counted
/// but not stored (timelines are a debugging aid, not an unbounded log).
pub const MAX_EVENTS: usize = 4096;

/// One executed kernel or collective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Kernel or collective name.
    pub name: &'static str,
    /// Simulated start time on the device stream, ns.
    pub start_ns: f64,
    /// Simulated duration, ns.
    pub duration_ns: f64,
    /// The bottleneck category the duration was attributed to.
    pub category: Category,
    /// The compute queue (stream) the work ran on. `0` is the default
    /// stream; stage schedulers running co-resident work through
    /// [`crate::StreamSet`] tag their queues so traces show the overlap.
    #[serde(default)]
    pub queue: u32,
}

/// A bounded per-device event log.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Timeline {
    /// Records an event (or counts it as dropped past [`MAX_EVENTS`]).
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit in the buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of events observed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Renders a compact text trace (one line per event).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "{:>12.2} µs  +{:>9.2} µs  {:<24} [{}]{}",
                e.start_ns / 1e3,
                e.duration_ns / 1e3,
                e.name,
                e.category,
                if e.queue > 0 {
                    format!(" q{}", e.queue)
                } else {
                    String::new()
                }
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, start: f64) -> TraceEvent {
        TraceEvent {
            name,
            start_ns: start,
            duration_ns: 10.0,
            category: Category::Compute,
            queue: 0,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = Timeline::default();
        t.push(event("a", 0.0));
        t.push(event("b", 10.0));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].name, "b");
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn bounds_and_counts_drops() {
        let mut t = Timeline::default();
        for i in 0..(MAX_EVENTS + 5) {
            t.push(event("k", i as f64));
        }
        assert_eq!(t.events().len(), MAX_EVENTS);
        assert_eq!(t.dropped(), 5);
        assert_eq!(t.total(), (MAX_EVENTS + 5) as u64);
        assert!(t.render().contains("further events dropped"));
    }

    #[test]
    fn render_contains_names() {
        let mut t = Timeline::default();
        t.push(event("my-kernel", 1000.0));
        let s = t.render();
        assert!(s.contains("my-kernel"));
        assert!(s.contains("[compute]"));
    }
}
