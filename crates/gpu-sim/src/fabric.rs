//! Link-level fabric graph: the topology-aware communication model.
//!
//! Every machine owns a [`FabricGraph`] built from its
//! [`InterconnectConfig`]. The graph holds one directed [`Link`] per
//! physical resource (GPU injection/ejection port, ring hop, PCIe lane
//! pair, host-memory channel, node uplink) and tracks per-link occupancy:
//! how many bytes each link carried and for how long it was busy on the
//! simulated clock. Collectives are charged by *scheduling* their
//! messages over these links — the charged time is the busy period of the
//! bottleneck link plus the topology's latency terms — so contention
//! (host-memory caps, inter-node uplinks shared by a whole node) falls
//! out of the link loads instead of a hand-written closed form.
//!
//! For the uniform topologies the bottleneck-link schedule reduces
//! exactly to the classical α–β charges the simulator always used (see
//! [`alpha_beta_all_to_all_ns`]), which keeps the cost model auditable;
//! the [`Topology::Hierarchical`] preset is where the graph earns its
//! keep: intra-node NVLink stages and the shared inter-node uplink are
//! separate links with separate loads, producing the staged
//! gather → exchange → scatter all-to-all of multi-node machines.

use crate::config::{InterconnectConfig, Topology};

/// Per-message fixed cost of crossing the inter-node fabric (IB verbs
/// post + completion), charged per stage of the hierarchical exchange.
const INTER_NODE_SETUP_NS: f64 = 2000.0;

/// The standard α–β all-to-all charge shared by the GPU fabric and the
/// cluster network model: each of `participants` members holds
/// `bytes_per_member` and keeps `1/p` locally, so it injects
/// `bytes·(p−1)/p` at `bandwidth_gbps · efficiency`, after one
/// `latency_ns` synchronization.
///
/// Both `CostModel::all_to_all_ns` (full-crossbar arm) and
/// `NetworkConfig::all_to_all_ns` in `unintt-core` route through this
/// function, so the two layers cannot drift apart in units.
pub fn alpha_beta_all_to_all_ns(
    participants: usize,
    bytes_per_member: u64,
    bandwidth_gbps: f64,
    latency_ns: f64,
    efficiency: f64,
) -> f64 {
    if participants <= 1 {
        return 0.0;
    }
    let p = participants as f64;
    let egress = bytes_per_member as f64 * (p - 1.0) / p;
    latency_ns + egress / (bandwidth_gbps * 1e9 * efficiency) * 1e9
}

/// Splits the all-to-all charge into `(latency_ns, wire_ns)` so that the
/// blocking total is exactly `latency + wire` and chunked schedules can
/// pipeline the wire part while paying the latency part once.
pub(crate) fn all_to_all_split(
    ic: &InterconnectConfig,
    num_gpus: usize,
    bytes_per_device: u64,
) -> (f64, f64) {
    let d = num_gpus;
    if d <= 1 {
        return (0.0, 0.0);
    }
    let df = d as f64;
    let link_bw = ic.per_gpu_bandwidth_gbps * 1e9 * ic.efficiency;
    let egress = bytes_per_device as f64 * (df - 1.0) / df;
    match ic.topology {
        Topology::AllToAll => {
            // Full-bisection switch: every injection port drains its own
            // egress concurrently; the port is the bottleneck link, and the
            // charge is exactly the shared α–β form.
            let total = alpha_beta_all_to_all_ns(
                d,
                bytes_per_device,
                ic.per_gpu_bandwidth_gbps,
                ic.latency_ns,
                ic.efficiency,
            );
            (ic.latency_ns, total - ic.latency_ns)
        }
        Topology::Ring => {
            // D-1 pipelined steps; each step occupies every ring hop with
            // one chunk and pays one hop latency.
            let chunk = bytes_per_device as f64 / df;
            (
                (df - 1.0) * ic.latency_ns,
                (df - 1.0) * chunk / link_bw * 1e9,
            )
        }
        Topology::HostBounce => {
            // Device→host→device: 2× traffic on every PCIe link, and the
            // host-memory channel carries all devices' traffic at once.
            let host_bw = ic.host_aggregate_bandwidth_gbps * 1e9 * ic.efficiency;
            let per_dev = 2.0 * egress / link_bw * 1e9;
            let host_total = 2.0 * egress * df / host_bw * 1e9;
            (ic.latency_ns, per_dev.max(host_total))
        }
        Topology::Hierarchical => {
            let g = ic.gpus_per_node.max(1).min(d);
            let nodes = d / g;
            if nodes <= 1 {
                // Degenerate single node: identical to the crossbar.
                return (ic.latency_ns, egress / link_bw * 1e9);
            }
            let gf = g as f64;
            let nf = nodes as f64;
            let inter_bw = ic.inter_node_bandwidth_gbps * 1e9 * ic.efficiency;
            // Stage 1 (gather): each GPU reshuffles within its node so
            // every GPU holds the slice bound for one remote-node group.
            let intra_wire = bytes_per_device as f64 * (gf - 1.0) / gf / link_bw * 1e9;
            // Stage 2 (exchange): each node pushes its off-node bytes
            // through the shared uplink — the contention point.
            let node_bytes = gf * bytes_per_device as f64 * (nf - 1.0) / nf;
            let inter_wire = node_bytes / inter_bw * 1e9;
            let inter_lat = ic.inter_node_latency_ns + (nf - 1.0) * INTER_NODE_SETUP_NS;
            // Stage 3 (scatter): the mirror intra-node reshuffle.
            let lat = 2.0 * ic.latency_ns + inter_lat;
            let wire = 2.0 * intra_wire + inter_wire;
            (lat, wire)
        }
    }
}

/// One directed link of the fabric graph, with occupancy totals.
#[derive(Clone, Debug)]
pub struct Link {
    /// Human-readable endpoint description, e.g. `"gpu3→switch"`.
    pub name: String,
    /// Link bandwidth in GB/s (before the fabric efficiency derate).
    pub bandwidth_gbps: f64,
    /// Total bytes this link carried.
    pub bytes_carried: u64,
    /// Total simulated time this link was occupied, in ns.
    pub busy_ns: f64,
}

impl Link {
    fn new(name: String, bandwidth_gbps: f64) -> Self {
        Self {
            name,
            bandwidth_gbps,
            bytes_carried: 0,
            busy_ns: 0.0,
        }
    }
}

/// The link graph of one machine's interconnect.
#[derive(Clone, Debug)]
pub struct FabricGraph {
    ic: InterconnectConfig,
    num_gpus: usize,
    links: Vec<Link>,
}

impl FabricGraph {
    /// Builds the graph for `num_gpus` devices on `ic`.
    pub fn new(ic: &InterconnectConfig, num_gpus: usize) -> Self {
        let mut links = Vec::new();
        let d = num_gpus;
        if d > 1 {
            match ic.topology {
                Topology::AllToAll => {
                    for i in 0..d {
                        links.push(Link::new(
                            format!("gpu{i}→switch"),
                            ic.per_gpu_bandwidth_gbps,
                        ));
                        links.push(Link::new(
                            format!("switch→gpu{i}"),
                            ic.per_gpu_bandwidth_gbps,
                        ));
                    }
                }
                Topology::Ring => {
                    for i in 0..d {
                        let j = (i + 1) % d;
                        links.push(Link::new(
                            format!("gpu{i}→gpu{j}"),
                            ic.per_gpu_bandwidth_gbps,
                        ));
                    }
                }
                Topology::HostBounce => {
                    for i in 0..d {
                        links.push(Link::new(format!("gpu{i}↔host"), ic.per_gpu_bandwidth_gbps));
                    }
                    links.push(Link::new(
                        "host-memory".into(),
                        ic.host_aggregate_bandwidth_gbps,
                    ));
                }
                Topology::Hierarchical => {
                    for i in 0..d {
                        links.push(Link::new(
                            format!("gpu{i}→switch"),
                            ic.per_gpu_bandwidth_gbps,
                        ));
                        links.push(Link::new(
                            format!("switch→gpu{i}"),
                            ic.per_gpu_bandwidth_gbps,
                        ));
                    }
                    let g = ic.gpus_per_node.max(1).min(d);
                    for n in 0..d / g {
                        links.push(Link::new(
                            format!("node{n}→fabric"),
                            ic.inter_node_bandwidth_gbps,
                        ));
                        links.push(Link::new(
                            format!("fabric→node{n}"),
                            ic.inter_node_bandwidth_gbps,
                        ));
                    }
                }
            }
        }
        Self {
            ic: ic.clone(),
            num_gpus,
            links,
        }
    }

    /// The links of the graph, with their occupancy totals.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links an all-to-all occupies on this topology.
    pub fn links_used_all_to_all(&self) -> u32 {
        self.links.len() as u32
    }

    /// Zeroes the per-link occupancy totals (machine reset).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.bytes_carried = 0;
            l.busy_ns = 0.0;
        }
    }

    /// Schedules one all-to-all of `bytes_per_device` over the graph,
    /// recording per-link loads, and returns the `(latency_ns, wire_ns)`
    /// split of the charge (total = latency + wire).
    pub(crate) fn record_all_to_all(&mut self, bytes_per_device: u64) -> (f64, f64) {
        let d = self.num_gpus;
        let (lat, wire) = all_to_all_split(&self.ic, d, bytes_per_device);
        if d <= 1 {
            return (lat, wire);
        }
        let df = d as f64;
        let egress = (bytes_per_device as f64 * (df - 1.0) / df) as u64;
        match self.ic.topology {
            Topology::AllToAll => {
                // Each injection and ejection port carries one egress.
                for l in &mut self.links {
                    l.bytes_carried += egress;
                    l.busy_ns += wire;
                }
            }
            Topology::Ring => {
                // Every hop forwards one chunk per pipelined step.
                let chunk = bytes_per_device / d as u64;
                for l in &mut self.links {
                    l.bytes_carried += (d as u64 - 1) * chunk;
                    l.busy_ns += wire;
                }
            }
            Topology::HostBounce => {
                // Per-device PCIe links carry the up+down traffic; the
                // host-memory channel carries everyone's.
                let (pcie, host) = self.links.split_at_mut(d);
                for l in pcie {
                    l.bytes_carried += 2 * egress;
                    l.busy_ns += wire;
                }
                host[0].bytes_carried += 2 * egress * d as u64;
                host[0].busy_ns += wire;
            }
            Topology::Hierarchical => {
                let g = self.ic.gpus_per_node.max(1).min(d);
                let nodes = d / g;
                let intra = (bytes_per_device as f64 * (g as f64 - 1.0) / g as f64) as u64;
                let node_bytes = if nodes > 1 {
                    (g as f64 * bytes_per_device as f64 * (nodes as f64 - 1.0) / nodes as f64)
                        as u64
                } else {
                    0
                };
                let (gpu_links, node_links) = self.links.split_at_mut(2 * d);
                for l in gpu_links {
                    // Two intra-node stages (gather + scatter).
                    l.bytes_carried += 2 * intra;
                    l.busy_ns += wire;
                }
                for l in node_links {
                    l.bytes_carried += node_bytes;
                    l.busy_ns += wire;
                }
            }
        }
        (lat, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn alpha_beta_matches_closed_form() {
        // a100_nvlink(8): 600 GB/s, 9 µs, 0.8 efficiency; 128 MiB shards.
        let bytes = 1u64 << 27;
        let ns = alpha_beta_all_to_all_ns(8, bytes, 600.0, 9000.0, 0.8);
        let egress = bytes as f64 * 7.0 / 8.0;
        let expected = 9000.0 + egress / 480.0; // 480 bytes/ns effective
        assert!((ns - expected).abs() < 1e-9, "{ns} vs {expected}");
    }

    #[test]
    fn alpha_beta_single_participant_free() {
        assert_eq!(
            alpha_beta_all_to_all_ns(1, 1 << 30, 600.0, 9000.0, 0.8),
            0.0
        );
    }

    #[test]
    fn split_sums_to_legacy_charges() {
        for cfg in [
            presets::a100_nvlink(8),
            presets::v100_nvlink_ring(8),
            presets::rtx4090_pcie(8),
        ] {
            let ic = &cfg.interconnect;
            let (lat, wire) = all_to_all_split(ic, 8, 1 << 24);
            assert!(lat > 0.0 && wire > 0.0);
            let model = crate::cost::CostModel::new(&cfg, crate::config::FieldSpec::goldilocks());
            assert!(
                (lat + wire - model.all_to_all_ns(1 << 24)).abs() < 1e-9,
                "split must reproduce the model charge for {:?}",
                ic.topology
            );
        }
    }

    #[test]
    fn graph_records_link_occupancy() {
        let cfg = presets::a100_nvlink(4);
        let mut g = FabricGraph::new(&cfg.interconnect, 4);
        assert_eq!(g.links().len(), 8); // 4 inject + 4 eject ports
        let (lat, wire) = g.record_all_to_all(1 << 20);
        assert!(lat > 0.0 && wire > 0.0);
        for l in g.links() {
            assert_eq!(l.bytes_carried, (1 << 20) * 3 / 4);
            assert!((l.busy_ns - wire).abs() < 1e-9);
        }
        g.reset();
        assert!(g.links().iter().all(|l| l.bytes_carried == 0));
    }

    #[test]
    fn host_bounce_host_channel_is_hot() {
        let cfg = presets::rtx4090_pcie(4);
        let mut g = FabricGraph::new(&cfg.interconnect, 4);
        g.record_all_to_all(1 << 20);
        let host = g.links().last().expect("host link");
        assert_eq!(host.name, "host-memory");
        let pcie = &g.links()[0];
        assert!(
            host.bytes_carried == 4 * pcie.bytes_carried,
            "host memory carries every device's bounce traffic"
        );
    }

    #[test]
    fn hierarchical_staged_exchange_slower_than_crossbar_but_beats_pcie() {
        let bytes = 1u64 << 24;
        let xbar = all_to_all_split(&presets::a100_nvlink(8).interconnect, 8, bytes);
        let hier = all_to_all_split(&presets::a100_superpod(2, 4).interconnect, 8, bytes);
        let pcie = all_to_all_split(&presets::rtx4090_pcie(8).interconnect, 8, bytes);
        let t = |(l, w): (f64, f64)| l + w;
        assert!(t(hier) > t(xbar), "IB uplinks cannot beat NVSwitch");
        assert!(t(pcie) > t(hier), "staged NVLink+IB beats host bouncing");
    }

    #[test]
    fn hierarchical_single_node_degenerates_to_crossbar() {
        let cfg = presets::a100_superpod(1, 8);
        let (lat, wire) = all_to_all_split(&cfg.interconnect, 8, 1 << 24);
        let flat = all_to_all_split(&presets::a100_nvlink(8).interconnect, 8, 1 << 24);
        assert!((lat - flat.0).abs() < 1e-9 && (wire - flat.1).abs() < 1e-9);
    }
}
