//! Per-device simulation state and the kernel interface.
//!
//! A kernel in this simulator is (a) ordinary Rust code that transforms the
//! device's data shard, paired with (b) a [`KernelProfile`] describing its
//! hardware footprint. The profile — not the Rust code's wall-clock — is
//! what advances the simulated clock, so algorithmic choices (layouts,
//! fusion, twiddle strategies) show up in simulated time exactly as their
//! byte/op counts dictate.

use crate::cost::CostModel;
use crate::timeline::{Timeline, TraceEvent};
use crate::trace::Stats;

/// Hardware footprint of one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (for traces).
    pub name: &'static str,
    /// Grid size in thread blocks (occupancy input).
    pub blocks: u64,
    /// Field multiplications performed.
    pub field_muls: u64,
    /// Field additions/subtractions performed.
    pub field_adds: u64,
    /// Bytes read from global memory.
    pub global_bytes_read: u64,
    /// Bytes written to global memory.
    pub global_bytes_written: u64,
    /// Fraction of peak DRAM bandwidth achieved (1.0 = perfectly coalesced,
    /// ~0.25 = strided access at warp granularity).
    pub coalescing_efficiency: f64,
    /// Shared-memory accesses (element granularity).
    pub shared_accesses: u64,
    /// Average bank-conflict serialization degree (1.0 = conflict-free).
    pub bank_conflict_degree: f64,
    /// Warp-shuffle operations.
    pub shuffle_ops: u64,
}

impl KernelProfile {
    /// A named, empty profile; fill in the relevant fields.
    pub fn named(name: &'static str) -> Self {
        Self {
            name,
            blocks: 1,
            field_muls: 0,
            field_adds: 0,
            global_bytes_read: 0,
            global_bytes_written: 0,
            coalescing_efficiency: 1.0,
            shared_accesses: 0,
            bank_conflict_degree: 1.0,
            shuffle_ops: 0,
        }
    }
}

/// Mutable per-device simulation state: a clock and accumulated stats.
#[derive(Clone, Debug)]
pub struct DeviceState {
    /// Simulated time on this device's stream, ns.
    pub clock_ns: f64,
    /// Accumulated accounting.
    pub stats: Stats,
    /// Bounded event log.
    pub timeline: Timeline,
    /// False once the device has been killed by an injected fault; a dead
    /// device's clock freezes and it is excluded from phases, barriers,
    /// and collectives.
    pub alive: bool,
    /// Straggler multiplier applied to every kernel's simulated time
    /// (`1.0` = healthy).
    pub speed_factor: f64,
}

impl Default for DeviceState {
    fn default() -> Self {
        Self {
            clock_ns: 0.0,
            stats: Stats::default(),
            timeline: Timeline::default(),
            alive: true,
            speed_factor: 1.0,
        }
    }
}

/// Handle passed to per-device closures; charges costs to one device.
pub struct DeviceCtx<'a> {
    id: usize,
    model: &'a CostModel,
    state: &'a mut DeviceState,
}

impl<'a> DeviceCtx<'a> {
    pub(crate) fn new(id: usize, model: &'a CostModel, state: &'a mut DeviceState) -> Self {
        Self { id, model, state }
    }

    /// This device's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The machine's cost model (read-only).
    pub fn model(&self) -> &CostModel {
        self.model
    }

    /// Charges one kernel launch and returns its cost breakdown.
    ///
    /// Call this alongside the Rust code that performs the kernel's data
    /// transformation.
    pub fn launch(&mut self, profile: &KernelProfile) -> crate::cost::KernelCost {
        let mut cost = self.model.kernel_cost(profile);
        let s = self.state.speed_factor;
        if s != 1.0 {
            cost.total_ns *= s;
            cost.compute_ns *= s;
            cost.global_mem_ns *= s;
            cost.shared_mem_ns *= s;
            cost.shuffle_ns *= s;
            cost.launch_ns *= s;
        }
        let st = &mut self.state.stats;
        st.kernels_launched += 1;
        st.field_muls += profile.field_muls;
        st.field_adds += profile.field_adds;
        st.global_bytes_read += profile.global_bytes_read;
        st.global_bytes_written += profile.global_bytes_written;
        st.shuffle_ops += profile.shuffle_ops;
        st.shared_accesses += profile.shared_accesses;
        *st.time_ns.get_mut(cost.bottleneck) += cost.total_ns - cost.launch_ns;
        *st.time_ns.get_mut(crate::trace::Category::Launch) += cost.launch_ns;
        st.raw_time_ns.compute += cost.compute_ns;
        st.raw_time_ns.global_mem += cost.global_mem_ns;
        st.raw_time_ns.shared_mem += cost.shared_mem_ns;
        st.raw_time_ns.shuffle += cost.shuffle_ns;
        st.raw_time_ns.launch += cost.launch_ns;
        self.state.timeline.push(TraceEvent {
            name: profile.name,
            start_ns: self.state.clock_ns,
            duration_ns: cost.total_ns,
            category: cost.bottleneck,
            queue: 0,
        });
        self.state.clock_ns += cost.total_ns;
        cost
    }

    /// Current simulated clock of this device.
    pub fn clock_ns(&self) -> f64 {
        self.state.clock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FieldSpec;
    use crate::presets;
    use crate::trace::Category;

    #[test]
    fn launch_advances_clock_and_counters() {
        let model = CostModel::new(&presets::a100_nvlink(1), FieldSpec::goldilocks());
        let mut state = DeviceState::default();
        let mut ctx = DeviceCtx::new(0, &model, &mut state);
        let mut p = KernelProfile::named("k");
        p.global_bytes_read = 1 << 20;
        p.field_muls = 1000;
        let cost = ctx.launch(&p);
        assert!(cost.total_ns > 0.0);
        assert_eq!(state.stats.kernels_launched, 1);
        assert_eq!(state.stats.field_muls, 1000);
        assert_eq!(state.stats.global_bytes_read, 1 << 20);
        assert!(state.clock_ns >= cost.total_ns);
    }

    #[test]
    fn launch_overhead_always_charged() {
        let model = CostModel::new(&presets::a100_nvlink(1), FieldSpec::goldilocks());
        let mut state = DeviceState::default();
        let mut ctx = DeviceCtx::new(0, &model, &mut state);
        ctx.launch(&KernelProfile::named("empty"));
        assert!(state.stats.time_ns.get(Category::Launch) > 0.0);
    }

    #[test]
    fn consecutive_launches_accumulate() {
        let model = CostModel::new(&presets::a100_nvlink(1), FieldSpec::goldilocks());
        let mut state = DeviceState::default();
        {
            let mut ctx = DeviceCtx::new(0, &model, &mut state);
            let mut p = KernelProfile::named("k");
            p.global_bytes_read = 1 << 24;
            ctx.launch(&p);
            let after_one = ctx.clock_ns();
            ctx.launch(&p);
            assert!((ctx.clock_ns() - 2.0 * after_one).abs() < 1e-6);
        }
        assert_eq!(state.stats.kernels_launched, 2);
    }
}
