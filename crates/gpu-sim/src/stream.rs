//! Typed compute queues (streams) with a resource-interference model.
//!
//! Real GPUs expose multiple hardware queues: a compute-bound kernel
//! (MSM window accumulation) and a memory/shuffle-bound kernel (NTT
//! butterflies + exchanges) issued on different streams genuinely
//! overlap, each running somewhat slower than it would alone because
//! they contend for the SM issue slots and the memory system. Two
//! kernels of the *same* class gain nothing — they fight over the same
//! bottleneck resource — so schedulers serialize them.
//!
//! This module is the simulator's version of that: a [`StreamSet`] is a
//! small set of typed queues attached to one device lease, and an
//! [`InterferenceModel`] prices co-residency. Work is modelled as a
//! fluid: each in-flight stage carries its remaining *solo* nanoseconds
//! and advances at rate `1 / slowdown` where the slowdown is the product
//! of pairwise interference factors against every co-resident stage.
//! Rates only change when a stage is admitted or completes, so the
//! piecewise-constant-rate integration in [`StreamSet::advance_to`] is
//! exact, not an approximation — and the whole model stays perfectly
//! deterministic: the same admissions produce the same completions to
//! the last bit.
//!
//! Scheduling invariants (enforced here, relied on by `unintt-pipeline`
//! and `unintt-serve`):
//!
//! * at most one in-flight stage per [`ResourceClass`] per stream set —
//!   same-class stages serialize, exactly as on the real hardware;
//! * functional execution is *not* this module's business: callers run
//!   the stage's real data movement up front and hand only the charged
//!   duration here, which is what keeps overlapped schedules
//!   bit-identical to serialized ones.

/// The bottleneck resource a stage saturates while it runs. Mirrors the
/// ZKProphet observation that ZKP kernels leave either compute or
/// bandwidth idle depending on kernel class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceClass {
    /// ALU/issue-slot bound (MSM window accumulation, field towers).
    Compute,
    /// Memory/shuffle bound (NTT butterflies, transposes, exchanges).
    Memory,
    /// Somewhere in between (hashing, pointwise maps, FRI folds).
    Mixed,
}

impl ResourceClass {
    /// Stable lowercase name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::Compute => "compute",
            ResourceClass::Memory => "memory",
            ResourceClass::Mixed => "mixed",
        }
    }
}

/// Pairwise slowdown factors for co-resident stages of *different*
/// classes (same-class pairs never co-reside — see [`StreamSet::admit`]).
///
/// A factor of `f ≥ 1` means each member of the pair advances at rate
/// `1/f` while the other is resident: a compute-bound MSM and a
/// memory-bound NTT at the default `1.12` finish in `1.12×` their solo
/// time each — far better than the `2×` of serialization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterferenceModel {
    /// Slowdown each side pays when a [`ResourceClass::Compute`] stage
    /// overlaps a [`ResourceClass::Memory`] stage. The most complementary
    /// pairing: they saturate different resources.
    pub compute_memory: f64,
    /// Slowdown each side pays when a [`ResourceClass::Mixed`] stage
    /// overlaps anything else. Mixed kernels touch both resources, so
    /// they interfere more.
    pub mixed_other: f64,
}

impl InterferenceModel {
    /// The calibrated default: MSM↔NTT overlap at 12% mutual slowdown,
    /// mixed pairings at 35%.
    pub const fn default_model() -> Self {
        Self {
            compute_memory: 1.12,
            mixed_other: 1.35,
        }
    }

    /// A pessimistic variant for sensitivity sweeps: heavy contention.
    pub const fn conservative() -> Self {
        Self {
            compute_memory: 1.45,
            mixed_other: 1.70,
        }
    }

    /// The slowdown factor each member of an `(a, b)` pair pays while
    /// co-resident, or `None` when `a == b` (same-class stages must
    /// serialize; schedulers never co-admit them).
    pub fn slowdown(&self, a: ResourceClass, b: ResourceClass) -> Option<f64> {
        if a == b {
            return None;
        }
        Some(match (a, b) {
            (ResourceClass::Compute, ResourceClass::Memory)
            | (ResourceClass::Memory, ResourceClass::Compute) => self.compute_memory,
            _ => self.mixed_other,
        })
    }

    /// Panics unless every factor is a finite slowdown (`≥ 1`).
    pub fn validate(&self) {
        for (name, f) in [
            ("compute_memory", self.compute_memory),
            ("mixed_other", self.mixed_other),
        ] {
            assert!(
                f.is_finite() && f >= 1.0,
                "interference factor {name} must be a finite slowdown >= 1, got {f}"
            );
        }
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::default_model()
    }
}

/// One stage currently resident on a stream.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// Caller-chosen identity (dispatch sequence number, say) handed
    /// back on completion.
    pub key: u64,
    /// The queue (stream index) the stage occupies.
    pub queue: usize,
    /// Its resource class.
    pub class: ResourceClass,
    /// When it was admitted, ns.
    pub start_ns: f64,
    /// Remaining *solo* work, ns (advances at `1/slowdown` per wall ns).
    remaining_ns: f64,
}

/// Completion detection tolerance, ns. Remaining work decays through
/// float subtraction whose error is bounded well below a picosecond for
/// any clock this simulator reaches; real stage durations are
/// microseconds, so nothing completes spuriously.
const DONE_EPS_NS: f64 = 1e-3;

/// A small set of typed compute queues attached to one device lease,
/// advancing in-flight stages as fluids under an [`InterferenceModel`]
/// (see the module docs for the model and its invariants).
#[derive(Clone, Debug)]
pub struct StreamSet {
    queues: usize,
    model: InterferenceModel,
    now_ns: f64,
    inflight: Vec<InFlight>,
    /// Admissions that joined at least one already-resident stage.
    pub costream_joins: u64,
    /// Wall time with ≥ 1 resident stage (the lease-busy union).
    pub busy_union_ns: f64,
    /// Stream-occupied time (`Σ residents × dt`): exceeds
    /// `busy_union_ns` exactly when overlap happened.
    pub stream_busy_ns: f64,
}

impl StreamSet {
    /// A set of `queues` streams under `model`.
    ///
    /// # Panics
    ///
    /// Panics when `queues == 0` or the model is invalid.
    pub fn new(queues: usize, model: InterferenceModel) -> Self {
        assert!(queues >= 1, "a stream set needs at least one queue");
        model.validate();
        Self {
            queues,
            model,
            now_ns: 0.0,
            inflight: Vec::with_capacity(queues),
            costream_joins: 0,
            busy_union_ns: 0.0,
            stream_busy_ns: 0.0,
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The set's local clock (the last `advance_to` instant).
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Stages currently resident.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// True when no stage is resident.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Fraction of queues occupied right now.
    pub fn occupancy(&self) -> f64 {
        self.inflight.len() as f64 / self.queues as f64
    }

    /// Whether a stage of `class` may be admitted right now: a queue is
    /// free and no resident stage shares its class (same-class stages
    /// serialize).
    pub fn can_accept(&self, class: ResourceClass) -> bool {
        self.inflight.len() < self.queues && !self.inflight.iter().any(|s| s.class == class)
    }

    /// The slowdown a stage of `class` would suffer if admitted now: the
    /// product of pairwise factors against every resident stage (`1.0`
    /// on an idle set). Schedulers minimize this to pick complementary
    /// co-residents.
    pub fn join_penalty(&self, class: ResourceClass) -> f64 {
        self.inflight.iter().fold(1.0, |acc, s| {
            acc * self
                .model
                .slowdown(class, s.class)
                .expect("co-resident classes always differ")
        })
    }

    /// The current slowdown of resident stage `i`.
    fn slowdown_of(&self, i: usize) -> f64 {
        let class = self.inflight[i].class;
        self.inflight
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .fold(1.0, |acc, (_, s)| {
                acc * self
                    .model
                    .slowdown(class, s.class)
                    .expect("co-resident classes always differ")
            })
    }

    /// Admits a stage of `class` carrying `work_ns` solo nanoseconds,
    /// returning the queue index it occupies (lowest free index).
    ///
    /// # Panics
    ///
    /// Panics when [`can_accept`](Self::can_accept) is false.
    pub fn admit(&mut self, key: u64, class: ResourceClass, work_ns: f64) -> usize {
        assert!(
            self.can_accept(class),
            "admit requires a free queue and no resident {} stage",
            class.name()
        );
        let queue = (0..self.queues)
            .find(|&q| !self.inflight.iter().any(|s| s.queue == q))
            .expect("can_accept implies a free queue");
        if !self.inflight.is_empty() {
            self.costream_joins += 1;
        }
        self.inflight.push(InFlight {
            key,
            queue,
            class,
            start_ns: self.now_ns,
            // Zero-cost stages would complete "now" and stall an event
            // loop waiting for a *future* completion; clamp to one
            // picosecond (far below any real stage charge).
            remaining_ns: work_ns.max(DONE_EPS_NS),
        });
        queue
    }

    /// The earliest instant a resident stage completes under the current
    /// residency (exact until the next admission), or `None` when idle.
    pub fn earliest_completion_ns(&self) -> Option<f64> {
        (0..self.inflight.len())
            .map(|i| self.now_ns + self.inflight[i].remaining_ns * self.slowdown_of(i))
            .min_by(f64::total_cmp)
    }

    /// Advances the local clock to `t`, draining remaining work at the
    /// current rates. Callers must not step past the earliest completion
    /// (rates change there); stepping exactly onto it is the normal way
    /// to retire a stage via [`take_finished`](Self::take_finished).
    ///
    /// # Panics
    ///
    /// Debug-panics when `t` would rewind the clock or overshoot a
    /// completion by more than the detection tolerance.
    pub fn advance_to(&mut self, t: f64) {
        debug_assert!(t >= self.now_ns - DONE_EPS_NS, "stream clock cannot rewind");
        let dt = (t - self.now_ns).max(0.0);
        if dt > 0.0 && !self.inflight.is_empty() {
            self.busy_union_ns += dt;
            self.stream_busy_ns += dt * self.inflight.len() as f64;
            for i in 0..self.inflight.len() {
                let rate = 1.0 / self.slowdown_of(i);
                self.inflight[i].remaining_ns -= dt * rate;
                debug_assert!(
                    self.inflight[i].remaining_ns >= -DONE_EPS_NS,
                    "advance_to overshot a completion"
                );
            }
        }
        self.now_ns = self.now_ns.max(t);
    }

    /// Removes and returns every stage whose work has drained (ordered
    /// by queue index, deterministically). Call after `advance_to`.
    pub fn take_finished(&mut self) -> Vec<InFlight> {
        let mut done: Vec<InFlight> = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].remaining_ns <= DONE_EPS_NS {
                done.push(self.inflight.remove(i));
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|s| s.queue);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_class_never_overlaps() {
        let model = InterferenceModel::default_model();
        assert_eq!(
            model.slowdown(ResourceClass::Memory, ResourceClass::Memory),
            None
        );
        let mut set = StreamSet::new(2, model);
        set.admit(1, ResourceClass::Memory, 100.0);
        assert!(!set.can_accept(ResourceClass::Memory));
        assert!(set.can_accept(ResourceClass::Compute));
        assert!(set.can_accept(ResourceClass::Mixed));
    }

    #[test]
    fn solo_stage_runs_at_full_rate() {
        let mut set = StreamSet::new(2, InterferenceModel::default_model());
        set.admit(7, ResourceClass::Compute, 1_000.0);
        assert_eq!(set.earliest_completion_ns(), Some(1_000.0));
        set.advance_to(1_000.0);
        let done = set.take_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].key, 7);
        assert_eq!(done[0].queue, 0);
        assert!(set.is_idle());
        assert_eq!(set.busy_union_ns, 1_000.0);
        assert_eq!(set.stream_busy_ns, 1_000.0);
    }

    #[test]
    fn complementary_pair_overlaps_with_modeled_slowdown() {
        // MSM (compute) and NTT (memory), each 1000 ns solo, co-resident
        // from t=0 under factor 1.12: both finish at 1120 ns — versus
        // 2000 ns serialized.
        let model = InterferenceModel::default_model();
        let mut set = StreamSet::new(2, model);
        set.admit(1, ResourceClass::Compute, 1_000.0);
        set.admit(2, ResourceClass::Memory, 1_000.0);
        assert_eq!(set.costream_joins, 1);
        let t = set.earliest_completion_ns().unwrap();
        assert!((t - 1_120.0).abs() < 1e-9, "{t}");
        set.advance_to(t);
        let done = set.take_finished();
        assert_eq!(done.len(), 2, "equal work completes together");
        // Overlap shows up as stream-time exceeding the busy union.
        assert!((set.busy_union_ns - 1_120.0).abs() < 1e-9);
        assert!((set.stream_busy_ns - 2_240.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rise_when_a_coresident_leaves() {
        // A 500 ns compute stage beside a 2000 ns memory stage at factor
        // 1.12: compute finishes at 560; memory drained 500 solo-ns by
        // then and runs the remaining 1500 alone, finishing at 2060.
        let mut set = StreamSet::new(2, InterferenceModel::default_model());
        set.admit(1, ResourceClass::Compute, 500.0);
        set.admit(2, ResourceClass::Memory, 2_000.0);
        let t1 = set.earliest_completion_ns().unwrap();
        assert!((t1 - 560.0).abs() < 1e-9, "{t1}");
        set.advance_to(t1);
        assert_eq!(set.take_finished().len(), 1);
        let t2 = set.earliest_completion_ns().unwrap();
        assert!((t2 - 2_060.0).abs() < 1e-6, "{t2}");
        set.advance_to(t2);
        assert_eq!(set.take_finished().len(), 1);
        assert!(set.is_idle());
    }

    #[test]
    fn join_penalty_prefers_complementary_classes() {
        let mut set = StreamSet::new(3, InterferenceModel::default_model());
        assert_eq!(set.join_penalty(ResourceClass::Memory), 1.0);
        set.admit(1, ResourceClass::Compute, 1_000.0);
        assert!((set.join_penalty(ResourceClass::Memory) - 1.12).abs() < 1e-12);
        assert!((set.join_penalty(ResourceClass::Mixed) - 1.35).abs() < 1e-12);
    }

    #[test]
    fn single_queue_set_is_strictly_serial() {
        let mut set = StreamSet::new(1, InterferenceModel::default_model());
        set.admit(1, ResourceClass::Compute, 100.0);
        assert!(!set.can_accept(ResourceClass::Memory), "no second queue");
        set.advance_to(100.0);
        assert_eq!(set.take_finished().len(), 1);
        assert_eq!(set.costream_joins, 0);
        assert_eq!(set.busy_union_ns, set.stream_busy_ns);
    }

    #[test]
    fn determinism_bitwise() {
        let run = || {
            let mut set = StreamSet::new(2, InterferenceModel::conservative());
            set.admit(1, ResourceClass::Compute, 12_345.678);
            set.advance_to(1_000.0);
            set.admit(2, ResourceClass::Memory, 9_876.543);
            let mut times = Vec::new();
            while let Some(t) = set.earliest_completion_ns() {
                set.advance_to(t);
                for f in set.take_finished() {
                    times.push((f.key, t));
                }
            }
            (times, set.busy_union_ns, set.stream_busy_ns)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "free queue")]
    fn admitting_same_class_panics() {
        let mut set = StreamSet::new(2, InterferenceModel::default_model());
        set.admit(1, ResourceClass::Mixed, 10.0);
        set.admit(2, ResourceClass::Mixed, 10.0);
    }

    #[test]
    #[should_panic(expected = "finite slowdown")]
    fn sub_unity_factors_are_rejected() {
        StreamSet::new(
            2,
            InterferenceModel {
                compute_memory: 0.9,
                mixed_other: 1.2,
            },
        );
    }
}
