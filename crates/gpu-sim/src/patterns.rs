//! Access-pattern models: how layouts map to hardware penalties.
//!
//! These small pure functions encode the microarchitectural folklore the
//! cost model needs: shared-memory bank conflicts as a function of access
//! stride, DRAM coalescing efficiency as a function of stride, and the
//! shuffle count of a register-level NTT. The UniNTT engine consults them
//! when it builds [`crate::KernelProfile`]s, so layout optimizations (O3)
//! change simulated time through exactly these formulas.

/// Number of shared-memory banks on all modeled GPUs.
pub const SHARED_BANKS: usize = 32;

/// Bank-conflict serialization degree for a warp accessing shared memory
/// with a fixed element `stride` (in 4-byte words).
///
/// Lane `l` touches word `l·stride`; the number of distinct banks hit is
/// `32 / gcd(stride, 32)`, so `gcd(stride, 32)` lanes collide per bank.
/// A stride of zero is a same-word broadcast, which the hardware resolves
/// conflict-free.
///
/// ```
/// use unintt_gpu_sim::bank_conflict_degree;
/// assert_eq!(bank_conflict_degree(1), 1.0);   // conflict-free
/// assert_eq!(bank_conflict_degree(2), 2.0);   // 2-way
/// assert_eq!(bank_conflict_degree(32), 32.0); // fully serialized
/// assert_eq!(bank_conflict_degree(33), 1.0);  // padding fixes it
/// ```
pub fn bank_conflict_degree(stride: usize) -> f64 {
    if stride == 0 {
        return 1.0; // broadcast
    }
    gcd(stride, SHARED_BANKS) as f64
}

/// DRAM coalescing efficiency for a warp reading 32 consecutive-lane
/// elements of `elem_bytes` at a fixed `stride` (in elements).
///
/// Stride 1 touches ⌈32·elem/128⌉ cache sectors — full efficiency. Larger
/// strides spread the warp's footprint over more 32-byte sectors than it
/// consumes, wasting bandwidth proportionally (floored at one element per
/// sector).
pub fn coalescing_efficiency(stride: usize, elem_bytes: usize) -> f64 {
    const SECTOR: f64 = 32.0;
    if stride <= 1 {
        return 1.0;
    }
    let useful = elem_bytes as f64;
    let fetched = (stride * elem_bytes) as f64;
    (useful / fetched.min(SECTOR.max(useful))).clamp(useful / SECTOR, 1.0)
}

/// Shuffle operations for one warp to run a complete register-level NTT of
/// length `warp_size` with one element per lane: `log2(warp)` exchange
/// stages, each a `shfl_xor` per lane.
pub fn warp_ntt_shuffles(warp_size: u32) -> u64 {
    debug_assert!(warp_size.is_power_of_two());
    (warp_size as u64) * (warp_size.trailing_zeros() as u64)
}

/// Butterfly operation count of a radix-2 NTT of size `n`:
/// `(n/2)·log2(n)` butterflies, each one multiply and two add/subs.
pub fn ntt_butterflies(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    (n / 2) * (63 - n.leading_zeros() as u64)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_degrees_follow_gcd() {
        assert_eq!(bank_conflict_degree(1), 1.0);
        assert_eq!(bank_conflict_degree(4), 4.0);
        assert_eq!(bank_conflict_degree(16), 16.0);
        assert_eq!(bank_conflict_degree(31), 1.0);
        assert_eq!(bank_conflict_degree(64), 32.0);
        assert_eq!(bank_conflict_degree(0), 1.0);
    }

    #[test]
    fn odd_strides_are_conflict_free() {
        for stride in (1..100).step_by(2) {
            assert_eq!(bank_conflict_degree(stride), 1.0, "stride={stride}");
        }
    }

    #[test]
    fn coalescing_unit_stride_perfect() {
        assert_eq!(coalescing_efficiency(1, 8), 1.0);
        assert_eq!(coalescing_efficiency(0, 32), 1.0);
    }

    #[test]
    fn coalescing_degrades_with_stride_and_floors() {
        let e2 = coalescing_efficiency(2, 8);
        let e8 = coalescing_efficiency(8, 8);
        assert!(e2 < 1.0);
        assert!(e8 <= e2);
        // 8-byte elements can never do worse than 8/32 of a sector.
        assert!(e8 >= 8.0 / 32.0 - 1e-12);
    }

    #[test]
    fn wide_elements_coalesce_better() {
        // A 32-byte element fills a sector by itself: even strided access
        // wastes nothing.
        assert!(coalescing_efficiency(4, 32) >= coalescing_efficiency(4, 8));
    }

    #[test]
    fn warp_shuffle_count() {
        assert_eq!(warp_ntt_shuffles(32), 32 * 5);
        assert_eq!(warp_ntt_shuffles(1), 0);
    }

    #[test]
    fn butterfly_counts() {
        assert_eq!(ntt_butterflies(1), 0);
        assert_eq!(ntt_butterflies(2), 1);
        assert_eq!(ntt_butterflies(8), 12);
        assert_eq!(ntt_butterflies(1 << 20), (1 << 19) * 20);
    }
}
