//! Machine description: GPUs, interconnect, and the field cost spec.
//!
//! These types are the simulator's "datasheet" layer. They deliberately
//! mirror the parameters one reads off an NVIDIA whitepaper (SM count,
//! clock, HBM bandwidth, NVLink bandwidth) so that the presets in
//! [`crate::presets`] are auditable against public numbers.

use serde::{Deserialize, Serialize};

/// Static description of a single GPU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, e.g. `"A100-SXM4-80GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every shipping NVIDIA part).
    pub warp_size: u32,
    /// Maximum threads per thread block.
    pub max_threads_per_block: u32,
    /// Shared memory available to one thread block, in bytes.
    pub shared_mem_per_block: u64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak global-memory (HBM/GDDR) bandwidth in GB/s.
    pub global_mem_bandwidth_gbps: f64,
    /// Global-memory access latency in nanoseconds.
    pub global_mem_latency_ns: f64,
    /// Shared-memory bandwidth per SM in bytes per cycle.
    pub shared_mem_bytes_per_cycle_per_sm: f64,
    /// Warp-shuffle operations retired per cycle per SM.
    pub shuffles_per_cycle_per_sm: f64,
    /// 64-bit integer multiply-add throughput per cycle per SM
    /// (the unit the [`FieldSpec`] multiplies against).
    pub limb_muls_per_cycle_per_sm: f64,
    /// Fixed kernel-launch overhead in nanoseconds.
    pub kernel_launch_overhead_ns: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

/// How the GPUs in a machine talk to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Fully connected switch fabric (NVSwitch): every pair of GPUs enjoys
    /// full per-GPU bandwidth simultaneously.
    AllToAll,
    /// Directed ring (NVLink bridges without a switch): collectives run in
    /// `D-1` pipelined steps.
    Ring,
    /// No peer-to-peer links: all traffic bounces through host memory over
    /// PCIe and contends for the host's aggregate bandwidth.
    HostBounce,
    /// Two-level hierarchy: nodes of NVLink-connected GPUs joined by a
    /// shared inter-node fabric (InfiniBand / RoCE). Collectives run as a
    /// staged gather → exchange → scatter: intra-node reshuffle at NVLink
    /// rate, one uplink transfer per node, intra-node scatter.
    Hierarchical,
}

/// Interconnect datasheet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Fabric shape.
    pub topology: Topology,
    /// Per-GPU injection bandwidth into the fabric, GB/s
    /// (e.g. 600 for A100 NVSwitch, 32 for PCIe 4.0 x16).
    pub per_gpu_bandwidth_gbps: f64,
    /// One-way message latency in nanoseconds.
    pub latency_ns: f64,
    /// For [`Topology::HostBounce`]: aggregate host-memory bandwidth cap in
    /// GB/s shared by all devices. Ignored for peer-to-peer topologies.
    pub host_aggregate_bandwidth_gbps: f64,
    /// Achievable fraction of peak bandwidth for large transfers (NCCL bus
    /// efficiency, typically 0.7–0.9).
    pub efficiency: f64,
    /// For [`Topology::Hierarchical`]: GPUs per node (must divide
    /// `num_gpus`). `0` means "all GPUs in one node" and is the default so
    /// single-node configs serialize unchanged.
    #[serde(default)]
    pub gpus_per_node: usize,
    /// For [`Topology::Hierarchical`]: per-node uplink bandwidth into the
    /// inter-node fabric, GB/s (e.g. 50 for 400G InfiniBand).
    #[serde(default)]
    pub inter_node_bandwidth_gbps: f64,
    /// For [`Topology::Hierarchical`]: one-way inter-node latency in ns.
    #[serde(default)]
    pub inter_node_latency_ns: f64,
}

/// A complete multi-GPU machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Per-GPU datasheet (homogeneous machines only, as in the paper).
    pub gpu: GpuConfig,
    /// Inter-GPU fabric.
    pub interconnect: InterconnectConfig,
}

impl MachineConfig {
    /// Validates invariants (nonzero counts, positive rates).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_gpus == 0 {
            return Err("machine must have at least one GPU".into());
        }
        if self.gpu.sm_count == 0 || self.gpu.warp_size == 0 {
            return Err("GPU must have nonzero SM count and warp size".into());
        }
        if !self.gpu.warp_size.is_power_of_two() {
            return Err("warp size must be a power of two".into());
        }
        for (name, v) in [
            ("clock_ghz", self.gpu.clock_ghz),
            (
                "global_mem_bandwidth_gbps",
                self.gpu.global_mem_bandwidth_gbps,
            ),
            (
                "limb_muls_per_cycle_per_sm",
                self.gpu.limb_muls_per_cycle_per_sm,
            ),
            (
                "per_gpu_bandwidth_gbps",
                self.interconnect.per_gpu_bandwidth_gbps,
            ),
            ("efficiency", self.interconnect.efficiency),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.interconnect.efficiency > 1.0 {
            return Err("interconnect efficiency cannot exceed 1.0".into());
        }
        if self.interconnect.topology == Topology::Hierarchical {
            let g = self.interconnect.gpus_per_node;
            if g > 0 && !self.num_gpus.is_multiple_of(g) {
                return Err(format!(
                    "gpus_per_node ({g}) must divide num_gpus ({})",
                    self.num_gpus
                ));
            }
            let multi_node = g > 0 && g < self.num_gpus;
            let bw = self.interconnect.inter_node_bandwidth_gbps;
            if multi_node && (bw <= 0.0 || !bw.is_finite()) {
                return Err(format!(
                    "hierarchical topology needs a positive inter_node_bandwidth_gbps, got {bw}"
                ));
            }
        }
        Ok(())
    }
}

/// Per-field cost parameters: how expensive one field op is in "limb
/// multiply" units, and how wide an element is on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Element width in bytes (8 for Goldilocks, 32 for BN254-Fr).
    pub elem_bytes: usize,
    /// Cost of one field multiplication in limb-multiply units
    /// (≈1 for Goldilocks, ≈20 for 4-limb Montgomery).
    pub mul_cost: f64,
    /// Cost of one field addition in the same units.
    pub add_cost: f64,
    /// Short name for reports.
    pub name: &'static str,
}

impl FieldSpec {
    /// Cost spec for the 64-bit Goldilocks field.
    pub const fn goldilocks() -> Self {
        Self {
            elem_bytes: 8,
            mul_cost: 1.0,
            add_cost: 0.15,
            name: "Goldilocks",
        }
    }

    /// Cost spec for a 254-bit 4-limb Montgomery field (BN254-Fr): a CIOS
    /// multiply is ~16 limb products plus reduction overhead.
    pub const fn bn254_fr() -> Self {
        Self {
            elem_bytes: 32,
            mul_cost: 22.0,
            add_cost: 1.0,
            name: "BN254-Fr",
        }
    }

    /// Cost spec for the 31-bit BabyBear field (half-width limb products).
    pub const fn babybear() -> Self {
        Self {
            elem_bytes: 4,
            mul_cost: 0.5,
            add_cost: 0.1,
            name: "BabyBear",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_validate() {
        for cfg in [
            presets::a100_nvlink(8),
            presets::a100_nvlink(1),
            presets::v100_nvlink_ring(4),
            presets::rtx4090_pcie(2),
            presets::a100_superpod(2, 4),
        ] {
            cfg.validate()
                .expect("preset must be internally consistent");
        }
    }

    #[test]
    fn hierarchical_validation() {
        let mut cfg = presets::a100_superpod(2, 4);
        cfg.validate().expect("superpod preset must validate");
        cfg.interconnect.gpus_per_node = 3; // does not divide 8
        assert!(cfg.validate().is_err());
        cfg.interconnect.gpus_per_node = 4;
        cfg.interconnect.inter_node_bandwidth_gbps = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_gpus_rejected() {
        let mut cfg = presets::a100_nvlink(2);
        cfg.num_gpus = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_efficiency_rejected() {
        let mut cfg = presets::a100_nvlink(2);
        cfg.interconnect.efficiency = 1.5;
        assert!(cfg.validate().is_err());
        cfg.interconnect.efficiency = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn non_power_of_two_warp_rejected() {
        let mut cfg = presets::a100_nvlink(2);
        cfg.gpu.warp_size = 33;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn field_specs_are_sane() {
        let g = FieldSpec::goldilocks();
        let b = FieldSpec::bn254_fr();
        assert!(b.mul_cost > g.mul_cost, "wide fields cost more");
        assert_eq!(b.elem_bytes, 32);
        assert_eq!(g.elem_bytes, 8);
    }

    #[test]
    fn config_clone_eq() {
        let cfg = presets::a100_nvlink(4);
        assert_eq!(cfg.clone(), cfg);
    }
}
