//! Machine presets with datasheet-derived parameters.
//!
//! Numbers come from public NVIDIA whitepapers; where a parameter is not
//! published (e.g. effective 64-bit IMAD throughput) we use the widely
//! reported microbenchmark values. Absolute fidelity is *not* claimed — the
//! reproduction relies on ratios (compute : memory : interconnect), which
//! these figures capture.

use crate::config::{GpuConfig, InterconnectConfig, MachineConfig, Topology};

/// A100-SXM4 GPUs on an NVSwitch all-to-all fabric (DGX-A100 style).
///
/// This is the flagship configuration the paper's headline numbers target.
pub fn a100_nvlink(num_gpus: usize) -> MachineConfig {
    MachineConfig {
        num_gpus,
        gpu: GpuConfig {
            name: "A100-SXM4-80GB".into(),
            sm_count: 108,
            warp_size: 32,
            max_threads_per_block: 1024,
            shared_mem_per_block: 164 * 1024,
            clock_ghz: 1.41,
            global_mem_bandwidth_gbps: 2039.0,
            global_mem_latency_ns: 400.0,
            shared_mem_bytes_per_cycle_per_sm: 128.0,
            shuffles_per_cycle_per_sm: 32.0,
            limb_muls_per_cycle_per_sm: 16.0,
            kernel_launch_overhead_ns: 4000.0,
            memory_bytes: 80 * (1 << 30),
        },
        interconnect: InterconnectConfig {
            topology: Topology::AllToAll,
            per_gpu_bandwidth_gbps: 600.0,
            latency_ns: 9000.0,
            host_aggregate_bandwidth_gbps: 0.0,
            efficiency: 0.8,
            gpus_per_node: 0,
            inter_node_bandwidth_gbps: 0.0,
            inter_node_latency_ns: 0.0,
        },
    }
}

/// A100 nodes (NVSwitch inside each node) joined by 400G InfiniBand
/// uplinks — a DGX-SuperPOD-style two-level hierarchy. The per-node
/// uplink matches the `infiniband_400g` network preset in `unintt-core`
/// (50 GB/s effective, ~5 µs one-way) so single-machine hierarchical runs
/// and the cluster engine charge the same inter-node fabric.
pub fn a100_superpod(nodes: usize, gpus_per_node: usize) -> MachineConfig {
    let mut cfg = a100_nvlink(nodes * gpus_per_node);
    cfg.interconnect.topology = Topology::Hierarchical;
    cfg.interconnect.gpus_per_node = gpus_per_node;
    cfg.interconnect.inter_node_bandwidth_gbps = 50.0;
    cfg.interconnect.inter_node_latency_ns = 5000.0;
    cfg
}

/// V100 GPUs connected by NVLink bridges in a ring (DGX-1 style without
/// NVSwitch).
pub fn v100_nvlink_ring(num_gpus: usize) -> MachineConfig {
    MachineConfig {
        num_gpus,
        gpu: GpuConfig {
            name: "V100-SXM2-32GB".into(),
            sm_count: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            shared_mem_per_block: 96 * 1024,
            clock_ghz: 1.53,
            global_mem_bandwidth_gbps: 900.0,
            global_mem_latency_ns: 450.0,
            shared_mem_bytes_per_cycle_per_sm: 128.0,
            shuffles_per_cycle_per_sm: 32.0,
            limb_muls_per_cycle_per_sm: 8.0,
            kernel_launch_overhead_ns: 5000.0,
            memory_bytes: 32 * (1 << 30),
        },
        interconnect: InterconnectConfig {
            topology: Topology::Ring,
            per_gpu_bandwidth_gbps: 300.0,
            latency_ns: 10000.0,
            host_aggregate_bandwidth_gbps: 0.0,
            efficiency: 0.75,
            gpus_per_node: 0,
            inter_node_bandwidth_gbps: 0.0,
            inter_node_latency_ns: 0.0,
        },
    }
}

/// Consumer RTX 4090 GPUs with no peer-to-peer links: traffic bounces
/// through the host over PCIe 4.0 x16.
pub fn rtx4090_pcie(num_gpus: usize) -> MachineConfig {
    MachineConfig {
        num_gpus,
        gpu: GpuConfig {
            name: "RTX-4090".into(),
            sm_count: 128,
            warp_size: 32,
            max_threads_per_block: 1024,
            shared_mem_per_block: 100 * 1024,
            clock_ghz: 2.52,
            global_mem_bandwidth_gbps: 1008.0,
            global_mem_latency_ns: 380.0,
            shared_mem_bytes_per_cycle_per_sm: 128.0,
            shuffles_per_cycle_per_sm: 32.0,
            limb_muls_per_cycle_per_sm: 16.0,
            kernel_launch_overhead_ns: 3500.0,
            memory_bytes: 24 * (1 << 30),
        },
        interconnect: InterconnectConfig {
            topology: Topology::HostBounce,
            per_gpu_bandwidth_gbps: 32.0,
            latency_ns: 15000.0,
            host_aggregate_bandwidth_gbps: 64.0,
            efficiency: 0.85,
            gpus_per_node: 0,
            inter_node_bandwidth_gbps: 0.0,
            inter_node_latency_ns: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_topologies() {
        assert_eq!(a100_nvlink(8).interconnect.topology, Topology::AllToAll);
        assert_eq!(v100_nvlink_ring(4).interconnect.topology, Topology::Ring);
        assert_eq!(rtx4090_pcie(2).interconnect.topology, Topology::HostBounce);
        let pod = a100_superpod(2, 4);
        assert_eq!(pod.interconnect.topology, Topology::Hierarchical);
        assert_eq!(pod.num_gpus, 8);
        assert_eq!(pod.interconnect.gpus_per_node, 4);
    }

    #[test]
    fn bandwidth_hierarchy_holds() {
        // Shared > global > interconnect is the hierarchy UniNTT exploits.
        let cfg = a100_nvlink(8);
        let shared_bw =
            cfg.gpu.shared_mem_bytes_per_cycle_per_sm * cfg.gpu.sm_count as f64 * cfg.gpu.clock_ghz; // GB/s
        assert!(shared_bw > cfg.gpu.global_mem_bandwidth_gbps);
        assert!(cfg.gpu.global_mem_bandwidth_gbps > cfg.interconnect.per_gpu_bandwidth_gbps);
    }
}
