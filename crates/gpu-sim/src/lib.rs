//! # unintt-gpu-sim — functional + analytical multi-GPU simulator
//!
//! The hardware substitute for the UniNTT reproduction (this environment
//! has no GPUs). Two guarantees:
//!
//! * **Functional**: data really moves. Per-device shards are transformed
//!   by ordinary Rust closures; collectives really permute bytes between
//!   shards. Every simulated NTT is bit-checked against the CPU reference.
//! * **Analytical**: time comes from a roofline cost model
//!   ([`CostModel`]) driven by [`KernelProfile`] footprints and α–β
//!   collective models, parameterized by datasheet presets
//!   ([`presets`]). Ratios (compute : memory : interconnect) are what the
//!   reproduction relies on, not absolute numbers.
//!
//! ```
//! use unintt_gpu_sim::{presets, FieldSpec, KernelProfile, Machine};
//!
//! let mut machine = Machine::new(presets::a100_nvlink(4), FieldSpec::goldilocks());
//! let mut shards: Vec<Vec<u64>> = (0..4).map(|d| vec![d as u64; 1024]).collect();
//!
//! // A compute phase on all four GPUs…
//! machine.parallel_phase(&mut shards, |ctx, _id, shard| {
//!     let mut profile = KernelProfile::named("double");
//!     profile.field_adds = shard.len() as u64;
//!     profile.global_bytes_read = (shard.len() * 8) as u64;
//!     profile.global_bytes_written = (shard.len() * 8) as u64;
//!     ctx.launch(&profile);
//!     for v in shard.iter_mut() { *v *= 2; }
//! });
//!
//! // …then an all-to-all over NVLink.
//! machine.all_to_all(&mut shards, 8).unwrap();
//! assert!(machine.max_clock_ns() > 0.0);
//! ```
//!
//! Collectives return `Result<_, FabricError>`: argument bugs and
//! injected faults (see [`FaultPlan`]) surface as typed errors instead of
//! panics, so recovery layers can retry, repair, or re-plan. The
//! `*_unchecked` shims keep the legacy panicking behaviour.

#![warn(missing_docs)]

mod collective;
mod config;
mod cost;
mod device;
mod fabric;
mod fault;
mod machine;
mod patterns;
pub mod presets;
mod stream;
mod timeline;
mod trace;

pub use collective::{OverlapCompute, OverlapReport};
pub use config::{FieldSpec, GpuConfig, InterconnectConfig, MachineConfig, Topology};
pub use cost::{CostModel, KernelCost};
pub use device::{DeviceCtx, DeviceState, KernelProfile};
pub use fabric::{alpha_beta_all_to_all_ns, FabricGraph, Link};
pub use fault::{CollectiveReport, FabricError, FaultEvent, FaultKind, FaultPlan, FaultRates};
pub use machine::Machine;
pub use patterns::{
    bank_conflict_degree, coalescing_efficiency, ntt_butterflies, warp_ntt_shuffles, SHARED_BANKS,
};
pub use stream::{InFlight, InterferenceModel, ResourceClass, StreamSet};
pub use timeline::{Timeline, TraceEvent, MAX_EVENTS};
pub use trace::{Category, CollectiveEvent, Level, Stats, TimeByCategory};
