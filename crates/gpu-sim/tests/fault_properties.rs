//! Property-based tests of the fault-injection layer: the determinism
//! and atomicity guarantees recovery is built on, fuzzed over seeds,
//! rates, and machine shapes.

use proptest::prelude::*;
use unintt_gpu_sim::{presets, FaultKind, FaultPlan, FaultRates, FieldSpec, Machine};

/// Everything observable about a driven machine: final shard data, fault
/// event sequence, simulated clock, faults injected, bytes retransmitted.
type DriveOutcome = (Vec<Vec<u64>>, Vec<(u64, FaultKind)>, f64, u64, u64);

/// Drives `n` all-to-alls on a fresh machine under `plan`, returning the
/// full observable outcome: data, fault log, clock, and key counters.
fn drive(plan: &FaultPlan, gpus: usize, n: usize) -> DriveOutcome {
    let mut machine = Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks());
    machine.set_fault_plan(plan.clone());
    let mut shards: Vec<Vec<u64>> = (0..gpus)
        .map(|d| (0..4 * gpus as u64).map(|i| 1000 * d as u64 + i).collect())
        .collect();
    for _ in 0..n {
        // Errors (drops, losses) are part of the observable sequence too;
        // the machine stays usable after transient ones.
        let _ = machine.all_to_all_checked(&mut shards, 8);
    }
    let log = machine
        .fault_log()
        .iter()
        .map(|e| (e.seq, e.kind))
        .collect();
    let stats = machine.stats();
    (
        shards,
        log,
        machine.max_clock_ns(),
        stats.faults_injected,
        stats.interconnect_bytes_retransmitted,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole guarantee: the same seed produces the identical
    /// fault decision for every (seq, device count) — twice-built plans
    /// are indistinguishable.
    #[test]
    fn same_seed_same_decisions(seed in any::<u64>(), p in 0.0f64..0.19, gpus_log in 0u32..4) {
        let a = FaultPlan::random(seed, FaultRates::uniform(p));
        let b = FaultPlan::random(seed, FaultRates::uniform(p));
        let d = 1usize << gpus_log;
        for seq in 0..256 {
            prop_assert_eq!(a.decide(seq, d), b.decide(seq, d));
        }
    }

    /// End to end: two machines driven identically under the same plan
    /// agree on the injected event sequence, the simulated clock, the
    /// fault counters, and every data element.
    #[test]
    fn same_plan_same_execution(seed in any::<u64>(), p in 0.0f64..0.3, gpus_log in 1u32..4) {
        let plan = FaultPlan::random(seed, FaultRates::transfers_only(p));
        let gpus = 1usize << gpus_log;
        let a = drive(&plan, gpus, 12);
        let b = drive(&plan, gpus, 12);
        prop_assert_eq!(a.0, b.0); // data
        prop_assert_eq!(a.1, b.1); // fault event sequence
        prop_assert_eq!(a.2, b.2); // simulated time, bit-exact
        prop_assert_eq!(a.3, b.3); // faults injected
        prop_assert_eq!(a.4, b.4); // bytes retransmitted
    }

    /// Rate profiles are respected: a transfers-only plan never decides
    /// a device fault, so single-machine recovery always suffices.
    #[test]
    fn transfers_only_never_touches_devices(seed in any::<u64>(), p in 0.0f64..0.5) {
        let plan = FaultPlan::random(seed, FaultRates::transfers_only(p));
        for seq in 0..512 {
            match plan.decide(seq, 8) {
                None | Some(FaultKind::Drop) | Some(FaultKind::Corrupt { .. }) => {}
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    /// Drops are atomic: a dropped collective moves no data, so the
    /// caller can retry with the shards it already holds.
    #[test]
    fn dropped_collective_leaves_data_intact(seed in any::<u64>(), gpus_log in 1u32..4) {
        let gpus = 1usize << gpus_log;
        let mut machine = Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks());
        machine.set_fault_plan(FaultPlan::random(seed, FaultRates { drop_p: 1.0, ..FaultRates::default() }));
        let mut shards: Vec<Vec<u64>> = (0..gpus)
            .map(|d| (0..4 * gpus as u64).map(|i| 1000 * d as u64 + i).collect())
            .collect();
        let before = shards.clone();
        prop_assert!(machine.all_to_all(&mut shards, 8).is_err());
        prop_assert_eq!(&shards, &before);
        // And the checksummed variant always repairs corruption: with a
        // corrupt-everything plan, the exchange still matches a clean one.
        machine.set_fault_plan(FaultPlan::random(seed, FaultRates { corrupt_p: 1.0, ..FaultRates::default() }));
        machine.all_to_all_checked(&mut shards, 8).unwrap();
        let mut clean_machine = Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks());
        let mut clean = before;
        clean_machine.all_to_all(&mut clean, 8).unwrap();
        prop_assert_eq!(shards, clean);
    }
}
