//! Property-based tests of the cost model: the monotonicity and scaling
//! laws any sane hardware model must satisfy, fuzzed over machine shapes
//! and kernel footprints.

use proptest::prelude::*;
use unintt_gpu_sim::{
    bank_conflict_degree, coalescing_efficiency, presets, CostModel, FieldSpec, KernelProfile,
};

fn model(gpus: usize) -> CostModel {
    CostModel::new(&presets::a100_nvlink(gpus), FieldSpec::goldilocks())
}

fn profile(bytes: u64, muls: u64, blocks: u64) -> KernelProfile {
    let mut p = KernelProfile::named("prop");
    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    p.field_muls = muls;
    p.blocks = blocks.max(1);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernel_cost_monotone_in_bytes(bytes in 1u64..1 << 32, muls in 0u64..1 << 24) {
        let m = model(1);
        let small = m.kernel_cost(&profile(bytes, muls, 1 << 12));
        let big = m.kernel_cost(&profile(bytes * 2, muls, 1 << 12));
        prop_assert!(big.total_ns >= small.total_ns);
        prop_assert!(big.global_mem_ns >= small.global_mem_ns);
    }

    #[test]
    fn kernel_cost_monotone_in_compute(bytes in 0u64..1 << 24, muls in 1u64..1 << 30) {
        let m = model(1);
        let small = m.kernel_cost(&profile(bytes, muls, 1 << 12));
        let big = m.kernel_cost(&profile(bytes, muls * 2, 1 << 12));
        prop_assert!(big.total_ns >= small.total_ns);
        prop_assert!(big.compute_ns >= small.compute_ns * 1.99);
    }

    #[test]
    fn occupancy_never_speeds_up(muls in 1u64..1 << 28, blocks in 1u64..108) {
        // Fewer blocks than SMs must never be faster than a full grid.
        let m = model(1);
        let starved = m.kernel_cost(&profile(0, muls, blocks));
        let full = m.kernel_cost(&profile(0, muls, 1 << 14));
        prop_assert!(starved.compute_ns >= full.compute_ns);
    }

    #[test]
    fn wider_fields_cost_more_compute(bytes in 0u64..1 << 20, muls in 1u64..1 << 26) {
        let cheap = CostModel::new(&presets::a100_nvlink(1), FieldSpec::goldilocks());
        let pricey = CostModel::new(&presets::a100_nvlink(1), FieldSpec::bn254_fr());
        let p = profile(bytes, muls, 1 << 12);
        prop_assert!(pricey.kernel_cost(&p).compute_ns > cheap.kernel_cost(&p).compute_ns);
    }

    #[test]
    fn all_to_all_monotone_in_bytes_and_positive(log_bytes in 10u32..34, gpus_log in 1u32..4) {
        let m = model(1 << gpus_log);
        let t1 = m.all_to_all_ns(1 << log_bytes);
        let t2 = m.all_to_all_ns(1 << (log_bytes + 1));
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1);
    }

    #[test]
    fn p2p_at_least_latency(bytes in 0u64..1 << 30) {
        let m = model(2);
        prop_assert!(m.p2p_ns(bytes) >= 9_000.0);
    }

    #[test]
    fn bank_conflicts_bounded_and_odd_free(stride in 0usize..4096) {
        let d = bank_conflict_degree(stride);
        prop_assert!((1.0..=32.0).contains(&d));
        if stride % 2 == 1 {
            prop_assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn coalescing_in_unit_interval(stride in 0usize..4096, width_log in 2u32..6) {
        let e = coalescing_efficiency(stride, 1 << width_log);
        prop_assert!(e > 0.0 && e <= 1.0);
    }
}
