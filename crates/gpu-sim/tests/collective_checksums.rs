//! Checksum-failure coverage for the gather/reduce collectives: injected
//! corruption must be detected, repaired, and billed — never silently
//! delivered — when the checked variants are used.

use unintt_gpu_sim::{presets, Category, FaultEvent, FaultKind, FaultPlan, FieldSpec, Machine};

fn machine(gpus: usize) -> Machine {
    Machine::new(presets::a100_nvlink(gpus), FieldSpec::goldilocks())
}

fn scripted(machine: &mut Machine, seq: u64, kind: FaultKind) {
    machine.set_fault_plan(FaultPlan::scripted(vec![FaultEvent { seq, kind }]));
}

fn shards(d: usize, len: usize) -> Vec<Vec<u64>> {
    (0..d)
        .map(|dev| (0..len).map(|j| (dev * 10_000 + j) as u64).collect())
        .collect()
}

#[test]
fn all_gather_corruption_is_silent_unchecked() {
    let d = 4;
    let clean = machine(d).all_gather(&shards(d, 16), 8).unwrap();

    let mut m = machine(d);
    scripted(&mut m, 0, FaultKind::Corrupt { src: 2, dst: 1 });
    let damaged = m.all_gather(&shards(d, 16), 8).unwrap();
    assert_ne!(damaged, clean, "unchecked gather must deliver silently");
    assert_eq!(m.stats().interconnect_bytes_retransmitted, 0);
}

#[test]
fn all_gather_checked_detects_and_repairs_corruption() {
    let d = 4;
    let clean = machine(d).all_gather(&shards(d, 16), 8).unwrap();

    let mut m = machine(d);
    scripted(&mut m, 0, FaultKind::Corrupt { src: 2, dst: 1 });
    let (out, report) = m.all_gather_checked(&shards(d, 16), 8).unwrap();
    assert_eq!(out, clean, "checksum repair must restore the gather");
    assert_eq!(report.retransmitted_chunks, 1);
    assert_eq!(report.retransmitted_bytes, 16 * 8);
    assert_eq!(report.injected, Some(FaultKind::Corrupt { src: 2, dst: 1 }));
    assert!(m.stats().interconnect_bytes_retransmitted > 0);
    assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
}

#[test]
fn all_gather_checked_clean_run_repairs_nothing() {
    let d = 4;
    let mut m = machine(d);
    let (out, report) = m.all_gather_checked(&shards(d, 16), 8).unwrap();
    assert_eq!(out, machine(d).all_gather(&shards(d, 16), 8).unwrap());
    assert_eq!(report.retransmitted_chunks, 0);
    assert_eq!(report.injected, None);
    assert_eq!(m.stats().time_ns.get(Category::Fault), 0.0);
}

#[test]
fn all_gather_checked_propagates_drop() {
    let mut m = machine(4);
    scripted(&mut m, 0, FaultKind::Drop);
    let err = m.all_gather_checked(&shards(4, 16), 8).unwrap_err();
    assert!(err.is_transient(), "drop must stay retryable: {err}");
    // Retry (seq 1) is clean.
    let (_, report) = m.all_gather_checked(&shards(4, 16), 8).unwrap();
    assert_eq!(report.retransmitted_chunks, 0);
}

#[test]
fn reduce_checked_detects_corrupted_contribution() {
    let values = vec![1u64, 10, 100, 1000];

    let mut m = machine(4);
    scripted(&mut m, 0, FaultKind::Corrupt { src: 3, dst: 0 });
    let (sum, report) = m.reduce_to_root_checked(&values, 8, |a, b| a + b).unwrap();
    assert_eq!(sum, 1111, "reduction must use pristine inputs");
    assert_eq!(report.retransmitted_chunks, 1);
    assert_eq!(report.retransmitted_bytes, 8);
    assert!(m.stats().interconnect_bytes_retransmitted > 0);
    assert!(m.stats().time_ns.get(Category::Fault) > 0.0);
}

#[test]
fn reduce_checked_clean_run_is_free_of_fault_time() {
    let mut m = machine(4);
    let (sum, report) = m
        .reduce_to_root_checked(&[1u64, 2, 3, 4], 8, |a, b| a + b)
        .unwrap();
    assert_eq!(sum, 10);
    assert_eq!(report.retransmitted_chunks, 0);
    assert_eq!(m.stats().time_ns.get(Category::Fault), 0.0);
}

#[test]
fn checked_variants_cost_no_extra_time_when_clean() {
    let d = 4;
    let mut plain = machine(d);
    plain.all_gather(&shards(d, 64), 8).unwrap();
    plain
        .reduce_to_root(&[1u64, 2, 3, 4], 8, |a, b| a + b)
        .unwrap();

    let mut checked = machine(d);
    checked.all_gather_checked(&shards(d, 64), 8).unwrap();
    checked
        .reduce_to_root_checked(&[1u64, 2, 3, 4], 8, |a, b| a + b)
        .unwrap();

    let (p, c) = (plain.max_clock_ns(), checked.max_clock_ns());
    assert!((p - c).abs() < 1e-9, "plain {p} vs checked {c}");
}
