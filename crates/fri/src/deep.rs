//! DEEP openings: proving trace evaluations at an out-of-domain point.
//!
//! [`crate::commit_trace`] proves the committed columns are low-degree;
//! a STARK prover additionally needs to *open* them at a random
//! extension-field point `ζ` (the DEEP-ALI technique). The prover claims
//! `vᵢ = colᵢ(ζ)` and proves all claims at once by showing the quotient
//!
//! ```text
//! D(x) = Σᵢ αⁱ · (colᵢ(x) − vᵢ) / (x − ζ)
//! ```
//!
//! is low-degree: if any claimed `vᵢ` were wrong, the corresponding term
//! would not divide cleanly and `D` would be far from every low-degree
//! codeword, so FRI rejects. Spot checks bind `D`'s layer-0 values to the
//! committed trace rows through the same formula.

use unintt_ff::{batch_inverse, Field, Goldilocks, GoldilocksExt2, PrimeField, TwoAdicField};
use unintt_ntt::Ntt;

use crate::fri::{self, FriConfig, FriProof};
use crate::hash::{compress, hash_elements, permutations_for, Digest};
use crate::merkle::{MerklePath, MerkleTree};
use crate::pipeline::LdeBackend;

/// A DEEP opening: the trace commitment, the claimed evaluations at `ζ`,
/// the FRI proof of the DEEP quotient, and the binding trace openings.
#[derive(Clone, Debug)]
pub struct DeepOpeningProof {
    /// Root of the row-wise Merkle tree over the LDE matrix.
    pub trace_root: Digest,
    /// Claimed evaluations `colᵢ(ζ)`.
    pub evals: Vec<GoldilocksExt2>,
    /// FRI proof that the DEEP quotient is low-degree.
    pub fri_proof: FriProof,
    /// Trace-matrix openings at each FRI query's outer (low, high)
    /// positions.
    pub trace_openings: Vec<(MerklePath, MerklePath)>,
    /// Trace rows before extension.
    pub n: usize,
    /// Number of columns.
    pub width: usize,
}

/// Derives the DEEP combination challenge from the transcript so far.
fn deep_challenge(
    root: &Digest,
    zeta: &GoldilocksExt2,
    evals: &[GoldilocksExt2],
) -> GoldilocksExt2 {
    let mut flat = vec![zeta.a, zeta.b];
    for e in evals {
        flat.push(e.a);
        flat.push(e.b);
    }
    let d = compress(root, &hash_elements(&flat));
    GoldilocksExt2::new(d.0[0], d.0[1])
}

/// Opens every column of `columns` at the extension point `zeta`.
///
/// Returns the proof; `backend` carries the heavy work (LDEs, hashing,
/// quotient construction) exactly as in [`crate::commit_trace`].
///
/// # Panics
///
/// Panics if the trace is empty/ragged, too short for the FRI config, or
/// if `zeta` lies on the evaluation coset (probability ~2⁻¹²⁸ for a random
/// point).
pub fn open_trace(
    columns: &[Vec<Goldilocks>],
    zeta: GoldilocksExt2,
    config: &FriConfig,
    backend: &mut LdeBackend,
) -> DeepOpeningProof {
    assert!(!columns.is_empty(), "trace must have at least one column");
    let n = columns[0].len();
    assert!(
        columns.iter().all(|c| c.len() == n),
        "all trace columns must have equal length"
    );

    // 1. LDE + Merkle commitment (as in commit_trace).
    let ldes = backend.lde_batch(columns, config.log_blowup);
    let big_n = n << config.log_blowup;
    let rows: Vec<Vec<Goldilocks>> = (0..big_n)
        .map(|r| ldes.iter().map(|col| col[r]).collect())
        .collect();
    backend.charge_hash(big_n as u64 * permutations_for(columns.len()));
    backend.charge_hash(big_n as u64 - 1);
    let tree = MerkleTree::commit(&rows);
    let trace_root = tree.root();

    // 2. Claimed evaluations: interpolate each column and Horner at ζ.
    let ntt = Ntt::<Goldilocks>::new(n.trailing_zeros());
    let evals: Vec<GoldilocksExt2> = columns
        .iter()
        .map(|col| {
            let mut coeffs = col.clone();
            ntt.inverse(&mut coeffs);
            coeffs.iter().rev().fold(GoldilocksExt2::ZERO, |acc, &c| {
                acc * zeta + GoldilocksExt2::from_base(c)
            })
        })
        .collect();
    backend.charge_pointwise(n * columns.len(), 5);

    // 3. The DEEP quotient codeword.
    let alpha = deep_challenge(&trace_root, &zeta, &evals);
    let shift = Goldilocks::GENERATOR;
    let omega = Goldilocks::two_adic_generator(big_n.trailing_zeros());
    let mut denoms: Vec<GoldilocksExt2> = {
        let mut x = shift;
        (0..big_n)
            .map(|_| {
                let d = GoldilocksExt2::from_base(x) - zeta;
                x *= omega;
                d
            })
            .collect()
    };
    assert!(
        denoms.iter().all(|d| !d.is_zero()),
        "zeta must lie outside the evaluation coset"
    );
    batch_inverse(&mut denoms);

    let deep: Vec<GoldilocksExt2> = (0..big_n)
        .map(|k| {
            let mut acc = GoldilocksExt2::ZERO;
            let mut coeff = GoldilocksExt2::ONE;
            for (lde, &v) in ldes.iter().zip(&evals) {
                acc += coeff * (GoldilocksExt2::from_base(lde[k]) - v);
                coeff *= alpha;
            }
            acc * denoms[k]
        })
        .collect();
    backend.charge_pointwise(big_n * columns.len(), 6);

    // 4. FRI on the quotient, plus the binding trace openings.
    backend.charge_hash(fri::prove_hash_permutations(config, big_n));
    let fri_proof = fri::prove(config, deep, shift);
    let trace_openings: Vec<(MerklePath, MerklePath)> = fri_proof
        .queries
        .iter()
        .map(|q| {
            let first = &q.rounds[0];
            (
                tree.open(&rows, first.low.index),
                tree.open(&rows, first.high.index),
            )
        })
        .collect();

    DeepOpeningProof {
        trace_root,
        evals,
        fri_proof,
        trace_openings,
        n,
        width: columns.len(),
    }
}

/// Verifies a DEEP opening at `zeta`.
pub fn verify_opening(proof: &DeepOpeningProof, zeta: GoldilocksExt2, config: &FriConfig) -> bool {
    let big_n = proof.n << config.log_blowup;
    if proof.evals.len() != proof.width
        || proof.trace_openings.len() != proof.fri_proof.queries.len()
    {
        return false;
    }
    let shift = Goldilocks::GENERATOR;
    if !fri::verify(config, &proof.fri_proof, big_n, shift) {
        return false;
    }

    let alpha = deep_challenge(&proof.trace_root, &zeta, &proof.evals);
    let omega = Goldilocks::two_adic_generator(big_n.trailing_zeros());

    for (query, (low_open, high_open)) in proof.fri_proof.queries.iter().zip(&proof.trace_openings)
    {
        let first = &query.rounds[0];
        for (open, fri_path) in [(low_open, &first.low), (high_open, &first.high)] {
            if open.index != fri_path.index
                || open.row.len() != proof.width
                || fri_path.row.len() != 2
                || !open.verify(&proof.trace_root)
            {
                return false;
            }
            // Recompute D(x_q) from the opened row and the claimed evals.
            let x = GoldilocksExt2::from_base(shift * omega.pow(open.index as u64));
            let Some(denom) = (x - zeta).inverse() else {
                return false;
            };
            let mut acc = GoldilocksExt2::ZERO;
            let mut coeff = GoldilocksExt2::ONE;
            for (&r, &v) in open.row.iter().zip(&proof.evals) {
                acc += coeff * (GoldilocksExt2::from_base(r) - v);
                coeff *= alpha;
            }
            if acc * denom != GoldilocksExt2::new(fri_path.row[0], fri_path.row[1]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_gpu_sim::presets;

    fn random_trace(n: usize, width: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..width)
            .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
            .collect()
    }

    fn zeta(seed: u64) -> GoldilocksExt2 {
        let mut rng = StdRng::seed_from_u64(seed);
        GoldilocksExt2::random(&mut rng)
    }

    #[test]
    fn open_verify_roundtrip() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 3, 1);
        let z = zeta(100);
        let proof = open_trace(&trace, z, &config, &mut LdeBackend::cpu());
        assert!(verify_opening(&proof, z, &config));
    }

    #[test]
    fn claimed_evals_match_direct_evaluation() {
        let config = FriConfig::standard();
        let trace = random_trace(32, 2, 2);
        let z = zeta(101);
        let proof = open_trace(&trace, z, &config, &mut LdeBackend::cpu());

        // Direct check: interpolate column 0 and Horner at ζ.
        let ntt = Ntt::<Goldilocks>::new(5);
        let mut coeffs = trace[0].clone();
        ntt.inverse(&mut coeffs);
        let direct = coeffs.iter().rev().fold(GoldilocksExt2::ZERO, |acc, &c| {
            acc * z + GoldilocksExt2::from_base(c)
        });
        assert_eq!(proof.evals[0], direct);
    }

    #[test]
    fn wrong_claimed_eval_rejected() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 2, 3);
        let z = zeta(102);
        let mut proof = open_trace(&trace, z, &config, &mut LdeBackend::cpu());
        // Tamper with one claimed evaluation: the challenge re-derivation
        // and the binding checks must catch it.
        proof.evals[1] += GoldilocksExt2::ONE;
        assert!(!verify_opening(&proof, z, &config));
    }

    #[test]
    fn wrong_point_rejected() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 2, 4);
        let z = zeta(103);
        let proof = open_trace(&trace, z, &config, &mut LdeBackend::cpu());
        assert!(!verify_opening(&proof, z + GoldilocksExt2::ONE, &config));
    }

    #[test]
    fn tampered_root_rejected() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 2, 5);
        let z = zeta(104);
        let mut proof = open_trace(&trace, z, &config, &mut LdeBackend::cpu());
        proof.trace_root = Digest::zero();
        assert!(!verify_opening(&proof, z, &config));
    }

    #[test]
    fn simulated_backend_identical_opening() {
        let config = FriConfig::standard();
        let trace = random_trace(128, 3, 6);
        let z = zeta(105);
        let cpu = open_trace(&trace, z, &config, &mut LdeBackend::cpu());
        let mut sim = LdeBackend::simulated(presets::a100_nvlink(4));
        let simulated = open_trace(&trace, z, &config, &mut sim);
        assert_eq!(cpu.trace_root, simulated.trace_root);
        assert_eq!(cpu.evals, simulated.evals);
        assert_eq!(cpu.fri_proof, simulated.fri_proof);
        assert!(verify_opening(&simulated, z, &config));
        assert!(sim.sim_time_ns() > 0.0);
    }
}
