//! Stage-decomposed STARK trace commitment for the whole-proof DAG
//! scheduler.
//!
//! [`StagedCommit`] splits [`crate::commit_trace`] into an explicit
//! dependency chain of stages — trace interpolation, the batched coset
//! NTT, the row-wise Merkle commit, the α-combination, the fused FRI
//! fold chain, and a final assembly barrier — so a scheduler can
//! interleave them with stages of *other* proofs on shared hardware and
//! attribute simulated time per stage.
//!
//! The STARK commitment is a strict pipeline (each phase consumes the
//! previous one's output), so unlike the PLONK DAG there is no
//! intra-proof parallelism to expose; the value is per-stage scheduling
//! granularity and time attribution. The FRI fold rounds are
//! deliberately *one* stage, not one per round: the rounds halve
//! geometrically (total work ≈ 2·domain elements), so per-round kernel
//! launches would be fixed-cost dominated and charge far more than the
//! monolithic path's two aggregate kernels — and the chain is strictly
//! sequential, so splitting it buys a scheduler nothing. Commitment
//! bytes are bit-identical to the monolithic path by construction: the
//! two NTT batches issue the same engine calls in the same order, the
//! fused fold stage charges the same aggregate hash + fold kernels the
//! monolithic path does, and everything after them is deterministic
//! host math.
//!
//! A stage that fails with a transient [`FabricError`] (only the two NTT
//! stages touch the fabric) leaves state untouched and may be re-run:
//! the affected subgraph replays, completed stages keep their results.

use unintt_core::RecoveryPolicy;
use unintt_ff::{Field, Goldilocks, GoldilocksExt2, PrimeField};
use unintt_gpu_sim::FabricError;

use crate::fri::{self, FriConfig};
use crate::hash::{permutations_for, Digest};
use crate::merkle::MerkleTree;
use crate::pipeline::{combination_challenge, cpu_lde_batch, LdeBackend, TraceCommitment};

/// One node of a proof-stage DAG (same shape as
/// `unintt_zkp::StageDesc`; duplicated rather than shared so `fri` and
/// `zkp` stay independent leaves under `crates/pipeline`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageDesc {
    /// Human-readable stage name (stable across runs; used in traces).
    pub name: String,
    /// Resource-kind tag used for scheduling and time attribution.
    pub kind: &'static str,
    /// Indices of stages this one depends on.
    pub deps: Vec<usize>,
}

/// The stage chain for a trace of `2^log_n` rows under `config`:
/// interp → coset → merkle → combine → fold → finalize. The fold stage
/// fuses all `log_n + log_blowup − log_final_len` FRI rounds (its name
/// records the count); see the module docs for why the rounds are not
/// individual stages.
pub fn stark_stage_descs(log_n: u32, config: &FriConfig) -> Vec<StageDesc> {
    let layers = (log_n + config.log_blowup).saturating_sub(config.log_final_len) as usize;
    let mut descs = vec![
        StageDesc {
            name: "trace-interp".to_string(),
            kind: "ntt",
            deps: vec![],
        },
        StageDesc {
            name: "trace-coset".to_string(),
            kind: "ntt",
            deps: vec![0],
        },
        StageDesc {
            name: "trace-merkle".to_string(),
            kind: "hash",
            deps: vec![1],
        },
        StageDesc {
            name: "alpha-combine".to_string(),
            kind: "pointwise",
            deps: vec![2],
        },
    ];
    descs.push(StageDesc {
        name: format!("fri-fold-x{layers}"),
        kind: "fold",
        deps: vec![descs.len() - 1],
    });
    descs.push(StageDesc {
        name: "fri-finalize".to_string(),
        kind: "barrier",
        deps: vec![descs.len() - 1],
    });
    descs
}

/// A STARK trace commitment decomposed into runnable stages.
///
/// Construct with [`StagedCommit::new`], run every stage in dependency
/// order via [`StagedCommit::run_stage`]; the finished
/// [`TraceCommitment`] is available from [`StagedCommit::commitment`]
/// and is bit-identical to [`crate::commit_trace`] on the same inputs.
pub struct StagedCommit {
    columns: Vec<Vec<Goldilocks>>,
    config: FriConfig,
    backend: LdeBackend,
    descs: Vec<StageDesc>,
    done: Vec<bool>,

    coeffs: Option<Vec<Vec<Goldilocks>>>,
    ldes: Option<Vec<Vec<Goldilocks>>>,
    rows: Option<Vec<Vec<Goldilocks>>>,
    tree: Option<MerkleTree>,
    trace_root: Option<Digest>,
    combined: Option<Vec<GoldilocksExt2>>,
    commitment: Option<TraceCommitment>,
}

impl StagedCommit {
    /// Starts a staged commitment.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, ragged, or too short for the FRI
    /// configuration, exactly like [`crate::commit_trace`].
    pub fn new(columns: Vec<Vec<Goldilocks>>, config: FriConfig, backend: LdeBackend) -> Self {
        assert!(!columns.is_empty(), "trace must have at least one column");
        let n = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == n),
            "all trace columns must have equal length"
        );
        assert!(n.is_power_of_two(), "trace length must be a power of two");
        let log_n = n.trailing_zeros();
        assert!(
            log_n + config.log_blowup > config.log_final_len,
            "trace too short for the FRI configuration"
        );
        let descs = stark_stage_descs(log_n, &config);
        let done = vec![false; descs.len()];
        Self {
            columns,
            config,
            backend,
            descs,
            done,
            coeffs: None,
            ldes: None,
            rows: None,
            tree: None,
            trace_root: None,
            combined: None,
            commitment: None,
        }
    }

    /// The stage chain this committer executes.
    pub fn stage_descs(&self) -> Vec<StageDesc> {
        self.descs.clone()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.descs.len()
    }

    /// Whether stage `idx` has completed.
    pub fn stage_done(&self, idx: usize) -> bool {
        self.done[idx]
    }

    /// Whether every stage has completed.
    pub fn is_complete(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// Simulated nanoseconds accumulated so far (0 for the CPU backend).
    pub fn sim_total_ns(&self) -> f64 {
        self.backend.sim_time_ns()
    }

    /// The finished commitment, once [`StagedCommit::is_complete`].
    pub fn commitment(&self) -> Option<&TraceCommitment> {
        self.commitment.as_ref()
    }

    /// Mutable backend access (to install fault plans in tests).
    pub fn backend_mut(&mut self) -> &mut LdeBackend {
        &mut self.backend
    }

    /// Runs one stage, returning the simulated nanoseconds it charged.
    ///
    /// # Errors
    ///
    /// Propagates any [`FabricError`] that outlives `policy`'s retries;
    /// the stage is left not-done and can simply be re-run.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, already done, or has an
    /// unfinished dependency.
    pub fn run_stage(&mut self, idx: usize, policy: &RecoveryPolicy) -> Result<f64, FabricError> {
        assert!(idx < self.descs.len(), "stage index out of range");
        assert!(!self.done[idx], "stage {idx} already completed");
        for d in 0..self.descs[idx].deps.len() {
            let dep = self.descs[idx].deps[d];
            assert!(
                self.done[dep],
                "stage {idx} depends on unfinished stage {dep}"
            );
        }
        let before = self.sim_total_ns();
        self.execute(idx, policy)?;
        self.done[idx] = true;
        Ok(self.sim_total_ns() - before)
    }

    fn execute(&mut self, idx: usize, policy: &RecoveryPolicy) -> Result<(), FabricError> {
        let n = self.columns[0].len();
        let log_n = n.trailing_zeros();
        let log_blowup = self.config.log_blowup;
        let big_n = n << log_blowup;
        let width = self.columns.len();
        let fold_base = 4; // stages 0..4 are fixed; folds follow
        let last = self.descs.len() - 1;

        match idx {
            // Phase 1a: batched interpolation. On the CPU backend and the
            // simulated single-device path the whole LDE runs in the
            // coset stage (matching the monolithic code paths exactly),
            // so this stage is a no-op there.
            0 => {
                if let LdeBackend::Simulated(sim) = &mut self.backend {
                    if !sim.small_path(log_n) {
                        self.coeffs = Some(sim.try_interp_batch(&self.columns, policy)?);
                    }
                }
            }
            // Phase 1b: zero-pad + batched coset evaluation.
            1 => {
                let ldes = match &mut self.backend {
                    LdeBackend::Cpu => cpu_lde_batch(&self.columns, log_blowup),
                    LdeBackend::Simulated(sim) => {
                        if sim.small_path(log_n) {
                            self.columns
                                .iter()
                                .map(|c| sim.lde(c, log_blowup))
                                .collect()
                        } else {
                            let coeffs = self.coeffs.as_ref().expect("trace-interp done");
                            sim.try_coset_batch(coeffs, log_blowup, policy)?
                        }
                    }
                };
                self.coeffs = None; // superseded by the completed LDEs
                self.ldes = Some(ldes);
            }
            // Row-wise Merkle commitment of the extended matrix.
            2 => {
                let ldes = self.ldes.as_ref().expect("trace-coset done");
                let rows: Vec<Vec<Goldilocks>> = (0..big_n)
                    .map(|r| ldes.iter().map(|col| col[r]).collect())
                    .collect();
                self.backend
                    .charge_hash(big_n as u64 * permutations_for(width));
                self.backend.charge_hash(big_n as u64 - 1); // interior nodes
                let tree = MerkleTree::commit(&rows);
                self.trace_root = Some(tree.root());
                self.rows = Some(rows);
                self.tree = Some(tree);
            }
            // α-combination of the columns into the extension field.
            3 => {
                let ldes = self.ldes.as_ref().expect("trace-coset done");
                let alpha = combination_challenge(&self.trace_root.expect("trace-merkle done"));
                let mut combined = vec![GoldilocksExt2::ZERO; big_n];
                let mut coeff = GoldilocksExt2::ONE;
                for lde in ldes {
                    for (acc, &v) in combined.iter_mut().zip(lde) {
                        *acc += coeff * v;
                    }
                    coeff *= alpha;
                }
                self.backend.charge_pointwise(big_n * width, 2);
                self.combined = Some(combined);
            }
            // The fused FRI fold chain, charged as the same two
            // aggregate kernels the monolithic path issues — all rounds'
            // layer commitments as one hash launch, all folds as one
            // 6-mul/elem extension kernel — so staged and monolithic
            // runs charge identical simulated time. The actual fold
            // values are computed host-side in the finalize barrier.
            i if i >= fold_base && i < last => {
                self.backend
                    .charge_hash(fri::prove_hash_permutations(&self.config, big_n));
                self.backend.charge_pointwise(2 * big_n, 6);
            }
            // Final barrier: the FRI proof and the trace openings.
            i if i == last => {
                let combined = self.combined.take().expect("alpha-combine done");
                let fri_proof = fri::prove(&self.config, combined, Goldilocks::GENERATOR);
                let rows = self.rows.take().expect("trace-merkle done");
                let tree = self.tree.take().expect("trace-merkle done");
                let trace_openings = fri_proof
                    .queries
                    .iter()
                    .map(|q| {
                        let first = &q.rounds[0];
                        (
                            tree.open(&rows, first.low.index),
                            tree.open(&rows, first.high.index),
                        )
                    })
                    .collect();
                self.ldes = None;
                self.commitment = Some(TraceCommitment {
                    trace_root: self.trace_root.expect("trace-merkle done"),
                    fri_proof,
                    trace_openings,
                    n,
                    width,
                });
            }
            _ => unreachable!("stage index checked above"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{commit_trace, verify_trace};
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_gpu_sim::presets;

    fn random_trace(n: usize, width: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..width)
            .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
            .collect()
    }

    fn run_all(staged: &mut StagedCommit) {
        let policy = RecoveryPolicy::none();
        for idx in 0..staged.num_stages() {
            staged.run_stage(idx, &policy).expect("fault-free run");
        }
        assert!(staged.is_complete());
    }

    #[test]
    fn staged_cpu_matches_monolithic() {
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 31);
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu());

        let mut staged = StagedCommit::new(trace, config, LdeBackend::cpu());
        run_all(&mut staged);
        let c = staged.commitment().unwrap();
        assert_eq!(c.trace_root, mono.trace_root);
        assert_eq!(c.fri_proof, mono.fri_proof);
        assert_eq!(c.content_digest(), mono.content_digest());
        assert!(verify_trace(c, &config));
    }

    #[test]
    fn staged_simulated_matches_and_charges_every_stage() {
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 32);
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu());

        let sim = LdeBackend::simulated(presets::a100_nvlink(4));
        let mut staged = StagedCommit::new(trace, config, sim);
        let policy = RecoveryPolicy::none();
        let mut per_stage = Vec::new();
        for idx in 0..staged.num_stages() {
            per_stage.push(staged.run_stage(idx, &policy).expect("fault-free"));
        }
        let c = staged.commitment().unwrap();
        assert_eq!(c.content_digest(), mono.content_digest());
        assert!(verify_trace(c, &config));
        // Every charged stage moved the simulated clock; the barrier
        // finalize did not.
        let last = per_stage.len() - 1;
        for (i, ns) in per_stage.iter().enumerate() {
            if i == last {
                assert_eq!(*ns, 0.0, "finalize is charge-free");
            } else {
                assert!(*ns > 0.0, "stage {i} must charge simulated time");
            }
        }
    }

    #[test]
    fn small_trace_single_device_path() {
        // log_n = 3 < 2·log_g on 4 GPUs: the no-collective path, where
        // interp is a no-op and coset does the whole per-column LDE.
        let config = FriConfig::standard();
        let trace = random_trace(8, 2, 33);
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        let mut staged = StagedCommit::new(
            trace,
            config,
            LdeBackend::simulated(presets::a100_nvlink(4)),
        );
        run_all(&mut staged);
        assert_eq!(
            staged.commitment().unwrap().content_digest(),
            mono.content_digest()
        );
    }

    #[test]
    fn stage_retry_replays_only_the_failed_stage() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 34);
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu());

        // Probe: count the collectives of the interp stage, then drop the
        // first collective *after* it — the coset stage fails once.
        let mut probe = StagedCommit::new(
            trace.clone(),
            config,
            LdeBackend::simulated(presets::a100_nvlink(4)),
        );
        let policy = RecoveryPolicy::none();
        probe.run_stage(0, &policy).unwrap();
        let interp_seq = probe.backend_mut().machine_mut().unwrap().collective_seq();

        let mut staged = StagedCommit::new(
            trace,
            config,
            LdeBackend::simulated(presets::a100_nvlink(4)),
        );
        staged
            .backend_mut()
            .machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                seq: interp_seq,
                kind: FaultKind::Drop,
            }]));
        let no_retries = RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        };
        staged.run_stage(0, &no_retries).unwrap();
        let err = staged.run_stage(1, &no_retries).unwrap_err();
        assert!(err.is_transient(), "dropped collective is transient: {err}");
        assert!(!staged.stage_done(1), "failed stage stays not-done");
        for idx in 1..staged.num_stages() {
            staged.run_stage(idx, &no_retries).unwrap();
        }
        assert_eq!(
            staged.commitment().unwrap().content_digest(),
            mono.content_digest()
        );
        assert!(verify_trace(staged.commitment().unwrap(), &config));
    }
}
