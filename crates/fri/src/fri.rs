//! The FRI low-degree test (commit + query phases), with extension-field
//! soundness.
//!
//! Proves that a committed codeword of length `N = n·2^log_blowup` on the
//! coset `s·H_N` is (close to) the evaluation of a polynomial of degree
//! `< n`. Each round commits the current codeword in a Merkle tree,
//! derives a fold challenge `β` from the transcript, and halves:
//!
//! ```text
//! f'(x²) = (f(x) + f(−x))/2 + β · (f(x) − f(−x))/(2x)
//! ```
//!
//! so the domain squares (`s ← s²`, `H_N ← H_{N/2}`) and the degree bound
//! halves. After `r` rounds the tail codeword is sent in the clear and the
//! verifier interpolates it. Spot-check queries then enforce consistency
//! of every fold at random positions.
//!
//! **Why the extension field.** A 64-bit base field gives a cheating
//! prover ~2⁻⁶⁴ odds per challenge — not enough. As in production systems
//! (Plonky2, Plonky3), all codeword values and fold challenges live in
//! [`GoldilocksExt2`] (~128-bit challenges); the evaluation *points*
//! remain in the base field, so domain arithmetic and twiddles stay
//! 64-bit, and interpolation works component-wise by `F_p`-linearity.

use serde::{Deserialize, Serialize};
use unintt_ff::{batch_inverse, Field, Goldilocks, GoldilocksExt2, PrimeField, TwoAdicField};
use unintt_ntt::{coset_intt, Ntt};

use crate::hash::{compress, hash_elements, Digest};
use crate::merkle::{MerklePath, MerkleTree};

/// FRI parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FriConfig {
    /// Rate: the codeword is `2^log_blowup` times longer than the degree
    /// bound.
    pub log_blowup: u32,
    /// Number of spot-check queries (soundness ≈ `(1/2^log_blowup)^q`-ish).
    pub num_queries: usize,
    /// Folding stops when the codeword reaches `2^log_final_len`.
    pub log_final_len: u32,
}

impl FriConfig {
    /// A sensible test configuration: blowup 4, 24 queries.
    pub fn standard() -> Self {
        Self {
            log_blowup: 2,
            num_queries: 24,
            log_final_len: 3,
        }
    }
}

/// One query's openings in one layer: the two points folded together.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FriQueryRound {
    /// Opening at position `j` (`j < L/2`).
    pub low: MerklePath,
    /// Opening at position `j + L/2`.
    pub high: MerklePath,
}

/// One query: a chain of paired openings through every layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FriQueryProof {
    /// Per-layer openings, outermost layer first.
    pub rounds: Vec<FriQueryRound>,
}

/// A complete FRI proof.
#[derive(Clone, Debug, PartialEq)]
pub struct FriProof {
    /// Merkle roots of each committed layer (layer 0 = input codeword).
    pub layer_roots: Vec<Digest>,
    /// The final (unfolded) codeword, sent in the clear.
    pub final_codeword: Vec<GoldilocksExt2>,
    /// Spot-check queries.
    pub queries: Vec<FriQueryProof>,
}

/// Embeds a base-field codeword into the extension (the usual entry point
/// when a single column, rather than a combination, is tested).
pub fn embed(values: &[Goldilocks]) -> Vec<GoldilocksExt2> {
    values
        .iter()
        .map(|&v| GoldilocksExt2::from_base(v))
        .collect()
}

/// A Merkle row for one extension element: its two base coefficients.
fn ext_row(v: &GoldilocksExt2) -> Vec<Goldilocks> {
    vec![v.a, v.b]
}

fn row_to_ext(row: &[Goldilocks]) -> Option<GoldilocksExt2> {
    if row.len() != 2 {
        return None;
    }
    Some(GoldilocksExt2::new(row[0], row[1]))
}

/// Coset interpolation of an extension vector: component-wise iNTT (the
/// transform is `F_p`-linear and the domain is base-field).
fn coset_intt_ext(values: &[GoldilocksExt2], shift: Goldilocks) -> Vec<GoldilocksExt2> {
    let ntt = Ntt::<Goldilocks>::new(values.len().trailing_zeros());
    let mut re: Vec<Goldilocks> = values.iter().map(|v| v.a).collect();
    let mut im: Vec<Goldilocks> = values.iter().map(|v| v.b).collect();
    coset_intt(&ntt, &mut re, shift);
    coset_intt(&ntt, &mut im, shift);
    re.into_iter()
        .zip(im)
        .map(|(a, b)| GoldilocksExt2::new(a, b))
        .collect()
}

/// Minimal transcript over digests (deterministic Fiat–Shamir).
#[derive(Clone, Debug)]
struct FriTranscript {
    state: Digest,
}

impl FriTranscript {
    fn new(seed: &Digest) -> Self {
        let domain = hash_elements(&[Goldilocks::from_u64(0x4652_4921)]); // "FRI!"
        Self {
            state: compress(&domain, seed),
        }
    }

    fn absorb_digest(&mut self, d: &Digest) {
        self.state = compress(&self.state, d);
    }

    fn absorb_ext_elements(&mut self, v: &[GoldilocksExt2]) {
        let flat: Vec<Goldilocks> = v.iter().flat_map(|e| [e.a, e.b]).collect();
        let h = hash_elements(&flat);
        self.absorb_digest(&h);
    }

    fn challenge_base(&mut self) -> Goldilocks {
        self.state = compress(&self.state, &Digest::zero());
        self.state.0[0]
    }

    /// An extension-field challenge (~128 bits of entropy).
    fn challenge_ext(&mut self) -> GoldilocksExt2 {
        let a = self.challenge_base();
        let b = self.challenge_base();
        GoldilocksExt2::new(a, b)
    }

    fn challenge_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound.is_power_of_two());
        (self.challenge_base().to_canonical_u64() as usize) & (bound - 1)
    }
}

/// The coset shift of layer `i` (`s^{2^i}` for initial shift `s`).
fn layer_shift(initial: Goldilocks, layer: usize) -> Goldilocks {
    let mut s = initial;
    for _ in 0..layer {
        s = s.square();
    }
    s
}

/// Folds a codeword once with challenge `beta`.
///
/// `codeword` lives on `shift·H_L`; the result lives on `shift²·H_{L/2}`.
fn fold(
    codeword: &[GoldilocksExt2],
    shift: Goldilocks,
    beta: GoldilocksExt2,
) -> Vec<GoldilocksExt2> {
    let l = codeword.len();
    debug_assert!(l.is_power_of_two() && l >= 2);
    let half = l / 2;
    let omega = Goldilocks::two_adic_generator(l.trailing_zeros());
    let two_inv = Goldilocks::TWO.inverse().expect("2 is invertible");

    // 1/(2·x_j) for j < half, batch-inverted in the base field.
    let mut denom: Vec<Goldilocks> = Vec::with_capacity(half);
    let mut x = shift;
    for _ in 0..half {
        denom.push(x.double());
        x *= omega;
    }
    batch_inverse(&mut denom);

    (0..half)
        .map(|j| {
            let even = (codeword[j] + codeword[j + half]) * two_inv;
            let odd = (codeword[j] - codeword[j + half]) * denom[j];
            even + beta * odd
        })
        .collect()
}

/// Proves that `codeword` (on the coset `shift·H_N`) has degree
/// `< N / 2^log_blowup`.
///
/// # Panics
///
/// Panics if the codeword length is not a power of two at least
/// `2^(log_final_len + 1)`.
pub fn prove(config: &FriConfig, codeword: Vec<GoldilocksExt2>, shift: Goldilocks) -> FriProof {
    prove_seeded(config, codeword, shift, &Digest::zero())
}

/// [`prove`] with a transcript seed, binding the FRI challenges to prior
/// protocol messages (commitment roots, evaluation claims).
pub fn prove_seeded(
    config: &FriConfig,
    codeword: Vec<GoldilocksExt2>,
    shift: Goldilocks,
    seed: &Digest,
) -> FriProof {
    let n = codeword.len();
    assert!(
        n.is_power_of_two(),
        "codeword length must be a power of two"
    );
    assert!(
        n >= 1 << (config.log_final_len + 1),
        "codeword of length {n} is already at or below the final length"
    );

    let mut transcript = FriTranscript::new(seed);
    let mut layers: Vec<Vec<GoldilocksExt2>> = vec![codeword];
    let mut trees: Vec<MerkleTree> = Vec::new();
    let mut layer_roots = Vec::new();

    // Commit phase.
    let mut layer = 0usize;
    while layers[layer].len() > 1 << config.log_final_len {
        let rows: Vec<Vec<Goldilocks>> = layers[layer].iter().map(ext_row).collect();
        let tree = MerkleTree::commit(&rows);
        transcript.absorb_digest(&tree.root());
        layer_roots.push(tree.root());
        trees.push(tree);

        let beta = transcript.challenge_ext();
        let next = fold(&layers[layer], layer_shift(shift, layer), beta);
        layers.push(next);
        layer += 1;
    }
    let final_codeword = layers.last().expect("at least one layer").clone();
    transcript.absorb_ext_elements(&final_codeword);

    // Query phase. Row matrices are materialized once per layer.
    let rows_per_layer: Vec<Vec<Vec<Goldilocks>>> = layers[..trees.len()]
        .iter()
        .map(|layer| layer.iter().map(ext_row).collect())
        .collect();
    let outer_len = layers[0].len();
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let mut index = transcript.challenge_index(outer_len);
        let mut rounds = Vec::with_capacity(trees.len());
        for (i, tree) in trees.iter().enumerate() {
            let half = layers[i].len() / 2;
            let low_idx = index % half;
            rounds.push(FriQueryRound {
                low: tree.open(&rows_per_layer[i], low_idx),
                high: tree.open(&rows_per_layer[i], low_idx + half),
            });
            index = low_idx;
        }
        queries.push(FriQueryProof { rounds });
    }

    FriProof {
        layer_roots,
        final_codeword,
        queries,
    }
}

/// Verifies a FRI proof for a codeword of length `n` on `shift·H_n`.
pub fn verify(config: &FriConfig, proof: &FriProof, n: usize, shift: Goldilocks) -> bool {
    verify_seeded(config, proof, n, shift, &Digest::zero())
}

/// [`verify`] with a transcript seed (must match the prover's).
pub fn verify_seeded(
    config: &FriConfig,
    proof: &FriProof,
    n: usize,
    shift: Goldilocks,
    seed: &Digest,
) -> bool {
    if !n.is_power_of_two() || n < 1 << (config.log_final_len + 1) {
        return false;
    }
    let expected_layers = (n.trailing_zeros() - config.log_final_len) as usize;
    if proof.layer_roots.len() != expected_layers
        || proof.final_codeword.len() != 1 << config.log_final_len
        || proof.queries.len() != config.num_queries
    {
        return false;
    }

    // Replay the transcript.
    let mut transcript = FriTranscript::new(seed);
    let mut betas = Vec::with_capacity(expected_layers);
    for root in &proof.layer_roots {
        transcript.absorb_digest(root);
        betas.push(transcript.challenge_ext());
    }
    transcript.absorb_ext_elements(&proof.final_codeword);

    // Final codeword must be low-degree: interpolate (component-wise) on
    // its coset and check that coefficients above the bound vanish.
    let final_len = proof.final_codeword.len();
    let final_shift = layer_shift(shift, expected_layers);
    let coeffs = coset_intt_ext(&proof.final_codeword, final_shift);
    let degree_bound = final_len >> config.log_blowup;
    if coeffs[degree_bound..].iter().any(|c| !c.is_zero()) {
        return false;
    }

    // Spot checks.
    let two_inv = Goldilocks::TWO.inverse().expect("2 invertible");
    for query in &proof.queries {
        if query.rounds.len() != expected_layers {
            return false;
        }
        let mut index = transcript.challenge_index(n);
        let mut len = n;
        let mut expected_next: Option<GoldilocksExt2> = None;

        for (i, round) in query.rounds.iter().enumerate() {
            let half = len / 2;
            let low_idx = index % half;
            // Structural checks.
            if round.low.index != low_idx || round.high.index != low_idx + half {
                return false;
            }
            if !round.low.verify(&proof.layer_roots[i]) || !round.high.verify(&proof.layer_roots[i])
            {
                return false;
            }
            let (Some(lo), Some(hi)) = (row_to_ext(&round.low.row), row_to_ext(&round.high.row))
            else {
                return false;
            };
            // The opened value must match the previous round's fold.
            if let Some(expected) = expected_next {
                let opened = if index < half { lo } else { hi };
                if opened != expected {
                    return false;
                }
            }
            // Compute this round's fold.
            let omega = Goldilocks::two_adic_generator(len.trailing_zeros());
            let x = layer_shift(shift, i) * omega.pow(low_idx as u64);
            let even = (lo + hi) * two_inv;
            let odd = (lo - hi) * (x.double()).inverse().expect("x nonzero");
            expected_next = Some(even + betas[i] * odd);

            index = low_idx;
            len = half;
        }

        if proof.final_codeword[index] != expected_next.expect("at least one layer") {
            return false;
        }
    }
    true
}

/// Hash permutations performed by [`prove`] (for simulator cost charging):
/// leaf hashing plus interior compressions for each committed layer.
pub fn prove_hash_permutations(config: &FriConfig, n: usize) -> u64 {
    let mut total = 0u64;
    let mut len = n;
    while len > 1 << config.log_final_len {
        total += len as u64; // leaf hashes (1 permutation per 2-element row)
        total += len as u64 - 1; // interior compress nodes
        len /= 2;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ntt::coset_ntt;

    fn low_degree_codeword(
        log_degree: u32,
        log_blowup: u32,
        shift: Goldilocks,
        seed: u64,
    ) -> Vec<GoldilocksExt2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coeffs: Vec<Goldilocks> = (0..1usize << log_degree)
            .map(|_| Goldilocks::random(&mut rng))
            .collect();
        coeffs.resize(1 << (log_degree + log_blowup), Goldilocks::ZERO);
        let ntt = Ntt::<Goldilocks>::new(log_degree + log_blowup);
        coset_ntt(&ntt, &mut coeffs, shift);
        embed(&coeffs)
    }

    fn shift() -> Goldilocks {
        Goldilocks::GENERATOR
    }

    #[test]
    fn honest_proof_verifies() {
        let config = FriConfig::standard();
        for log_degree in [4u32, 6, 8] {
            let codeword = low_degree_codeword(log_degree, config.log_blowup, shift(), 1);
            let n = codeword.len();
            let proof = prove(&config, codeword, shift());
            assert!(
                verify(&config, &proof, n, shift()),
                "log_degree={log_degree}"
            );
        }
    }

    #[test]
    fn honest_ext_codeword_verifies() {
        // A genuinely extension-valued low-degree codeword (as produced by
        // the pipeline's α-combination) also passes.
        let config = FriConfig::standard();
        let mut rng = StdRng::seed_from_u64(9);
        let log_degree = 6u32;
        let coeffs: Vec<GoldilocksExt2> = (0..1usize << log_degree)
            .map(|_| GoldilocksExt2::random(&mut rng))
            .collect();
        let mut padded = coeffs;
        padded.resize(1 << (log_degree + config.log_blowup), GoldilocksExt2::ZERO);
        // Evaluate component-wise on the coset.
        let ntt = Ntt::<Goldilocks>::new(log_degree + config.log_blowup);
        let mut re: Vec<Goldilocks> = padded.iter().map(|v| v.a).collect();
        let mut im: Vec<Goldilocks> = padded.iter().map(|v| v.b).collect();
        coset_ntt(&ntt, &mut re, shift());
        coset_ntt(&ntt, &mut im, shift());
        let codeword: Vec<GoldilocksExt2> = re
            .into_iter()
            .zip(im)
            .map(|(a, b)| GoldilocksExt2::new(a, b))
            .collect();
        let n = codeword.len();
        let proof = prove(&config, codeword, shift());
        assert!(verify(&config, &proof, n, shift()));
    }

    #[test]
    fn fold_preserves_low_degree_evaluations() {
        // Folding the codeword of f with β must give the codeword of
        // f_e + β·f_o (even/odd split) on the squared domain.
        let mut rng = StdRng::seed_from_u64(2);
        let log_n = 6u32;
        let coeffs: Vec<Goldilocks> = (0..1usize << log_n)
            .map(|_| Goldilocks::random(&mut rng))
            .collect();
        let s = shift();
        let mut codeword_base = coeffs.clone();
        let ntt = Ntt::<Goldilocks>::new(log_n);
        coset_ntt(&ntt, &mut codeword_base, s);

        let beta = GoldilocksExt2::random(&mut rng);
        let folded = fold(&embed(&codeword_base), s, beta);

        // Expected: g(y) with g coeffs g_i = c_{2i} + β·c_{2i+1}, on s²·H.
        let g: Vec<GoldilocksExt2> = (0..1 << (log_n - 1))
            .map(|i| {
                GoldilocksExt2::from_base(coeffs[2 * i])
                    + beta * GoldilocksExt2::from_base(coeffs[2 * i + 1])
            })
            .collect();
        // Evaluate g on s²·H component-wise.
        let half_ntt = Ntt::<Goldilocks>::new(log_n - 1);
        let mut re: Vec<Goldilocks> = g.iter().map(|v| v.a).collect();
        let mut im: Vec<Goldilocks> = g.iter().map(|v| v.b).collect();
        coset_ntt(&half_ntt, &mut re, s.square());
        coset_ntt(&half_ntt, &mut im, s.square());
        let expected: Vec<GoldilocksExt2> = re
            .into_iter()
            .zip(im)
            .map(|(a, b)| GoldilocksExt2::new(a, b))
            .collect();
        assert_eq!(folded, expected);
    }

    #[test]
    fn high_degree_codeword_rejected() {
        let config = FriConfig::standard();
        let mut rng = StdRng::seed_from_u64(3);
        // A random codeword is (whp) far from every low-degree codeword.
        let n = 1usize << 8;
        let codeword: Vec<GoldilocksExt2> =
            (0..n).map(|_| GoldilocksExt2::random(&mut rng)).collect();
        let proof = prove(&config, codeword, shift());
        assert!(!verify(&config, &proof, n, shift()));
    }

    #[test]
    fn degree_just_over_bound_rejected() {
        let config = FriConfig::standard();
        let log_degree = 6u32;
        let s = shift();
        let mut coeffs: Vec<Goldilocks> = {
            let mut rng = StdRng::seed_from_u64(4);
            (0..1usize << log_degree)
                .map(|_| Goldilocks::random(&mut rng))
                .collect()
        };
        coeffs.resize(1 << (log_degree + config.log_blowup), Goldilocks::ZERO);
        // Plant a coefficient above the bound.
        let idx = (1 << log_degree) + 5;
        coeffs[idx] = Goldilocks::ONE;
        let ntt = Ntt::<Goldilocks>::new(log_degree + config.log_blowup);
        let mut codeword = coeffs;
        coset_ntt(&ntt, &mut codeword, s);
        let n = codeword.len();
        let proof = prove(&config, embed(&codeword), s);
        assert!(!verify(&config, &proof, n, s));
    }

    #[test]
    fn tampered_proof_rejected() {
        let config = FriConfig::standard();
        let codeword = low_degree_codeword(6, config.log_blowup, shift(), 5);
        let n = codeword.len();
        let proof = prove(&config, codeword, shift());
        assert!(verify(&config, &proof, n, shift()));

        let mut bad = proof.clone();
        bad.final_codeword[0] += GoldilocksExt2::ONE;
        assert!(!verify(&config, &bad, n, shift()));

        let mut bad = proof.clone();
        bad.queries[0].rounds[0].low.row[0] += Goldilocks::ONE;
        assert!(!verify(&config, &bad, n, shift()));

        let mut bad = proof.clone();
        bad.layer_roots[0] = Digest::zero();
        assert!(!verify(&config, &bad, n, shift()));

        let mut bad = proof;
        bad.queries.pop();
        assert!(!verify(&config, &bad, n, shift()));
    }

    #[test]
    fn hash_permutation_count_positive_and_monotone() {
        let config = FriConfig::standard();
        let small = prove_hash_permutations(&config, 1 << 8);
        let big = prove_hash_permutations(&config, 1 << 10);
        assert!(small > 0);
        assert!(big > small);
    }
}
