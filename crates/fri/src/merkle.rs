//! Merkle trees over matrices of field elements.
//!
//! STARK commitments hash each *row* of an evaluation matrix (all columns
//! at one domain point) into a leaf, then build a binary tree of
//! [`compress`] nodes. Opening a row reveals the row plus its
//! authentication path.

use serde::{Deserialize, Serialize};
use unintt_ff::Goldilocks;

use crate::hash::{compress, hash_elements, Digest};

/// A Merkle tree committed over the rows of a matrix.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// Number of leaves (power of two).
    leaves: usize,
    /// Heap layout: `nodes[1]` is the root, `nodes[2i]`/`nodes[2i+1]` are
    /// the children of `i`; leaf `j` sits at `nodes[leaves + j]`.
    nodes: Vec<Digest>,
}

/// An opening: the row values plus the authentication path to the root.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MerklePath {
    /// Index of the opened leaf.
    pub index: usize,
    /// The opened row.
    pub row: Vec<Goldilocks>,
    /// Sibling digests, leaf level first.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Commits to `rows` (one leaf per row).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or its length is not a power of two.
    pub fn commit(rows: &[Vec<Goldilocks>]) -> Self {
        let leaves = rows.len();
        assert!(
            leaves.is_power_of_two() && leaves > 0,
            "leaf count must be a power of two"
        );
        let mut nodes = vec![Digest::zero(); 2 * leaves];
        for (j, row) in rows.iter().enumerate() {
            nodes[leaves + j] = hash_elements(row);
        }
        for i in (1..leaves).rev() {
            nodes[i] = compress(&nodes[2 * i], &nodes[2 * i + 1]);
        }
        Self { leaves, nodes }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.nodes[1]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// Always false (the constructor rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Opens leaf `index` of the committed matrix `rows`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or `rows` disagrees with the
    /// committed shape.
    pub fn open(&self, rows: &[Vec<Goldilocks>], index: usize) -> MerklePath {
        assert!(index < self.leaves, "leaf index out of range");
        assert_eq!(rows.len(), self.leaves, "matrix does not match the tree");
        let mut siblings = Vec::new();
        let mut pos = self.leaves + index;
        while pos > 1 {
            siblings.push(self.nodes[pos ^ 1]);
            pos /= 2;
        }
        MerklePath {
            index,
            row: rows[index].clone(),
            siblings,
        }
    }
}

impl MerklePath {
    /// Verifies the path against a root.
    pub fn verify(&self, root: &Digest) -> bool {
        let mut digest = hash_elements(&self.row);
        let mut pos = self.index;
        for sibling in &self.siblings {
            digest = if pos.is_multiple_of(2) {
                compress(&digest, sibling)
            } else {
                compress(sibling, &digest)
            };
            pos /= 2;
        }
        digest == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::Field;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| (0..cols).map(|_| Goldilocks::random(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn open_verify_all_leaves() {
        let rows = random_matrix(16, 3, 1);
        let tree = MerkleTree::commit(&rows);
        for i in 0..16 {
            let path = tree.open(&rows, i);
            assert!(path.verify(&tree.root()), "leaf {i}");
            assert_eq!(path.row, rows[i]);
            assert_eq!(path.siblings.len(), 4);
        }
    }

    #[test]
    fn tampered_row_rejected() {
        let rows = random_matrix(8, 2, 2);
        let tree = MerkleTree::commit(&rows);
        let mut path = tree.open(&rows, 3);
        path.row[0] += Goldilocks::ONE;
        assert!(!path.verify(&tree.root()));
    }

    #[test]
    fn wrong_index_rejected() {
        let rows = random_matrix(8, 2, 3);
        let tree = MerkleTree::commit(&rows);
        let mut path = tree.open(&rows, 3);
        path.index = 4;
        assert!(!path.verify(&tree.root()));
    }

    #[test]
    fn different_matrices_different_roots() {
        let a = random_matrix(8, 2, 4);
        let mut b = a.clone();
        b[5][1] += Goldilocks::ONE;
        assert_ne!(MerkleTree::commit(&a).root(), MerkleTree::commit(&b).root());
    }

    #[test]
    fn single_leaf_tree() {
        let rows = random_matrix(1, 4, 5);
        let tree = MerkleTree::commit(&rows);
        let path = tree.open(&rows, 0);
        assert!(path.siblings.is_empty());
        assert!(path.verify(&tree.root()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let rows = random_matrix(6, 1, 6);
        let _ = MerkleTree::commit(&rows);
    }
}
