//! An algebraic sponge hash over Goldilocks.
//!
//! A Rescue/Poseidon-*shaped* permutation: width-8 state, seven rounds of
//! power S-box (`x ↦ x⁷`, a bijection since `gcd(7, p−1) = 1`), round
//! constants, and a circulant mixing matrix. Rate 4, capacity 4, digests
//! of 4 field elements (~256 bits).
//!
//! **Not cryptographically hardened** — it stands in for Poseidon2/RPO in
//! this performance reproduction. What the pipeline needs from it —
//! determinism, full diffusion, fixed cost per permutation for the
//! simulator to charge — it provides.

use serde::{Deserialize, Serialize};
use unintt_ff::{Field, Goldilocks, PrimeField};

/// Sponge width in field elements.
pub const WIDTH: usize = 8;
/// Sponge rate (elements absorbed per permutation).
pub const RATE: usize = 4;
/// Number of permutation rounds.
pub const ROUNDS: usize = 7;

/// A 4-element (~256-bit) digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digest(pub [Goldilocks; 4]);

impl Digest {
    /// The all-zero digest.
    pub fn zero() -> Self {
        Self([Goldilocks::ZERO; 4])
    }

    /// Interprets the digest as a `u64` seed (for challenge derivation).
    pub fn as_u64(&self) -> u64 {
        self.0[0].to_canonical_u64()
    }
}

/// Round constants: distinct small pseudo-random values (fixed nothing-up-
/// my-sleeve: digits of π scaled into the field).
const ROUND_CONSTANTS: [u64; ROUNDS * WIDTH] = [
    0x3141592653589793,
    0x2384626433832795,
    0x0288419716939937,
    0x5105820974944592,
    0x3078164062862089,
    0x9862803482534211,
    0x7067982148086513,
    0x2823066470938446,
    0x0955058223172535,
    0x9408128481117450,
    0x2841027019385211,
    0x0555964462294895,
    0x4930381964428810,
    0x9756659334461284,
    0x7564823378678316,
    0x5271201909145648,
    0x5669234603486104,
    0x5432664821339360,
    0x7260249141273724,
    0x5870066063155881,
    0x7488152092096282,
    0x9254091715364367,
    0x8925903600113305,
    0x3054882046652138,
    0x4146951941511609,
    0x4330572703657595,
    0x9195309218611738,
    0x1932611793105118,
    0x5480744623799627,
    0x4956735188575272,
    0x4891227938183011,
    0x9491298336733624,
    0x4065664308602139,
    0x4946395224737190,
    0x7021798609437027,
    0x7053921717629317,
    0x6759859050244594,
    0x5534690830264252,
    0x2308253344685035,
    0x2619311881710100,
    0x0313783875288658,
    0x7533208381420617,
    0x1771309960518707,
    0x2113499999983729,
    0x7804995105973173,
    0x2816096318595024,
    0x4594553469083026,
    0x4252230825334468,
    0x5035261931188171,
    0x0100313783875288,
    0x6587533208381420,
    0x6171771309960518,
    0x7072113499999983,
    0x7297804995105973,
    0x1732816096318595,
    0x0244594553469083,
];

/// The permutation: `ROUNDS` of add-constants → S-box → mix.
pub fn permute(state: &mut [Goldilocks; WIDTH]) {
    for r in 0..ROUNDS {
        // Round constants.
        for (i, s) in state.iter_mut().enumerate() {
            *s += Goldilocks::from_u64(ROUND_CONSTANTS[r * WIDTH + i]);
        }
        // S-box x^7.
        for s in state.iter_mut() {
            let x = *s;
            let x2 = x.square();
            let x4 = x2.square();
            *s = x4 * x2 * x;
        }
        // Circulant mix: out[i] = Σ_j C[(j - i) mod W] · state[j], with
        // small coefficient vector C chosen to be invertible.
        const C: [u64; WIDTH] = [2, 1, 1, 3, 1, 5, 1, 7];
        let old = *state;
        for i in 0..WIDTH {
            let mut acc = Goldilocks::ZERO;
            for (j, &o) in old.iter().enumerate() {
                acc += o * Goldilocks::from_u64(C[(j + WIDTH - i) % WIDTH]);
            }
            state[i] = acc;
        }
    }
}

/// Hashes a slice of field elements (sponge with simple length padding).
pub fn hash_elements(input: &[Goldilocks]) -> Digest {
    let mut state = [Goldilocks::ZERO; WIDTH];
    // Length in the capacity to domain-separate different lengths.
    state[WIDTH - 1] = Goldilocks::from_u64(input.len() as u64);
    for chunk in input.chunks(RATE) {
        for (s, &v) in state.iter_mut().zip(chunk) {
            *s += v;
        }
        permute(&mut state);
    }
    Digest([state[0], state[1], state[2], state[3]])
}

/// Compresses two digests into one (Merkle interior node).
pub fn compress(left: &Digest, right: &Digest) -> Digest {
    let mut state = [Goldilocks::ZERO; WIDTH];
    state[..4].copy_from_slice(&left.0);
    state[4..].copy_from_slice(&right.0);
    permute(&mut state);
    Digest([state[0], state[1], state[2], state[3]])
}

/// Number of permutations needed to hash `len` elements (for cost models).
pub fn permutations_for(len: usize) -> u64 {
    (len.div_ceil(RATE)).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn deterministic() {
        let input = random_vec(10, 1);
        assert_eq!(hash_elements(&input), hash_elements(&input));
    }

    #[test]
    fn sensitive_to_every_element() {
        let input = random_vec(9, 2);
        let base = hash_elements(&input);
        for i in 0..input.len() {
            let mut changed = input.clone();
            changed[i] += Goldilocks::ONE;
            assert_ne!(hash_elements(&changed), base, "i={i}");
        }
    }

    #[test]
    fn length_domain_separation() {
        // A vector and its zero-extension must hash differently.
        let input = random_vec(4, 3);
        let mut padded = input.clone();
        padded.push(Goldilocks::ZERO);
        assert_ne!(hash_elements(&input), hash_elements(&padded));
        assert_ne!(hash_elements(&[]), hash_elements(&[Goldilocks::ZERO]));
    }

    #[test]
    fn compress_is_order_sensitive() {
        let a = hash_elements(&random_vec(4, 4));
        let b = hash_elements(&random_vec(4, 5));
        assert_ne!(compress(&a, &b), compress(&b, &a));
        assert_ne!(compress(&a, &b), a);
    }

    #[test]
    fn permutation_diffuses_single_bit() {
        let mut s1 = [Goldilocks::ZERO; WIDTH];
        let mut s2 = [Goldilocks::ZERO; WIDTH];
        s2[0] = Goldilocks::ONE;
        permute(&mut s1);
        permute(&mut s2);
        let differing = s1.iter().zip(&s2).filter(|(a, b)| a != b).count();
        assert_eq!(
            differing, WIDTH,
            "one-element change must diffuse everywhere"
        );
    }

    #[test]
    fn permutation_count_helper() {
        assert_eq!(permutations_for(0), 1);
        assert_eq!(permutations_for(4), 1);
        assert_eq!(permutations_for(5), 2);
        assert_eq!(permutations_for(17), 5);
    }
}
