//! # unintt-fri — hash-based polynomial commitments over Goldilocks
//!
//! The second ZKP workload of the reproduction: the transparent
//! (no-trusted-setup) commitment stack used by STARK provers, whose cost
//! is dominated by exactly the NTTs UniNTT accelerates:
//!
//! * [`hash`] — an algebraic sponge over Goldilocks (Poseidon-shaped,
//!   performance-grade; see the module docs for the substitution note);
//! * [`MerkleTree`] / [`MerklePath`] — row-wise matrix commitments;
//! * [`fri`] — the FRI low-degree test (commit, fold, query) with
//!   extension-field challenges;
//! * [`open_trace`] / [`verify_opening`] — DEEP openings of committed
//!   traces at out-of-domain extension points;
//! * [`commit_trace`] / [`verify_trace`] — the LDE → Merkle → FRI
//!   pipeline, runnable on the CPU or on the simulated multi-GPU
//!   [`LdeBackend`] with bit-identical outputs;
//! * [`prove_stark`] / [`verify_stark`] — a complete small STARK: AIR
//!   constraints, composition polynomial, next-row spot checks.
//!
//! ```
//! use unintt_ff::{Field, Goldilocks, PrimeField};
//! use unintt_fri::{commit_trace, verify_trace, FriConfig, LdeBackend};
//!
//! let config = FriConfig::standard();
//! let column: Vec<Goldilocks> = (0..64).map(Goldilocks::from_u64).collect();
//! let commitment = commit_trace(&[column], &config, &mut LdeBackend::cpu());
//! assert!(verify_trace(&commitment, &config));
//! ```

#![warn(missing_docs)]

pub mod deep;
pub mod fri;
pub mod hash;
mod merkle;
mod pipeline;
pub mod staged;
pub mod stark;

pub use deep::{open_trace, verify_opening, DeepOpeningProof};
pub use fri::{embed, FriConfig, FriProof, FriQueryProof, FriQueryRound};
pub use hash::{compress, hash_elements, permutations_for, Digest};
pub use merkle::{MerklePath, MerkleTree};
pub use pipeline::{commit_trace, verify_trace, LdeBackend, SimulatedLde, TraceCommitment};
pub use staged::{stark_stage_descs, StagedCommit};
pub use stark::{prove_stark, verify_stark, Air, Boundary, FibonacciAir, StarkProof};
