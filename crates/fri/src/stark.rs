//! A complete (small) STARK: AIR constraints → composition polynomial →
//! DEEP-style spot checks → FRI.
//!
//! This is the end-to-end transparent prover the Goldilocks half of the
//! paper's workload belongs to. The flow:
//!
//! 1. **Trace commitment** — LDE every column onto the `2^log_blowup`-times
//!    larger coset and Merkle-commit the rows (the NTT-heavy phase).
//! 2. **Composition** — a random challenge `α ∈ F_{p²}` combines every
//!    transition constraint (divided by the all-rows-but-last vanishing
//!    polynomial) and every boundary constraint (divided by its linear
//!    factor) into one codeword, which is low-degree exactly when the
//!    trace satisfies the AIR.
//! 3. **FRI** on the composition codeword, with challenges seeded by the
//!    trace root and `α`.
//! 4. **Spot checks** — at each FRI query position the verifier recomputes
//!    the composition value from opened trace rows (current *and next*,
//!    a rotation by `blowup` on the LDE domain) and matches it against the
//!    FRI layer-0 opening.
//!
//! Supported constraint degree is ≤ 2 (so the composition stays below the
//! FRI degree bound at blowup 4); that covers the classic demonstration
//! AIRs — Fibonacci and multiplicative chains — and is a documented
//! limitation, not a protocol one (production systems raise the blowup or
//! split the composition).

use unintt_ff::{batch_inverse, Field, Goldilocks, GoldilocksExt2, PrimeField, TwoAdicField};

use crate::fri::{self, FriConfig, FriProof};
use crate::hash::{compress, hash_elements, permutations_for, Digest};
use crate::merkle::{MerklePath, MerkleTree};
use crate::pipeline::LdeBackend;

/// A boundary assertion: `trace[column][row] == value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Boundary {
    /// Trace column.
    pub column: usize,
    /// Trace row (must be `< n`).
    pub row: usize,
    /// Asserted value.
    pub value: Goldilocks,
}

/// An algebraic intermediate representation: the constraint system a STARK
/// proves a trace against.
///
/// Transition constraints are evaluated generically so the same code runs
/// over base-field LDE values (prover) and extension-field points
/// (challenges); they must have algebraic degree ≤ 2 in the trace cells.
pub trait Air {
    /// Number of trace columns.
    fn width(&self) -> usize;

    /// Number of transition constraints.
    fn transition_count(&self) -> usize;

    /// Evaluates every transition constraint on a (current, next) row
    /// pair, writing one value per constraint into `out`. A satisfied
    /// trace makes every output zero on every row except the last.
    fn eval_transitions<F>(&self, current: &[F], next: &[F], out: &mut [F])
    where
        F: Field + From<Goldilocks>;

    /// The boundary assertions.
    fn boundaries(&self) -> Vec<Boundary>;
}

/// The Fibonacci AIR: two columns `(a, b)` with
/// `a' = b`, `b' = a + b`; boundaries fix the first row and expose the
/// claimed result in the last row.
#[derive(Clone, Debug)]
pub struct FibonacciAir {
    /// Trace length (power of two).
    pub n: usize,
    /// The claimed value of column 0 in the last row.
    pub result: Goldilocks,
}

impl Air for FibonacciAir {
    fn width(&self) -> usize {
        2
    }

    fn transition_count(&self) -> usize {
        2
    }

    fn eval_transitions<F>(&self, current: &[F], next: &[F], out: &mut [F])
    where
        F: Field + From<Goldilocks>,
    {
        out[0] = next[0] - current[1]; // a' = b
        out[1] = next[1] - current[0] - current[1]; // b' = a + b
    }

    fn boundaries(&self) -> Vec<Boundary> {
        vec![
            Boundary {
                column: 0,
                row: 0,
                value: Goldilocks::ONE,
            },
            Boundary {
                column: 1,
                row: 0,
                value: Goldilocks::ONE,
            },
            Boundary {
                column: 0,
                row: self.n - 1,
                value: self.result,
            },
        ]
    }
}

impl FibonacciAir {
    /// Builds the satisfying trace and the AIR for `n` steps.
    pub fn generate(n: usize) -> (Self, Vec<Vec<Goldilocks>>) {
        assert!(
            n.is_power_of_two() && n >= 4,
            "trace length must be a power of two ≥ 4"
        );
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let (mut x, mut y) = (Goldilocks::ONE, Goldilocks::ONE);
        for _ in 0..n {
            a.push(x);
            b.push(y);
            let next = x + y;
            x = y;
            y = next;
        }
        let result = a[n - 1];
        (Self { n, result }, vec![a, b])
    }
}

/// A STARK proof.
#[derive(Clone, Debug)]
pub struct StarkProof {
    /// Merkle root of the LDE trace matrix.
    pub trace_root: Digest,
    /// FRI proof of the composition polynomial.
    pub fri_proof: FriProof,
    /// Per FRI query, per opened position (low, high): the trace rows at
    /// that position and at the *next-row* position (`+blowup` on the LDE
    /// domain), with their authentication paths.
    pub trace_openings: Vec<[(MerklePath, MerklePath); 2]>,
    /// Trace rows before extension.
    pub n: usize,
}

/// Derives the composition challenge from the trace root and the public
/// boundary assertions.
fn composition_challenge(root: &Digest, boundaries: &[Boundary]) -> GoldilocksExt2 {
    let mut flat = Vec::with_capacity(3 * boundaries.len());
    for b in boundaries {
        flat.push(Goldilocks::from_u64(b.column as u64));
        flat.push(Goldilocks::from_u64(b.row as u64));
        flat.push(b.value);
    }
    let d = compress(root, &hash_elements(&flat));
    GoldilocksExt2::new(d.0[0], d.0[1])
}

/// Evaluates the composition polynomial at one LDE point from its row
/// pair. Shared verbatim between prover (all points) and verifier (query
/// points) so they cannot drift apart.
fn composition_at<F>(
    air: &impl Air,
    current: &[F],
    next: &[F],
    alpha: GoldilocksExt2,
    z_transition_inv: GoldilocksExt2,
    boundary_denom_invs: &[GoldilocksExt2],
    scratch: &mut Vec<F>,
) -> GoldilocksExt2
where
    F: Field + From<Goldilocks> + Into<GoldilocksExt2>,
{
    scratch.clear();
    scratch.resize(air.transition_count(), F::ZERO);
    air.eval_transitions(current, next, scratch);

    let mut acc = GoldilocksExt2::ZERO;
    let mut coeff = GoldilocksExt2::ONE;
    for t in scratch.iter() {
        acc += coeff * (*t).into() * z_transition_inv;
        coeff *= alpha;
    }
    for (b, &denom_inv) in air.boundaries().iter().zip(boundary_denom_invs) {
        let diff: GoldilocksExt2 = (current[b.column] - F::from(b.value)).into();
        acc += coeff * diff * denom_inv;
        coeff *= alpha;
    }
    acc
}

/// Proves that a trace satisfies `air`.
///
/// # Panics
///
/// Panics if the trace shape disagrees with the AIR, the trace violates a
/// constraint (debug builds), or the FRI config cannot host the trace.
pub fn prove_stark(
    air: &impl Air,
    trace: &[Vec<Goldilocks>],
    config: &FriConfig,
    backend: &mut LdeBackend,
) -> StarkProof {
    assert_eq!(trace.len(), air.width(), "trace width mismatch");
    let n = trace[0].len();
    assert!(
        trace.iter().all(|c| c.len() == n),
        "all trace columns must have equal length"
    );

    // 1. Trace LDE + commitment.
    let ldes = backend.lde_batch(trace, config.log_blowup);
    let big_n = n << config.log_blowup;
    let blowup = 1usize << config.log_blowup;
    let rows: Vec<Vec<Goldilocks>> = (0..big_n)
        .map(|r| ldes.iter().map(|col| col[r]).collect())
        .collect();
    backend.charge_hash(big_n as u64 * permutations_for(air.width()));
    backend.charge_hash(big_n as u64 - 1);
    let tree = MerkleTree::commit(&rows);
    let trace_root = tree.root();

    // 2. Composition codeword.
    let boundaries = air.boundaries();
    let alpha = composition_challenge(&trace_root, &boundaries);
    let shift = Goldilocks::GENERATOR;
    let omega_big = Goldilocks::two_adic_generator(big_n.trailing_zeros());
    let omega_small = Goldilocks::two_adic_generator(n.trailing_zeros());
    let last = omega_small.pow(n as u64 - 1);

    // Z_T(x) = (xⁿ − 1)/(x − ω^{n−1}): vanishes on all rows except the
    // last. Its coset inverses, batch-inverted.
    let mut x = shift;
    let mut z_t: Vec<GoldilocksExt2> = Vec::with_capacity(big_n);
    let mut boundary_denoms: Vec<Vec<GoldilocksExt2>> =
        vec![Vec::with_capacity(big_n); boundaries.len()];
    for _ in 0..big_n {
        let vanishing = x.pow(n as u64) - Goldilocks::ONE;
        let except_last = x - last;
        // (xⁿ−1)/(x−ω^{n−1}) — invert the whole ratio at once below by
        // storing numerator/denominator as a single value.
        z_t.push(GoldilocksExt2::from_base(
            vanishing * except_last.inverse().expect("coset avoids H"),
        ));
        for (d, b) in boundary_denoms.iter_mut().zip(&boundaries) {
            d.push(GoldilocksExt2::from_base(x - omega_small.pow(b.row as u64)));
        }
        x *= omega_big;
    }
    batch_inverse(&mut z_t);
    for d in boundary_denoms.iter_mut() {
        batch_inverse(d);
    }

    let mut scratch: Vec<Goldilocks> = Vec::new();
    let mut composition: Vec<GoldilocksExt2> = Vec::with_capacity(big_n);
    let mut x = shift;
    for k in 0..big_n {
        let current: Vec<Goldilocks> = ldes.iter().map(|c| c[k]).collect();
        let next: Vec<Goldilocks> = ldes.iter().map(|c| c[(k + blowup) % big_n]).collect();
        let denom_invs: Vec<GoldilocksExt2> = boundary_denoms.iter().map(|d| d[k]).collect();
        composition.push(composition_at(
            air,
            &current,
            &next,
            alpha,
            z_t[k],
            &denom_invs,
            &mut scratch,
        ));
        x *= omega_big;
    }
    backend.charge_pointwise(big_n * (air.transition_count() + boundaries.len()), 6);

    // 3. FRI on the composition, seeded by the commitment transcript.
    let seed = compress(&trace_root, &hash_elements(&[alpha.a, alpha.b]));
    backend.charge_hash(fri::prove_hash_permutations(config, big_n));
    let fri_proof = fri::prove_seeded(config, composition, shift, &seed);

    // 4. Trace openings at each query's (low, high) and their next-rows.
    let trace_openings: Vec<[(MerklePath, MerklePath); 2]> = fri_proof
        .queries
        .iter()
        .map(|q| {
            let first = &q.rounds[0];
            [first.low.index, first.high.index].map(|idx| {
                (
                    tree.open(&rows, idx),
                    tree.open(&rows, (idx + blowup) % big_n),
                )
            })
        })
        .collect();

    StarkProof {
        trace_root,
        fri_proof,
        trace_openings,
        n,
    }
}

/// Verifies a STARK proof against the AIR (whose boundary assertions are
/// the public statement).
pub fn verify_stark(air: &impl Air, proof: &StarkProof, config: &FriConfig) -> bool {
    let n = proof.n;
    if !n.is_power_of_two() {
        return false;
    }
    let big_n = n << config.log_blowup;
    let blowup = 1usize << config.log_blowup;
    if proof.trace_openings.len() != proof.fri_proof.queries.len() {
        return false;
    }

    let boundaries = air.boundaries();
    let alpha = composition_challenge(&proof.trace_root, &boundaries);
    let seed = compress(&proof.trace_root, &hash_elements(&[alpha.a, alpha.b]));
    let shift = Goldilocks::GENERATOR;
    if !fri::verify_seeded(config, &proof.fri_proof, big_n, shift, &seed) {
        return false;
    }

    let omega_big = Goldilocks::two_adic_generator(big_n.trailing_zeros());
    let omega_small = Goldilocks::two_adic_generator(n.trailing_zeros());
    let last = omega_small.pow(n as u64 - 1);
    let mut scratch: Vec<Goldilocks> = Vec::new();

    for (query, opens) in proof.fri_proof.queries.iter().zip(&proof.trace_openings) {
        let first = &query.rounds[0];
        for ((cur_open, next_open), fri_path) in opens.iter().zip([&first.low, &first.high]) {
            let idx = fri_path.index;
            if cur_open.index != idx
                || next_open.index != (idx + blowup) % big_n
                || cur_open.row.len() != air.width()
                || next_open.row.len() != air.width()
                || fri_path.row.len() != 2
                || !cur_open.verify(&proof.trace_root)
                || !next_open.verify(&proof.trace_root)
            {
                return false;
            }

            let x = shift * omega_big.pow(idx as u64);
            let Some(z_t_inv) = ((x.pow(n as u64) - Goldilocks::ONE)
                * (x - last).inverse().expect("coset avoids H"))
            .inverse() else {
                return false;
            };
            let mut denom_invs = Vec::with_capacity(boundaries.len());
            for b in &boundaries {
                let Some(inv) = (x - omega_small.pow(b.row as u64)).inverse() else {
                    return false;
                };
                denom_invs.push(GoldilocksExt2::from_base(inv));
            }

            let expected = composition_at(
                air,
                &cur_open.row,
                &next_open.row,
                alpha,
                GoldilocksExt2::from_base(z_t_inv),
                &denom_invs,
                &mut scratch,
            );
            if expected != GoldilocksExt2::new(fri_path.row[0], fri_path.row[1]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_gpu_sim::presets;

    #[test]
    fn fibonacci_trace_satisfies_air() {
        let (air, trace) = FibonacciAir::generate(16);
        let mut out = vec![Goldilocks::ZERO; 2];
        for i in 0..15 {
            let cur = [trace[0][i], trace[1][i]];
            let next = [trace[0][i + 1], trace[1][i + 1]];
            air.eval_transitions(&cur, &next, &mut out);
            assert!(out.iter().all(|v| v.is_zero()), "row {i}");
        }
        // Sanity: fib(…) with a=b=1 start, a[4] = 5.
        assert_eq!(trace[0][4].to_canonical_u64(), 5);
    }

    #[test]
    fn stark_roundtrip() {
        let config = FriConfig::standard();
        for n in [16usize, 64, 256] {
            let (air, trace) = FibonacciAir::generate(n);
            let proof = prove_stark(&air, &trace, &config, &mut LdeBackend::cpu());
            assert!(verify_stark(&air, &proof, &config), "n={n}");
        }
    }

    #[test]
    fn wrong_claimed_result_rejected() {
        let config = FriConfig::standard();
        let (air, trace) = FibonacciAir::generate(64);
        let proof = prove_stark(&air, &trace, &config, &mut LdeBackend::cpu());

        // The verifier checks against an AIR claiming a different result:
        // the challenge re-derivation and boundary checks must fail it.
        let lying_air = FibonacciAir {
            n: 64,
            result: air.result + Goldilocks::ONE,
        };
        assert!(!verify_stark(&lying_air, &proof, &config));
    }

    #[test]
    fn tampered_trace_rejected() {
        let config = FriConfig::standard();
        let (air, mut trace) = FibonacciAir::generate(64);
        // Break one transition in the middle of the trace.
        trace[1][20] += Goldilocks::ONE;
        let proof = prove_stark(&air, &trace, &config, &mut LdeBackend::cpu());
        assert!(!verify_stark(&air, &proof, &config));
    }

    #[test]
    fn tampered_proof_rejected() {
        let config = FriConfig::standard();
        let (air, trace) = FibonacciAir::generate(32);
        let proof = prove_stark(&air, &trace, &config, &mut LdeBackend::cpu());
        assert!(verify_stark(&air, &proof, &config));

        let mut bad = proof.clone();
        bad.trace_root = Digest::zero();
        assert!(!verify_stark(&air, &bad, &config));

        let mut bad = proof.clone();
        bad.trace_openings[0][0].0.row[0] += Goldilocks::ONE;
        assert!(!verify_stark(&air, &bad, &config));

        let mut bad = proof;
        bad.fri_proof.final_codeword[0] += GoldilocksExt2::ONE;
        assert!(!verify_stark(&air, &bad, &config));
    }

    #[test]
    fn simulated_backend_identical_stark() {
        let config = FriConfig::standard();
        let (air, trace) = FibonacciAir::generate(128);
        let cpu = prove_stark(&air, &trace, &config, &mut LdeBackend::cpu());
        let mut sim = LdeBackend::simulated(presets::a100_nvlink(4));
        let simulated = prove_stark(&air, &trace, &config, &mut sim);
        assert_eq!(cpu.trace_root, simulated.trace_root);
        assert_eq!(cpu.fri_proof, simulated.fri_proof);
        assert!(verify_stark(&air, &simulated, &config));
        assert!(sim.sim_time_ns() > 0.0);
    }
}
