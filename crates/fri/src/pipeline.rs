//! The trace-commitment pipeline: LDE → Merkle → FRI.
//!
//! The STARK prover's opening move, and the workload the paper's
//! Goldilocks numbers model: every trace column is low-degree-extended
//! onto a `2^log_blowup`-times larger coset (one iNTT + one coset NTT per
//! column — the NTT-dominated phase), the extended matrix is Merkle-
//! committed row-wise, and a random linear combination of the columns is
//! proven low-degree with FRI.
//!
//! [`LdeBackend`] mirrors `unintt_zkp::Backend`: the CPU variant is the
//! functional reference; the simulated variant routes every LDE through
//! the [`UniNttEngine`] and charges Merkle hashing and folding to the
//! simulated clock, while producing bit-identical commitments.

use unintt_core::{RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks, GoldilocksExt2, PrimeField};
use unintt_gpu_sim::{FabricError, FieldSpec, KernelProfile, Machine, MachineConfig};

use crate::fri::{self, FriConfig, FriProof};
use crate::hash::{compress, hash_elements, permutations_for, Digest, ROUNDS, WIDTH};
use crate::merkle::{MerklePath, MerkleTree};

/// Field multiplications per sponge permutation (S-box + mixing), for the
/// simulator's hash-kernel profile.
const MULS_PER_PERMUTATION: u64 = (ROUNDS * (3 * WIDTH + WIDTH * WIDTH)) as u64;

/// Where the pipeline's heavy work runs.
#[allow(clippy::large_enum_variant)] // SimulatedLde is the hot variant; boxing buys nothing
pub enum LdeBackend {
    /// Plain host execution.
    Cpu,
    /// Simulated multi-GPU execution (bit-identical results).
    Simulated(SimulatedLde),
}

impl LdeBackend {
    /// A CPU backend.
    pub fn cpu() -> Self {
        LdeBackend::Cpu
    }

    /// A simulated backend on the given machine shape.
    pub fn simulated(cfg: MachineConfig) -> Self {
        LdeBackend::Simulated(SimulatedLde::new(cfg))
    }

    /// Low-degree extension: evaluations on `H_n` → evaluations on the
    /// coset `g·H_{n·2^log_blowup}`.
    pub fn lde(&mut self, evals: &[Goldilocks], log_blowup: u32) -> Vec<Goldilocks> {
        match self {
            LdeBackend::Cpu => {
                unintt_ntt::low_degree_extension(evals, log_blowup, Goldilocks::GENERATOR)
            }
            LdeBackend::Simulated(sim) => sim.lde(evals, log_blowup),
        }
    }

    /// Batched LDE of equal-length columns: on the simulated backend the
    /// whole batch shares passes and collectives (O5), as a production
    /// committer would submit a trace. The CPU backend extends the columns
    /// concurrently on the persistent worker pool.
    pub fn lde_batch(
        &mut self,
        columns: &[Vec<Goldilocks>],
        log_blowup: u32,
    ) -> Vec<Vec<Goldilocks>> {
        match self {
            LdeBackend::Cpu => cpu_lde_batch(columns, log_blowup),
            LdeBackend::Simulated(sim) => sim.lde_batch(columns, log_blowup),
        }
    }

    /// Charges a hash kernel of `permutations` sponge permutations.
    pub(crate) fn charge_hash(&mut self, permutations: u64) {
        if let LdeBackend::Simulated(sim) = self {
            sim.charge_hash(permutations);
        }
    }

    /// Charges an element-wise kernel (fold / linear combination).
    pub(crate) fn charge_pointwise(&mut self, n: usize, muls_per_elem: u64) {
        if let LdeBackend::Simulated(sim) = self {
            sim.charge_pointwise(n, muls_per_elem);
        }
    }

    /// Simulated makespan so far (0 for the CPU backend).
    pub fn sim_time_ns(&self) -> f64 {
        match self {
            LdeBackend::Cpu => 0.0,
            LdeBackend::Simulated(sim) => sim.machine.max_clock_ns(),
        }
    }

    /// The simulated machine, if any (to install fault plans or read
    /// traces); `None` for the CPU backend.
    pub fn machine_mut(&mut self) -> Option<&mut Machine> {
        match self {
            LdeBackend::Cpu => None,
            LdeBackend::Simulated(sim) => Some(&mut sim.machine),
        }
    }

    /// Fault-tolerant batched LDE, checkpointed at NTT-batch granularity:
    /// on `Err` the checkpoint keeps whatever batch completed
    /// (interpolation and/or evaluation), and a subsequent call resumes
    /// there instead of redoing the NTT work.
    pub fn try_lde_batch(
        &mut self,
        columns: &[Vec<Goldilocks>],
        log_blowup: u32,
        policy: &RecoveryPolicy,
        checkpoint: &mut CommitCheckpoint,
    ) -> Result<Vec<Vec<Goldilocks>>, FabricError> {
        if let Some(ldes) = &checkpoint.ldes {
            return Ok(ldes.clone());
        }
        let ldes = match self {
            LdeBackend::Cpu => cpu_lde_batch(columns, log_blowup),
            LdeBackend::Simulated(sim) => {
                sim.try_lde_batch(columns, log_blowup, policy, checkpoint)?
            }
        };
        checkpoint.coeffs = None; // superseded by the completed LDEs
        checkpoint.ldes = Some(ldes.clone());
        Ok(ldes)
    }
}

/// Host-side batched LDE: independent columns, one task per column on the
/// process-wide worker pool. Per-column results are bit-identical to the
/// serial loop (each column's extension is self-contained).
pub(crate) fn cpu_lde_batch(columns: &[Vec<Goldilocks>], log_blowup: u32) -> Vec<Vec<Goldilocks>> {
    let mut out: Vec<Vec<Goldilocks>> = vec![Vec::new(); columns.len()];
    unintt_exec::Executor::global().scope(|scope| {
        for (col, slot) in columns.iter().zip(out.iter_mut()) {
            scope.spawn(move || {
                *slot = unintt_ntt::low_degree_extension(col, log_blowup, Goldilocks::GENERATOR);
            });
        }
    });
    out
}

/// Resumable state for [`commit_trace_with_recovery`]: the outputs of the
/// completed NTT batches of the LDE phase. All later commitment phases
/// (Merkle, α-combination, FRI, openings) are host-side or charge-only and
/// cannot fault, so this is exactly the state worth keeping.
#[derive(Clone, Debug, Default)]
pub struct CommitCheckpoint {
    /// Column coefficients after the batched interpolation (phase 1a).
    coeffs: Option<Vec<Vec<Goldilocks>>>,
    /// Extended evaluations after the batched coset NTT (phase 1b).
    ldes: Option<Vec<Vec<Goldilocks>>>,
}

impl CommitCheckpoint {
    /// True once the interpolation batch has completed.
    pub fn has_coefficients(&self) -> bool {
        self.coeffs.is_some() || self.ldes.is_some()
    }

    /// True once the full LDE phase has completed.
    pub fn has_ldes(&self) -> bool {
        self.ldes.is_some()
    }
}

/// The simulated LDE backend.
pub struct SimulatedLde {
    machine: Machine,
    cfg: MachineConfig,
    engines: std::collections::HashMap<u32, UniNttEngine<Goldilocks>>,
}

impl SimulatedLde {
    fn new(cfg: MachineConfig) -> Self {
        Self {
            machine: Machine::new(cfg.clone(), FieldSpec::goldilocks()),
            cfg,
            engines: std::collections::HashMap::new(),
        }
    }

    fn engine(&mut self, log_n: u32) -> &UniNttEngine<Goldilocks> {
        let cfg = &self.cfg;
        self.engines.entry(log_n).or_insert_with(|| {
            let fs = FieldSpec::goldilocks();
            let mut opts = UniNttOptions::tuned_for(&fs);
            opts.natural_output = true;
            UniNttEngine::new(log_n, cfg, opts, fs)
        })
    }

    /// True when the trace is too small to shard across the configured
    /// GPUs — the LDE then runs the single-device path with no
    /// collectives (and nothing to fault or to split into stages).
    pub(crate) fn small_path(&self, log_n: u32) -> bool {
        log_n < 2 * self.cfg.num_gpus.trailing_zeros()
    }

    pub(crate) fn lde(&mut self, evals: &[Goldilocks], log_blowup: u32) -> Vec<Goldilocks> {
        let n = evals.len();
        assert!(n.is_power_of_two(), "length must be a power of two");
        let log_n = n.trailing_zeros();
        let g = self.cfg.num_gpus;
        let log_g = g.trailing_zeros();
        let big_log = log_n + log_blowup;

        // Too small to split: host math plus a single-device charge.
        if log_n < 2 * log_g {
            let out = unintt_ntt::low_degree_extension(evals, log_blowup, Goldilocks::GENERATOR);
            let mut p = KernelProfile::named("small-lde-single-device");
            let bytes = (out.len() * 8) as u64;
            p.global_bytes_read = bytes * big_log as u64;
            p.global_bytes_written = bytes * big_log as u64;
            p.field_muls = (out.len() as u64 / 2) * big_log as u64;
            let mut unused = ();
            self.machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&p);
            });
            return out;
        }

        // Interpolate on the small domain.
        let mut data = Sharded::distribute(evals, g, ShardLayout::NaturalBlocks);
        self.engine(log_n); // ensure it exists before mutable borrow games
        let engine_small = self.engines.get(&log_n).expect("just inserted").clone();
        engine_small.inverse(&mut self.machine, &mut data);
        let mut coeffs = data.collect();

        // Zero-pad (a host-side re-shard; the real system allocates the
        // larger buffer up front) and coset-evaluate on the big domain.
        coeffs.resize(n << log_blowup, Goldilocks::ZERO);
        self.engine(big_log);
        let engine_big = self.engines.get(&big_log).expect("just inserted").clone();
        let mut big = Sharded::distribute(&coeffs, g, ShardLayout::Cyclic);
        engine_big.coset_forward(&mut self.machine, &mut big, Goldilocks::GENERATOR);
        big.collect()
    }

    /// Batched LDE through the engine's batch paths.
    fn lde_batch(&mut self, columns: &[Vec<Goldilocks>], log_blowup: u32) -> Vec<Vec<Goldilocks>> {
        let n = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == n),
            "all columns must have equal length"
        );
        let log_n = n.trailing_zeros();
        let g = self.cfg.num_gpus;
        let log_g = g.trailing_zeros();
        if log_n < 2 * log_g {
            return columns.iter().map(|c| self.lde(c, log_blowup)).collect();
        }
        let big_log = log_n + log_blowup;

        // Interpolate all columns as one batch.
        let mut small_batch: Vec<Sharded<Goldilocks>> = columns
            .iter()
            .map(|c| Sharded::distribute(c, g, ShardLayout::NaturalBlocks))
            .collect();
        self.engine(log_n);
        let engine_small = self.engines.get(&log_n).expect("just inserted").clone();
        engine_small.inverse_batch(&mut self.machine, &mut small_batch);

        // Zero-pad and coset-evaluate, again as one batch.
        self.engine(big_log);
        let engine_big = self.engines.get(&big_log).expect("just inserted").clone();
        let mut big_batch: Vec<Sharded<Goldilocks>> = small_batch
            .iter()
            .map(|d| {
                let mut coeffs = d.collect();
                coeffs.resize(n << log_blowup, Goldilocks::ZERO);
                Sharded::distribute(&coeffs, g, ShardLayout::Cyclic)
            })
            .collect();
        engine_big.coset_forward_batch(&mut self.machine, &mut big_batch, Goldilocks::GENERATOR);
        big_batch.iter().map(Sharded::collect).collect()
    }

    /// Fault-tolerant batched LDE with per-batch checkpoints. The
    /// interpolation result is parked in `checkpoint` as soon as it
    /// completes, so a fault in the coset-evaluation batch only replays
    /// that batch.
    fn try_lde_batch(
        &mut self,
        columns: &[Vec<Goldilocks>],
        log_blowup: u32,
        policy: &RecoveryPolicy,
        checkpoint: &mut CommitCheckpoint,
    ) -> Result<Vec<Vec<Goldilocks>>, FabricError> {
        let n = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == n),
            "all columns must have equal length"
        );
        let log_n = n.trailing_zeros();
        if self.small_path(log_n) {
            // Single-device path: no collectives, nothing can fault.
            return Ok(columns.iter().map(|c| self.lde(c, log_blowup)).collect());
        }

        // Phase 1a: batched interpolation, or resume from the checkpoint.
        let coeffs: Vec<Vec<Goldilocks>> = match checkpoint.coeffs.take() {
            Some(c) => c,
            None => self.try_interp_batch(columns, policy)?,
        };
        checkpoint.coeffs = Some(coeffs.clone());

        // Phase 1b: zero-pad and coset-evaluate as one batch.
        self.try_coset_batch(&coeffs, log_blowup, policy)
    }

    /// Phase 1a of the batched LDE on its own: interpolate every column
    /// as one batch. The staged committer runs this as its first DAG
    /// stage. Requires the multi-device path (`!self.small_path(..)`).
    pub(crate) fn try_interp_batch(
        &mut self,
        columns: &[Vec<Goldilocks>],
        policy: &RecoveryPolicy,
    ) -> Result<Vec<Vec<Goldilocks>>, FabricError> {
        let n = columns[0].len();
        let log_n = n.trailing_zeros();
        let g = self.cfg.num_gpus;
        let mut small_batch: Vec<Sharded<Goldilocks>> = columns
            .iter()
            .map(|c| Sharded::distribute(c, g, ShardLayout::NaturalBlocks))
            .collect();
        self.engine(log_n);
        let engine_small = self.engines.get(&log_n).expect("just inserted").clone();
        engine_small.try_inverse_batch(&mut self.machine, &mut small_batch, policy)?;
        Ok(small_batch.iter().map(Sharded::collect).collect())
    }

    /// Phase 1b of the batched LDE on its own: zero-pad the coefficient
    /// columns and coset-evaluate them as one batch on the blown-up
    /// domain. The staged committer runs this as its second DAG stage.
    pub(crate) fn try_coset_batch(
        &mut self,
        coeffs: &[Vec<Goldilocks>],
        log_blowup: u32,
        policy: &RecoveryPolicy,
    ) -> Result<Vec<Vec<Goldilocks>>, FabricError> {
        let n = coeffs[0].len();
        let big_log = n.trailing_zeros() + log_blowup;
        let g = self.cfg.num_gpus;
        self.engine(big_log);
        let engine_big = self.engines.get(&big_log).expect("just inserted").clone();
        let mut big_batch: Vec<Sharded<Goldilocks>> = coeffs
            .iter()
            .map(|c| {
                let mut padded = c.clone();
                padded.resize(n << log_blowup, Goldilocks::ZERO);
                Sharded::distribute(&padded, g, ShardLayout::Cyclic)
            })
            .collect();
        engine_big.try_coset_forward_batch(
            &mut self.machine,
            &mut big_batch,
            Goldilocks::GENERATOR,
            policy,
        )?;
        Ok(big_batch.iter().map(Sharded::collect).collect())
    }

    fn charge_hash(&mut self, permutations: u64) {
        let devices = self.machine.num_devices() as u64;
        let mut p = KernelProfile::named("sponge-hash");
        p.blocks = (permutations / 32).max(1);
        p.field_muls = permutations * MULS_PER_PERMUTATION / devices;
        p.global_bytes_read = permutations * (WIDTH as u64) * 8 / devices;
        p.global_bytes_written = permutations * 32 / devices;
        let mut dummy: Vec<()> = vec![(); devices as usize];
        self.machine.parallel_phase(&mut dummy, |ctx, _, _| {
            ctx.launch(&p);
        });
    }

    fn charge_pointwise(&mut self, n: usize, muls_per_elem: u64) {
        let devices = self.machine.num_devices() as u64;
        let mut p = KernelProfile::named("pointwise");
        p.blocks = (n as u64 / 256).max(1);
        p.field_muls = n as u64 * muls_per_elem / devices;
        p.global_bytes_read = (n * 8) as u64 / devices;
        p.global_bytes_written = (n * 8) as u64 / devices;
        let mut dummy: Vec<()> = vec![(); devices as usize];
        self.machine.parallel_phase(&mut dummy, |ctx, _, _| {
            ctx.launch(&p);
        });
    }
}

/// A committed trace: the Merkle root of the LDE matrix, the FRI
/// low-degree proof of a random column combination, and the trace
/// openings binding the two together at the FRI query positions.
#[derive(Clone, Debug)]
pub struct TraceCommitment {
    /// Root of the row-wise Merkle tree over the LDE matrix.
    pub trace_root: Digest,
    /// FRI proof for the α-combination of the columns.
    pub fri_proof: FriProof,
    /// Trace-matrix openings at each FRI query's outermost (low, high)
    /// positions.
    pub trace_openings: Vec<(MerklePath, MerklePath)>,
    /// Number of trace rows before extension.
    pub n: usize,
    /// Number of columns.
    pub width: usize,
}

impl TraceCommitment {
    /// FNV-1a fingerprint of the commitment's binding content (trace
    /// root, FRI layer roots, final codeword, shape) — a stable 64-bit
    /// value for comparing commitments across scheduling paths (the
    /// DAG-pipelined and monolithic committers must produce equal
    /// digests). Openings are derived deterministically from these, so
    /// they need not be hashed.
    pub fn content_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.n as u64);
        mix(self.width as u64);
        for w in self.trace_root.0 {
            mix(w.value());
        }
        for root in &self.fri_proof.layer_roots {
            for w in root.0 {
                mix(w.value());
            }
        }
        for v in &self.fri_proof.final_codeword {
            mix(v.a.value());
            mix(v.b.value());
        }
        h
    }
}

/// Derives the (extension-field, ~128-bit) column-combination challenge
/// from the trace root.
pub(crate) fn combination_challenge(root: &Digest) -> GoldilocksExt2 {
    let d = compress(root, &hash_elements(&[Goldilocks::from_u64(0xa1fa)]));
    GoldilocksExt2::new(d.0[0], d.0[1])
}

/// Commits to a trace (all columns the same power-of-two length).
///
/// # Panics
///
/// Panics if the trace is empty, ragged, or too short for the FRI
/// configuration.
pub fn commit_trace(
    columns: &[Vec<Goldilocks>],
    config: &FriConfig,
    backend: &mut LdeBackend,
) -> TraceCommitment {
    commit_trace_with_recovery(
        columns,
        config,
        backend,
        &RecoveryPolicy::none(),
        &mut CommitCheckpoint::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`commit_trace`]: transient fabric faults are absorbed
/// per `policy`, and on a permanent failure the `checkpoint` keeps every
/// completed NTT batch so a subsequent call (after the operator repairs or
/// degrades the machine) resumes from the last completed batch instead of
/// restarting the proof. On success the checkpoint is reset.
///
/// # Errors
///
/// Returns the [`FabricError`] that outlived the policy's retries.
///
/// # Panics
///
/// Panics under the same conditions as [`commit_trace`].
pub fn commit_trace_with_recovery(
    columns: &[Vec<Goldilocks>],
    config: &FriConfig,
    backend: &mut LdeBackend,
    policy: &RecoveryPolicy,
    checkpoint: &mut CommitCheckpoint,
) -> Result<TraceCommitment, FabricError> {
    assert!(!columns.is_empty(), "trace must have at least one column");
    let n = columns[0].len();
    assert!(
        columns.iter().all(|c| c.len() == n),
        "all trace columns must have equal length"
    );

    // 1. LDE every column as one batch (the NTT-heavy phase — the only
    // one that touches the fabric, hence the only one checkpointed).
    let ldes: Vec<Vec<Goldilocks>> =
        backend.try_lde_batch(columns, config.log_blowup, policy, checkpoint)?;
    let big_n = n << config.log_blowup;

    // 2. Row-wise Merkle commitment of the extended matrix.
    let rows: Vec<Vec<Goldilocks>> = (0..big_n)
        .map(|r| ldes.iter().map(|col| col[r]).collect())
        .collect();
    backend.charge_hash(big_n as u64 * permutations_for(columns.len()));
    backend.charge_hash(big_n as u64 - 1); // interior nodes
    let tree = MerkleTree::commit(&rows);
    let trace_root = tree.root();

    // 3. Random linear combination of the columns, into the extension
    // field (α has ~128 bits of entropy; see the fri module docs).
    let alpha = combination_challenge(&trace_root);
    let mut combined = vec![GoldilocksExt2::ZERO; big_n];
    let mut coeff = GoldilocksExt2::ONE;
    for lde in &ldes {
        for (acc, &v) in combined.iter_mut().zip(lde) {
            *acc += coeff * v;
        }
        coeff *= alpha;
    }
    // An ext×base product costs two base multiplies.
    backend.charge_pointwise(big_n * columns.len(), 2);

    // 4. FRI low-degree proof of the combination.
    backend.charge_hash(fri::prove_hash_permutations(config, big_n));
    backend.charge_pointwise(2 * big_n, 6); // all (extension) fold layers
    let fri_proof = fri::prove(config, combined, Goldilocks::GENERATOR);

    // 5. Bind: open the trace matrix at every FRI query's outer positions.
    let trace_openings: Vec<(MerklePath, MerklePath)> = fri_proof
        .queries
        .iter()
        .map(|q| {
            let first = &q.rounds[0];
            (
                tree.open(&rows, first.low.index),
                tree.open(&rows, first.high.index),
            )
        })
        .collect();

    *checkpoint = CommitCheckpoint::default();
    Ok(TraceCommitment {
        trace_root,
        fri_proof,
        trace_openings,
        n,
        width: columns.len(),
    })
}

/// Verifies a trace commitment.
pub fn verify_trace(commitment: &TraceCommitment, config: &FriConfig) -> bool {
    let big_n = commitment.n << config.log_blowup;
    if !fri::verify(config, &commitment.fri_proof, big_n, Goldilocks::GENERATOR) {
        return false;
    }
    if commitment.trace_openings.len() != commitment.fri_proof.queries.len() {
        return false;
    }

    // Bind the FRI codeword to the trace commitment.
    let alpha = combination_challenge(&commitment.trace_root);
    for (query, (low_open, high_open)) in commitment
        .fri_proof
        .queries
        .iter()
        .zip(&commitment.trace_openings)
    {
        let first = &query.rounds[0];
        for (open, fri_path) in [(low_open, &first.low), (high_open, &first.high)] {
            if open.index != fri_path.index
                || open.row.len() != commitment.width
                || fri_path.row.len() != 2
                || !open.verify(&commitment.trace_root)
            {
                return false;
            }
            // Σ αⁱ·row[i] must equal the FRI layer-0 (extension) value.
            let mut acc = GoldilocksExt2::ZERO;
            let mut coeff = GoldilocksExt2::ONE;
            for &v in &open.row {
                acc += coeff * v;
                coeff *= alpha;
            }
            if acc != GoldilocksExt2::new(fri_path.row[0], fri_path.row[1]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_gpu_sim::presets;

    fn random_trace(n: usize, width: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..width)
            .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn commit_verify_roundtrip_cpu() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 3, 1);
        let commitment = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        assert!(verify_trace(&commitment, &config));
    }

    #[test]
    fn simulated_backend_identical_commitment() {
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 2);
        let cpu = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        let mut sim = LdeBackend::simulated(presets::a100_nvlink(4));
        let simulated = commit_trace(&trace, &config, &mut sim);
        assert_eq!(cpu.trace_root, simulated.trace_root);
        assert_eq!(cpu.fri_proof, simulated.fri_proof);
        assert!(verify_trace(&simulated, &config));
        assert!(sim.sim_time_ns() > 0.0);
    }

    #[test]
    fn tampered_root_rejected() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 2, 3);
        let mut commitment = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        commitment.trace_root = Digest::zero();
        assert!(!verify_trace(&commitment, &config));
    }

    #[test]
    fn tampered_trace_opening_rejected() {
        let config = FriConfig::standard();
        let trace = random_trace(64, 2, 4);
        let mut commitment = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        commitment.trace_openings[0].0.row[0] += Goldilocks::ONE;
        assert!(!verify_trace(&commitment, &config));
    }

    #[test]
    fn single_column_trace() {
        let config = FriConfig::standard();
        let trace = random_trace(32, 1, 5);
        let commitment = commit_trace(&trace, &config, &mut LdeBackend::cpu());
        assert!(verify_trace(&commitment, &config));
    }

    #[test]
    fn recovery_under_dropped_collectives_matches_cpu() {
        use unintt_gpu_sim::{FaultPlan, FaultRates};
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 7);
        let cpu = commit_trace(&trace, &config, &mut LdeBackend::cpu());

        let mut sim = LdeBackend::simulated(presets::a100_nvlink(4));
        sim.machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::random(99, FaultRates::transfers_only(0.2)));
        let mut ckpt = CommitCheckpoint::default();
        let committed = commit_trace_with_recovery(
            &trace,
            &config,
            &mut sim,
            &RecoveryPolicy::default(),
            &mut ckpt,
        )
        .expect("retries should absorb 20% drop/corrupt rates");
        assert_eq!(committed.trace_root, cpu.trace_root);
        assert_eq!(committed.fri_proof, cpu.fri_proof);
        assert!(!ckpt.has_coefficients(), "checkpoint resets on success");
    }

    #[test]
    fn checkpoint_resumes_after_permanent_failure() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let config = FriConfig::standard();
        let trace = random_trace(256, 4, 8);
        let cpu = commit_trace(&trace, &config, &mut LdeBackend::cpu());

        // Probe a clean run to find the total collective count, then drop
        // the *last* collective (part of the coset-evaluation batch).
        let mut probe = LdeBackend::simulated(presets::a100_nvlink(4));
        let _ = commit_trace(&trace, &config, &mut probe);
        let total = probe.machine_mut().unwrap().collective_seq();
        assert!(
            total >= 2,
            "need at least two collectives to stage the test"
        );

        let mut sim = LdeBackend::simulated(presets::a100_nvlink(4));
        sim.machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                seq: total - 1,
                kind: FaultKind::Drop,
            }]));
        let no_retries = RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        };
        let mut ckpt = CommitCheckpoint::default();
        let err = commit_trace_with_recovery(&trace, &config, &mut sim, &no_retries, &mut ckpt)
            .unwrap_err();
        assert!(err.is_transient(), "a drop is transient: {err}");
        assert!(
            ckpt.has_coefficients() && !ckpt.has_ldes(),
            "interpolation batch must have been checkpointed"
        );

        // Resume: the drop was consumed, the interpolation is skipped.
        let committed =
            commit_trace_with_recovery(&trace, &config, &mut sim, &no_retries, &mut ckpt)
                .expect("resume from checkpoint");
        assert_eq!(committed.trace_root, cpu.trace_root);
        assert_eq!(committed.fri_proof, cpu.fri_proof);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_trace_rejected() {
        let config = FriConfig::standard();
        let mut trace = random_trace(32, 2, 6);
        trace[1].pop();
        let _ = commit_trace(&trace, &config, &mut LdeBackend::cpu());
    }
}
