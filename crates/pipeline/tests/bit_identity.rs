//! The DAG scheduler's core promise, fuzzed: stage-scheduled proofs are
//! bit-identical to the monolithic provers across seeds, circuit sizes,
//! scheduling modes, stream counts, and injected stage faults.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_core::RecoveryPolicy;
use unintt_ff::{Field, Goldilocks};
use unintt_fri::{commit_trace, FriConfig, LdeBackend};
use unintt_gpu_sim::{presets, FaultEvent, FaultKind, FaultPlan};
use unintt_pipeline::{DagExecutor, InterferenceModel, ProofPipeline};
use unintt_zkp::{prove, random_circuit, setup, Backend};

fn plonk_fixture(seed: u64, gates: usize) -> (unintt_zkp::ProvingKey, unintt_zkp::Witness, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (circuit, witness) = random_circuit(gates, &mut rng);
    let (pk, _vk) = setup(&circuit, &mut rng);
    let mono = prove(&pk, &witness, &[], &mut Backend::cpu());
    (pk, witness, mono.content_digest())
}

fn plonk_pipe(pk: &unintt_zkp::ProvingKey, witness: &unintt_zkp::Witness) -> ProofPipeline {
    let backend = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
    ProofPipeline::plonk(pk, witness, &[], backend)
}

fn stark_pipe(trace: &[Vec<Goldilocks>], config: &FriConfig) -> ProofPipeline {
    ProofPipeline::stark(
        trace.to_vec(),
        *config,
        LdeBackend::simulated(presets::a100_nvlink(4)),
    )
}

fn random_trace(n: usize, width: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..width)
        .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
        .collect()
}

/// Runs every stage of `pipe` fault-free and returns how many collectives
/// its primary machine issued (0 on collective-free paths).
fn collective_budget(mut pipe: ProofPipeline) -> u64 {
    let policy = RecoveryPolicy::none();
    for idx in pipe.dag().topo_order() {
        pipe.run_stage(idx, &policy).expect("fault-free probe");
    }
    pipe.machine_mut().map_or(0, |m| m.collective_seq())
}

/// Installs a scripted drop at collective `seq`, runs the pipeline under
/// the interleaving executor (which replays only the faulted stage), and
/// returns (digest, retries).
fn run_with_drop(mut pipe: ProofPipeline, seq: u64) -> (u64, u32) {
    pipe.machine_mut()
        .expect("simulated backend")
        .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
            seq,
            kind: FaultKind::Drop,
        }]));
    let report = DagExecutor::interleaved(2).run(vec![pipe]);
    (report.runs[0].digest, report.runs[0].retries)
}

/// Same as [`run_with_drop`], but under the streamed executor with `k`
/// queues per lane.
fn run_with_drop_streamed(mut pipe: ProofPipeline, seq: u64, k: usize) -> (u64, u32) {
    pipe.machine_mut()
        .expect("simulated backend")
        .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
            seq,
            kind: FaultKind::Drop,
        }]));
    let report = DagExecutor::interleaved(2)
        .with_streams(k, InterferenceModel::default_model())
        .run(vec![pipe]);
    (report.runs[0].digest, report.runs[0].retries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// DAG-scheduled PLONK proofs equal the CPU monolithic prover
    /// byte-for-byte, in both executor modes, across seeds and sizes.
    #[test]
    fn plonk_dag_bit_identical(seed in any::<u64>(), gates in 8usize..64) {
        let (pk, witness, mono_digest) = plonk_fixture(seed, gates);
        for exec in [DagExecutor::interleaved(2), DagExecutor::monolithic(2)] {
            let report = exec.run(vec![plonk_pipe(&pk, &witness)]);
            prop_assert_eq!(report.runs[0].digest, mono_digest);
            prop_assert_eq!(report.runs[0].retries, 0);
        }
    }

    /// A scripted collective drop at an arbitrary point fails exactly one
    /// stage; the executor replays just that stage and the proof still
    /// matches the monolithic bytes.
    #[test]
    fn plonk_dag_survives_injected_stage_faults(
        seed in any::<u64>(),
        gates in 8usize..64,
        fault_frac in 0.0f64..1.0,
    ) {
        let (pk, witness, mono_digest) = plonk_fixture(seed, gates);
        let total = collective_budget(plonk_pipe(&pk, &witness));
        prop_assume!(total > 0);
        let seq = ((total as f64 * fault_frac) as u64).min(total - 1);
        let (digest, retries) = run_with_drop(plonk_pipe(&pk, &witness), seq);
        prop_assert_eq!(digest, mono_digest);
        prop_assert!(retries >= 1, "the drop must have faulted a stage");
    }

    /// DAG-scheduled STARK commits equal the CPU monolithic committer
    /// across trace shapes, including the small single-device path.
    #[test]
    fn stark_dag_bit_identical(seed in any::<u64>(), log_n in 3u32..8, width in 1usize..5) {
        let trace = random_trace(1usize << log_n, width, seed);
        let config = FriConfig::standard();
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu()).content_digest();
        for exec in [DagExecutor::interleaved(2), DagExecutor::monolithic(2)] {
            let report = exec.run(vec![stark_pipe(&trace, &config)]);
            prop_assert_eq!(report.runs[0].digest, mono);
        }
    }

    /// Same fault-replay property for STARK commits (sizes above the
    /// single-device cutoff, so collectives exist to drop).
    #[test]
    fn stark_dag_survives_injected_stage_faults(
        seed in any::<u64>(),
        log_n in 4u32..8,
        width in 1usize..5,
        fault_frac in 0.0f64..1.0,
    ) {
        let trace = random_trace(1usize << log_n, width, seed);
        let config = FriConfig::standard();
        let mono = commit_trace(&trace, &config, &mut LdeBackend::cpu()).content_digest();
        let total = collective_budget(stark_pipe(&trace, &config));
        prop_assume!(total > 0);
        let seq = ((total as f64 * fault_frac) as u64).min(total - 1);
        let (digest, retries) = run_with_drop(stark_pipe(&trace, &config), seq);
        prop_assert_eq!(digest, mono);
        prop_assert!(retries >= 1, "the drop must have faulted a stage");
    }

    /// Stream-overlapped execution is bit-identical to the monolithic
    /// provers at every queue count 1..=4, for both proof shapes. The
    /// interference model only stretches clocks; it never touches data.
    #[test]
    fn stream_overlap_bit_identical_across_queue_counts(
        seed in any::<u64>(),
        gates in 8usize..48,
        log_n in 3u32..7,
        width in 1usize..4,
    ) {
        let (pk, witness, plonk_digest) = plonk_fixture(seed, gates);
        let trace = random_trace(1usize << log_n, width, seed ^ 0x57_12ea);
        let config = FriConfig::standard();
        let stark_digest = commit_trace(&trace, &config, &mut LdeBackend::cpu()).content_digest();
        for k in 1usize..=4 {
            for model in [InterferenceModel::default_model(), InterferenceModel::conservative()] {
                let report = DagExecutor::interleaved(2)
                    .with_streams(k, model)
                    .run(vec![plonk_pipe(&pk, &witness), stark_pipe(&trace, &config)]);
                prop_assert_eq!(report.runs[0].digest, plonk_digest, "plonk, k={}", k);
                prop_assert_eq!(report.runs[1].digest, stark_digest, "stark, k={}", k);
            }
        }
    }

    /// Fault replay composes with stream overlap: a scripted collective
    /// drop under 2..=4 queues per lane still converges to the
    /// monolithic bytes after replaying only the faulted stage.
    #[test]
    fn stream_overlap_survives_injected_stage_faults(
        seed in any::<u64>(),
        gates in 8usize..48,
        fault_frac in 0.0f64..1.0,
        k in 2usize..=4,
    ) {
        let (pk, witness, mono_digest) = plonk_fixture(seed, gates);
        let total = collective_budget(plonk_pipe(&pk, &witness));
        prop_assume!(total > 0);
        let seq = ((total as f64 * fault_frac) as u64).min(total - 1);
        let (digest, retries) = run_with_drop_streamed(plonk_pipe(&pk, &witness), seq, k);
        prop_assert_eq!(digest, mono_digest);
        prop_assert!(retries >= 1, "the drop must have faulted a stage");
    }
}
