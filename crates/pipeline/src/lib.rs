//! Whole-proof pipelining: typed stage DAGs over the staged provers.
//!
//! The monolithic provers (`unintt_zkp::prove_with_recovery`,
//! `unintt_fri::commit_trace_with_recovery`) run a proof as one opaque
//! charge against one device lease. This crate decomposes them into
//! explicit stage graphs and schedules *stages* instead:
//!
//! * [`dag`] — [`ProofDag`]: validated stage graphs (acyclic, with
//!   transcript barriers totally ordered so every schedule produces a
//!   bit-identical transcript).
//! * [`proof`] — [`ProofPipeline`]: one enum over the staged PLONK
//!   prover and the staged STARK committer, with a uniform
//!   run-one-stage interface and a stable output digest.
//! * [`exec`] — [`DagExecutor`]: a deterministic executor that
//!   interleaves ready stages from many concurrent proofs across
//!   device lanes, against a monolithic baseline mode.
//!
//! The serving layer (`unintt_serve`) builds on the same pieces to
//! dispatch DAG proof jobs stage-by-stage under lease scheduling;
//! experiment E19 measures the occupancy and throughput gains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod exec;
pub mod proof;

pub use dag::{DagError, ProofDag, StageKind, StageNode};
pub use exec::{DagExecutor, ExecMode, ExecReport, ProofRun};
pub use proof::ProofPipeline;
pub use unintt_gpu_sim::{InterferenceModel, ResourceClass};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};
    use unintt_fri::{FriConfig, LdeBackend};
    use unintt_gpu_sim::presets;
    use unintt_zkp::{random_circuit, setup, Backend};

    fn plonk_pipe(seed: u64, gates: usize, gpus: usize) -> ProofPipeline {
        let mut rng = StdRng::seed_from_u64(seed);
        let (circuit, witness) = random_circuit(gates, &mut rng);
        let (pk, _vk) = setup(&circuit, &mut rng);
        let backend = Backend::simulated(presets::a100_nvlink(gpus), presets::a100_nvlink(gpus));
        ProofPipeline::plonk(&pk, &witness, &[], backend)
    }

    fn stark_pipe(seed: u64, log_n: u32, columns: usize, gpus: usize) -> ProofPipeline {
        let mut rng = StdRng::seed_from_u64(seed);
        let cols: Vec<Vec<Goldilocks>> = (0..columns)
            .map(|_| {
                (0..1usize << log_n)
                    .map(|_| Goldilocks::random(&mut rng))
                    .collect()
            })
            .collect();
        let backend = LdeBackend::simulated(presets::a100_nvlink(gpus));
        ProofPipeline::stark(cols, FriConfig::standard(), backend)
    }

    fn digests(report: &ExecReport) -> Vec<u64> {
        report.runs.iter().map(|r| r.digest).collect()
    }

    #[test]
    fn both_generators_emit_valid_dags() {
        let plonk = plonk_pipe(11, 24, 4).dag();
        assert_eq!(plonk.len(), unintt_zkp::PLONK_STAGES);
        let stark = stark_pipe(12, 5, 3, 4).dag();
        assert!(stark.len() > 4);
        // Validation already ran inside dag(); also exercise topo_order.
        assert_eq!(plonk.topo_order().len(), plonk.len());
        assert_eq!(stark.topo_order().len(), stark.len());
    }

    #[test]
    fn interleaved_matches_monolithic_digests_and_is_faster() {
        let mk = || {
            vec![
                plonk_pipe(21, 24, 4),
                plonk_pipe(22, 16, 4),
                stark_pipe(23, 5, 3, 4),
            ]
        };
        let mono = DagExecutor::monolithic(2).run(mk());
        let inter = DagExecutor::interleaved(2).run(mk());
        assert_eq!(digests(&mono), digests(&inter));
        // Same total device work either way; interleaving only
        // repacks it onto lanes.
        assert!((mono.busy_ns - inter.busy_ns).abs() < 1e-6);
        assert!(
            inter.makespan_ns <= mono.makespan_ns + 1e-6,
            "interleaved {} > monolithic {}",
            inter.makespan_ns,
            mono.makespan_ns
        );
        assert!(inter.occupancy() >= mono.occupancy() - 1e-9);
    }

    #[test]
    fn executor_is_deterministic() {
        let mk = || vec![plonk_pipe(31, 20, 2), stark_pipe(32, 4, 2, 2)];
        let a = DagExecutor::interleaved(3).run(mk());
        let b = DagExecutor::interleaved(3).run(mk());
        assert_eq!(digests(&a), digests(&b));
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.busy_ns, b.busy_ns);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.completed_ns, rb.completed_ns);
            assert_eq!(ra.stage_ns, rb.stage_ns);
        }
    }

    #[test]
    fn streamed_matches_serialized_digests_and_is_no_slower() {
        let mk = || {
            vec![
                plonk_pipe(51, 24, 4),
                plonk_pipe(52, 16, 4),
                stark_pipe(53, 5, 3, 4),
            ]
        };
        let serial = DagExecutor::interleaved(2).run(mk());
        let streamed = DagExecutor::interleaved(2)
            .with_streams(2, InterferenceModel::default_model())
            .run(mk());
        assert_eq!(digests(&serial), digests(&streamed));
        assert_eq!(streamed.streams_per_lane, 2);
        assert!(
            streamed.makespan_ns <= serial.makespan_ns + 1e-6,
            "streamed {} > serialized {}",
            streamed.makespan_ns,
            serial.makespan_ns
        );
        // Co-residency stretches stages, so residency time grows —
        // but never past the worst-case pairwise factor.
        let worst = InterferenceModel::default_model()
            .compute_memory
            .max(InterferenceModel::default_model().mixed_other);
        assert!(streamed.busy_ns >= serial.busy_ns - 1e-6);
        assert!(streamed.busy_ns <= serial.busy_ns * worst + 1e-6);
    }

    #[test]
    fn one_stream_per_lane_reproduces_serialized_clocks_exactly() {
        let mk = || vec![plonk_pipe(61, 20, 2), stark_pipe(62, 4, 2, 2)];
        let serial = DagExecutor::interleaved(2).run(mk());
        let one = DagExecutor::interleaved(2)
            .with_streams(1, InterferenceModel::conservative())
            .run(mk());
        assert_eq!(digests(&serial), digests(&one));
        assert_eq!(serial.makespan_ns, one.makespan_ns);
        assert_eq!(serial.busy_ns, one.busy_ns);
        for (a, b) in serial.runs.iter().zip(&one.runs) {
            assert_eq!(a.completed_ns, b.completed_ns);
            assert_eq!(a.stage_ns, b.stage_ns);
        }
    }

    #[test]
    fn streamed_stage_attribution_covers_all_busy_time() {
        let report = DagExecutor::interleaved(2)
            .with_streams(3, InterferenceModel::default_model())
            .run(vec![plonk_pipe(71, 24, 4), stark_pipe(72, 5, 3, 4)]);
        let attributed: f64 = report.runs.iter().flat_map(|r| r.stage_ns.values()).sum();
        assert!((attributed - report.busy_ns).abs() < 1e-6);
    }

    #[test]
    fn stage_attribution_covers_all_busy_time() {
        let report = DagExecutor::interleaved(2).run(vec![plonk_pipe(41, 24, 4)]);
        let attributed: f64 = report.runs[0].stage_ns.values().sum();
        assert!((attributed - report.busy_ns).abs() < 1e-6);
        // Barriers never appear in the attribution map.
        assert!(!report.runs[0].stage_ns.contains_key(&StageKind::Barrier));
        assert!(report.runs[0].stage_ns.contains_key(&StageKind::Ntt));
        assert!(report.runs[0].stage_ns.contains_key(&StageKind::Msm));
    }
}
