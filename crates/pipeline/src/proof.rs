//! A uniform front over the stage-decomposed provers: one enum that a
//! scheduler can drive without caring whether the proof underneath is a
//! PLONK proof (`unintt_zkp::StagedProver`) or a STARK trace commitment
//! (`unintt_fri::StagedCommit`).

use unintt_core::RecoveryPolicy;
use unintt_ff::{Bn254Fr, Goldilocks};
use unintt_gpu_sim::{FabricError, Machine};
use unintt_zkp::{Backend, Proof, ProvingKey, StagedProver, Witness};

use unintt_fri::{FriConfig, LdeBackend, StagedCommit, TraceCommitment};

use crate::dag::{ProofDag, StageKind, StageNode};

/// One proof being executed stage-by-stage.
pub enum ProofPipeline {
    /// A staged PLONK proof (boxed: a prover holds the full witness and
    /// every intermediate polynomial inline).
    Plonk(Box<StagedProver>),
    /// A staged STARK trace commitment (boxed for the same reason: the
    /// committer carries its FRI config and layer state inline).
    Stark(Box<StagedCommit>),
}

impl ProofPipeline {
    /// Starts a staged PLONK proof (see [`unintt_zkp::StagedProver`]).
    pub fn plonk(
        pk: &ProvingKey,
        witness: &Witness,
        public_inputs: &[Bn254Fr],
        backend: Backend,
    ) -> Self {
        ProofPipeline::Plonk(Box::new(StagedProver::new(
            pk,
            witness,
            public_inputs,
            backend,
        )))
    }

    /// Starts a staged STARK commitment (see [`unintt_fri::StagedCommit`]).
    pub fn stark(columns: Vec<Vec<Goldilocks>>, config: FriConfig, backend: LdeBackend) -> Self {
        ProofPipeline::Stark(Box::new(StagedCommit::new(columns, config, backend)))
    }

    /// The proof's validated stage DAG.
    ///
    /// # Panics
    ///
    /// Panics if a staged prover ever emits an invalid graph — that
    /// would be a bug in this workspace, and the validity unit suite
    /// pins both generators.
    pub fn dag(&self) -> ProofDag {
        let nodes: Vec<StageNode> = match self {
            ProofPipeline::Plonk(p) => p
                .stage_descs()
                .into_iter()
                .map(|d| StageNode {
                    name: d.name,
                    kind: StageKind::from_tag(d.kind).expect("known stage kind"),
                    deps: d.deps,
                })
                .collect(),
            ProofPipeline::Stark(s) => s
                .stage_descs()
                .into_iter()
                .map(|d| StageNode {
                    name: d.name,
                    kind: StageKind::from_tag(d.kind).expect("known stage kind"),
                    deps: d.deps,
                })
                .collect(),
        };
        ProofDag::new(nodes).expect("staged provers emit valid DAGs")
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        match self {
            ProofPipeline::Plonk(p) => p.num_stages(),
            ProofPipeline::Stark(s) => s.num_stages(),
        }
    }

    /// Whether stage `idx` has completed.
    pub fn stage_done(&self, idx: usize) -> bool {
        match self {
            ProofPipeline::Plonk(p) => p.stage_done(idx),
            ProofPipeline::Stark(s) => s.stage_done(idx),
        }
    }

    /// Whether every stage has completed.
    pub fn is_complete(&self) -> bool {
        match self {
            ProofPipeline::Plonk(p) => p.is_complete(),
            ProofPipeline::Stark(s) => s.is_complete(),
        }
    }

    /// Runs one stage, returning the simulated nanoseconds it charged.
    ///
    /// # Errors
    ///
    /// Propagates any [`FabricError`] that outlives `policy`'s retries;
    /// the stage stays not-done and can be re-run.
    pub fn run_stage(&mut self, idx: usize, policy: &RecoveryPolicy) -> Result<f64, FabricError> {
        match self {
            ProofPipeline::Plonk(p) => p.run_stage(idx, policy),
            ProofPipeline::Stark(s) => s.run_stage(idx, policy),
        }
    }

    /// Total simulated nanoseconds across the proof's private machines.
    pub fn sim_total_ns(&self) -> f64 {
        match self {
            ProofPipeline::Plonk(p) => p.sim_total_ns(),
            ProofPipeline::Stark(s) => s.sim_total_ns(),
        }
    }

    /// Stable 64-bit fingerprint of the finished output (`None` until
    /// complete). Equal to the monolithic path's digest by construction.
    pub fn output_digest(&self) -> Option<u64> {
        match self {
            ProofPipeline::Plonk(p) => p.proof().map(Proof::content_digest),
            ProofPipeline::Stark(s) => s.commitment().map(TraceCommitment::content_digest),
        }
    }

    /// The finished PLONK proof, if this is a complete PLONK pipeline.
    pub fn proof(&self) -> Option<&Proof> {
        match self {
            ProofPipeline::Plonk(p) => p.proof(),
            ProofPipeline::Stark(_) => None,
        }
    }

    /// The finished trace commitment, if this is a complete STARK
    /// pipeline.
    pub fn commitment(&self) -> Option<&TraceCommitment> {
        match self {
            ProofPipeline::Plonk(_) => None,
            ProofPipeline::Stark(s) => s.commitment(),
        }
    }

    /// The proof's primary simulated machine (the NTT machine for PLONK,
    /// the LDE machine for STARK); `None` on CPU backends. Used by tests
    /// to install fault plans.
    pub fn machine_mut(&mut self) -> Option<&mut Machine> {
        match self {
            ProofPipeline::Plonk(p) => p.backend_mut().ntt_machine_mut(),
            ProofPipeline::Stark(s) => s.backend_mut().machine_mut(),
        }
    }
}
