//! A deterministic DAG executor over a fixed set of device lanes.
//!
//! [`DagExecutor`] schedules ready stages from multiple concurrent
//! proofs onto `lanes` simulated leases. In [`ExecMode::Interleaved`]
//! it dispatches the ready stage with the earliest availability
//! (ties broken by proof index, then stage index) to the
//! earliest-free lane — so the MSM stage of one proof overlaps the NTT
//! stage of another, and independent stages *within* one proof (the
//! three wire commits; z-commit against the quotient LDE) run on
//! different lanes at the same simulated time. In
//! [`ExecMode::Monolithic`] each proof holds one lane for its entire
//! serialized stage chain — the pre-DAG behavior, kept as the baseline.
//!
//! Everything is driven by the proofs' own simulated-clock deltas; the
//! executor is pure bookkeeping and fully deterministic, so two runs
//! over the same inputs produce identical reports.
//!
//! Stage faults: a transient [`FabricError`] is retried in place up to
//! `max_retries` times per attempt batch; the wasted attempt time stays
//! charged to the lane (the hardware really ran), which is exactly the
//! "replay only the affected subgraph" failover story — completed
//! stages never re-run.

use std::collections::BTreeMap;

use unintt_core::RecoveryPolicy;
use unintt_gpu_sim::{InterferenceModel, StreamSet};

use crate::dag::StageKind;
use crate::proof::ProofPipeline;

/// How the executor maps proofs onto lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Stage-level scheduling with cross-proof interleaving.
    Interleaved,
    /// One lane per proof for its whole serialized stage chain.
    Monolithic,
}

/// The record of one executed proof.
#[derive(Clone, Debug)]
pub struct ProofRun {
    /// Stable fingerprint of the finished output.
    pub digest: u64,
    /// Simulated completion time of the final stage.
    pub completed_ns: f64,
    /// Transient stage retries absorbed during execution.
    pub retries: u32,
    /// Lane-occupied simulated time attributed per stage kind.
    pub stage_ns: BTreeMap<StageKind, f64>,
}

/// The executor's summary.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Per-proof outcomes, in submission order.
    pub runs: Vec<ProofRun>,
    /// Simulated time at which the last stage completed.
    pub makespan_ns: f64,
    /// Total lane-occupied simulated time.
    pub busy_ns: f64,
    /// Number of lanes.
    pub lanes: usize,
    /// Compute queues per lane (1 = serialized stage dispatch).
    pub streams_per_lane: usize,
    /// Scheduling mode.
    pub mode: ExecMode,
}

impl ExecReport {
    /// Mean lane occupancy over the makespan. In serialized dispatch
    /// (`streams_per_lane == 1`) this is 0..=1; with stream overlap it
    /// counts stage residency, so two co-resident stages push it above
    /// 1.0 — that surplus *is* the overlap win.
    pub fn occupancy(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.busy_ns / (self.makespan_ns * self.lanes as f64)
    }

    /// Proofs per simulated second.
    pub fn proofs_per_s(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.runs.len() as f64 / (self.makespan_ns * 1e-9)
    }
}

/// Deterministic multi-proof stage scheduler (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct DagExecutor {
    /// Number of device lanes (leases).
    pub lanes: usize,
    /// Scheduling mode.
    pub mode: ExecMode,
    /// Transient-fault retries per stage before giving up.
    pub max_retries: u32,
    /// Compute queues per lane. `1` (the default) reproduces the
    /// historical serialized dispatch exactly; `2..=4` lets stages of
    /// *different* [`unintt_gpu_sim::ResourceClass`]es co-reside on one
    /// lane with the interference-model slowdown. Outputs are
    /// bit-identical at every queue count — only the clocks move.
    pub streams_per_lane: usize,
    /// Pairwise slowdown factors applied to co-resident stages.
    pub interference: InterferenceModel,
}

impl DagExecutor {
    /// An interleaving executor over `lanes` lanes.
    pub fn interleaved(lanes: usize) -> Self {
        Self {
            lanes,
            mode: ExecMode::Interleaved,
            max_retries: 4,
            streams_per_lane: 1,
            interference: InterferenceModel::default_model(),
        }
    }

    /// A monolithic (whole-proof-per-lane) baseline executor.
    pub fn monolithic(lanes: usize) -> Self {
        Self {
            lanes,
            mode: ExecMode::Monolithic,
            max_retries: 4,
            streams_per_lane: 1,
            interference: InterferenceModel::default_model(),
        }
    }

    /// Returns `self` with `streams` compute queues per lane under the
    /// given interference model. Only meaningful in
    /// [`ExecMode::Interleaved`]; the monolithic baseline always holds
    /// a whole lane per proof.
    pub fn with_streams(mut self, streams: usize, model: InterferenceModel) -> Self {
        self.streams_per_lane = streams;
        self.interference = model;
        self
    }

    /// Runs every pipeline to completion.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, or if a stage fails permanently (a
    /// non-transient fabric error, or a transient one that outlives
    /// `max_retries` — executor callers model repair at a higher
    /// level).
    pub fn run(&self, mut pipelines: Vec<ProofPipeline>) -> ExecReport {
        assert!(self.lanes > 0, "need at least one lane");
        assert!(
            (1..=unintt_core::MAX_STREAMS_PER_LEASE as usize).contains(&self.streams_per_lane),
            "streams_per_lane must be 1..={}, got {}",
            unintt_core::MAX_STREAMS_PER_LEASE,
            self.streams_per_lane
        );
        match self.mode {
            ExecMode::Interleaved if self.streams_per_lane > 1 => {
                self.run_interleaved_streams(&mut pipelines)
            }
            ExecMode::Interleaved => self.run_interleaved(&mut pipelines),
            ExecMode::Monolithic => self.run_monolithic(&mut pipelines),
        }
    }

    /// The earliest-free lane under serialized dispatch.
    ///
    /// Tie-breaking is load-bearing for determinism and is fixed as:
    /// earliest `lane_free` time first, then the **lowest lane index**.
    /// `Iterator::min_by` returns the first minimum and lanes are
    /// scanned in index order, so two lanes free at the same instant
    /// always resolve to the lower index. Combined with stage selection
    /// (earliest availability, then proof index, then stage index) the
    /// whole dispatch order is a pure function of the input set.
    fn earliest_free_lane(lane_free: &[f64]) -> usize {
        (0..lane_free.len())
            .min_by(|&a, &b| lane_free[a].total_cmp(&lane_free[b]))
            .expect("lanes > 0")
    }

    /// Runs one stage with in-place transient retries, returning the
    /// total simulated time consumed (successful attempt plus any
    /// wasted faulted attempts) and the retry count.
    fn run_stage_with_retries(
        &self,
        pipe: &mut ProofPipeline,
        stage: usize,
        policy: &RecoveryPolicy,
    ) -> (f64, u32) {
        let mut elapsed = 0.0;
        let mut retries = 0u32;
        loop {
            let before = pipe.sim_total_ns();
            match pipe.run_stage(stage, policy) {
                Ok(ns) => return (elapsed + ns, retries),
                Err(e) => {
                    elapsed += pipe.sim_total_ns() - before;
                    assert!(
                        e.is_transient() && retries < self.max_retries,
                        "permanent stage failure: {e}"
                    );
                    retries += 1;
                }
            }
        }
    }

    fn run_interleaved(&self, pipelines: &mut [ProofPipeline]) -> ExecReport {
        let policy = RecoveryPolicy::none();
        let dags: Vec<_> = pipelines.iter().map(ProofPipeline::dag).collect();
        let mut completion: Vec<Vec<Option<f64>>> =
            dags.iter().map(|d| vec![None; d.len()]).collect();
        let mut stage_ns: Vec<BTreeMap<StageKind, f64>> = vec![BTreeMap::new(); pipelines.len()];
        let mut retries = vec![0u32; pipelines.len()];
        let mut lane_free = vec![0.0f64; self.lanes];
        let mut busy = 0.0f64;

        loop {
            // Cascade barriers: they complete inline at their
            // dependencies' completion time, occupying no lane.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for (p, dag) in dags.iter().enumerate() {
                    for (s, node) in dag.nodes().iter().enumerate() {
                        if completion[p][s].is_some() || !node.kind.is_barrier() {
                            continue;
                        }
                        if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                            continue;
                        }
                        let avail = node
                            .deps
                            .iter()
                            .map(|&d| completion[p][d].expect("dep done"))
                            .fold(0.0f64, f64::max);
                        let (ns, _) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
                        debug_assert_eq!(ns, 0.0, "barriers are charge-free");
                        completion[p][s] = Some(avail);
                        progressed = true;
                    }
                }
            }

            // The ready charged stage with the earliest availability.
            let mut best: Option<(f64, usize, usize)> = None;
            for (p, dag) in dags.iter().enumerate() {
                for (s, node) in dag.nodes().iter().enumerate() {
                    if completion[p][s].is_some() || node.kind.is_barrier() {
                        continue;
                    }
                    if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                        continue;
                    }
                    let avail = node
                        .deps
                        .iter()
                        .map(|&d| completion[p][d].expect("dep done"))
                        .fold(0.0f64, f64::max);
                    let cand = (avail, p, s);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((avail, p, s)) = best else {
                break; // every stage of every proof is done
            };

            // Earliest-free lane, lowest index on ties.
            let lane = Self::earliest_free_lane(&lane_free);
            let start = avail.max(lane_free[lane]);
            let (elapsed, r) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
            retries[p] += r;
            lane_free[lane] = start + elapsed;
            busy += elapsed;
            completion[p][s] = Some(start + elapsed);
            *stage_ns[p].entry(dags[p].nodes()[s].kind).or_insert(0.0) += elapsed;
        }

        self.report(pipelines, &completion, stage_ns, retries, busy)
    }

    /// The multi-queue variant of [`Self::run_interleaved`]: each lane
    /// holds a [`StreamSet`] of `streams_per_lane` typed queues, so a
    /// compute-bound MSM and a memory-bound NTT co-reside on one lane
    /// and both advance at the interference-model rate instead of
    /// serializing. Same-class stages still serialize (the set rejects
    /// them at admission).
    ///
    /// Bit-identity is preserved because stage *execution* is
    /// functional and happens at dispatch: `run_stage_with_retries`
    /// mutates the proof state the instant a stage is admitted, in DAG
    /// dependency order, and transcript barriers are totally ordered —
    /// the overlap model only stretches the simulated clocks.
    fn run_interleaved_streams(&self, pipelines: &mut [ProofPipeline]) -> ExecReport {
        let policy = RecoveryPolicy::none();
        let dags: Vec<_> = pipelines.iter().map(ProofPipeline::dag).collect();
        let mut completion: Vec<Vec<Option<f64>>> =
            dags.iter().map(|d| vec![None; d.len()]).collect();
        let mut dispatched: Vec<Vec<bool>> = dags.iter().map(|d| vec![false; d.len()]).collect();
        let mut stage_ns: Vec<BTreeMap<StageKind, f64>> = vec![BTreeMap::new(); pipelines.len()];
        let mut retries = vec![0u32; pipelines.len()];
        let mut lanes: Vec<StreamSet> = (0..self.lanes)
            .map(|_| StreamSet::new(self.streams_per_lane, self.interference))
            .collect();
        // In-flight key -> (proof, stage, admit time). Keys are a plain
        // dispatch counter, unique across the run.
        let mut inflight: BTreeMap<u64, (usize, usize, f64)> = BTreeMap::new();
        let mut next_key = 0u64;
        let mut busy = 0.0f64;
        let mut now = 0.0f64;

        loop {
            // Cascade barriers exactly as the serial path does: inline
            // at their dependencies' completion time, occupying no
            // queue. (Committed completions are all <= now, so a
            // barrier never completes in the future.)
            let mut progressed = true;
            while progressed {
                progressed = false;
                for (p, dag) in dags.iter().enumerate() {
                    for (s, node) in dag.nodes().iter().enumerate() {
                        if completion[p][s].is_some() || !node.kind.is_barrier() {
                            continue;
                        }
                        if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                            continue;
                        }
                        let avail = node
                            .deps
                            .iter()
                            .map(|&d| completion[p][d].expect("dep done"))
                            .fold(0.0f64, f64::max);
                        let (ns, _) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
                        debug_assert_eq!(ns, 0.0, "barriers are charge-free");
                        completion[p][s] = Some(avail);
                        progressed = true;
                    }
                }
            }

            // Admit every placeable ready stage at `now`, best-first by
            // (availability, proof index, stage index) — the serial
            // path's stage order. A stage whose class no lane can
            // accept is skipped this round; a complementary-class stage
            // behind it may still be placed (work conservation).
            let mut ready: Vec<(f64, usize, usize)> = Vec::new();
            for (p, dag) in dags.iter().enumerate() {
                for (s, node) in dag.nodes().iter().enumerate() {
                    if dispatched[p][s] || completion[p][s].is_some() || node.kind.is_barrier() {
                        continue;
                    }
                    if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                        continue;
                    }
                    let avail = node
                        .deps
                        .iter()
                        .map(|&d| completion[p][d].expect("dep done"))
                        .fold(0.0f64, f64::max);
                    ready.push((avail, p, s));
                }
            }
            ready.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            let had_ready = !ready.is_empty();
            for (_, p, s) in ready {
                let class = dags[p].nodes()[s].kind.resource_class();
                // Accepting lane with the lowest interference on its
                // current residents; lowest lane index on ties.
                let lane = (0..lanes.len())
                    .filter(|&l| lanes[l].can_accept(class))
                    .min_by(|&a, &b| {
                        lanes[a]
                            .join_penalty(class)
                            .total_cmp(&lanes[b].join_penalty(class))
                    });
                let Some(lane) = lane else { continue };
                let (elapsed, r) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
                retries[p] += r;
                lanes[lane].admit(next_key, class, elapsed);
                inflight.insert(next_key, (p, s, now));
                dispatched[p][s] = true;
                next_key += 1;
            }

            // Advance to the next completion and commit everything
            // finishing there, in (lane, queue) order.
            let t = lanes
                .iter()
                .filter_map(StreamSet::earliest_completion_ns)
                .min_by(f64::total_cmp);
            let Some(t) = t else {
                assert!(!had_ready, "ready stages but idle lanes could not accept");
                break; // nothing in flight and nothing ready: done
            };
            now = t;
            for lane in &mut lanes {
                lane.advance_to(now);
                for fin in lane.take_finished() {
                    let (p, s, start) = inflight.remove(&fin.key).expect("known in-flight key");
                    let stretched = now - start;
                    completion[p][s] = Some(now);
                    busy += stretched;
                    *stage_ns[p].entry(dags[p].nodes()[s].kind).or_insert(0.0) += stretched;
                }
            }
        }

        assert!(inflight.is_empty(), "stages left in flight at drain");
        self.report(pipelines, &completion, stage_ns, retries, busy)
    }

    fn run_monolithic(&self, pipelines: &mut [ProofPipeline]) -> ExecReport {
        let policy = RecoveryPolicy::none();
        let dags: Vec<_> = pipelines.iter().map(ProofPipeline::dag).collect();
        let mut completion: Vec<Vec<Option<f64>>> =
            dags.iter().map(|d| vec![None; d.len()]).collect();
        let mut stage_ns: Vec<BTreeMap<StageKind, f64>> = vec![BTreeMap::new(); pipelines.len()];
        let mut retries = vec![0u32; pipelines.len()];
        let mut lane_free = vec![0.0f64; self.lanes];
        let mut busy = 0.0f64;

        for (p, pipe) in pipelines.iter_mut().enumerate() {
            let lane = Self::earliest_free_lane(&lane_free);
            let mut t = lane_free[lane];
            for s in dags[p].topo_order() {
                let (elapsed, r) = self.run_stage_with_retries(pipe, s, &policy);
                retries[p] += r;
                t += elapsed;
                busy += elapsed;
                completion[p][s] = Some(t);
                *stage_ns[p].entry(dags[p].nodes()[s].kind).or_insert(0.0) += elapsed;
            }
            lane_free[lane] = t;
        }

        self.report(pipelines, &completion, stage_ns, retries, busy)
    }

    fn report(
        &self,
        pipelines: &[ProofPipeline],
        completion: &[Vec<Option<f64>>],
        stage_ns: Vec<BTreeMap<StageKind, f64>>,
        retries: Vec<u32>,
        busy: f64,
    ) -> ExecReport {
        let mut runs = Vec::with_capacity(pipelines.len());
        let mut makespan = 0.0f64;
        for (p, pipe) in pipelines.iter().enumerate() {
            assert!(pipe.is_complete(), "executor left proof {p} unfinished");
            let completed_ns = completion[p]
                .iter()
                .map(|c| c.expect("all stages done"))
                .fold(0.0f64, f64::max);
            makespan = makespan.max(completed_ns);
            runs.push(ProofRun {
                digest: pipe.output_digest().expect("complete proof has a digest"),
                completed_ns,
                retries: retries[p],
                stage_ns: stage_ns[p].clone(),
            });
        }
        ExecReport {
            runs,
            makespan_ns: makespan,
            busy_ns: busy,
            lanes: self.lanes,
            streams_per_lane: self.streams_per_lane,
            mode: self.mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_free_lane_breaks_ties_by_lowest_index() {
        // Distinct minimum wins regardless of position.
        assert_eq!(DagExecutor::earliest_free_lane(&[5.0, 2.0, 3.0]), 1);
        // Exact tie: first (lowest-index) minimum wins — this is the
        // documented contract, backed by Iterator::min_by returning
        // the first minimal element.
        assert_eq!(DagExecutor::earliest_free_lane(&[4.0, 1.0, 1.0, 1.0]), 1);
        assert_eq!(DagExecutor::earliest_free_lane(&[0.0, 0.0]), 0);
        // -0.0 and 0.0 are distinct under total_cmp: -0.0 sorts first.
        assert_eq!(DagExecutor::earliest_free_lane(&[0.0, -0.0]), 1);
    }

    #[test]
    #[should_panic(expected = "streams_per_lane must be")]
    fn out_of_range_stream_count_is_rejected() {
        let exec = DagExecutor::interleaved(2).with_streams(9, InterferenceModel::default_model());
        exec.run(Vec::new());
    }
}
