//! A deterministic DAG executor over a fixed set of device lanes.
//!
//! [`DagExecutor`] schedules ready stages from multiple concurrent
//! proofs onto `lanes` simulated leases. In [`ExecMode::Interleaved`]
//! it dispatches the ready stage with the earliest availability
//! (ties broken by proof index, then stage index) to the
//! earliest-free lane — so the MSM stage of one proof overlaps the NTT
//! stage of another, and independent stages *within* one proof (the
//! three wire commits; z-commit against the quotient LDE) run on
//! different lanes at the same simulated time. In
//! [`ExecMode::Monolithic`] each proof holds one lane for its entire
//! serialized stage chain — the pre-DAG behavior, kept as the baseline.
//!
//! Everything is driven by the proofs' own simulated-clock deltas; the
//! executor is pure bookkeeping and fully deterministic, so two runs
//! over the same inputs produce identical reports.
//!
//! Stage faults: a transient [`FabricError`] is retried in place up to
//! `max_retries` times per attempt batch; the wasted attempt time stays
//! charged to the lane (the hardware really ran), which is exactly the
//! "replay only the affected subgraph" failover story — completed
//! stages never re-run.

use std::collections::BTreeMap;

use unintt_core::RecoveryPolicy;

use crate::dag::StageKind;
use crate::proof::ProofPipeline;

/// How the executor maps proofs onto lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Stage-level scheduling with cross-proof interleaving.
    Interleaved,
    /// One lane per proof for its whole serialized stage chain.
    Monolithic,
}

/// The record of one executed proof.
#[derive(Clone, Debug)]
pub struct ProofRun {
    /// Stable fingerprint of the finished output.
    pub digest: u64,
    /// Simulated completion time of the final stage.
    pub completed_ns: f64,
    /// Transient stage retries absorbed during execution.
    pub retries: u32,
    /// Lane-occupied simulated time attributed per stage kind.
    pub stage_ns: BTreeMap<StageKind, f64>,
}

/// The executor's summary.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Per-proof outcomes, in submission order.
    pub runs: Vec<ProofRun>,
    /// Simulated time at which the last stage completed.
    pub makespan_ns: f64,
    /// Total lane-occupied simulated time.
    pub busy_ns: f64,
    /// Number of lanes.
    pub lanes: usize,
    /// Scheduling mode.
    pub mode: ExecMode,
}

impl ExecReport {
    /// Mean lane occupancy over the makespan (0..=1).
    pub fn occupancy(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.busy_ns / (self.makespan_ns * self.lanes as f64)
    }

    /// Proofs per simulated second.
    pub fn proofs_per_s(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.runs.len() as f64 / (self.makespan_ns * 1e-9)
    }
}

/// Deterministic multi-proof stage scheduler (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct DagExecutor {
    /// Number of device lanes (leases).
    pub lanes: usize,
    /// Scheduling mode.
    pub mode: ExecMode,
    /// Transient-fault retries per stage before giving up.
    pub max_retries: u32,
}

impl DagExecutor {
    /// An interleaving executor over `lanes` lanes.
    pub fn interleaved(lanes: usize) -> Self {
        Self {
            lanes,
            mode: ExecMode::Interleaved,
            max_retries: 4,
        }
    }

    /// A monolithic (whole-proof-per-lane) baseline executor.
    pub fn monolithic(lanes: usize) -> Self {
        Self {
            lanes,
            mode: ExecMode::Monolithic,
            max_retries: 4,
        }
    }

    /// Runs every pipeline to completion.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, or if a stage fails permanently (a
    /// non-transient fabric error, or a transient one that outlives
    /// `max_retries` — executor callers model repair at a higher
    /// level).
    pub fn run(&self, mut pipelines: Vec<ProofPipeline>) -> ExecReport {
        assert!(self.lanes > 0, "need at least one lane");
        match self.mode {
            ExecMode::Interleaved => self.run_interleaved(&mut pipelines),
            ExecMode::Monolithic => self.run_monolithic(&mut pipelines),
        }
    }

    /// Runs one stage with in-place transient retries, returning the
    /// total simulated time consumed (successful attempt plus any
    /// wasted faulted attempts) and the retry count.
    fn run_stage_with_retries(
        &self,
        pipe: &mut ProofPipeline,
        stage: usize,
        policy: &RecoveryPolicy,
    ) -> (f64, u32) {
        let mut elapsed = 0.0;
        let mut retries = 0u32;
        loop {
            let before = pipe.sim_total_ns();
            match pipe.run_stage(stage, policy) {
                Ok(ns) => return (elapsed + ns, retries),
                Err(e) => {
                    elapsed += pipe.sim_total_ns() - before;
                    assert!(
                        e.is_transient() && retries < self.max_retries,
                        "permanent stage failure: {e}"
                    );
                    retries += 1;
                }
            }
        }
    }

    fn run_interleaved(&self, pipelines: &mut [ProofPipeline]) -> ExecReport {
        let policy = RecoveryPolicy::none();
        let dags: Vec<_> = pipelines.iter().map(ProofPipeline::dag).collect();
        let mut completion: Vec<Vec<Option<f64>>> =
            dags.iter().map(|d| vec![None; d.len()]).collect();
        let mut stage_ns: Vec<BTreeMap<StageKind, f64>> = vec![BTreeMap::new(); pipelines.len()];
        let mut retries = vec![0u32; pipelines.len()];
        let mut lane_free = vec![0.0f64; self.lanes];
        let mut busy = 0.0f64;

        loop {
            // Cascade barriers: they complete inline at their
            // dependencies' completion time, occupying no lane.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for (p, dag) in dags.iter().enumerate() {
                    for (s, node) in dag.nodes().iter().enumerate() {
                        if completion[p][s].is_some() || !node.kind.is_barrier() {
                            continue;
                        }
                        if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                            continue;
                        }
                        let avail = node
                            .deps
                            .iter()
                            .map(|&d| completion[p][d].expect("dep done"))
                            .fold(0.0f64, f64::max);
                        let (ns, _) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
                        debug_assert_eq!(ns, 0.0, "barriers are charge-free");
                        completion[p][s] = Some(avail);
                        progressed = true;
                    }
                }
            }

            // The ready charged stage with the earliest availability.
            let mut best: Option<(f64, usize, usize)> = None;
            for (p, dag) in dags.iter().enumerate() {
                for (s, node) in dag.nodes().iter().enumerate() {
                    if completion[p][s].is_some() || node.kind.is_barrier() {
                        continue;
                    }
                    if node.deps.iter().any(|&d| completion[p][d].is_none()) {
                        continue;
                    }
                    let avail = node
                        .deps
                        .iter()
                        .map(|&d| completion[p][d].expect("dep done"))
                        .fold(0.0f64, f64::max);
                    let cand = (avail, p, s);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((avail, p, s)) = best else {
                break; // every stage of every proof is done
            };

            // Earliest-free lane, lowest index on ties.
            let lane = (0..self.lanes)
                .min_by(|&a, &b| lane_free[a].total_cmp(&lane_free[b]))
                .expect("lanes > 0");
            let start = avail.max(lane_free[lane]);
            let (elapsed, r) = self.run_stage_with_retries(&mut pipelines[p], s, &policy);
            retries[p] += r;
            lane_free[lane] = start + elapsed;
            busy += elapsed;
            completion[p][s] = Some(start + elapsed);
            *stage_ns[p].entry(dags[p].nodes()[s].kind).or_insert(0.0) += elapsed;
        }

        self.report(pipelines, &completion, stage_ns, retries, busy)
    }

    fn run_monolithic(&self, pipelines: &mut [ProofPipeline]) -> ExecReport {
        let policy = RecoveryPolicy::none();
        let dags: Vec<_> = pipelines.iter().map(ProofPipeline::dag).collect();
        let mut completion: Vec<Vec<Option<f64>>> =
            dags.iter().map(|d| vec![None; d.len()]).collect();
        let mut stage_ns: Vec<BTreeMap<StageKind, f64>> = vec![BTreeMap::new(); pipelines.len()];
        let mut retries = vec![0u32; pipelines.len()];
        let mut lane_free = vec![0.0f64; self.lanes];
        let mut busy = 0.0f64;

        for (p, pipe) in pipelines.iter_mut().enumerate() {
            let lane = (0..self.lanes)
                .min_by(|&a, &b| lane_free[a].total_cmp(&lane_free[b]))
                .expect("lanes > 0");
            let mut t = lane_free[lane];
            for s in dags[p].topo_order() {
                let (elapsed, r) = self.run_stage_with_retries(pipe, s, &policy);
                retries[p] += r;
                t += elapsed;
                busy += elapsed;
                completion[p][s] = Some(t);
                *stage_ns[p].entry(dags[p].nodes()[s].kind).or_insert(0.0) += elapsed;
            }
            lane_free[lane] = t;
        }

        self.report(pipelines, &completion, stage_ns, retries, busy)
    }

    fn report(
        &self,
        pipelines: &[ProofPipeline],
        completion: &[Vec<Option<f64>>],
        stage_ns: Vec<BTreeMap<StageKind, f64>>,
        retries: Vec<u32>,
        busy: f64,
    ) -> ExecReport {
        let mut runs = Vec::with_capacity(pipelines.len());
        let mut makespan = 0.0f64;
        for (p, pipe) in pipelines.iter().enumerate() {
            assert!(pipe.is_complete(), "executor left proof {p} unfinished");
            let completed_ns = completion[p]
                .iter()
                .map(|c| c.expect("all stages done"))
                .fold(0.0f64, f64::max);
            makespan = makespan.max(completed_ns);
            runs.push(ProofRun {
                digest: pipe.output_digest().expect("complete proof has a digest"),
                completed_ns,
                retries: retries[p],
                stage_ns: stage_ns[p].clone(),
            });
        }
        ExecReport {
            runs,
            makespan_ns: makespan,
            busy_ns: busy,
            lanes: self.lanes,
            mode: self.mode,
        }
    }
}
