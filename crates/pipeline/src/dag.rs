//! Typed proof-stage DAGs and their validity rules.
//!
//! A [`ProofDag`] is the schedulable shape of one proof: nodes are
//! stages tagged with a [`StageKind`] (the resource they occupy), edges
//! are data dependencies. Validation enforces the two invariants every
//! downstream scheduler relies on:
//!
//! * **acyclicity** — a topological order exists, so "run ready stages"
//!   always terminates;
//! * **totally ordered barriers** — transcript barriers are the points
//!   where Fiat–Shamir challenges are drawn, so any two barriers must be
//!   reachability-ordered. With that, *every* valid execution order
//!   drives the transcript through the identical state sequence, which
//!   is what makes DAG-scheduled proofs bit-identical to monolithic
//!   ones.

use std::fmt;

use unintt_gpu_sim::ResourceClass;

/// The resource a stage occupies while it runs (used for scheduling and
/// for per-kind time attribution in traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// An NTT batch (interpolation, coset evaluation, LDE).
    Ntt,
    /// A multi-scalar multiplication (commitment).
    Msm,
    /// A hashing kernel (Merkle commit).
    Hash,
    /// An element-wise kernel (evaluations, combinations).
    Pointwise,
    /// One FRI fold layer (hash + fold kernels).
    Fold,
    /// A transcript barrier / assembly point: host-only, charge-free,
    /// never occupies a device lease.
    Barrier,
}

impl StageKind {
    /// Parses the tag strings used by `unintt_zkp::StageDesc` and
    /// `unintt_fri::staged::StageDesc`.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "ntt" => Some(StageKind::Ntt),
            "msm" => Some(StageKind::Msm),
            "hash" => Some(StageKind::Hash),
            "pointwise" => Some(StageKind::Pointwise),
            "fold" => Some(StageKind::Fold),
            "barrier" => Some(StageKind::Barrier),
            _ => None,
        }
    }

    /// Stable lowercase name (the inverse of [`StageKind::from_tag`]).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Ntt => "ntt",
            StageKind::Msm => "msm",
            StageKind::Hash => "hash",
            StageKind::Pointwise => "pointwise",
            StageKind::Fold => "fold",
            StageKind::Barrier => "barrier",
        }
    }

    /// Barriers run inline at their dependencies' completion time and
    /// never occupy a lease.
    pub fn is_barrier(self) -> bool {
        self == StageKind::Barrier
    }

    /// The interference [`ResourceClass`] this stage occupies when
    /// co-resident with another stage on a multi-queue device (see
    /// [`unintt_gpu_sim::StreamSet`]): MSMs are compute-bound, NTTs are
    /// memory/shuffle-bound, and the remaining charged kinds sit in
    /// between. Barriers are charge-free and never occupy a queue; they
    /// map to [`ResourceClass::Mixed`] only so the function is total.
    pub fn resource_class(self) -> ResourceClass {
        match self {
            StageKind::Msm => ResourceClass::Compute,
            StageKind::Ntt => ResourceClass::Memory,
            StageKind::Hash | StageKind::Pointwise | StageKind::Fold | StageKind::Barrier => {
                ResourceClass::Mixed
            }
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage of a proof DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageNode {
    /// Display name, stable across runs (used in traces and tables).
    pub name: String,
    /// The resource kind.
    pub kind: StageKind,
    /// Indices of stages that must complete before this one starts.
    pub deps: Vec<usize>,
}

/// Why a stage graph was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// A dependency index points outside the node list.
    DepOutOfRange {
        /// The offending node.
        node: usize,
        /// The out-of-range dependency index.
        dep: usize,
    },
    /// A node depends on itself.
    SelfDependency {
        /// The offending node.
        node: usize,
    },
    /// The graph has a dependency cycle (no topological order exists).
    Cycle {
        /// A node on the cycle.
        node: usize,
    },
    /// Two transcript barriers are not reachability-ordered, so
    /// different execution orders could drive the transcript through
    /// different states.
    UnorderedBarriers {
        /// First barrier.
        a: usize,
        /// Second barrier.
        b: usize,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DepOutOfRange { node, dep } => {
                write!(f, "stage {node} depends on out-of-range stage {dep}")
            }
            DagError::SelfDependency { node } => {
                write!(f, "stage {node} depends on itself")
            }
            DagError::Cycle { node } => {
                write!(f, "dependency cycle through stage {node}")
            }
            DagError::UnorderedBarriers { a, b } => write!(
                f,
                "transcript barriers {a} and {b} are not reachability-ordered"
            ),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated proof-stage DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofDag {
    nodes: Vec<StageNode>,
}

impl ProofDag {
    /// Validates and wraps a node list.
    ///
    /// # Errors
    ///
    /// Returns a [`DagError`] if any dependency is out of range or
    /// self-referential, the graph is cyclic, or two barrier nodes are
    /// not reachability-ordered.
    pub fn new(nodes: Vec<StageNode>) -> Result<Self, DagError> {
        // Edge sanity.
        for (i, node) in nodes.iter().enumerate() {
            for &d in &node.deps {
                if d >= nodes.len() {
                    return Err(DagError::DepOutOfRange { node: i, dep: d });
                }
                if d == i {
                    return Err(DagError::SelfDependency { node: i });
                }
            }
        }

        // Kahn's algorithm: acyclicity. An edge d → i exists for each
        // dep d of node i.
        let mut indegree = vec![0usize; nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            indegree[i] = node.deps.len();
            for &d in &node.deps {
                dependents[d].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            seen += 1;
            for &v in &dependents[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != nodes.len() {
            let node = (0..nodes.len())
                .find(|&i| indegree[i] > 0)
                .expect("some node is on a cycle");
            return Err(DagError::Cycle { node });
        }

        // Barriers must be totally ordered by reachability.
        let barriers: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind.is_barrier())
            .map(|(i, _)| i)
            .collect();
        let reach = |from: usize, to: usize| -> bool {
            // DFS along dependency edges from `to` back toward `from`.
            let mut stack = vec![to];
            let mut visited = vec![false; nodes.len()];
            while let Some(u) = stack.pop() {
                if u == from {
                    return true;
                }
                if std::mem::replace(&mut visited[u], true) {
                    continue;
                }
                stack.extend(nodes[u].deps.iter().copied());
            }
            false
        };
        for (ai, &a) in barriers.iter().enumerate() {
            for &b in &barriers[ai + 1..] {
                if !reach(a, b) && !reach(b, a) {
                    return Err(DagError::UnorderedBarriers { a, b });
                }
            }
        }

        Ok(Self { nodes })
    }

    /// The stage nodes.
    pub fn nodes(&self) -> &[StageNode] {
        &self.nodes
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no stages.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of stages whose dependencies are all done and that are
    /// not themselves done, in index order.
    pub fn ready(&self, done: &[bool]) -> Vec<usize> {
        assert_eq!(done.len(), self.nodes.len(), "done-mask length mismatch");
        (0..self.nodes.len())
            .filter(|&i| !done[i] && self.nodes[i].deps.iter().all(|&d| done[d]))
            .collect()
    }

    /// A deterministic topological order (lowest ready index first).
    pub fn topo_order(&self) -> Vec<usize> {
        let mut done = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        while order.len() < self.nodes.len() {
            let next = *self
                .ready(&done)
                .first()
                .expect("validated DAGs always have a ready stage");
            done[next] = true;
            order.push(next);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, kind: StageKind, deps: &[usize]) -> StageNode {
        StageNode {
            name: name.to_string(),
            kind,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn chain_validates_and_orders() {
        let dag = ProofDag::new(vec![
            node("a", StageKind::Ntt, &[]),
            node("b", StageKind::Barrier, &[0]),
            node("c", StageKind::Msm, &[1]),
        ])
        .unwrap();
        assert_eq!(dag.topo_order(), vec![0, 1, 2]);
        assert_eq!(dag.ready(&[true, false, false]), vec![1]);
    }

    #[test]
    fn cycle_rejected() {
        let err = ProofDag::new(vec![
            node("a", StageKind::Ntt, &[1]),
            node("b", StageKind::Ntt, &[0]),
        ])
        .unwrap_err();
        assert!(matches!(err, DagError::Cycle { .. }));
    }

    #[test]
    fn self_dependency_rejected() {
        let err = ProofDag::new(vec![node("a", StageKind::Ntt, &[0])]).unwrap_err();
        assert_eq!(err, DagError::SelfDependency { node: 0 });
    }

    #[test]
    fn out_of_range_dep_rejected() {
        let err = ProofDag::new(vec![node("a", StageKind::Ntt, &[7])]).unwrap_err();
        assert_eq!(err, DagError::DepOutOfRange { node: 0, dep: 7 });
    }

    #[test]
    fn unordered_barriers_rejected() {
        // Two barriers hanging off the same root with no path between
        // them: a scheduler could draw challenges in either order.
        let err = ProofDag::new(vec![
            node("root", StageKind::Ntt, &[]),
            node("b1", StageKind::Barrier, &[0]),
            node("b2", StageKind::Barrier, &[0]),
        ])
        .unwrap_err();
        assert_eq!(err, DagError::UnorderedBarriers { a: 1, b: 2 });
    }

    #[test]
    fn ordered_barriers_accepted() {
        ProofDag::new(vec![
            node("root", StageKind::Ntt, &[]),
            node("b1", StageKind::Barrier, &[0]),
            node("mid", StageKind::Msm, &[1]),
            node("b2", StageKind::Barrier, &[2]),
        ])
        .unwrap();
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in [
            StageKind::Ntt,
            StageKind::Msm,
            StageKind::Hash,
            StageKind::Pointwise,
            StageKind::Fold,
            StageKind::Barrier,
        ] {
            assert_eq!(StageKind::from_tag(kind.name()), Some(kind));
        }
        assert_eq!(StageKind::from_tag("warp"), None);
    }
}
