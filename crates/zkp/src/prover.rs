//! The PLONK prover and verifier (gate constraints + copy constraints).
//!
//! Protocol rounds:
//!
//! 1. **Wires**: interpolate witness columns `a, b, c` over `H`
//!    (**3 iNTTs, size n**) and commit them (**3 MSMs**).
//! 2. **Permutation**: challenges `β, γ`; build the grand product `z`
//!    (**1 iNTT**, host-side products with one batch inversion) and commit
//!    it (**1 MSM**).
//! 3. **Quotient**: challenge `α`; evaluate the combined constraint
//!
//!    ```text
//!    F = gate + α·[z·Π(wⱼ+β·kⱼ·x+γ) − z(ωx)·Π(wⱼ+β·σⱼ+γ)] + α²·(z−1)·L₀
//!    ```
//!
//!    on the size-`4n` coset (**13 forward coset NTTs, size 4n** — wires,
//!    selectors, σ's, the public-input polynomial and `z`; `z(ωx)` is a
//!    rotation of `z`'s table),
//!    divide by `Z_H`, interpolate `T` (**1 iNTT, size 4n**) and commit it
//!    (**1 MSM**, degree ≤ 3n−4).
//! 4. **Openings**: 13 evaluations at `ζ` batched into one KZG witness
//!    plus the shifted evaluation `z(ωζ)` with its own witness
//!    (**2 MSMs**).
//!
//! This NTT/MSM mix at sizes `n` and `4n` is exactly the workload profile
//! the paper motivates accelerating (experiment E8).

use unintt_core::RecoveryPolicy;
use unintt_ff::{batch_inverse, Bn254Fr, Field, PrimeField, TwoAdicField};
use unintt_gpu_sim::FabricError;
use unintt_msm::G1Projective;

use crate::permutation::column_shifts;
use crate::{Backend, Circuit, EvaluationDomain, Polynomial, Srs, Transcript, Witness};

/// Prover-side preprocessed material.
#[derive(Clone, Debug)]
pub struct ProvingKey {
    circuit: Circuit,
    domain: EvaluationDomain<Bn254Fr>,
    srs: Srs,
    selector_polys: [Polynomial<Bn254Fr>; 5],
    sigma_polys: [Polynomial<Bn254Fr>; 3],
}

/// Verifier-side preprocessed material.
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    srs: Srs,
    domain: EvaluationDomain<Bn254Fr>,
    selector_commits: [G1Projective; 5],
    sigma_commits: [G1Projective; 3],
    num_public_inputs: usize,
}

/// A proof: wire/grand-product/quotient commitments, 13+1 evaluations at
/// `ζ` and `ωζ`, and two KZG opening witnesses.
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    /// Commitments to the wire polynomials `A`, `B`, `C`.
    pub wire_commits: [G1Projective; 3],
    /// Commitment to the grand-product polynomial `z`.
    pub z_commit: G1Projective,
    /// Commitment to the quotient polynomial `T`.
    pub quotient_commit: G1Projective,
    /// Evaluations at `ζ`:
    /// `A, B, C, T, q_L, q_R, q_O, q_M, q_C, σ₀, σ₁, σ₂, z`.
    pub evals: [Bn254Fr; 13],
    /// The shifted evaluation `z(ωζ)`.
    pub z_omega_eval: Bn254Fr,
    /// Batched KZG witness for the 13 openings at `ζ`.
    pub opening: G1Projective,
    /// KZG witness for `z` at `ωζ`.
    pub opening_omega: G1Projective,
}

/// Runs the one-time setup for a circuit.
///
/// The SRS trapdoor is sampled from `rng`; per the KZG module docs it is
/// retained inside both keys for pairing-free verification.
pub fn setup<R: rand::Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> (ProvingKey, VerifyingKey) {
    let domain = EvaluationDomain::<Bn254Fr>::new(circuit.log_n());
    // The permutation term reaches degree 4n−4, so the SRS supports 4n.
    let srs = Srs::generate(4 * circuit.n(), rng);

    let columns = circuit.selector_columns();
    let selector_polys: [Polynomial<Bn254Fr>; 5] = columns.map(|col| Polynomial::interpolate(&col));
    let selector_commits: [G1Projective; 5] = [
        srs.commit(&selector_polys[0]),
        srs.commit(&selector_polys[1]),
        srs.commit(&selector_polys[2]),
        srs.commit(&selector_polys[3]),
        srs.commit(&selector_polys[4]),
    ];

    let permutation = circuit.wire_permutation();
    let sigma_polys = permutation.sigma_polynomials(domain.omega());
    let sigma_commits: [G1Projective; 3] = [
        srs.commit(&sigma_polys[0]),
        srs.commit(&sigma_polys[1]),
        srs.commit(&sigma_polys[2]),
    ];

    let vk = VerifyingKey {
        srs: srs.clone(),
        domain: domain.clone(),
        selector_commits,
        sigma_commits,
        num_public_inputs: circuit.num_public_inputs(),
    };
    let pk = ProvingKey {
        circuit: circuit.clone(),
        domain,
        srs,
        selector_polys,
        sigma_polys,
    };
    (pk, vk)
}

impl ProvingKey {
    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.circuit.n()
    }

    pub(crate) fn domain(&self) -> &EvaluationDomain<Bn254Fr> {
        &self.domain
    }

    pub(crate) fn srs(&self) -> &Srs {
        &self.srs
    }

    pub(crate) fn selector_polys(&self) -> &[Polynomial<Bn254Fr>; 5] {
        &self.selector_polys
    }

    pub(crate) fn sigma_polys(&self) -> &[Polynomial<Bn254Fr>; 3] {
        &self.sigma_polys
    }
}

/// Commits through the backend (so MSM time lands on the simulated clock).
pub(crate) fn commit_via(
    backend: &mut Backend,
    srs: &Srs,
    poly: &Polynomial<Bn254Fr>,
) -> G1Projective {
    let coeffs = poly.coeffs();
    assert!(coeffs.len() <= srs.max_len(), "polynomial exceeds SRS");
    backend.msm(coeffs, &srs.powers()[..coeffs.len()])
}

/// Batched coset-NTT through the backend: scales every polynomial's
/// coefficients onto the coset (the cheap host step, charged as pointwise
/// kernels) then submits the whole batch as one transform — sharing
/// passes and collectives under the O5 optimization.
pub(crate) fn coset_ntt_batch_via(
    backend: &mut Backend,
    polys: &[&Polynomial<Bn254Fr>],
    shift: Bn254Fr,
    size: usize,
    policy: &RecoveryPolicy,
) -> Result<Vec<Vec<Bn254Fr>>, FabricError> {
    let mut batch: Vec<Vec<Bn254Fr>> = polys
        .iter()
        .map(|p| {
            let mut values = p.coeffs().to_vec();
            assert!(values.len() <= size, "polynomial does not fit the domain");
            values.resize(size, Bn254Fr::ZERO);
            let mut s = Bn254Fr::ONE;
            for v in values.iter_mut() {
                *v *= s;
                s *= shift;
            }
            values
        })
        .collect();
    backend.charge_pointwise(size * polys.len(), 1);
    backend.try_ntt_forward_batch(&mut batch, policy)?;
    Ok(batch)
}

/// Resumable per-round prover state for [`prove_with_recovery`].
///
/// Each protocol round is checkpointed as soon as its NTT batch and
/// commitment complete; a re-invocation after a fabric failure replays
/// only the rounds past the last checkpoint. The round-3 coset LDE batch
/// gets its own sub-checkpoint (it is the prover's largest NTT batch, and
/// the quotient iNTT after it can still fail independently).
#[derive(Clone, Debug, Default)]
pub struct ProverCheckpoint {
    wires: Option<([Polynomial<Bn254Fr>; 3], [G1Projective; 3])>,
    z: Option<(Polynomial<Bn254Fr>, G1Projective)>,
    quotient_ldes: Option<Vec<Vec<Bn254Fr>>>,
    quotient: Option<(Polynomial<Bn254Fr>, G1Projective)>,
}

impl ProverCheckpoint {
    /// Number of fully completed protocol rounds (0–3; round 4 has no
    /// fabric work and is never checkpointed).
    pub fn rounds_completed(&self) -> u32 {
        if self.quotient.is_some() {
            3
        } else if self.z.is_some() {
            2
        } else if self.wires.is_some() {
            1
        } else {
            0
        }
    }

    /// True if nothing has been checkpointed yet.
    pub fn is_empty(&self) -> bool {
        self.rounds_completed() == 0 && self.quotient_ldes.is_none()
    }
}

/// Evaluations of the Lagrange polynomial `L₀(x) = (xⁿ−1)/(n·(x−1))` on
/// the size-`n·2^log_blowup` coset.
pub(crate) fn lagrange0_on_coset(
    domain: &EvaluationDomain<Bn254Fr>,
    log_blowup: u32,
) -> Vec<Bn254Fr> {
    let n = domain.n();
    let vanishing = domain.vanishing_on_coset(log_blowup);
    let big = EvaluationDomain::<Bn254Fr>::new(domain.log_n() + log_blowup);
    let n_inv = Bn254Fr::from_u64(n as u64).inverse().expect("n nonzero");
    let mut denoms: Vec<Bn254Fr> = (0..big.n())
        .map(|k| big.coset_element(k) - Bn254Fr::ONE)
        .collect();
    batch_inverse(&mut denoms);
    vanishing
        .iter()
        .zip(&denoms)
        .map(|(&v, &d)| v * n_inv * d)
        .collect()
}

/// Generates a proof that `witness` satisfies `pk`'s circuit (gates and
/// copy constraints).
///
/// All heavy operations route through `backend`; a
/// [`crate::Backend::simulated`] backend accumulates the simulated
/// multi-GPU clock while producing a bit-identical proof to the CPU
/// backend.
///
/// # Panics
///
/// Panics if the witness length does not match the circuit.
pub fn prove(
    pk: &ProvingKey,
    witness: &Witness,
    public_inputs: &[Bn254Fr],
    backend: &mut Backend,
) -> Proof {
    prove_with_recovery(
        pk,
        witness,
        public_inputs,
        backend,
        &RecoveryPolicy::none(),
        &mut ProverCheckpoint::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`prove`]: transient fabric faults are absorbed per
/// `policy`; on a permanent failure the `checkpoint` keeps every completed
/// round (polynomials and commitments), and a subsequent call resumes
/// after the last completed NTT batch instead of restarting the proof.
/// All challenges are transcript-derived, so a resumed proof is
/// bit-identical to an uninterrupted one. On success the checkpoint is
/// reset.
///
/// # Errors
///
/// Returns the [`FabricError`] that outlived the policy's retries.
///
/// # Panics
///
/// Panics under the same conditions as [`prove`].
pub fn prove_with_recovery(
    pk: &ProvingKey,
    witness: &Witness,
    public_inputs: &[Bn254Fr],
    backend: &mut Backend,
    policy: &RecoveryPolicy,
    checkpoint: &mut ProverCheckpoint,
) -> Result<Proof, FabricError> {
    let n = pk.circuit.n();
    assert_eq!(witness.len(), n, "witness length must equal circuit size");
    assert_eq!(
        public_inputs.len(),
        pk.circuit.num_public_inputs(),
        "wrong number of public inputs"
    );
    let omega = pk.domain.omega();
    let mut transcript = Transcript::new("unintt-plonk-v2");
    transcript.absorb_u64(n as u64);
    for p in public_inputs {
        transcript.absorb_scalar(*p);
    }

    // The public-input polynomial: PI interpolates −pubᵢ on the first
    // rows (zero elsewhere), so gate + PI vanishes on the PI rows exactly
    // when the a-wire carries the public values.
    let pi_poly = {
        let mut evals = vec![Bn254Fr::ZERO; n];
        for (e, &p) in evals.iter_mut().zip(public_inputs) {
            *e = -p;
        }
        Polynomial::interpolate(&evals)
    };

    // Round 1: wire polynomials (one batched interpolation) and
    // commitments. Resumes from the checkpoint if a previous attempt
    // completed this round.
    let (wire_polys, wire_commits) = match checkpoint.wires.take() {
        Some(saved) => saved,
        None => {
            let mut wires = [witness.a.clone(), witness.b.clone(), witness.c.clone()];
            backend.try_ntt_inverse_batch(&mut wires, policy)?;
            let [a, b, c] = wires;
            let polys = [Polynomial::new(a), Polynomial::new(b), Polynomial::new(c)];
            let commits = [
                commit_via(backend, &pk.srs, &polys[0]),
                commit_via(backend, &pk.srs, &polys[1]),
                commit_via(backend, &pk.srs, &polys[2]),
            ];
            (polys, commits)
        }
    };
    checkpoint.wires = Some((wire_polys.clone(), wire_commits));
    let [poly_a, poly_b, poly_c] = &wire_polys;
    for w in &wire_commits {
        transcript.absorb_point(w);
    }

    // Round 2: grand product. The challenges are transcript-derived, so
    // a resumed round sees the same β, γ it was built with.
    let beta = transcript.challenge();
    let gamma = transcript.challenge();
    let (poly_z, z_commit) = match checkpoint.z.take() {
        Some(saved) => saved,
        None => {
            let permutation = pk.circuit.wire_permutation();
            let wires = [witness.a.clone(), witness.b.clone(), witness.c.clone()];
            let mut z_evals = permutation.grand_product(&wires, omega, beta, gamma);
            backend.charge_pointwise(n, 8); // products + batch-inverted ratios
            backend.try_ntt_inverse(&mut z_evals, policy)?;
            let poly_z = Polynomial::new(z_evals);
            let z_commit = commit_via(backend, &pk.srs, &poly_z);
            (poly_z, z_commit)
        }
    };
    checkpoint.z = Some((poly_z.clone(), z_commit));
    transcript.absorb_point(&z_commit);

    // Round 3: quotient on the size-4n coset. The 13-way LDE batch is its
    // own sub-checkpoint: it is the largest NTT batch in the proof, and
    // the quotient iNTT after it can fail independently.
    let alpha = transcript.challenge();
    let log_blowup = 2u32;
    let big_n = n << log_blowup;
    let shift = pk.domain.shift();
    let blowup = 1usize << log_blowup;

    let (poly_t, quotient_commit) = match checkpoint.quotient.take() {
        Some(saved) => saved,
        None => {
            // All thirteen LDEs go out as one batch (wires, selectors,
            // σ's, PI, z).
            let mut ldes = match checkpoint.quotient_ldes.take() {
                Some(saved) => saved,
                None => {
                    let lde_inputs: [&Polynomial<Bn254Fr>; 13] = [
                        poly_a,
                        poly_b,
                        poly_c,
                        &pk.selector_polys[0],
                        &pk.selector_polys[1],
                        &pk.selector_polys[2],
                        &pk.selector_polys[3],
                        &pk.selector_polys[4],
                        &pk.sigma_polys[0],
                        &pk.sigma_polys[1],
                        &pk.sigma_polys[2],
                        &pi_poly,
                        &poly_z,
                    ];
                    coset_ntt_batch_via(backend, &lde_inputs, shift, big_n, policy)?
                }
            };
            checkpoint.quotient_ldes = Some(ldes.clone());
            let ev_z = ldes.pop().expect("thirteen LDEs");
            let ev_pi = ldes.pop().expect("PI evaluations");
            let ev_sig: Vec<Vec<Bn254Fr>> = ldes.split_off(8);
            let ev_sel: Vec<Vec<Bn254Fr>> = ldes.split_off(3);
            let ev_c = ldes.pop().expect("wire C");
            let ev_b = ldes.pop().expect("wire B");
            let ev_a = ldes.pop().expect("wire A");

            let mut z_h_inv = pk.domain.vanishing_on_coset(log_blowup);
            batch_inverse(&mut z_h_inv);
            let l0 = lagrange0_on_coset(&pk.domain, log_blowup);

            // Coset points x_k = shift·ω₄ₙᵏ, generated on the fly.
            let omega_big = Bn254Fr::two_adic_generator(pk.domain.log_n() + log_blowup);
            let [k0, k1, k2] = column_shifts();

            let mut t_evals = Vec::with_capacity(big_n);
            let mut x = shift;
            for k in 0..big_n {
                let gate = ev_sel[0][k] * ev_a[k]
                    + ev_sel[1][k] * ev_b[k]
                    + ev_sel[2][k] * ev_c[k]
                    + ev_sel[3][k] * ev_a[k] * ev_b[k]
                    + ev_sel[4][k]
                    + ev_pi[k];

                // z(ωx) on the coset table is a rotation by `blowup`
                // positions.
                let z_omega = ev_z[(k + blowup) % big_n];
                let numer = (ev_a[k] + beta * k0 * x + gamma)
                    * (ev_b[k] + beta * k1 * x + gamma)
                    * (ev_c[k] + beta * k2 * x + gamma);
                let denom = (ev_a[k] + beta * ev_sig[0][k] + gamma)
                    * (ev_b[k] + beta * ev_sig[1][k] + gamma)
                    * (ev_c[k] + beta * ev_sig[2][k] + gamma);
                let perm_term = ev_z[k] * numer - z_omega * denom;

                let boundary = (ev_z[k] - Bn254Fr::ONE) * l0[k];

                let f = gate + alpha * (perm_term + alpha * boundary);
                t_evals.push(f * z_h_inv[k]);
                x *= omega_big;
            }
            backend.charge_pointwise(big_n, 16);

            // Interpolate T from the coset: iNTT then unscale by
            // shift^{-i}.
            backend.try_ntt_inverse(&mut t_evals, policy)?;
            let shift_inv = shift.inverse().expect("generator is nonzero");
            let mut s = Bn254Fr::ONE;
            for v in t_evals.iter_mut() {
                *v *= s;
                s *= shift_inv;
            }
            backend.charge_pointwise(big_n, 1);
            let poly_t = Polynomial::new(t_evals);
            debug_assert!(
                poly_t.degree() <= 3 * n || poly_t.is_zero(),
                "quotient degree {} out of range for n={n} — unsatisfied circuit?",
                poly_t.degree()
            );

            let quotient_commit = commit_via(backend, &pk.srs, &poly_t);
            (poly_t, quotient_commit)
        }
    };
    checkpoint.quotient_ldes = None; // superseded by the finished round
    checkpoint.quotient = Some((poly_t.clone(), quotient_commit));
    transcript.absorb_point(&quotient_commit);

    // Round 4: evaluations and openings (MSM-only; never checkpointed).
    let zeta = transcript.challenge();
    let polys: [&Polynomial<Bn254Fr>; 13] = [
        poly_a,
        poly_b,
        poly_c,
        &poly_t,
        &pk.selector_polys[0],
        &pk.selector_polys[1],
        &pk.selector_polys[2],
        &pk.selector_polys[3],
        &pk.selector_polys[4],
        &pk.sigma_polys[0],
        &pk.sigma_polys[1],
        &pk.sigma_polys[2],
        &poly_z,
    ];
    let mut evals = [Bn254Fr::ZERO; 13];
    for (e, p) in evals.iter_mut().zip(&polys) {
        *e = p.evaluate(zeta);
        transcript.absorb_scalar(*e);
    }
    let z_omega_eval = poly_z.evaluate(omega * zeta);
    transcript.absorb_scalar(z_omega_eval);
    backend.charge_pointwise(n, 14);

    let v = transcript.challenge();
    let mut combined = Polynomial::zero();
    let mut vi = Bn254Fr::ONE;
    for p in &polys {
        combined = combined.add(&p.scale(vi));
        vi *= v;
    }
    let (open_quotient, _) = combined.divide_by_linear(zeta);
    backend.charge_pointwise(n, 14);
    let opening = commit_via(backend, &pk.srs, &open_quotient);

    let (open_z_quotient, _) = poly_z.divide_by_linear(omega * zeta);
    let opening_omega = commit_via(backend, &pk.srs, &open_z_quotient);

    *checkpoint = ProverCheckpoint::default();
    Ok(Proof {
        wire_commits,
        z_commit,
        quotient_commit,
        evals,
        z_omega_eval,
        opening,
        opening_omega,
    })
}

/// Verifies a proof.
pub fn verify(vk: &VerifyingKey, proof: &Proof, public_inputs: &[Bn254Fr]) -> bool {
    if public_inputs.len() != vk.num_public_inputs {
        return false;
    }
    let n = vk.domain.n();
    let omega = vk.domain.omega();
    let mut transcript = Transcript::new("unintt-plonk-v2");
    transcript.absorb_u64(n as u64);
    for p in public_inputs {
        transcript.absorb_scalar(*p);
    }
    for w in &proof.wire_commits {
        transcript.absorb_point(w);
    }
    let beta = transcript.challenge();
    let gamma = transcript.challenge();
    transcript.absorb_point(&proof.z_commit);
    let alpha = transcript.challenge();
    transcript.absorb_point(&proof.quotient_commit);
    let zeta = transcript.challenge();
    for e in &proof.evals {
        transcript.absorb_scalar(*e);
    }
    transcript.absorb_scalar(proof.z_omega_eval);
    let v = transcript.challenge();

    // The combined identity at ζ.
    let [a, b, c, t, q_l, q_r, q_o, q_m, q_c, s0, s1, s2, z] = proof.evals;
    let z_omega = proof.z_omega_eval;
    let [k0, k1, k2] = column_shifts();

    // PI(ζ) = Σ −pubᵢ·Lᵢ(ζ) with Lᵢ(ζ) = ωⁱ·(ζⁿ−1) / (n·(ζ−ωⁱ)).
    let vanishing_zeta = vk.domain.vanishing_at(zeta);
    let n_inv = match Bn254Fr::from_u64(n as u64).inverse() {
        Some(v) => v,
        None => return false,
    };
    let mut pi_at_zeta = Bn254Fr::ZERO;
    let mut omega_i = Bn254Fr::ONE;
    for &p in public_inputs {
        let Some(denom) = (zeta - omega_i).inverse() else {
            return false; // ζ landed on the subgroup: negligible, reject
        };
        pi_at_zeta += -p * omega_i * vanishing_zeta * n_inv * denom;
        omega_i *= omega;
    }

    let gate = q_l * a + q_r * b + q_o * c + q_m * a * b + q_c + pi_at_zeta;
    let numer = (a + beta * k0 * zeta + gamma)
        * (b + beta * k1 * zeta + gamma)
        * (c + beta * k2 * zeta + gamma);
    let denom = (a + beta * s0 + gamma) * (b + beta * s1 + gamma) * (c + beta * s2 + gamma);
    let perm_term = z * numer - z_omega * denom;

    let vanishing = vanishing_zeta;
    // L₀(ζ) = (ζⁿ−1)/(n·(ζ−1)); a ζ that landed inside H would divide by
    // zero — negligible for a random challenge, but reject rather than
    // panic if it happens.
    let Some(denom_l0) = (Bn254Fr::from_u64(n as u64) * (zeta - Bn254Fr::ONE)).inverse() else {
        return false;
    };
    let l0 = vanishing * denom_l0;
    let boundary = (z - Bn254Fr::ONE) * l0;

    let lhs = gate + alpha * (perm_term + alpha * boundary);
    if lhs != t * vanishing {
        return false;
    }

    // Batched KZG check at ζ over all 13 commitments.
    let commitments = [
        proof.wire_commits[0],
        proof.wire_commits[1],
        proof.wire_commits[2],
        proof.quotient_commit,
        vk.selector_commits[0],
        vk.selector_commits[1],
        vk.selector_commits[2],
        vk.selector_commits[3],
        vk.selector_commits[4],
        vk.sigma_commits[0],
        vk.sigma_commits[1],
        vk.sigma_commits[2],
        proof.z_commit,
    ];
    if !vk
        .srs
        .batch_verify(&commitments, zeta, &proof.evals, v, &proof.opening)
    {
        return false;
    }

    // Single KZG check for z at ωζ.
    vk.srs.verify(
        &proof.z_commit,
        omega * zeta,
        proof.z_omega_eval,
        &proof.opening_omega,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::{Cell, Column};
    use crate::{cubic_circuit, random_circuit};
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_gpu_sim::presets;

    #[test]
    fn cubic_proof_roundtrip_cpu() {
        let mut rng = StdRng::seed_from_u64(1);
        let (circuit, witness, _y) = cubic_circuit(Bn254Fr::from_u64(3));
        assert!(circuit.is_satisfied(&witness));
        let (pk, vk) = setup(&circuit, &mut rng);
        let mut backend = Backend::cpu();
        let proof = prove(&pk, &witness, &[_y], &mut backend);
        assert!(verify(&vk, &proof, &[_y]));
        // The proof must not verify against a different public output.
        assert!(!verify(&vk, &proof, &[_y + Bn254Fr::ONE]));
    }

    #[test]
    fn random_circuit_proof_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let (circuit, witness) = random_circuit(60, &mut rng);
        assert!(!circuit.copies().is_empty(), "random circuits are wired");
        let (pk, vk) = setup(&circuit, &mut rng);
        let mut backend = Backend::cpu();
        let proof = prove(&pk, &witness, &[], &mut backend);
        assert!(verify(&vk, &proof, &[]));
    }

    #[test]
    fn copy_constraint_violation_rejected() {
        // A witness that satisfies every *gate* but breaks the wiring must
        // be rejected — the whole point of the permutation argument.
        let mut rng = StdRng::seed_from_u64(3);
        let mut circuit = Circuit::new(vec![crate::Gate::noop(); 4]);
        circuit.connect(Cell::new(Column::A, 0), Cell::new(Column::A, 1));
        let witness = circuit.pad_witness(crate::Witness {
            a: vec![Bn254Fr::from_u64(1), Bn254Fr::from_u64(2)], // 1 ≠ 2!
            b: vec![Bn254Fr::ZERO; 2],
            c: vec![Bn254Fr::ZERO; 2],
        });
        assert!(!circuit.is_satisfied(&witness), "wiring is broken");

        let (pk, vk) = setup(&circuit, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prove(&pk, &witness, &[], &mut Backend::cpu())
        }));
        // An Err means the quotient-degree debug assert fired: also a fail.
        if let Ok(proof) = result {
            assert!(!verify(&vk, &proof, &[]));
        }
    }

    #[test]
    fn invalid_gate_witness_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let (circuit, mut witness) = random_circuit(20, &mut rng);
        witness.b[3] += Bn254Fr::ONE;
        let (pk, vk) = setup(&circuit, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prove(&pk, &witness, &[], &mut Backend::cpu())
        }));
        if let Ok(proof) = result {
            assert!(!verify(&vk, &proof, &[]));
        }
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let (circuit, witness) = random_circuit(20, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let proof = prove(&pk, &witness, &[], &mut Backend::cpu());
        assert!(verify(&vk, &proof, &[]));

        let mut bad = proof.clone();
        bad.evals[0] += Bn254Fr::ONE;
        assert!(!verify(&vk, &bad, &[]));

        let mut bad = proof.clone();
        bad.z_omega_eval += Bn254Fr::ONE;
        assert!(!verify(&vk, &bad, &[]));

        let mut bad = proof.clone();
        bad.z_commit = bad.z_commit.double();
        assert!(!verify(&vk, &bad, &[]));

        let mut bad = proof.clone();
        bad.opening_omega = G1Projective::identity();
        assert!(!verify(&vk, &bad, &[]));

        let mut bad = proof;
        bad.quotient_commit = bad.quotient_commit.double();
        assert!(!verify(&vk, &bad, &[]));
    }

    #[test]
    fn simulated_backend_produces_identical_proof() {
        let mut rng = StdRng::seed_from_u64(6);
        let (circuit, witness) = random_circuit(60, &mut rng); // n = 64
        let (pk, vk) = setup(&circuit, &mut rng);

        let mut cpu = Backend::cpu();
        let cpu_proof = prove(&pk, &witness, &[], &mut cpu);

        let mut sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        let sim_proof = prove(&pk, &witness, &[], &mut sim);

        assert_eq!(cpu_proof, sim_proof, "backends must agree bit-for-bit");
        assert!(verify(&vk, &sim_proof, &[]));

        let report = sim.report();
        assert!(report.ntt_time_ns > 0.0);
        assert!(report.msm_time_ns > 0.0);
        // 3 wire iNTT + 1 z iNTT + 13 coset NTT + 1 quotient iNTT.
        assert_eq!(report.ntt_calls, 18);
        // 3 wires + z + quotient + 2 openings.
        assert_eq!(report.msm_calls, 7);
    }

    #[test]
    fn recovery_under_random_faults_matches_cpu_proof() {
        use unintt_gpu_sim::{FaultPlan, FaultRates};
        let mut rng = StdRng::seed_from_u64(8);
        let (circuit, witness) = random_circuit(60, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let cpu_proof = prove(&pk, &witness, &[], &mut Backend::cpu());

        let mut sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        sim.ntt_machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::random(7, FaultRates::transfers_only(0.1)));
        let mut ckpt = ProverCheckpoint::default();
        let proof = prove_with_recovery(
            &pk,
            &witness,
            &[],
            &mut sim,
            &unintt_core::RecoveryPolicy::default(),
            &mut ckpt,
        )
        .expect("default policy should absorb 10% transfer faults");
        assert_eq!(proof, cpu_proof, "recovered proof must be bit-identical");
        assert!(verify(&vk, &proof, &[]));
        assert!(ckpt.is_empty(), "checkpoint resets on success");
    }

    #[test]
    fn checkpoint_resumes_rounds_after_failure() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let mut rng = StdRng::seed_from_u64(9);
        let (circuit, witness) = random_circuit(60, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let cpu_proof = prove(&pk, &witness, &[], &mut Backend::cpu());

        // Probe a clean simulated run for the total collective count, then
        // drop a late collective so early rounds complete first.
        let mut probe = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        let _ = prove(&pk, &witness, &[], &mut probe);
        let total = probe.ntt_machine_mut().unwrap().collective_seq();
        assert!(total >= 2);

        let mut sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        sim.ntt_machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                seq: total - 1,
                kind: FaultKind::Drop,
            }]));
        let no_retries = unintt_core::RecoveryPolicy {
            max_retries: 0,
            ..Default::default()
        };
        let mut ckpt = ProverCheckpoint::default();
        let err =
            prove_with_recovery(&pk, &witness, &[], &mut sim, &no_retries, &mut ckpt).unwrap_err();
        assert!(
            err.is_transient(),
            "a dropped collective is transient: {err}"
        );
        assert!(
            ckpt.rounds_completed() >= 1,
            "early rounds must have been checkpointed"
        );

        // Resume: the scripted drop was consumed; only the tail replays.
        let proof = prove_with_recovery(&pk, &witness, &[], &mut sim, &no_retries, &mut ckpt)
            .expect("resume from checkpoint");
        assert_eq!(proof, cpu_proof);
        assert!(verify(&vk, &proof, &[]));
    }

    #[test]
    fn proof_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let (circuit, witness) = random_circuit(10, &mut rng);
        let (pk, _vk) = setup(&circuit, &mut rng);
        let mut b1 = Backend::cpu();
        let mut b2 = Backend::cpu();
        assert_eq!(
            prove(&pk, &witness, &[], &mut b1),
            prove(&pk, &witness, &[], &mut b2)
        );
    }
}
