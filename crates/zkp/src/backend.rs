//! Execution backends for the prover's heavy operations.
//!
//! The prover is written once against [`Backend`]; swapping the variant
//! swaps where NTTs and MSMs "run":
//!
//! * [`Backend::cpu`] — plain host execution (functional reference).
//! * [`Backend::simulated`] — NTTs through [`UniNttEngine`] and MSMs
//!   through [`unintt_msm::multi_gpu_msm`] on simulated machines, with
//!   simulated time accumulated for the end-to-end experiment (E8). The
//!   results are bit-identical to the CPU backend; only the clock differs.
//!
//! The simulated backend keeps *two* machines — one sized for NTT, one for
//! MSM — so the paper's "multi-GPU MSM + single-GPU NTT" status quo is one
//! configuration away from the full multi-GPU pipeline.

use std::collections::HashMap;

use unintt_core::{RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{FabricError, FieldSpec, KernelProfile, Machine, MachineConfig, Stats};
use unintt_msm::{multi_gpu_msm, G1Affine, G1Projective};
use unintt_ntt::Ntt;

/// Where time was spent, for the end-to-end breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackendReport {
    /// Simulated nanoseconds in NTT work (0 for the CPU backend).
    pub ntt_time_ns: f64,
    /// Simulated nanoseconds in MSM work (0 for the CPU backend).
    pub msm_time_ns: f64,
    /// NTT-machine statistics.
    pub ntt_stats: Stats,
    /// MSM-machine statistics.
    pub msm_stats: Stats,
    /// Number of NTT invocations.
    pub ntt_calls: u64,
    /// Number of MSM invocations.
    pub msm_calls: u64,
}

impl BackendReport {
    /// Total simulated time (prover phases are sequential).
    pub fn total_ns(&self) -> f64 {
        self.ntt_time_ns + self.msm_time_ns
    }

    /// Fraction of simulated time spent in NTT.
    pub fn ntt_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            0.0
        } else {
            self.ntt_time_ns / t
        }
    }
}

/// A prover execution backend.
#[allow(clippy::large_enum_variant)] // SimulatedBackend is the hot variant; boxing buys nothing
pub enum Backend {
    /// Plain host execution.
    Cpu(CpuBackend),
    /// Simulated multi-GPU execution.
    Simulated(SimulatedBackend),
}

impl Backend {
    /// A CPU backend.
    pub fn cpu() -> Self {
        Backend::Cpu(CpuBackend::default())
    }

    /// A simulated backend: NTTs on `ntt_cfg`, MSMs on `msm_cfg`.
    pub fn simulated(ntt_cfg: MachineConfig, msm_cfg: MachineConfig) -> Self {
        Backend::Simulated(SimulatedBackend::new(ntt_cfg, msm_cfg))
    }

    /// Forward NTT, natural order in/out, length must be a power of two.
    pub fn ntt_forward(&mut self, values: &mut Vec<Bn254Fr>) {
        match self {
            Backend::Cpu(b) => b.transform(values, false),
            Backend::Simulated(b) => b.transform(values, false),
        }
    }

    /// Inverse NTT, natural order in/out.
    pub fn ntt_inverse(&mut self, values: &mut Vec<Bn254Fr>) {
        match self {
            Backend::Cpu(b) => b.transform(values, true),
            Backend::Simulated(b) => b.transform(values, true),
        }
    }

    /// Forward NTT of a batch of equal-length vectors. On the simulated
    /// backend the batch shares kernel passes and a single coalesced
    /// all-to-all (the O5 optimization), exactly as a production prover
    /// would submit its polynomial batch.
    pub fn ntt_forward_batch(&mut self, batch: &mut [Vec<Bn254Fr>]) {
        match self {
            Backend::Cpu(b) => {
                for v in batch.iter_mut() {
                    b.transform(v, false);
                }
            }
            Backend::Simulated(b) => b.transform_batch(batch, false),
        }
    }

    /// Inverse NTT of a batch of equal-length vectors (batched
    /// interpolation, e.g. of all witness columns at once).
    pub fn ntt_inverse_batch(&mut self, batch: &mut [Vec<Bn254Fr>]) {
        match self {
            Backend::Cpu(b) => {
                for v in batch.iter_mut() {
                    b.transform(v, true);
                }
            }
            Backend::Simulated(b) => b.transform_batch(batch, true),
        }
    }

    /// Fault-tolerant twin of [`Self::ntt_inverse`]: faults are absorbed
    /// per `policy`; on `Err` the values are left untouched so the caller
    /// can replay the call.
    pub fn try_ntt_inverse(
        &mut self,
        values: &mut Vec<Bn254Fr>,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        match self {
            Backend::Cpu(b) => {
                b.transform(values, true);
                Ok(())
            }
            Backend::Simulated(b) => b.try_transform(values, true, policy),
        }
    }

    /// Fault-tolerant twin of [`Self::ntt_forward_batch`].
    ///
    /// # Errors
    ///
    /// Returns the [`FabricError`] that outlived the policy's retries; the
    /// batch contents are unspecified afterwards (replay from the caller's
    /// checkpoint).
    pub fn try_ntt_forward_batch(
        &mut self,
        batch: &mut [Vec<Bn254Fr>],
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        match self {
            Backend::Cpu(b) => {
                for v in batch.iter_mut() {
                    b.transform(v, false);
                }
                Ok(())
            }
            Backend::Simulated(b) => b.try_transform_batch(batch, false, policy),
        }
    }

    /// Fault-tolerant twin of [`Self::ntt_inverse_batch`].
    ///
    /// # Errors
    ///
    /// As [`Self::try_ntt_forward_batch`].
    pub fn try_ntt_inverse_batch(
        &mut self,
        batch: &mut [Vec<Bn254Fr>],
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        match self {
            Backend::Cpu(b) => {
                for v in batch.iter_mut() {
                    b.transform(v, true);
                }
                Ok(())
            }
            Backend::Simulated(b) => b.try_transform_batch(batch, true, policy),
        }
    }

    /// The simulated NTT machine, if any (to install fault plans or read
    /// traces); `None` for the CPU backend.
    pub fn ntt_machine_mut(&mut self) -> Option<&mut Machine> {
        match self {
            Backend::Cpu(_) => None,
            Backend::Simulated(b) => Some(&mut b.ntt_machine),
        }
    }

    /// Charges an element-wise kernel of `n` elements with
    /// `muls_per_elem` multiplies (quotient combination, coset scaling).
    /// Functional work is done by the caller; the CPU backend ignores this.
    pub fn charge_pointwise(&mut self, n: usize, muls_per_elem: u64) {
        if let Backend::Simulated(b) = self {
            b.charge_pointwise(n, muls_per_elem);
        }
    }

    /// Multi-scalar multiplication.
    pub fn msm(&mut self, scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
        match self {
            Backend::Cpu(b) => b.msm(scalars, points),
            Backend::Simulated(b) => b.msm(scalars, points),
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> BackendReport {
        match self {
            Backend::Cpu(b) => BackendReport {
                ntt_calls: b.ntt_calls,
                msm_calls: b.msm_calls,
                ..Default::default()
            },
            Backend::Simulated(b) => b.report(),
        }
    }
}

/// Host execution with cached NTT contexts.
#[derive(Default)]
pub struct CpuBackend {
    ntts: HashMap<u32, Ntt<Bn254Fr>>,
    ntt_calls: u64,
    msm_calls: u64,
}

impl CpuBackend {
    fn transform(&mut self, values: &mut [Bn254Fr], inverse: bool) {
        assert!(
            values.len().is_power_of_two(),
            "length must be a power of two"
        );
        let log_n = values.len().trailing_zeros();
        let ntt = self.ntts.entry(log_n).or_insert_with(|| Ntt::new(log_n));
        if inverse {
            ntt.inverse(values);
        } else {
            ntt.forward(values);
        }
        self.ntt_calls += 1;
    }

    fn msm(&mut self, scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
        self.msm_calls += 1;
        unintt_msm::msm(scalars, points)
    }
}

/// Simulated multi-GPU execution.
pub struct SimulatedBackend {
    ntt_cfg: MachineConfig,
    ntt_machine: Machine,
    msm_machine: Machine,
    engines: HashMap<u32, UniNttEngine<Bn254Fr>>,
    cpu_fallback: HashMap<u32, Ntt<Bn254Fr>>,
    ntt_calls: u64,
    msm_calls: u64,
}

impl SimulatedBackend {
    /// Builds the backend with separate NTT and MSM machine shapes.
    pub fn new(ntt_cfg: MachineConfig, msm_cfg: MachineConfig) -> Self {
        let fs = FieldSpec::bn254_fr();
        Self {
            ntt_machine: Machine::new(ntt_cfg.clone(), fs),
            msm_machine: Machine::new(msm_cfg, fs),
            ntt_cfg,
            engines: HashMap::new(),
            cpu_fallback: HashMap::new(),
            ntt_calls: 0,
            msm_calls: 0,
        }
    }

    fn transform(&mut self, values: &mut Vec<Bn254Fr>, inverse: bool) {
        self.try_transform(values, inverse, &RecoveryPolicy::none())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_transform(
        &mut self,
        values: &mut Vec<Bn254Fr>,
        inverse: bool,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        assert!(
            values.len().is_power_of_two(),
            "length must be a power of two"
        );
        let log_n = values.len().trailing_zeros();
        let g = self.ntt_cfg.num_gpus;
        let log_g = g.trailing_zeros();
        self.ntt_calls += 1;

        // Transforms too small to split across the machine run on one
        // device (exactly what a real system does with tiny polynomials);
        // no collectives, so nothing can fault.
        if log_n < 2 * log_g || (1usize << log_n) < 2 * g {
            let ntt = self
                .cpu_fallback
                .entry(log_n)
                .or_insert_with(|| Ntt::new(log_n));
            if inverse {
                ntt.inverse(values);
            } else {
                ntt.forward(values);
            }
            let bytes = (values.len() * 32) as u64;
            let mut profile = KernelProfile::named("small-ntt-single-device");
            profile.global_bytes_read = bytes * log_n.max(1) as u64;
            profile.global_bytes_written = bytes * log_n.max(1) as u64;
            profile.field_muls = (values.len() as u64 / 2) * log_n as u64;
            let mut unused = ();
            self.ntt_machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&profile);
            });
            return Ok(());
        }

        let cfg = &self.ntt_cfg;
        let engine = self.engines.entry(log_n).or_insert_with(|| {
            let fs = FieldSpec::bn254_fr();
            let mut opts = UniNttOptions::tuned_for(&fs);
            // Natural order in and out: the prover chains differently-sized
            // domains, so permuted chaining is not available here.
            opts.natural_output = true;
            UniNttEngine::new(log_n, cfg, opts, fs)
        });

        // Natural-order host vector ↔ shards at the boundary: forward
        // consumes cyclic and emits natural blocks; inverse is the mirror.
        // The host vector stays intact until success, so a failed call can
        // simply be replayed.
        let mut data = if inverse {
            Sharded::distribute(values, g, ShardLayout::NaturalBlocks)
        } else {
            Sharded::distribute(values, g, ShardLayout::Cyclic)
        };
        if inverse {
            engine.try_inverse(&mut self.ntt_machine, &mut data, policy)?;
        } else {
            engine.try_forward(&mut self.ntt_machine, &mut data, policy)?;
        }
        *values = data.collect();
        Ok(())
    }

    /// Batched transform: one engine invocation for the whole batch
    /// (shared passes + coalesced all-to-alls).
    fn transform_batch(&mut self, batch: &mut [Vec<Bn254Fr>], inverse: bool) {
        self.try_transform_batch(batch, inverse, &RecoveryPolicy::none())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_transform_batch(
        &mut self,
        batch: &mut [Vec<Bn254Fr>],
        inverse: bool,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        assert!(!batch.is_empty(), "batch must not be empty");
        let len = batch[0].len();
        assert!(
            batch.iter().all(|v| v.len() == len),
            "batched vectors must have equal lengths"
        );
        let log_n = len.trailing_zeros();
        let g = self.ntt_cfg.num_gpus;
        let log_g = g.trailing_zeros();
        self.ntt_calls += batch.len() as u64;

        if log_n < 2 * log_g || len < 2 * g {
            // Small transforms: reuse the single-vector fallback per item.
            self.ntt_calls -= batch.len() as u64; // transform re-counts
            for v in batch.iter_mut() {
                self.try_transform(v, inverse, policy)?;
            }
            return Ok(());
        }

        let cfg = &self.ntt_cfg;
        let engine = self.engines.entry(log_n).or_insert_with(|| {
            let mut opts = UniNttOptions::tuned_for(&FieldSpec::bn254_fr());
            opts.natural_output = true;
            UniNttEngine::new(log_n, cfg, opts, FieldSpec::bn254_fr())
        });

        let layout = if inverse {
            ShardLayout::NaturalBlocks
        } else {
            ShardLayout::Cyclic
        };
        let mut sharded: Vec<Sharded<Bn254Fr>> = batch
            .iter()
            .map(|v| Sharded::distribute(v, g, layout))
            .collect();
        if inverse {
            engine.try_inverse_batch(&mut self.ntt_machine, &mut sharded, policy)?;
        } else {
            engine.try_forward_batch(&mut self.ntt_machine, &mut sharded, policy)?;
        }
        for (out, data) in batch.iter_mut().zip(&sharded) {
            *out = data.collect();
        }
        Ok(())
    }

    fn charge_pointwise(&mut self, n: usize, muls_per_elem: u64) {
        let bytes = (n * 32) as u64;
        let mut p = KernelProfile::named("pointwise");
        p.blocks = (n as u64 / 256).max(1);
        p.global_bytes_read = bytes;
        p.global_bytes_written = bytes;
        p.field_muls = n as u64 * muls_per_elem;
        let devices = self.ntt_machine.num_devices();
        let mut dummy: Vec<()> = vec![(); devices];
        // Pointwise work is sharded across the NTT machine's devices.
        let mut shard_p = p;
        shard_p.global_bytes_read /= devices as u64;
        shard_p.global_bytes_written /= devices as u64;
        shard_p.field_muls /= devices as u64;
        self.ntt_machine.parallel_phase(&mut dummy, |ctx, _, _| {
            ctx.launch(&shard_p);
        });
    }

    fn msm(&mut self, scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
        self.msm_calls += 1;
        if scalars.len() < self.msm_machine.num_devices() {
            // Trivially small MSM: host-side.
            return unintt_msm::msm(scalars, points);
        }
        multi_gpu_msm(&mut self.msm_machine, scalars, points)
    }

    fn report(&self) -> BackendReport {
        BackendReport {
            ntt_time_ns: self.ntt_machine.max_clock_ns(),
            msm_time_ns: self.msm_machine.max_clock_ns(),
            ntt_stats: self.ntt_machine.stats(),
            msm_stats: self.msm_machine.stats(),
            ntt_calls: self.ntt_calls,
            msm_calls: self.msm_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::Field;
    use unintt_gpu_sim::presets;

    fn random_vec(n: usize, seed: u64) -> Vec<Bn254Fr> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Bn254Fr::random(&mut rng)).collect()
    }

    #[test]
    fn simulated_ntt_matches_cpu() {
        let mut cpu = Backend::cpu();
        let mut sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        for log_n in [3usize, 6, 10] {
            let input = random_vec(1 << log_n, log_n as u64);
            let mut a = input.clone();
            let mut b = input.clone();
            cpu.ntt_forward(&mut a);
            sim.ntt_forward(&mut b);
            assert_eq!(a, b, "log_n={log_n}");
            cpu.ntt_inverse(&mut a);
            sim.ntt_inverse(&mut b);
            assert_eq!(a, b);
            assert_eq!(a, input);
        }
        assert!(sim.report().ntt_time_ns > 0.0);
        assert_eq!(sim.report().ntt_calls, 6);
    }

    #[test]
    fn simulated_msm_matches_cpu() {
        let mut rng = StdRng::seed_from_u64(5);
        let scalars = random_vec(40, 1);
        let points: Vec<G1Affine> = (0..40).map(|_| G1Affine::random(&mut rng)).collect();
        let mut cpu = Backend::cpu();
        let mut sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        assert_eq!(cpu.msm(&scalars, &points), sim.msm(&scalars, &points));
        assert!(sim.report().msm_time_ns > 0.0);
    }

    #[test]
    fn pointwise_charges_only_simulated() {
        let mut cpu = Backend::cpu();
        cpu.charge_pointwise(1024, 3);
        assert_eq!(cpu.report().total_ns(), 0.0);

        let mut sim = Backend::simulated(presets::a100_nvlink(2), presets::a100_nvlink(2));
        sim.charge_pointwise(1024, 3);
        assert!(sim.report().ntt_time_ns > 0.0);
    }

    #[test]
    fn small_sizes_take_fallback_path() {
        let mut sim = Backend::simulated(presets::a100_nvlink(8), presets::a100_nvlink(8));
        let input = random_vec(8, 2); // 2^3 on 8 GPUs: too small to split
        let mut v = input.clone();
        sim.ntt_forward(&mut v);
        let mut cpu = Backend::cpu();
        let mut expected = input.clone();
        cpu.ntt_forward(&mut expected);
        assert_eq!(v, expected);
    }

    #[test]
    fn report_fraction() {
        let r = BackendReport {
            ntt_time_ns: 75.0,
            msm_time_ns: 25.0,
            ..Default::default()
        };
        assert_eq!(r.total_ns(), 100.0);
        assert!((r.ntt_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(BackendReport::default().ntt_fraction(), 0.0);
    }
}
