//! PLONK-style arithmetic circuits (gate constraints only).
//!
//! Each row applies the universal gate equation
//!
//! ```text
//! q_L·a + q_R·b + q_O·c + q_M·a·b + q_C = 0
//! ```
//!
//! over witness wires `(a, b, c)`, and *copy constraints* declare equality
//! between wire cells across rows (enforced by the permutation argument in
//! `permutation.rs` — this is full PLONK arithmetization).

use rand::Rng;
use serde::{Deserialize, Serialize};
use unintt_ff::{Bn254Fr, Field, PrimeField};

use crate::permutation::{Cell, Column, WirePermutation};

/// Selector values of one gate row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Left-wire selector.
    pub q_l: Bn254Fr,
    /// Right-wire selector.
    pub q_r: Bn254Fr,
    /// Output-wire selector.
    pub q_o: Bn254Fr,
    /// Multiplication selector.
    pub q_m: Bn254Fr,
    /// Constant selector.
    pub q_c: Bn254Fr,
}

impl Gate {
    /// An addition gate: `a + b − c = 0`.
    pub fn add() -> Self {
        Self {
            q_l: Bn254Fr::ONE,
            q_r: Bn254Fr::ONE,
            q_o: -Bn254Fr::ONE,
            ..Default::default()
        }
    }

    /// A multiplication gate: `a·b − c = 0`.
    pub fn mul() -> Self {
        Self {
            q_m: Bn254Fr::ONE,
            q_o: -Bn254Fr::ONE,
            ..Default::default()
        }
    }

    /// A constant-assertion gate: `a − k = 0`.
    pub fn assert_const(k: Bn254Fr) -> Self {
        Self {
            q_l: Bn254Fr::ONE,
            q_c: -k,
            ..Default::default()
        }
    }

    /// The no-op padding gate (all selectors zero).
    pub fn noop() -> Self {
        Self::default()
    }

    /// Evaluates the gate equation on a wire assignment.
    pub fn eval(&self, a: Bn254Fr, b: Bn254Fr, c: Bn254Fr) -> Bn254Fr {
        self.q_l * a + self.q_r * b + self.q_o * c + self.q_m * a * b + self.q_c
    }
}

/// Wire assignments for a circuit: one `(a, b, c)` triple per row.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// Left wires.
    pub a: Vec<Bn254Fr>,
    /// Right wires.
    pub b: Vec<Bn254Fr>,
    /// Output wires.
    pub c: Vec<Bn254Fr>,
}

impl Witness {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the witness has no rows.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

/// A circuit: a list of gates (padded to a power of two) plus copy
/// constraints between wire cells.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    gates: Vec<Gate>,
    copies: Vec<(Cell, Cell)>,
    num_public_inputs: usize,
}

impl Circuit {
    /// Builds a circuit from gates, padding with no-ops to the next power
    /// of two (minimum 4 rows so the quotient machinery has room).
    pub fn new(mut gates: Vec<Gate>) -> Self {
        let n = gates.len().max(4).next_power_of_two();
        gates.resize(n, Gate::noop());
        Self {
            gates,
            copies: Vec::new(),
            num_public_inputs: 0,
        }
    }

    /// Declares the first `k` rows as public-input rows: row `i` must be a
    /// `q_L = 1` gate (all other selectors zero) whose `a`-wire carries the
    /// `i`-th public input. The prover's constraint gains the term
    /// `PI(x) = Σᵢ −pubᵢ·Lᵢ(x)`, which the verifier recomputes from the
    /// public values — binding the statement into the proof.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the circuit size or any of the first `k` rows
    /// is not the canonical public-input gate.
    pub fn set_public_inputs(&mut self, k: usize) {
        assert!(k <= self.n(), "more public inputs than rows");
        let expected = Gate {
            q_l: Bn254Fr::ONE,
            ..Default::default()
        };
        for (i, g) in self.gates.iter().enumerate().take(k) {
            assert_eq!(*g, expected, "public-input row {i} must be the q_L=1 gate");
        }
        self.num_public_inputs = k;
    }

    /// Number of declared public inputs.
    pub fn num_public_inputs(&self) -> usize {
        self.num_public_inputs
    }

    /// Adds a copy constraint: the two wire cells must carry equal values.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn connect(&mut self, a: Cell, b: Cell) {
        assert!(
            a.row < self.n() && b.row < self.n(),
            "copy constraint row out of range"
        );
        self.copies.push((a, b));
    }

    /// The copy constraints.
    pub fn copies(&self) -> &[(Cell, Cell)] {
        &self.copies
    }

    /// The wire permutation encoding the copy constraints.
    pub fn wire_permutation(&self) -> WirePermutation {
        WirePermutation::from_copies(self.n(), &self.copies)
    }

    /// Number of rows (always a power of two).
    pub fn n(&self) -> usize {
        self.gates.len()
    }

    /// Row count exponent.
    pub fn log_n(&self) -> u32 {
        self.gates.len().trailing_zeros()
    }

    /// The gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Pads a witness with zero rows to the circuit size.
    ///
    /// # Panics
    ///
    /// Panics if the witness has more rows than the circuit.
    pub fn pad_witness(&self, mut w: Witness) -> Witness {
        assert!(w.len() <= self.n(), "witness longer than circuit");
        w.a.resize(self.n(), Bn254Fr::ZERO);
        w.b.resize(self.n(), Bn254Fr::ZERO);
        w.c.resize(self.n(), Bn254Fr::ZERO);
        w
    }

    /// Checks satisfaction against declared public inputs: the gate
    /// equation with the public-input term on the first rows, plus all
    /// copy constraints.
    pub fn is_satisfied_with(&self, w: &Witness, public_inputs: &[Bn254Fr]) -> bool {
        if public_inputs.len() != self.num_public_inputs {
            return false;
        }
        // Public rows: q_L·a − pubᵢ = 0 ⇔ a_i == pubᵢ.
        if !public_inputs
            .iter()
            .enumerate()
            .all(|(i, &p)| w.a.get(i) == Some(&p))
        {
            return false;
        }
        self.is_satisfied(w)
    }

    /// Checks the gate equation on every row and every copy constraint.
    /// Public-input rows hold trivially here (their gate value is
    /// `q_L·a − q_L·a`); use [`Circuit::is_satisfied_with`] to also bind
    /// the public values.
    pub fn is_satisfied(&self, w: &Witness) -> bool {
        let gates_ok = w.a.len() == self.n()
            && w.b.len() == self.n()
            && w.c.len() == self.n()
            && self
                .gates
                .iter()
                .zip(w.a.iter().zip(w.b.iter().zip(&w.c)))
                .enumerate()
                .all(|(i, (g, (&a, (&b, &c))))| {
                    if i < self.num_public_inputs {
                        // PI rows: q_L·a + PI(ωⁱ) = a − a = 0 by design.
                        true
                    } else {
                        g.eval(a, b, c).is_zero()
                    }
                });
        gates_ok && {
            let cell = |c: Cell| match c.column {
                Column::A => w.a[c.row],
                Column::B => w.b[c.row],
                Column::C => w.c[c.row],
            };
            self.copies.iter().all(|&(x, y)| cell(x) == cell(y))
        }
    }

    /// The five selector columns, each of length `n`.
    pub fn selector_columns(&self) -> [Vec<Bn254Fr>; 5] {
        let col = |f: fn(&Gate) -> Bn254Fr| self.gates.iter().map(f).collect::<Vec<_>>();
        [
            col(|g| g.q_l),
            col(|g| g.q_r),
            col(|g| g.q_o),
            col(|g| g.q_m),
            col(|g| g.q_c),
        ]
    }
}

/// The classic demo statement: "I know `x` with `x³ + x + 5 = y`".
///
/// Returns the circuit, a satisfying witness, and the public output `y`
/// (declared as the circuit's single public input).
pub fn cubic_circuit(x: Bn254Fr) -> (Circuit, Witness, Bn254Fr) {
    let x2 = x * x;
    let x3 = x2 * x;
    let y = x3 + x + Bn254Fr::from_u64(5);

    // Row 0: public input y;  row 1: x·x = x²;  row 2: x²·x = x³;
    // row 3: x³ + x = t;  row 4: t + 5 = y.
    let gates = vec![
        Gate {
            q_l: Bn254Fr::ONE,
            ..Default::default()
        },
        Gate::mul(),
        Gate::mul(),
        Gate::add(),
        Gate {
            q_l: Bn254Fr::ONE,
            q_o: -Bn254Fr::ONE,
            q_c: Bn254Fr::from_u64(5),
            ..Default::default()
        },
    ];
    let t = x3 + x;
    let witness = Witness {
        a: vec![y, x, x2, x3, t],
        b: vec![Bn254Fr::ZERO, x, x, x, Bn254Fr::ZERO],
        c: vec![Bn254Fr::ZERO, x2, x3, t, y],
    };
    let mut circuit = Circuit::new(gates);
    circuit.set_public_inputs(1);
    // Copy constraints wire the dataflow: x is one value everywhere, each
    // gate's output feeds the next gate's input, and the final output is
    // wired to the public-input row.
    circuit.connect(Cell::new(Column::A, 1), Cell::new(Column::B, 1));
    circuit.connect(Cell::new(Column::B, 1), Cell::new(Column::B, 2));
    circuit.connect(Cell::new(Column::B, 2), Cell::new(Column::B, 3));
    circuit.connect(Cell::new(Column::C, 1), Cell::new(Column::A, 2)); // x²
    circuit.connect(Cell::new(Column::C, 2), Cell::new(Column::A, 3)); // x³
    circuit.connect(Cell::new(Column::C, 3), Cell::new(Column::A, 4)); // t
    circuit.connect(Cell::new(Column::C, 4), Cell::new(Column::A, 0)); // y public
    let witness = circuit.pad_witness(witness);
    (circuit, witness, y)
}

/// Generates a random satisfiable circuit of `rows` gates (for benches):
/// selectors and inputs are random, the output wire is solved for.
pub fn random_circuit<R: Rng + ?Sized>(rows: usize, rng: &mut R) -> (Circuit, Witness) {
    let mut gates = Vec::with_capacity(rows);
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    let mut c = Vec::with_capacity(rows);
    for i in 0..rows {
        let g = Gate {
            q_l: Bn254Fr::random(rng),
            q_r: Bn254Fr::random(rng),
            q_o: -Bn254Fr::ONE,
            q_m: Bn254Fr::random(rng),
            q_c: Bn254Fr::random(rng),
        };
        // Chain the dataflow: each gate's left input is the previous
        // gate's output (enforced below by a copy constraint).
        let ai = if i == 0 {
            Bn254Fr::random(rng)
        } else {
            c[i - 1]
        };
        let bi = Bn254Fr::random(rng);
        // Solve q_L·a + q_R·b + q_M·ab + q_C = c.
        let ci = g.q_l * ai + g.q_r * bi + g.q_m * ai * bi + g.q_c;
        gates.push(g);
        a.push(ai);
        b.push(bi);
        c.push(ci);
    }
    let mut circuit = Circuit::new(gates);
    for i in 1..rows {
        circuit.connect(Cell::new(Column::C, i - 1), Cell::new(Column::A, i));
    }
    let witness = circuit.pad_witness(Witness { a, b, c });
    (circuit, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::PrimeField;

    #[test]
    fn cubic_circuit_satisfied() {
        let x = Bn254Fr::from_u64(3);
        let (circuit, witness, y) = cubic_circuit(x);
        assert!(circuit.is_satisfied(&witness));
        assert!(circuit.is_satisfied_with(&witness, &[y]));
        assert!(!circuit.is_satisfied_with(&witness, &[y + Bn254Fr::ONE]));
        assert!(!circuit.is_satisfied_with(&witness, &[]));
        assert_eq!(y, Bn254Fr::from_u64(27 + 3 + 5));
        assert_eq!(circuit.n(), 8); // 5 gates padded to the next power of 2
        assert_eq!(circuit.num_public_inputs(), 1);
    }

    #[test]
    fn tampered_witness_rejected() {
        let (circuit, mut witness, _) = cubic_circuit(Bn254Fr::from_u64(7));
        witness.c[1] += Bn254Fr::ONE;
        assert!(!circuit.is_satisfied(&witness));
    }

    #[test]
    fn random_circuits_satisfied_and_padded() {
        let mut rng = StdRng::seed_from_u64(1);
        for rows in [1usize, 5, 16, 100] {
            let (circuit, witness) = random_circuit(rows, &mut rng);
            assert!(circuit.n().is_power_of_two());
            assert!(circuit.n() >= rows);
            assert!(circuit.is_satisfied(&witness), "rows={rows}");
        }
    }

    #[test]
    fn gate_constructors() {
        let two = Bn254Fr::from_u64(2);
        let three = Bn254Fr::from_u64(3);
        assert!(Gate::add().eval(two, three, Bn254Fr::from_u64(5)).is_zero());
        assert!(Gate::mul().eval(two, three, Bn254Fr::from_u64(6)).is_zero());
        assert!(Gate::assert_const(two)
            .eval(two, Bn254Fr::ZERO, Bn254Fr::ZERO)
            .is_zero());
        assert!(Gate::noop()
            .eval(two, three, Bn254Fr::from_u64(999))
            .is_zero());
    }

    #[test]
    fn selector_columns_align() {
        let (circuit, _, _) = cubic_circuit(Bn254Fr::from_u64(2));
        let cols = circuit.selector_columns();
        for col in &cols {
            assert_eq!(col.len(), circuit.n());
        }
        assert_eq!(cols[3][1], Bn254Fr::ONE); // q_m of the first mul gate (row 1)
    }
}
