//! Dense univariate polynomials in coefficient form.
//!
//! The prover's algebra layer: addition, NTT-backed multiplication,
//! evaluation, and the two divisions SNARKs live on — by a linear factor
//! `(x − z)` (KZG openings) and by the vanishing polynomial `xⁿ − 1`
//! (quotient computation).

use unintt_ff::TwoAdicField;
use unintt_ntt::{poly_mul_ntt, Ntt};

/// A dense polynomial; `coeffs[i]` is the coefficient of `xⁱ`.
///
/// The representation is kept *normalized*: no trailing zero coefficients
/// (the zero polynomial has an empty vector).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial<F: TwoAdicField> {
    coeffs: Vec<F>,
}

impl<F: TwoAdicField> Polynomial<F> {
    /// Creates a polynomial, trimming trailing zeros.
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::new(vec![c])
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree; the zero polynomial reports 0 by convention.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Coefficients, lowest-degree first (no trailing zeros).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Consumes the polynomial, returning its coefficients.
    pub fn into_coeffs(self) -> Vec<F> {
        self.coeffs
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: F) -> F {
        self.coeffs
            .iter()
            .rev()
            .fold(F::ZERO, |acc, &c| acc * x + c)
    }

    /// Interpolates from evaluations on the size-`2^log_n` subgroup.
    ///
    /// # Panics
    ///
    /// Panics if `evals.len()` is not a power of two within the field's
    /// two-adicity.
    pub fn interpolate(evals: &[F]) -> Self {
        assert!(
            evals.len().is_power_of_two(),
            "evaluation count must be a power of two"
        );
        let ntt = Ntt::<F>::new(evals.len().trailing_zeros());
        let mut coeffs = evals.to_vec();
        ntt.inverse(&mut coeffs);
        Self::new(coeffs)
    }

    /// Evaluates on the size-`n` subgroup (`n` ≥ `degree + 1`, power of 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is too small for the degree.
    pub fn evaluate_on_domain(&self, n: usize) -> Vec<F> {
        assert!(n.is_power_of_two(), "domain size must be a power of two");
        assert!(
            self.coeffs.len() <= n,
            "polynomial of degree {} does not fit domain of size {n}",
            self.degree()
        );
        let ntt = Ntt::<F>::new(n.trailing_zeros());
        let mut values = self.coeffs.clone();
        values.resize(n, F::ZERO);
        ntt.forward(&mut values);
        values
    }

    /// Adds two polynomials.
    pub fn add(&self, rhs: &Self) -> Self {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![F::ZERO; n];
        for (o, &c) in out.iter_mut().zip(&self.coeffs) {
            *o = c;
        }
        for (o, &c) in out.iter_mut().zip(&rhs.coeffs) {
            *o += c;
        }
        Self::new(out)
    }

    /// Subtracts `rhs`.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.scale(-F::ONE))
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, k: F) -> Self {
        Self::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Polynomial product via NTT convolution.
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        Self::new(poly_mul_ntt(&self.coeffs, &rhs.coeffs))
    }

    /// Divides by the linear factor `(x − z)`, returning `(quotient,
    /// remainder)` with `remainder == self.evaluate(z)` (synthetic
    /// division).
    pub fn divide_by_linear(&self, z: F) -> (Self, F) {
        if self.is_zero() {
            return (Self::zero(), F::ZERO);
        }
        // High-to-low synthetic division: q_{i-1} = c_i + z·q_i.
        let n = self.coeffs.len();
        let mut quotient = vec![F::ZERO; n - 1];
        let mut running = F::ZERO;
        for i in (1..n).rev() {
            running = self.coeffs[i] + running * z;
            quotient[i - 1] = running;
        }
        let remainder = self.coeffs[0] + running * z;
        (Self::new(quotient), remainder)
    }

    /// Divides by the vanishing polynomial `xⁿ − 1` of the size-`n`
    /// subgroup, returning the quotient.
    ///
    /// # Panics
    ///
    /// Panics if the division is not exact (i.e. the polynomial does not
    /// vanish on the subgroup) or `n` is zero.
    pub fn divide_by_vanishing(&self, n: usize) -> Self {
        assert!(n > 0, "domain size must be positive");
        if self.is_zero() {
            return Self::zero();
        }
        // For f = q·(xⁿ−1) + r: process coefficients from the top,
        // folding c_{i+n} into c_i.
        let mut work = self.coeffs.clone();
        let deg = work.len() - 1;
        if deg < n {
            panic!("polynomial of degree {deg} does not vanish on a domain of size {n}");
        }
        let mut quotient = vec![F::ZERO; work.len() - n];
        for i in (n..work.len()).rev() {
            let q = work[i];
            quotient[i - n] = q;
            work[i] = F::ZERO;
            work[i - n] += q;
        }
        assert!(
            work.iter().all(|c| c.is_zero()),
            "polynomial does not vanish on the size-{n} subgroup"
        );
        Self::new(quotient)
    }

    /// Samples a random polynomial of exactly the given `degree`.
    pub fn random<R: rand::Rng + ?Sized>(degree: usize, rng: &mut R) -> Self {
        let mut coeffs: Vec<F> = (0..=degree).map(|_| F::random(rng)).collect();
        if coeffs[degree].is_zero() {
            coeffs[degree] = F::ONE;
        }
        Self { coeffs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks, PrimeField};

    type P = Polynomial<Goldilocks>;

    fn gl(v: u64) -> Goldilocks {
        Goldilocks::from_u64(v)
    }

    #[test]
    fn normalization_trims_zeros() {
        let p = P::new(vec![gl(1), gl(2), Goldilocks::ZERO, Goldilocks::ZERO]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs().len(), 2);
        assert!(P::new(vec![Goldilocks::ZERO; 4]).is_zero());
    }

    #[test]
    fn evaluate_matches_horner() {
        // p(x) = 3 + 2x + x² at x=4: 3 + 8 + 16 = 27.
        let p = P::new(vec![gl(3), gl(2), gl(1)]);
        assert_eq!(p.evaluate(gl(4)), gl(27));
        assert_eq!(P::zero().evaluate(gl(9)), Goldilocks::ZERO);
    }

    #[test]
    fn interpolate_evaluate_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = P::random(13, &mut rng);
        let evals = p.evaluate_on_domain(16);
        assert_eq!(P::interpolate(&evals), p);
    }

    #[test]
    fn mul_matches_evaluation() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = P::random(5, &mut rng);
        let b = P::random(7, &mut rng);
        let prod = a.mul(&b);
        assert_eq!(prod.degree(), 12);
        for x in [gl(0), gl(1), gl(12345)] {
            assert_eq!(prod.evaluate(x), a.evaluate(x) * b.evaluate(x));
        }
    }

    #[test]
    fn add_sub_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = P::random(4, &mut rng);
        let b = P::random(6, &mut rng);
        let x = gl(77);
        assert_eq!(a.add(&b).evaluate(x), a.evaluate(x) + b.evaluate(x));
        assert_eq!(a.sub(&b).evaluate(x), a.evaluate(x) - b.evaluate(x));
        assert_eq!(a.scale(gl(5)).evaluate(x), a.evaluate(x) * gl(5));
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn linear_division_is_exact_on_roots() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = P::random(9, &mut rng);
        let z = gl(42);
        let (q, r) = p.divide_by_linear(z);
        assert_eq!(r, p.evaluate(z));
        // p(x) = q(x)(x - z) + r
        let reconstructed = q.mul(&P::new(vec![-z, gl(1)])).add(&P::constant(r));
        assert_eq!(reconstructed, p);
    }

    #[test]
    fn linear_division_of_constant() {
        let p = P::constant(gl(7));
        let (q, r) = p.divide_by_linear(gl(3));
        assert!(q.is_zero());
        assert_eq!(r, gl(7));
    }

    #[test]
    fn vanishing_division_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        // Build f = q·(x⁸ − 1) and recover q.
        let q = P::random(10, &mut rng);
        let vanishing = {
            let mut c = vec![Goldilocks::ZERO; 9];
            c[0] = -Goldilocks::ONE;
            c[8] = Goldilocks::ONE;
            P::new(c)
        };
        let f = q.mul(&vanishing);
        assert_eq!(f.divide_by_vanishing(8), q);
    }

    #[test]
    #[should_panic(expected = "does not vanish")]
    fn vanishing_division_inexact_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let f = P::random(10, &mut rng);
        let _ = f.divide_by_vanishing(8);
    }

    #[test]
    fn degree_zero_cases() {
        assert_eq!(P::zero().degree(), 0);
        assert_eq!(P::constant(gl(1)).degree(), 0);
        assert!(P::zero().mul(&P::constant(gl(3))).is_zero());
    }
}
