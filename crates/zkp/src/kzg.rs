//! KZG polynomial commitments over BN254 G1.
//!
//! Commitments and openings are the real algorithms (structured reference
//! string of `τⁱ·G`, MSM commitments, witness polynomials by synthetic
//! division). The *final pairing check* is replaced by an algebraically
//! identical trapdoor check: the [`Srs`] retains `τ`, and
//! `e(C − y·G, H) = e(W, (τ−z)·H)` is verified as
//! `C − y·G == (τ − z)·W` directly in G1. This keeps every prover-side
//! byte and cycle identical to a production KZG while avoiding a from-
//! scratch pairing tower (documented substitution — the prover, which is
//! what the paper measures, never touches the pairing).

use rand::Rng;
use unintt_ff::{Bn254Fr, Field};
use unintt_msm::{msm, G1Affine, G1Projective};

use crate::Polynomial;

/// A KZG structured reference string with retained trapdoor.
#[derive(Clone, Debug)]
pub struct Srs {
    powers: Vec<G1Affine>,
    tau: Bn254Fr,
}

impl Srs {
    /// Generates an SRS supporting polynomials of degree `< max_len`.
    pub fn generate<R: Rng + ?Sized>(max_len: usize, rng: &mut R) -> Self {
        let tau = Bn254Fr::random(rng);
        Self::from_trapdoor(max_len, tau)
    }

    /// Deterministic SRS from a given trapdoor (tests, reproducibility).
    pub fn from_trapdoor(max_len: usize, tau: Bn254Fr) -> Self {
        assert!(max_len > 0, "SRS must support at least degree 0");
        let g = G1Projective::generator();
        let mut powers = Vec::with_capacity(max_len);
        let mut acc = Bn254Fr::ONE;
        for _ in 0..max_len {
            powers.push(g.mul_scalar(&acc).to_affine());
            acc *= tau;
        }
        Self { powers, tau }
    }

    /// Maximum supported polynomial length (degree + 1).
    pub fn max_len(&self) -> usize {
        self.powers.len()
    }

    /// The `τⁱ·G` points (for custom MSM backends).
    pub fn powers(&self) -> &[G1Affine] {
        &self.powers
    }

    /// The retained trapdoor (pairing-free verification only).
    pub fn trapdoor(&self) -> Bn254Fr {
        self.tau
    }

    /// Commits to a polynomial: `C = Σ cᵢ·τⁱ·G`, one MSM.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is too large for the SRS.
    pub fn commit(&self, poly: &Polynomial<Bn254Fr>) -> G1Projective {
        let coeffs = poly.coeffs();
        assert!(
            coeffs.len() <= self.powers.len(),
            "polynomial length {} exceeds SRS size {}",
            coeffs.len(),
            self.powers.len()
        );
        msm(coeffs, &self.powers[..coeffs.len()])
    }

    /// Opens `poly` at `z`: returns `(y, W)` with `y = poly(z)` and
    /// `W = commit((poly − y)/(x − z))`.
    pub fn open(&self, poly: &Polynomial<Bn254Fr>, z: Bn254Fr) -> (Bn254Fr, G1Projective) {
        let (quotient, y) = poly.divide_by_linear(z);
        (y, self.commit(&quotient))
    }

    /// Verifies an opening via the trapdoor identity
    /// `C − y·G == (τ − z)·W`.
    pub fn verify(
        &self,
        commitment: &G1Projective,
        z: Bn254Fr,
        y: Bn254Fr,
        witness: &G1Projective,
    ) -> bool {
        let g = G1Projective::generator();
        let lhs = *commitment + (-g.mul_scalar(&y));
        let rhs = witness.mul_scalar(&(self.tau - z));
        lhs == rhs
    }

    /// Batched opening of several polynomials at one point: with a
    /// verifier challenge `v`, opens `Σ vⁱ·polyᵢ` with a single witness.
    /// Returns the individual evaluations and the combined witness.
    pub fn batch_open(
        &self,
        polys: &[&Polynomial<Bn254Fr>],
        z: Bn254Fr,
        v: Bn254Fr,
    ) -> (Vec<Bn254Fr>, G1Projective) {
        let evals: Vec<Bn254Fr> = polys.iter().map(|p| p.evaluate(z)).collect();
        let mut combined = Polynomial::zero();
        let mut vi = Bn254Fr::ONE;
        for p in polys {
            combined = combined.add(&p.scale(vi));
            vi *= v;
        }
        let (_, witness) = self.open(&combined, z);
        (evals, witness)
    }

    /// Verifies a batched opening against the individual commitments and
    /// claimed evaluations.
    pub fn batch_verify(
        &self,
        commitments: &[G1Projective],
        z: Bn254Fr,
        evals: &[Bn254Fr],
        v: Bn254Fr,
        witness: &G1Projective,
    ) -> bool {
        if commitments.len() != evals.len() {
            return false;
        }
        let mut combined_c = G1Projective::identity();
        let mut combined_y = Bn254Fr::ZERO;
        let mut vi = Bn254Fr::ONE;
        for (c, &y) in commitments.iter().zip(evals) {
            combined_c += c.mul_scalar(&vi);
            combined_y += y * vi;
            vi *= v;
        }
        self.verify(&combined_c, z, combined_y, witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::PrimeField;

    fn srs(n: usize) -> Srs {
        Srs::from_trapdoor(n, Bn254Fr::from_u64(123456789))
    }

    #[test]
    fn commit_constant_is_scaled_generator() {
        let s = srs(4);
        let c = s.commit(&Polynomial::constant(Bn254Fr::from_u64(5)));
        assert_eq!(
            c,
            G1Projective::generator().mul_scalar(&Bn254Fr::from_u64(5))
        );
    }

    #[test]
    fn commitment_equals_evaluation_at_tau() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = srs(16);
        let p = Polynomial::<Bn254Fr>::random(10, &mut rng);
        let expected = G1Projective::generator().mul_scalar(&p.evaluate(s.trapdoor()));
        assert_eq!(s.commit(&p), expected);
    }

    #[test]
    fn open_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = srs(16);
        let p = Polynomial::<Bn254Fr>::random(12, &mut rng);
        let z = Bn254Fr::random(&mut rng);
        let (y, w) = s.open(&p, z);
        assert_eq!(y, p.evaluate(z));
        let c = s.commit(&p);
        assert!(s.verify(&c, z, y, &w));
    }

    #[test]
    fn verify_rejects_wrong_evaluation() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = srs(16);
        let p = Polynomial::<Bn254Fr>::random(12, &mut rng);
        let z = Bn254Fr::random(&mut rng);
        let (y, w) = s.open(&p, z);
        let c = s.commit(&p);
        assert!(!s.verify(&c, z, y + Bn254Fr::ONE, &w));
    }

    #[test]
    fn verify_rejects_wrong_commitment() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = srs(16);
        let p = Polynomial::<Bn254Fr>::random(12, &mut rng);
        let q = Polynomial::<Bn254Fr>::random(12, &mut rng);
        let z = Bn254Fr::random(&mut rng);
        let (y, w) = s.open(&p, z);
        assert!(!s.verify(&s.commit(&q), z, y, &w));
    }

    #[test]
    fn batch_open_verify() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = srs(32);
        let polys: Vec<Polynomial<Bn254Fr>> =
            (0..4).map(|_| Polynomial::random(20, &mut rng)).collect();
        let refs: Vec<&Polynomial<Bn254Fr>> = polys.iter().collect();
        let commitments: Vec<G1Projective> = polys.iter().map(|p| s.commit(p)).collect();
        let z = Bn254Fr::random(&mut rng);
        let v = Bn254Fr::random(&mut rng);
        let (evals, witness) = s.batch_open(&refs, z, v);
        assert!(s.batch_verify(&commitments, z, &evals, v, &witness));

        // Tampering with one evaluation breaks it.
        let mut bad = evals.clone();
        bad[2] += Bn254Fr::ONE;
        assert!(!s.batch_verify(&commitments, z, &bad, v, &witness));
    }

    #[test]
    #[should_panic(expected = "exceeds SRS size")]
    fn oversized_polynomial_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = srs(4);
        let p = Polynomial::<Bn254Fr>::random(10, &mut rng);
        let _ = s.commit(&p);
    }
}
