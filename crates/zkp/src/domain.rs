//! Evaluation domains: power-of-two multiplicative subgroups and cosets.

use unintt_ff::TwoAdicField;

/// The size-`2^log_n` subgroup `H = ⟨ω⟩` and its standard coset `g·H`.
#[derive(Clone, Debug)]
pub struct EvaluationDomain<F: TwoAdicField> {
    log_n: u32,
    omega: F,
    /// The coset shift (the field's multiplicative generator).
    shift: F,
}

impl<F: TwoAdicField> EvaluationDomain<F> {
    /// Creates the domain of size `2^log_n`.
    ///
    /// # Panics
    ///
    /// Panics if `log_n` exceeds the field's two-adicity.
    pub fn new(log_n: u32) -> Self {
        Self {
            log_n,
            omega: F::two_adic_generator(log_n),
            shift: F::GENERATOR,
        }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Domain size exponent.
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The domain's primitive root `ω`.
    pub fn omega(&self) -> F {
        self.omega
    }

    /// The coset shift `g`.
    pub fn shift(&self) -> F {
        self.shift
    }

    /// The `i`-th subgroup element `ωⁱ`.
    pub fn element(&self, i: usize) -> F {
        self.omega.pow((i & (self.n() - 1)) as u64)
    }

    /// The `i`-th coset element `g·ωⁱ`.
    pub fn coset_element(&self, i: usize) -> F {
        self.shift * self.element(i)
    }

    /// Evaluates the vanishing polynomial `Z_H(x) = xⁿ − 1` at `x`.
    pub fn vanishing_at(&self, x: F) -> F {
        x.pow(self.n() as u64) - F::ONE
    }

    /// Evaluations of `Z_H` on the coset `g·H'` of a *larger* domain `H'`
    /// of size `n·2^log_blowup`. Since `Z_H(g·ω'ᵏ) = gⁿ·ω'^{kn} − 1` and
    /// `ω'ⁿ` has order `2^log_blowup`, the values repeat with period
    /// `2^log_blowup` — all nonzero, hence invertible.
    pub fn vanishing_on_coset(&self, log_blowup: u32) -> Vec<F> {
        let big_n = self.n() << log_blowup;
        let omega_big = F::two_adic_generator(self.log_n + log_blowup);
        let step = omega_big.pow(self.n() as u64); // order 2^log_blowup
        let shift_n = self.shift.pow(self.n() as u64);
        let mut out = Vec::with_capacity(big_n);
        let mut cur = shift_n;
        let period = 1usize << log_blowup;
        let mut cycle = Vec::with_capacity(period);
        for _ in 0..period {
            cycle.push(cur - F::ONE);
            cur *= step;
        }
        for k in 0..big_n {
            out.push(cycle[k % period]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_ff::{Field, Goldilocks};

    #[test]
    fn elements_have_right_order() {
        let d = EvaluationDomain::<Goldilocks>::new(4);
        assert_eq!(d.n(), 16);
        assert_eq!(d.element(0), Goldilocks::ONE);
        assert_eq!(d.element(16), Goldilocks::ONE); // wraps
        assert_eq!(d.omega().pow(16), Goldilocks::ONE);
        assert_ne!(d.omega().pow(8), Goldilocks::ONE);
    }

    #[test]
    fn vanishing_zero_on_subgroup_nonzero_on_coset() {
        let d = EvaluationDomain::<Goldilocks>::new(3);
        for i in 0..8 {
            assert!(d.vanishing_at(d.element(i)).is_zero(), "i={i}");
            assert!(!d.vanishing_at(d.coset_element(i)).is_zero(), "i={i}");
        }
    }

    #[test]
    fn vanishing_on_coset_matches_pointwise() {
        let d = EvaluationDomain::<Goldilocks>::new(3);
        let log_blowup = 2;
        let values = d.vanishing_on_coset(log_blowup);
        assert_eq!(values.len(), 32);
        let big = EvaluationDomain::<Goldilocks>::new(5);
        for (k, &v) in values.iter().enumerate() {
            let x = big.coset_element(k);
            assert_eq!(v, d.vanishing_at(x), "k={k}");
            assert!(!v.is_zero());
        }
    }

    #[test]
    fn coset_is_disjoint_from_subgroup() {
        let d = EvaluationDomain::<Goldilocks>::new(4);
        // g·ωⁱ is never in H (g is a non-residue, H has even order).
        for i in 0..16 {
            let x = d.coset_element(i);
            assert!(!d.vanishing_at(x).is_zero());
        }
    }
}
