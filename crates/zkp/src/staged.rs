//! Stage-decomposed PLONK proving for the whole-proof DAG scheduler.
//!
//! [`StagedProver`] splits [`crate::prove`] into sixteen explicitly
//! dependency-ordered stages — wire interpolation, per-wire MSM commits,
//! transcript barriers, the grand product, the 13-way coset LDE, the
//! quotient, and the openings — so a scheduler can run *independent*
//! stages concurrently (the three wire commits; the z-commit MSM against
//! the quotient LDE NTT batch; the two opening MSMs) and interleave
//! stages of different proofs on shared hardware.
//!
//! Bit-identity with the monolithic path is structural, not accidental:
//!
//! * every transcript interaction happens in a stage on the totally
//!   ordered barrier chain (stages 0 → 4 → 7 → 11 → 12), so challenges
//!   β, γ, α, ζ, v are drawn from exactly the monolithic transcript
//!   state no matter how the surrounding compute stages interleave;
//! * all NTT-machine work sits on one dependency chain
//!   (0 → 5 → 8 → 9 → 12 → 13), so the simulated NTT clock sees the
//!   identical kernel sequence as [`crate::prove_with_recovery`];
//! * MSM stages are data-independent of each other and commute on the
//!   simulated MSM machine without changing any proof byte.
//!
//! A stage that fails with a transient [`FabricError`] leaves the prover
//! state untouched and may simply be re-run: only the failed stage (and
//! the stages that depend on it) replay, never the whole proof.

use unintt_core::RecoveryPolicy;
use unintt_ff::{batch_inverse, Bn254Fr, Field, TwoAdicField};
use unintt_gpu_sim::FabricError;
use unintt_msm::G1Projective;

use crate::permutation::column_shifts;
use crate::prover::{commit_via, Proof, ProvingKey};
use crate::prover::{coset_ntt_batch_via, lagrange0_on_coset};
use crate::{Backend, Polynomial, Transcript, Witness};

/// One node of a proof-stage DAG: a display name, a coarse resource kind
/// (`"ntt"`, `"msm"`, `"pointwise"`, `"hash"`, `"fold"` or `"barrier"`)
/// and the indices of the stages that must complete first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageDesc {
    /// Human-readable stage name (stable across runs; used in traces).
    pub name: String,
    /// Resource-kind tag used for scheduling and time attribution.
    pub kind: &'static str,
    /// Indices of stages this one depends on.
    pub deps: Vec<usize>,
}

impl StageDesc {
    fn new(name: &str, kind: &'static str, deps: &[usize]) -> Self {
        Self {
            name: name.to_string(),
            kind,
            deps: deps.to_vec(),
        }
    }
}

/// The fixed 16-stage PLONK proof DAG (see the module docs for why the
/// edges are what they are).
pub fn plonk_stage_descs() -> Vec<StageDesc> {
    vec![
        StageDesc::new("wire-interp", "ntt", &[]),    // 0
        StageDesc::new("wire-commit-a", "msm", &[0]), // 1
        StageDesc::new("wire-commit-b", "msm", &[0]), // 2
        StageDesc::new("wire-commit-c", "msm", &[0]), // 3
        StageDesc::new("round1-barrier", "barrier", &[1, 2, 3]), // 4
        StageDesc::new("grand-product", "ntt", &[4]), // 5
        StageDesc::new("z-commit", "msm", &[5]),      // 6
        StageDesc::new("round2-barrier", "barrier", &[6]), // 7
        // The 13-way coset LDE needs no challenge drawn after β/γ, so it
        // depends on the grand product only — it overlaps the z-commit
        // MSM, which the monolithic prover serializes.
        StageDesc::new("quotient-lde", "ntt", &[5]), // 8
        StageDesc::new("quotient-ntt", "ntt", &[7, 8]), // 9
        StageDesc::new("quotient-commit", "msm", &[9]), // 10
        StageDesc::new("round3-barrier", "barrier", &[10]), // 11
        StageDesc::new("openings-eval", "pointwise", &[11]), // 12
        StageDesc::new("opening-commit", "msm", &[12]), // 13
        StageDesc::new("opening-shift-commit", "msm", &[12]), // 14
        StageDesc::new("finish", "barrier", &[13, 14]), // 15
    ]
}

/// Number of stages in the PLONK proof DAG.
pub const PLONK_STAGES: usize = 16;

/// A PLONK proof decomposed into runnable stages (see module docs).
///
/// Construct with [`StagedProver::new`], then run every stage (in any
/// order consistent with [`plonk_stage_descs`]) via
/// [`StagedProver::run_stage`]; the finished [`Proof`] is available from
/// [`StagedProver::proof`] once the final stage completes and is
/// bit-identical to [`crate::prove`] on the same inputs.
pub struct StagedProver {
    pk: ProvingKey,
    witness: Witness,
    backend: Backend,
    transcript: Transcript,
    pi_poly: Polynomial<Bn254Fr>,
    done: [bool; PLONK_STAGES],

    wire_polys: Option<[Polynomial<Bn254Fr>; 3]>,
    wire_commits: [Option<G1Projective>; 3],
    beta: Option<Bn254Fr>,
    gamma: Option<Bn254Fr>,
    poly_z: Option<Polynomial<Bn254Fr>>,
    z_commit: Option<G1Projective>,
    alpha: Option<Bn254Fr>,
    ldes: Option<Vec<Vec<Bn254Fr>>>,
    poly_t: Option<Polynomial<Bn254Fr>>,
    quotient_commit: Option<G1Projective>,
    zeta: Option<Bn254Fr>,
    evals: Option<[Bn254Fr; 13]>,
    z_omega_eval: Option<Bn254Fr>,
    v: Option<Bn254Fr>,
    opening: Option<G1Projective>,
    opening_omega: Option<G1Projective>,
    proof: Option<Proof>,
}

impl StagedProver {
    /// Starts a staged proof. Mirrors the preamble of [`crate::prove`]:
    /// the transcript absorbs the domain size and public inputs, and the
    /// public-input polynomial is interpolated host-side.
    ///
    /// # Panics
    ///
    /// Panics if the witness length or public-input count do not match
    /// the circuit, exactly like [`crate::prove`].
    pub fn new(
        pk: &ProvingKey,
        witness: &Witness,
        public_inputs: &[Bn254Fr],
        backend: Backend,
    ) -> Self {
        let n = pk.circuit().n();
        assert_eq!(witness.len(), n, "witness length must equal circuit size");
        assert_eq!(
            public_inputs.len(),
            pk.circuit().num_public_inputs(),
            "wrong number of public inputs"
        );
        let mut transcript = Transcript::new("unintt-plonk-v2");
        transcript.absorb_u64(n as u64);
        for p in public_inputs {
            transcript.absorb_scalar(*p);
        }
        let pi_poly = {
            let mut evals = vec![Bn254Fr::ZERO; n];
            for (e, &p) in evals.iter_mut().zip(public_inputs) {
                *e = -p;
            }
            Polynomial::interpolate(&evals)
        };
        Self {
            pk: pk.clone(),
            witness: witness.clone(),
            backend,
            transcript,
            pi_poly,
            done: [false; PLONK_STAGES],
            wire_polys: None,
            wire_commits: [None; 3],
            beta: None,
            gamma: None,
            poly_z: None,
            z_commit: None,
            alpha: None,
            ldes: None,
            poly_t: None,
            quotient_commit: None,
            zeta: None,
            evals: None,
            z_omega_eval: None,
            v: None,
            opening: None,
            opening_omega: None,
            proof: None,
        }
    }

    /// The stage DAG this prover executes (same for every PLONK proof).
    pub fn stage_descs(&self) -> Vec<StageDesc> {
        plonk_stage_descs()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        PLONK_STAGES
    }

    /// Whether stage `idx` has completed.
    pub fn stage_done(&self, idx: usize) -> bool {
        self.done[idx]
    }

    /// Whether every stage has completed.
    pub fn is_complete(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// Total simulated nanoseconds accumulated so far across the
    /// backend's NTT and MSM machines (0 for the CPU backend).
    pub fn sim_total_ns(&self) -> f64 {
        self.backend.report().total_ns()
    }

    /// The finished proof, once [`StagedProver::is_complete`].
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// Mutable backend access (to install fault plans in tests).
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// Runs one stage, returning the simulated nanoseconds it charged.
    ///
    /// # Errors
    ///
    /// Propagates any [`FabricError`] that outlives `policy`'s retries;
    /// the stage is left not-done and can be re-run (only the affected
    /// subgraph ever replays — completed stages keep their results).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, already done, or has an
    /// unfinished dependency.
    pub fn run_stage(&mut self, idx: usize, policy: &RecoveryPolicy) -> Result<f64, FabricError> {
        assert!(idx < PLONK_STAGES, "stage index out of range");
        assert!(!self.done[idx], "stage {idx} already completed");
        let descs = plonk_stage_descs();
        for &d in &descs[idx].deps {
            assert!(self.done[d], "stage {idx} depends on unfinished stage {d}");
        }
        let before = self.sim_total_ns();
        self.execute(idx, policy)?;
        self.done[idx] = true;
        Ok(self.sim_total_ns() - before)
    }

    fn execute(&mut self, idx: usize, policy: &RecoveryPolicy) -> Result<(), FabricError> {
        let n = self.pk.circuit().n();
        match idx {
            // Round 1: batched wire interpolation.
            0 => {
                let mut wires = [
                    self.witness.a.clone(),
                    self.witness.b.clone(),
                    self.witness.c.clone(),
                ];
                self.backend.try_ntt_inverse_batch(&mut wires, policy)?;
                let [a, b, c] = wires;
                self.wire_polys =
                    Some([Polynomial::new(a), Polynomial::new(b), Polynomial::new(c)]);
            }
            // Three independent wire commitments.
            1..=3 => {
                let w = idx - 1;
                let poly = &self.wire_polys.as_ref().expect("wire-interp done")[w];
                self.wire_commits[w] = Some(commit_via(&mut self.backend, self.pk.srs(), poly));
            }
            // Round-1 barrier: absorb the commitments, draw β and γ.
            4 => {
                for w in &self.wire_commits {
                    self.transcript.absorb_point(&w.expect("wire commit done"));
                }
                self.beta = Some(self.transcript.challenge());
                self.gamma = Some(self.transcript.challenge());
            }
            // Round 2: grand product and its interpolation.
            5 => {
                let beta = self.beta.expect("round-1 barrier done");
                let gamma = self.gamma.expect("round-1 barrier done");
                let permutation = self.pk.circuit().wire_permutation();
                let wires = [
                    self.witness.a.clone(),
                    self.witness.b.clone(),
                    self.witness.c.clone(),
                ];
                let omega = self.pk.domain().omega();
                let mut z_evals = permutation.grand_product(&wires, omega, beta, gamma);
                self.backend.charge_pointwise(n, 8);
                self.backend.try_ntt_inverse(&mut z_evals, policy)?;
                self.poly_z = Some(Polynomial::new(z_evals));
            }
            6 => {
                let poly_z = self.poly_z.as_ref().expect("grand-product done");
                self.z_commit = Some(commit_via(&mut self.backend, self.pk.srs(), poly_z));
            }
            // Round-2 barrier: absorb z, draw α.
            7 => {
                self.transcript
                    .absorb_point(&self.z_commit.expect("z-commit done"));
                self.alpha = Some(self.transcript.challenge());
            }
            // Round 3a: the 13-way coset LDE batch. No challenge past β/γ
            // is used here, so this runs concurrently with the z-commit.
            8 => {
                let big_n = n << 2;
                let shift = self.pk.domain().shift();
                let wire_polys = self.wire_polys.as_ref().expect("wire-interp done");
                let poly_z = self.poly_z.as_ref().expect("grand-product done");
                let lde_inputs: [&Polynomial<Bn254Fr>; 13] = [
                    &wire_polys[0],
                    &wire_polys[1],
                    &wire_polys[2],
                    &self.pk.selector_polys()[0],
                    &self.pk.selector_polys()[1],
                    &self.pk.selector_polys()[2],
                    &self.pk.selector_polys()[3],
                    &self.pk.selector_polys()[4],
                    &self.pk.sigma_polys()[0],
                    &self.pk.sigma_polys()[1],
                    &self.pk.sigma_polys()[2],
                    &self.pi_poly,
                    poly_z,
                ];
                self.ldes = Some(coset_ntt_batch_via(
                    &mut self.backend,
                    &lde_inputs,
                    shift,
                    big_n,
                    policy,
                )?);
            }
            // Round 3b: quotient evaluation and interpolation.
            9 => {
                let beta = self.beta.expect("round-1 barrier done");
                let gamma = self.gamma.expect("round-1 barrier done");
                let alpha = self.alpha.expect("round-2 barrier done");
                let log_blowup = 2u32;
                let big_n = n << log_blowup;
                let blowup = 1usize << log_blowup;
                let shift = self.pk.domain().shift();

                // Pop from a clone so a failed iNTT retry re-derives the
                // evaluation tables instead of seeing consumed state.
                let mut ldes = self.ldes.clone().expect("quotient-lde done");
                let ev_z = ldes.pop().expect("thirteen LDEs");
                let ev_pi = ldes.pop().expect("PI evaluations");
                let ev_sig: Vec<Vec<Bn254Fr>> = ldes.split_off(8);
                let ev_sel: Vec<Vec<Bn254Fr>> = ldes.split_off(3);
                let ev_c = ldes.pop().expect("wire C");
                let ev_b = ldes.pop().expect("wire B");
                let ev_a = ldes.pop().expect("wire A");

                let mut z_h_inv = self.pk.domain().vanishing_on_coset(log_blowup);
                batch_inverse(&mut z_h_inv);
                let l0 = lagrange0_on_coset(self.pk.domain(), log_blowup);
                let omega_big = Bn254Fr::two_adic_generator(self.pk.domain().log_n() + log_blowup);
                let [k0, k1, k2] = column_shifts();

                let mut t_evals = Vec::with_capacity(big_n);
                let mut x = shift;
                for k in 0..big_n {
                    let gate = ev_sel[0][k] * ev_a[k]
                        + ev_sel[1][k] * ev_b[k]
                        + ev_sel[2][k] * ev_c[k]
                        + ev_sel[3][k] * ev_a[k] * ev_b[k]
                        + ev_sel[4][k]
                        + ev_pi[k];
                    let z_omega = ev_z[(k + blowup) % big_n];
                    let numer = (ev_a[k] + beta * k0 * x + gamma)
                        * (ev_b[k] + beta * k1 * x + gamma)
                        * (ev_c[k] + beta * k2 * x + gamma);
                    let denom = (ev_a[k] + beta * ev_sig[0][k] + gamma)
                        * (ev_b[k] + beta * ev_sig[1][k] + gamma)
                        * (ev_c[k] + beta * ev_sig[2][k] + gamma);
                    let perm_term = ev_z[k] * numer - z_omega * denom;
                    let boundary = (ev_z[k] - Bn254Fr::ONE) * l0[k];
                    let f = gate + alpha * (perm_term + alpha * boundary);
                    t_evals.push(f * z_h_inv[k]);
                    x *= omega_big;
                }
                self.backend.charge_pointwise(big_n, 16);
                self.backend.try_ntt_inverse(&mut t_evals, policy)?;
                let shift_inv = shift.inverse().expect("generator is nonzero");
                let mut s = Bn254Fr::ONE;
                for v in t_evals.iter_mut() {
                    *v *= s;
                    s *= shift_inv;
                }
                self.backend.charge_pointwise(big_n, 1);
                let poly_t = Polynomial::new(t_evals);
                debug_assert!(
                    poly_t.degree() <= 3 * n || poly_t.is_zero(),
                    "quotient degree {} out of range for n={n} — unsatisfied circuit?",
                    poly_t.degree()
                );
                self.ldes = None; // superseded by the finished quotient
                self.poly_t = Some(poly_t);
            }
            10 => {
                let poly_t = self.poly_t.as_ref().expect("quotient-ntt done");
                self.quotient_commit = Some(commit_via(&mut self.backend, self.pk.srs(), poly_t));
            }
            // Round-3 barrier: absorb T, draw ζ.
            11 => {
                self.transcript
                    .absorb_point(&self.quotient_commit.expect("quotient-commit done"));
                self.zeta = Some(self.transcript.challenge());
            }
            // Round 4a: the 13+1 evaluations and the v challenge.
            12 => {
                let zeta = self.zeta.expect("round-3 barrier done");
                let omega = self.pk.domain().omega();
                let evals = {
                    let polys = self.opening_polys();
                    let mut evals = [Bn254Fr::ZERO; 13];
                    for (e, p) in evals.iter_mut().zip(&polys) {
                        *e = p.evaluate(zeta);
                    }
                    evals
                };
                for e in &evals {
                    self.transcript.absorb_scalar(*e);
                }
                let z_omega_eval = self
                    .poly_z
                    .as_ref()
                    .expect("grand-product done")
                    .evaluate(omega * zeta);
                self.transcript.absorb_scalar(z_omega_eval);
                self.backend.charge_pointwise(n, 14);
                self.evals = Some(evals);
                self.z_omega_eval = Some(z_omega_eval);
                self.v = Some(self.transcript.challenge());
            }
            // Round 4b: the batched opening witness at ζ.
            13 => {
                let zeta = self.zeta.expect("round-3 barrier done");
                let v = self.v.expect("openings-eval done");
                let mut combined = Polynomial::zero();
                let mut vi = Bn254Fr::ONE;
                for p in self.opening_polys() {
                    combined = combined.add(&p.scale(vi));
                    vi *= v;
                }
                let (open_quotient, _) = combined.divide_by_linear(zeta);
                self.backend.charge_pointwise(n, 14);
                self.opening = Some(commit_via(&mut self.backend, self.pk.srs(), &open_quotient));
            }
            // Round 4c: the shifted opening witness for z at ωζ.
            14 => {
                let zeta = self.zeta.expect("round-3 barrier done");
                let omega = self.pk.domain().omega();
                let (open_z_quotient, _) = self
                    .poly_z
                    .as_ref()
                    .expect("grand-product done")
                    .divide_by_linear(omega * zeta);
                self.opening_omega = Some(commit_via(
                    &mut self.backend,
                    self.pk.srs(),
                    &open_z_quotient,
                ));
            }
            // Final barrier: assemble the proof.
            15 => {
                self.proof = Some(Proof {
                    wire_commits: self.wire_commits.map(|w| w.expect("wire commits done")),
                    z_commit: self.z_commit.expect("z-commit done"),
                    quotient_commit: self.quotient_commit.expect("quotient-commit done"),
                    evals: self.evals.expect("openings-eval done"),
                    z_omega_eval: self.z_omega_eval.expect("openings-eval done"),
                    opening: self.opening.expect("opening-commit done"),
                    opening_omega: self.opening_omega.expect("opening-shift-commit done"),
                });
            }
            _ => unreachable!("stage index checked above"),
        }
        Ok(())
    }

    /// The 13 polynomials opened at ζ, in the protocol's fixed order.
    fn opening_polys(&self) -> [&Polynomial<Bn254Fr>; 13] {
        let wire_polys = self.wire_polys.as_ref().expect("wire-interp done");
        [
            &wire_polys[0],
            &wire_polys[1],
            &wire_polys[2],
            self.poly_t.as_ref().expect("quotient-ntt done"),
            &self.pk.selector_polys()[0],
            &self.pk.selector_polys()[1],
            &self.pk.selector_polys()[2],
            &self.pk.selector_polys()[3],
            &self.pk.selector_polys()[4],
            &self.pk.sigma_polys()[0],
            &self.pk.sigma_polys()[1],
            &self.pk.sigma_polys()[2],
            self.poly_z.as_ref().expect("grand-product done"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, random_circuit, setup, verify};
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_gpu_sim::presets;

    fn run_all(prover: &mut StagedProver, order: &[usize]) {
        let policy = RecoveryPolicy::none();
        for &idx in order {
            prover.run_stage(idx, &policy).expect("fault-free run");
        }
        assert!(prover.is_complete());
    }

    /// A valid topological order that differs from the natural 0..16.
    fn scrambled_order() -> Vec<usize> {
        vec![0, 3, 1, 2, 4, 5, 8, 6, 7, 9, 10, 11, 12, 14, 13, 15]
    }

    #[test]
    fn staged_cpu_matches_monolithic() {
        let mut rng = StdRng::seed_from_u64(21);
        let (circuit, witness) = random_circuit(60, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let mono = prove(&pk, &witness, &[], &mut Backend::cpu());

        let mut staged = StagedProver::new(&pk, &witness, &[], Backend::cpu());
        run_all(&mut staged, &(0..PLONK_STAGES).collect::<Vec<_>>());
        assert_eq!(staged.proof().unwrap(), &mono);

        let mut scrambled = StagedProver::new(&pk, &witness, &[], Backend::cpu());
        run_all(&mut scrambled, &scrambled_order());
        assert_eq!(scrambled.proof().unwrap(), &mono);
        assert!(verify(&vk, scrambled.proof().unwrap(), &[]));
    }

    #[test]
    fn staged_simulated_matches_monolithic_clock_and_bytes() {
        let mut rng = StdRng::seed_from_u64(22);
        let (circuit, witness) = random_circuit(60, &mut rng);
        let (pk, _vk) = setup(&circuit, &mut rng);
        let mono = prove(&pk, &witness, &[], &mut Backend::cpu());

        let mut sim_mono = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        let _ = prove(&pk, &witness, &[], &mut sim_mono);
        let mono_ns = sim_mono.report().total_ns();

        let sim = Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4));
        let mut staged = StagedProver::new(&pk, &witness, &[], sim);
        let mut per_stage = 0.0;
        let policy = RecoveryPolicy::none();
        for idx in 0..PLONK_STAGES {
            per_stage += staged.run_stage(idx, &policy).expect("fault-free");
        }
        assert_eq!(staged.proof().unwrap(), &mono, "bytes must match CPU");
        // The staged path issues the identical kernel sequence, so the
        // simulated clock agrees exactly and per-stage deltas tile it.
        assert!((staged.sim_total_ns() - mono_ns).abs() < 1e-6);
        assert!((per_stage - mono_ns).abs() < 1e-6);
    }

    #[test]
    fn stage_retry_replays_only_the_failed_stage() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let mut rng = StdRng::seed_from_u64(23);
        let (circuit, witness) = random_circuit(60, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let mono = prove(&pk, &witness, &[], &mut Backend::cpu());

        // Drop the first collective of the quotient LDE batch: stage 8
        // fails once, is re-run, and every earlier stage keeps its state.
        let mut probe = StagedProver::new(
            &pk,
            &witness,
            &[],
            Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4)),
        );
        let policy = RecoveryPolicy::none();
        for idx in 0..8 {
            probe.run_stage(idx, &policy).unwrap();
        }
        let seq_before_lde = probe
            .backend_mut()
            .ntt_machine_mut()
            .unwrap()
            .collective_seq();

        let mut staged = StagedProver::new(
            &pk,
            &witness,
            &[],
            Backend::simulated(presets::a100_nvlink(4), presets::a100_nvlink(4)),
        );
        staged
            .backend_mut()
            .ntt_machine_mut()
            .unwrap()
            .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                seq: seq_before_lde,
                kind: FaultKind::Drop,
            }]));
        let no_retries = RecoveryPolicy {
            max_retries: 0,
            ..Default::default()
        };
        for idx in 0..8 {
            staged.run_stage(idx, &no_retries).unwrap();
        }
        let err = staged.run_stage(8, &no_retries).unwrap_err();
        assert!(err.is_transient(), "dropped collective is transient: {err}");
        assert!(!staged.stage_done(8), "failed stage stays not-done");
        // Replay just the failed stage; the scripted drop was consumed.
        for idx in 8..PLONK_STAGES {
            staged.run_stage(idx, &no_retries).unwrap();
        }
        assert_eq!(staged.proof().unwrap(), &mono);
        assert!(verify(&vk, staged.proof().unwrap(), &[]));
    }
}
