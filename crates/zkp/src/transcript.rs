//! Fiat–Shamir transcript over the BN254 scalar field.
//!
//! A deterministic sponge with a power-map permutation (`x ↦ x⁵`, which is
//! a bijection on Fr since `gcd(5, r−1) = 1`). It gives both prover and
//! verifier the same challenge stream from the same absorbed messages.
//!
//! **Not cryptographically hardened** — it is a stand-in for a
//! Poseidon/Keccak transcript, sufficient for a performance reproduction
//! where challenge *unpredictability from the prover's perspective* is not
//! under test. (Documented in DESIGN.md as a substitution.)

use unintt_ff::{Bn254Fr, Field, PrimeField, U256};
use unintt_msm::G1Projective;

/// A Fiat–Shamir transcript.
#[derive(Clone, Debug)]
pub struct Transcript {
    state: Bn254Fr,
    counter: u64,
}

impl Transcript {
    /// Creates a transcript bound to a protocol label.
    pub fn new(label: &str) -> Self {
        let mut t = Self {
            state: Bn254Fr::ZERO,
            counter: 0,
        };
        for b in label.bytes() {
            t.absorb_scalar(Bn254Fr::from_u64(b as u64));
        }
        t
    }

    fn permute(&mut self) {
        // x ← (x + round)⁵ : a full-domain bijection plus a counter to
        // break fixed points.
        self.counter += 1;
        let x = self.state + Bn254Fr::from_u64(self.counter);
        self.state = x.square().square() * x;
    }

    /// Absorbs one field element.
    pub fn absorb_scalar(&mut self, v: Bn254Fr) {
        self.state += v;
        self.permute();
    }

    /// Absorbs a curve point (by its canonical coordinate encodings).
    pub fn absorb_point(&mut self, p: &G1Projective) {
        let affine = p.to_affine();
        if affine.infinity {
            self.absorb_scalar(Bn254Fr::from_u64(1));
            return;
        }
        // Coordinates live in Fq; reduce their canonical integers into Fr.
        // Collisions between Fq values congruent mod r are irrelevant for a
        // performance-grade transcript.
        self.absorb_scalar(Bn254Fr::from_u256(affine.x.to_canonical_u256()));
        self.absorb_scalar(Bn254Fr::from_u256(affine.y.to_canonical_u256()));
    }

    /// Squeezes a challenge scalar.
    pub fn challenge(&mut self) -> Bn254Fr {
        self.permute();
        self.state
    }

    /// Convenience: absorbs a `u64` (sizes, indices).
    pub fn absorb_u64(&mut self, v: u64) {
        self.absorb_scalar(Bn254Fr::from_u256(U256::from_u64(v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_inputs() {
        let mut a = Transcript::new("test");
        let mut b = Transcript::new("test");
        a.absorb_scalar(Bn254Fr::from_u64(7));
        b.absorb_scalar(Bn254Fr::from_u64(7));
        assert_eq!(a.challenge(), b.challenge());
        assert_eq!(a.challenge(), b.challenge());
    }

    #[test]
    fn different_inputs_give_different_challenges() {
        let mut a = Transcript::new("test");
        let mut b = Transcript::new("test");
        a.absorb_scalar(Bn254Fr::from_u64(7));
        b.absorb_scalar(Bn254Fr::from_u64(8));
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn label_separates_domains() {
        let mut a = Transcript::new("protocol-a");
        let mut b = Transcript::new("protocol-b");
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn absorbing_points_works() {
        let mut a = Transcript::new("pts");
        let mut b = Transcript::new("pts");
        let g = G1Projective::generator();
        a.absorb_point(&g);
        b.absorb_point(&g.double());
        assert_ne!(a.challenge(), b.challenge());
        let mut c = Transcript::new("pts");
        c.absorb_point(&G1Projective::identity());
        let _ = c.challenge();
    }

    #[test]
    fn challenges_evolve() {
        let mut t = Transcript::new("evolve");
        let c1 = t.challenge();
        let c2 = t.challenge();
        assert_ne!(c1, c2);
    }
}
