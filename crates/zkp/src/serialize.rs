//! Canonical byte encoding for proofs.
//!
//! Proofs cross trust boundaries, so they get an explicit wire format
//! rather than a derive: field elements as 32-byte little-endian canonical
//! integers, curve points as 65-byte uncompressed affine
//! (`x ‖ y ‖ infinity-flag`), laid out in the order the [`Proof`] struct
//! declares. Decoding validates range (non-canonical field encodings are
//! rejected) and curve membership.

use unintt_ff::{Bn254Fq, Bn254Fr, Field, PrimeField, U256};
use unintt_msm::{G1Affine, G1Projective};

use crate::Proof;

/// Size of one encoded field element.
const FR_BYTES: usize = 32;
/// Size of one encoded curve point.
const POINT_BYTES: usize = 65;
/// Total encoded proof size: 6 points + 14 scalars + 2 opening points.
pub const PROOF_BYTES: usize = 7 * POINT_BYTES + 14 * FR_BYTES;

/// Errors from [`Proof::from_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input has the wrong length.
    Length {
        /// Expected byte count.
        expected: usize,
        /// Received byte count.
        got: usize,
    },
    /// A field element was not in canonical (reduced) form.
    NonCanonicalField,
    /// A point was not on the curve.
    NotOnCurve,
    /// The infinity flag byte was neither 0 nor 1.
    BadInfinityFlag,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Length { expected, got } => {
                write!(f, "proof must be {expected} bytes, got {got}")
            }
            DecodeError::NonCanonicalField => f.write_str("field element out of range"),
            DecodeError::NotOnCurve => f.write_str("point not on the curve"),
            DecodeError::BadInfinityFlag => f.write_str("invalid infinity flag"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_fr(out: &mut Vec<u8>, v: &Bn254Fr) {
    out.extend_from_slice(&v.to_canonical_u256().to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &G1Projective) {
    let affine = p.to_affine();
    out.extend_from_slice(&affine.x.to_canonical_u256().to_le_bytes());
    out.extend_from_slice(&affine.y.to_canonical_u256().to_le_bytes());
    out.push(affine.infinity as u8);
}

fn get_fq(bytes: &[u8]) -> Result<Bn254Fq, DecodeError> {
    let mut buf = [0u8; 32];
    buf.copy_from_slice(bytes);
    let v = U256::from_le_bytes(buf);
    if !v.lt(&Bn254Fq::MODULUS) {
        return Err(DecodeError::NonCanonicalField);
    }
    Ok(Bn254Fq::from_u256(v))
}

fn get_fr(bytes: &[u8]) -> Result<Bn254Fr, DecodeError> {
    let mut buf = [0u8; 32];
    buf.copy_from_slice(bytes);
    let v = U256::from_le_bytes(buf);
    if !v.lt(&Bn254Fr::MODULUS) {
        return Err(DecodeError::NonCanonicalField);
    }
    Ok(Bn254Fr::from_u256(v))
}

fn get_point(bytes: &[u8]) -> Result<G1Projective, DecodeError> {
    let x = get_fq(&bytes[..32])?;
    let y = get_fq(&bytes[32..64])?;
    let affine = match bytes[64] {
        0 => G1Affine {
            x,
            y,
            infinity: false,
        },
        1 => G1Affine::identity(),
        _ => return Err(DecodeError::BadInfinityFlag),
    };
    if !affine.is_on_curve() {
        return Err(DecodeError::NotOnCurve);
    }
    Ok(affine.to_projective())
}

impl Proof {
    /// Encodes the proof into its canonical byte representation
    /// ([`PROOF_BYTES`] bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PROOF_BYTES);
        for w in &self.wire_commits {
            put_point(&mut out, w);
        }
        put_point(&mut out, &self.z_commit);
        put_point(&mut out, &self.quotient_commit);
        for e in &self.evals {
            put_fr(&mut out, e);
        }
        put_fr(&mut out, &self.z_omega_eval);
        put_point(&mut out, &self.opening);
        put_point(&mut out, &self.opening_omega);
        debug_assert_eq!(out.len(), PROOF_BYTES);
        out
    }

    /// FNV-1a digest of the canonical encoding — a stable 64-bit
    /// fingerprint for comparing proofs across scheduling paths (the
    /// DAG-pipelined and monolithic provers must produce equal digests).
    pub fn content_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Decodes a proof, validating field ranges and curve membership.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input. A successfully decoded
    /// proof is well-formed but not necessarily *valid* — run
    /// [`crate::verify`] for that.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() != PROOF_BYTES {
            return Err(DecodeError::Length {
                expected: PROOF_BYTES,
                got: bytes.len(),
            });
        }
        let mut off = 0usize;
        let next_point = |bytes: &[u8], off: &mut usize| -> Result<G1Projective, DecodeError> {
            let p = get_point(&bytes[*off..*off + POINT_BYTES])?;
            *off += POINT_BYTES;
            Ok(p)
        };
        let wire_commits = [
            next_point(bytes, &mut off)?,
            next_point(bytes, &mut off)?,
            next_point(bytes, &mut off)?,
        ];
        let z_commit = next_point(bytes, &mut off)?;
        let quotient_commit = next_point(bytes, &mut off)?;
        let mut evals = [Bn254Fr::ZERO; 13];
        for e in evals.iter_mut() {
            *e = get_fr(&bytes[off..off + FR_BYTES])?;
            off += FR_BYTES;
        }
        let z_omega_eval = get_fr(&bytes[off..off + FR_BYTES])?;
        off += FR_BYTES;
        let opening = next_point(bytes, &mut off)?;
        let opening_omega = next_point(bytes, &mut off)?;
        debug_assert_eq!(off, PROOF_BYTES);
        Ok(Proof {
            wire_commits,
            z_commit,
            quotient_commit,
            evals,
            z_omega_eval,
            opening,
            opening_omega,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, random_circuit, setup, verify, Backend};
    use rand::{rngs::StdRng, SeedableRng};

    fn sample_proof() -> (Proof, crate::VerifyingKey) {
        let mut rng = StdRng::seed_from_u64(1);
        let (circuit, witness) = random_circuit(10, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        (prove(&pk, &witness, &[], &mut Backend::cpu()), vk)
    }

    #[test]
    fn roundtrip_preserves_proof_and_validity() {
        let (proof, vk) = sample_proof();
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), PROOF_BYTES);
        let decoded = Proof::from_bytes(&bytes).expect("well-formed");
        assert_eq!(decoded, proof);
        assert!(verify(&vk, &decoded, &[]));
    }

    #[test]
    fn wrong_length_rejected() {
        let (proof, _) = sample_proof();
        let mut bytes = proof.to_bytes();
        bytes.pop();
        assert!(matches!(
            Proof::from_bytes(&bytes),
            Err(DecodeError::Length { .. })
        ));
        assert!(matches!(
            Proof::from_bytes(&[]),
            Err(DecodeError::Length { .. })
        ));
    }

    #[test]
    fn non_canonical_field_rejected() {
        let (proof, _) = sample_proof();
        let mut bytes = proof.to_bytes();
        // Set an eval (offset: after 5 points) to the field modulus.
        let off = 5 * POINT_BYTES;
        bytes[off..off + 32].copy_from_slice(&unintt_ff::Bn254Fr::MODULUS.to_le_bytes());
        assert_eq!(
            Proof::from_bytes(&bytes),
            Err(DecodeError::NonCanonicalField)
        );
    }

    #[test]
    fn off_curve_point_rejected() {
        let (proof, _) = sample_proof();
        let mut bytes = proof.to_bytes();
        // Corrupt the x-coordinate of the first commitment.
        bytes[0] ^= 1;
        let err = Proof::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::NotOnCurve | DecodeError::NonCanonicalField
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_infinity_flag_rejected() {
        let (proof, _) = sample_proof();
        let mut bytes = proof.to_bytes();
        bytes[64] = 7;
        assert_eq!(Proof::from_bytes(&bytes), Err(DecodeError::BadInfinityFlag));
    }

    #[test]
    fn tampered_bytes_decode_but_fail_verification() {
        let (proof, vk) = sample_proof();
        let mut bytes = proof.to_bytes();
        // Flip one bit inside an evaluation (keeps it canonical whp).
        let off = 5 * POINT_BYTES + 3;
        bytes[off] ^= 1;
        if let Ok(decoded) = Proof::from_bytes(&bytes) {
            assert!(!verify(&vk, &decoded, &[]));
        }
    }
}
