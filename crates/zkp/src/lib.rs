//! # unintt-zkp — end-to-end ZKP proof generation
//!
//! The workload that motivates the paper: a PLONK-style prover whose cost
//! is dominated by NTTs and MSMs, runnable on a CPU backend or on the
//! simulated multi-GPU backend (bit-identical proofs, simulated clock).
//!
//! * [`Polynomial`] / [`EvaluationDomain`] — the prover's algebra layer;
//! * [`Srs`] — KZG commitments (trapdoor-checked, see module docs);
//! * [`Circuit`] / [`Witness`] — PLONK-style gate constraints;
//! * [`setup`] / [`prove`] / [`verify`] — the protocol;
//! * [`Backend`] — CPU vs simulated multi-GPU execution.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use unintt_ff::{Bn254Fr, PrimeField};
//! use unintt_zkp::{cubic_circuit, prove, setup, verify, Backend};
//!
//! // Prove knowledge of x with x³ + x + 5 = y.
//! let mut rng = StdRng::seed_from_u64(7);
//! let (circuit, witness, y) = cubic_circuit(Bn254Fr::from_u64(3));
//! let (pk, vk) = setup(&circuit, &mut rng);
//! let proof = prove(&pk, &witness, &[y], &mut Backend::cpu());
//! assert!(verify(&vk, &proof, &[y]));
//! // The statement is bound: a different claimed y is rejected.
//! assert!(!verify(&vk, &proof, &[y + y]));
//! ```

#![warn(missing_docs)]

mod backend;
mod circuit;
mod domain;
mod kzg;
pub mod permutation;
mod poly;
mod prover;
mod serialize;
mod staged;
mod transcript;

pub use backend::{Backend, BackendReport, CpuBackend, SimulatedBackend};
pub use circuit::{cubic_circuit, random_circuit, Circuit, Gate, Witness};
pub use domain::EvaluationDomain;
pub use kzg::Srs;
pub use permutation::{Cell, Column, WirePermutation};
pub use poly::Polynomial;
pub use prover::{
    prove, prove_with_recovery, setup, verify, Proof, ProverCheckpoint, ProvingKey, VerifyingKey,
};
pub use serialize::{DecodeError, PROOF_BYTES};
pub use staged::{plonk_stage_descs, StageDesc, StagedProver, PLONK_STAGES};
pub use transcript::Transcript;
