//! The PLONK permutation argument (copy constraints).
//!
//! Wire cells form a `3×n` grid (columns A, B, C). Copy constraints
//! partition cells into equality classes; the argument encodes the
//! partition as a permutation `σ` whose cycles traverse each class, and
//! proves `w(cell) = w(σ(cell))` for all cells via the grand-product
//! polynomial
//!
//! ```text
//! z(ω⁰) = 1,   z(ω^{i+1}) = z(ω^i) · Π_j (w_j(i) + β·id_j(i) + γ)
//!                                   / (w_j(i) + β·σ_j(i) + γ)
//! ```
//!
//! where `id_j(x) = k_j·x` labels cell `(j, i)` with `k_j·ωⁱ` and the
//! three `k_j` place the columns on pairwise-disjoint cosets of `H`.

use serde::{Deserialize, Serialize};
use unintt_ff::{batch_inverse, Bn254Fr, Field, PrimeField};

use crate::Polynomial;

/// A wire column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Column {
    /// Left wires.
    A,
    /// Right wires.
    B,
    /// Output wires.
    C,
}

impl Column {
    /// Column index 0..3.
    pub fn index(self) -> usize {
        match self {
            Column::A => 0,
            Column::B => 1,
            Column::C => 2,
        }
    }

    /// All columns in order.
    pub const ALL: [Column; 3] = [Column::A, Column::B, Column::C];
}

/// A wire cell: `(column, row)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Which wire column.
    pub column: Column,
    /// Gate row.
    pub row: usize,
}

impl Cell {
    /// Constructs a cell.
    pub fn new(column: Column, row: usize) -> Self {
        Self { column, row }
    }

    fn flat(&self, n: usize) -> usize {
        self.column.index() * n + self.row
    }
}

/// The column coset labels `k_j`: `k_0 = 1`, `k_1 = g`, `k_2 = g²` where
/// `g` is the multiplicative generator. `g` has full order `r − 1`, so
/// neither `g` nor `g²` (nor their ratio) lies in any power-of-two
/// subgroup `H`, making `H`, `k_1·H`, `k_2·H` pairwise disjoint.
pub fn column_shifts() -> [Bn254Fr; 3] {
    let g = Bn254Fr::GENERATOR;
    [Bn254Fr::ONE, g, g * g]
}

/// The permutation over the `3n` wire cells, built from equality classes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirePermutation {
    n: usize,
    /// `sigma[flat(cell)] = flat(σ(cell))`.
    sigma: Vec<usize>,
}

impl WirePermutation {
    /// The identity permutation for an `n`-row circuit (no constraints).
    pub fn identity(n: usize) -> Self {
        Self {
            n,
            sigma: (0..3 * n).collect(),
        }
    }

    /// Builds the permutation from pairwise equalities: each equality
    /// class becomes one cycle of `σ`.
    ///
    /// # Panics
    ///
    /// Panics if any cell's row is out of range.
    pub fn from_copies(n: usize, copies: &[(Cell, Cell)]) -> Self {
        // Union-find over flat cell indices.
        let mut parent: Vec<usize> = (0..3 * n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (a, b) in copies {
            assert!(a.row < n && b.row < n, "copy constraint row out of range");
            let (ra, rb) = (find(&mut parent, a.flat(n)), find(&mut parent, b.flat(n)));
            if ra != rb {
                parent[ra] = rb;
            }
        }

        // Gather classes, then link each class into one cycle.
        let mut classes: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..3 * n {
            let root = find(&mut parent, x);
            classes.entry(root).or_default().push(x);
        }
        let mut sigma: Vec<usize> = (0..3 * n).collect();
        for members in classes.values() {
            if members.len() > 1 {
                for (i, &m) in members.iter().enumerate() {
                    sigma[m] = members[(i + 1) % members.len()];
                }
            }
        }
        Self { n, sigma }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The image of a cell under σ, as a flat index.
    pub fn image_flat(&self, cell: Cell) -> usize {
        self.sigma[cell.flat(self.n)]
    }

    /// Checks that a wire assignment respects the permutation (every cell
    /// equals its σ-image — equivalent to equality on each class).
    pub fn is_respected(&self, wires: &[Vec<Bn254Fr>; 3]) -> bool {
        let n = self.n;
        let value = |flat: usize| wires[flat / n][flat % n];
        (0..3 * n).all(|x| value(x) == value(self.sigma[x]))
    }

    /// The three σ-polynomials: `σ_j` interpolates, over row `i`, the
    /// *label* `k_{j'}·ω^{i'}` of the σ-image of cell `(j, i)`.
    pub fn sigma_polynomials(&self, omega: Bn254Fr) -> [Polynomial<Bn254Fr>; 3] {
        let n = self.n;
        let shifts = column_shifts();
        let omega_pows: Vec<Bn254Fr> = {
            let mut v = Vec::with_capacity(n);
            let mut cur = Bn254Fr::ONE;
            for _ in 0..n {
                v.push(cur);
                cur *= omega;
            }
            v
        };
        let label = |flat: usize| shifts[flat / n] * omega_pows[flat % n];

        let mut out = Vec::with_capacity(3);
        for j in 0..3 {
            let evals: Vec<Bn254Fr> = (0..n).map(|i| label(self.sigma[j * n + i])).collect();
            out.push(Polynomial::interpolate(&evals));
        }
        out.try_into().expect("exactly three columns")
    }

    /// Builds the grand-product column `z(ω⁰)..z(ω^{n−1})` for a wire
    /// assignment and challenges `β, γ`. `z(ω⁰) = 1`; for a valid witness
    /// the product telescopes back to 1 after the last row.
    pub fn grand_product(
        &self,
        wires: &[Vec<Bn254Fr>; 3],
        omega: Bn254Fr,
        beta: Bn254Fr,
        gamma: Bn254Fr,
    ) -> Vec<Bn254Fr> {
        let n = self.n;
        let shifts = column_shifts();
        let omega_pows: Vec<Bn254Fr> = {
            let mut v = Vec::with_capacity(n);
            let mut cur = Bn254Fr::ONE;
            for _ in 0..n {
                v.push(cur);
                cur *= omega;
            }
            v
        };
        let label = |flat: usize| shifts[flat / n] * omega_pows[flat % n];

        // Denominators first, batch-inverted.
        let mut denom = Vec::with_capacity(n);
        for i in 0..n {
            let mut d = Bn254Fr::ONE;
            for (j, wire) in wires.iter().enumerate() {
                d *= wire[i] + beta * label(self.sigma[j * n + i]) + gamma;
            }
            denom.push(d);
        }
        batch_inverse(&mut denom);

        let mut z = Vec::with_capacity(n);
        let mut acc = Bn254Fr::ONE;
        for i in 0..n {
            z.push(acc);
            let mut numer = Bn254Fr::ONE;
            for (j, shift) in shifts.iter().enumerate() {
                numer *= wires[j][i] + beta * *shift * omega_pows[i] + gamma;
            }
            acc *= numer * denom[i];
        }
        debug_assert!(
            !self.is_respected(wires) || acc.is_one(),
            "grand product must telescope to 1 for a valid witness"
        );
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::TwoAdicField;

    fn omega(n: usize) -> Bn254Fr {
        Bn254Fr::two_adic_generator(n.trailing_zeros())
    }

    #[test]
    fn column_shifts_give_disjoint_cosets() {
        let [k0, k1, k2] = column_shifts();
        // k_i / k_j must lie outside every power-of-two subgroup: check
        // the largest one (order 2^28) by exponentiation.
        for (x, y) in [(k1, k0), (k2, k0), (k2, k1)] {
            let ratio = x * y.inverse().unwrap();
            let mut p = ratio;
            for _ in 0..28 {
                p = p.square();
            }
            assert!(!p.is_one(), "coset label ratio lies in H");
        }
    }

    #[test]
    fn identity_permutation_respected_by_anything() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 8;
        let perm = WirePermutation::identity(n);
        let wires = [
            (0..n)
                .map(|_| Bn254Fr::random(&mut rng))
                .collect::<Vec<_>>(),
            (0..n).map(|_| Bn254Fr::random(&mut rng)).collect(),
            (0..n).map(|_| Bn254Fr::random(&mut rng)).collect(),
        ];
        assert!(perm.is_respected(&wires));
        let z = perm.grand_product(&wires, omega(n), Bn254Fr::from_u64(7), Bn254Fr::from_u64(9));
        assert!(z.iter().all(|v| v.is_one()), "identity σ gives z ≡ 1");
    }

    #[test]
    fn copies_build_cycles_and_detect_violations() {
        let n = 4;
        let copies = vec![
            (Cell::new(Column::A, 0), Cell::new(Column::B, 1)),
            (Cell::new(Column::B, 1), Cell::new(Column::C, 2)),
        ];
        let perm = WirePermutation::from_copies(n, &copies);

        let mut wires = [
            vec![Bn254Fr::from_u64(5); n],
            vec![Bn254Fr::from_u64(5); n],
            vec![Bn254Fr::from_u64(5); n],
        ];
        assert!(perm.is_respected(&wires));

        // Distinct values elsewhere are fine…
        wires[0][3] = Bn254Fr::from_u64(99);
        assert!(perm.is_respected(&wires));
        // …but breaking a constrained cell is caught.
        wires[1][1] = Bn254Fr::from_u64(6);
        assert!(!perm.is_respected(&wires));
    }

    #[test]
    fn grand_product_telescopes_iff_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 8;
        let copies = vec![
            (Cell::new(Column::A, 0), Cell::new(Column::C, 3)),
            (Cell::new(Column::B, 2), Cell::new(Column::B, 5)),
        ];
        let perm = WirePermutation::from_copies(n, &copies);

        let v = Bn254Fr::random(&mut rng);
        let w = Bn254Fr::random(&mut rng);
        let mut wires = [
            (0..n)
                .map(|_| Bn254Fr::random(&mut rng))
                .collect::<Vec<_>>(),
            (0..n).map(|_| Bn254Fr::random(&mut rng)).collect(),
            (0..n).map(|_| Bn254Fr::random(&mut rng)).collect(),
        ];
        wires[0][0] = v;
        wires[2][3] = v;
        wires[1][2] = w;
        wires[1][5] = w;
        assert!(perm.is_respected(&wires));

        let (beta, gamma) = (Bn254Fr::random(&mut rng), Bn254Fr::random(&mut rng));
        let z = perm.grand_product(&wires, omega(n), beta, gamma);
        assert!(z[0].is_one());
        // Final wrap: z(ω^{n-1}) · ratio(n-1) must return to 1.
        let om = omega(n);
        let shifts = column_shifts();
        let mut last = z[n - 1];
        let mut numer = Bn254Fr::ONE;
        let mut denom = Bn254Fr::ONE;
        let omn = om.pow(n as u64 - 1);
        let label = |flat: usize| shifts[flat / n] * om.pow((flat % n) as u64);
        for j in 0..3 {
            numer *= wires[j][n - 1] + beta * shifts[j] * omn + gamma;
            denom *= wires[j][n - 1] + beta * label(perm.sigma[j * n + n - 1]) + gamma;
        }
        last *= numer * denom.inverse().unwrap();
        assert!(last.is_one(), "grand product must wrap to 1");
    }

    #[test]
    fn sigma_polynomials_interpolate_labels() {
        let n = 8;
        let copies = vec![(Cell::new(Column::A, 1), Cell::new(Column::C, 6))];
        let perm = WirePermutation::from_copies(n, &copies);
        let om = omega(n);
        let polys = perm.sigma_polynomials(om);
        let shifts = column_shifts();
        // Unconstrained cell: σ is identity, label is k_j·ω^i.
        assert_eq!(polys[1].evaluate(om.pow(3)), shifts[1] * om.pow(3));
        // Constrained cells point at each other.
        assert_eq!(polys[0].evaluate(om.pow(1)), shifts[2] * om.pow(6));
        assert_eq!(polys[2].evaluate(om.pow(6)), shifts[0] * om.pow(1));
    }
}
