//! # unintt-exec — persistent work-stealing executor
//!
//! Every hot loop in the workspace used to open a fresh
//! [`std::thread::scope`] per NTT stage, per batch, per simulated device
//! phase — paying thread creation and teardown thousands of times per
//! experiment. This crate replaces those with one process-wide pool:
//!
//! * **Persistent workers** — OS threads are created once (lazily, on first
//!   use of [`Executor::global`]) and reused for every subsequent scope.
//! * **Work stealing** — each worker owns a deque; it pops its own work
//!   LIFO and steals FIFO from the shared injector and from siblings, so
//!   irregular task sizes still balance.
//! * **Scoped fork-join** — [`Executor::scope`] mirrors the
//!   `std::thread::scope` API: closures may borrow from the caller's stack,
//!   and `scope` does not return until every spawned task has finished.
//!   The calling thread *helps* run tasks while it waits, so a pool with
//!   zero workers (single-core machines) degrades to plain serial
//!   execution instead of deadlocking, and nested scopes are safe.
//! * **Deterministic chunking** — the pool never decides how work is
//!   split. Callers chunk their data exactly as before (the `threads`
//!   parameters of `ParallelNtt`, `batch_transform_parallel`, …) and each
//!   chunk's result lands in its own disjoint slice, so results are
//!   bit-identical for any pool size, including the simulated-clock
//!   accounting and fault-injection decisions in `unintt-gpu-sim`.
//! * **Panic propagation** — a panicking task does not poison the pool;
//!   the payload is captured and re-thrown from `scope` on the caller's
//!   thread, matching `std::thread::scope` semantics.
//!
//! ```
//! use unintt_exec::Executor;
//!
//! let mut data = vec![1u64; 1024];
//! Executor::global().scope(|s| {
//!     for chunk in data.chunks_mut(256) {
//!         s.spawn(move || {
//!             for x in chunk {
//!                 *x += 1;
//!             }
//!         });
//!     }
//! });
//! assert!(data.iter().all(|&x| x == 2));
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "UNINTT_THREADS";

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// (pool identity, worker index) when the current thread is a pool
    /// worker; lets `spawn` push to the local deque and `scope` steal
    /// correctly while helping.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Shared state between the pool handle and its workers.
struct Shared {
    /// Tasks injected by non-worker threads (FIFO).
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pops LIFO, thieves steal FIFO.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Signalled on every push; workers park on it (with a bounded
    /// timeout, so a lost wakeup only costs a millisecond).
    work_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Grabs the next runnable task: own deque (LIFO), then the injector,
    /// then siblings (FIFO).
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        for (i, local) in self.locals.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(job) = local.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn push(&self, job: Job, me: Option<usize>) {
        match me {
            Some(i) => {
                self.locals[i].lock().unwrap().push_back(job);
                // Wake sleepers; taking the injector lock pairs the notify
                // with their condvar wait.
                let _guard = self.injector.lock().unwrap();
                self.work_cv.notify_all();
            }
            None => {
                let mut q = self.injector.lock().unwrap();
                q.push_back(job);
                self.work_cv.notify_all();
            }
        }
    }

    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id(), index))));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            // A panicking task must not kill the worker; the scope that
            // spawned it captures the payload inside the job wrapper, so
            // anything escaping here would be a bug in this crate itself.
            job();
            continue;
        }
        let guard = shared.injector.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Bounded wait: local-deque pushes can race past the notify, so
        // never park unconditionally.
        let _ = shared
            .work_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
    }
}

/// Join-state of one `scope` invocation.
struct ScopeState {
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fork-join scope handed to the closure of [`Executor::scope`].
///
/// Spawned closures may borrow anything that outlives the `scope` call
/// (lifetime `'env`), exactly like `std::thread::Scope`.
pub struct Scope<'pool, 'env> {
    shared: &'pool Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, so the borrow checker pins captured
    /// references for the whole scope.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Submits `f` to the pool. It runs at most once, possibly on the
    /// calling thread while `scope` waits; `scope` returns only after it
    /// completed (or panicked — the panic resurfaces from `scope`).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done_cv.notify_all();
            }
        });
        // SAFETY: `scope` blocks until `pending == 0`, i.e. until this job
        // has run to completion, so the `'env` borrows inside the closure
        // never outlive the data they point to. This is the same erasure
        // every scoped pool (rayon, crossbeam) performs.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        let me = current_worker(self.shared);
        self.shared.push(job, me);
    }
}

fn current_worker(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| match w.get() {
        Some((pool, idx)) if pool == shared.id() => Some(idx),
        _ => None,
    })
}

/// A persistent pool of worker threads with scoped fork-join semantics.
///
/// `Executor::new(t)` provides parallelism `t`: it spawns `t - 1` worker
/// threads, because the thread calling [`Executor::scope`] always helps
/// run tasks while it waits. `Executor::new(1)` is therefore a zero-thread
/// pool that runs everything inline — handy for debugging and the
/// degenerate single-core case.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Executor {
    /// Creates a pool with total parallelism `threads` (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unintt-exec-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] threads and never torn down.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(default_threads()))
    }

    /// Total parallelism (workers + the helping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] for spawning borrowed tasks, then blocks —
    /// helping execute queued tasks — until every spawn has completed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from a spawned task (after all tasks
    /// finished), or the panic of `f` itself.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            shared: &self.shared,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done_cv: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        // Even if `f` panics we must wait for already-spawned tasks, or
        // their `'env` borrows would dangle.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&scope.state);
        if let Some(payload) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Caller-helps join loop: run any available task; otherwise briefly
    /// park on the scope's completion condvar.
    fn help_until_done(&self, state: &ScopeState) {
        let me = current_worker(&self.shared);
        loop {
            if *state.pending.lock().unwrap() == 0 {
                return;
            }
            if let Some(job) = self.shared.find_job(me) {
                job();
                continue;
            }
            let pending = state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            let _ = state
                .done_cv
                .wait_timeout(pending, Duration::from_micros(200))
                .unwrap();
        }
    }

    /// Convenience fork-join over `chunk_len`-sized chunks of `data`:
    /// `f(chunk_index, chunk)` runs once per chunk, in parallel. Chunk
    /// boundaries — and therefore results — are independent of the pool
    /// size. A single chunk runs inline without touching the queues.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` (and `data` is non-empty), or re-raises
    /// a panic from `f`.
    pub fn parallel_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(chunk_len > 0, "chunk length must be positive");
        if data.len() <= chunk_len {
            f(0, data);
            return;
        }
        self.scope(|s| {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                s.spawn(move || f(i, chunk));
            }
        });
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.injector.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Default parallelism of the global pool: the `UNINTT_THREADS`
/// environment variable if set, else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_tasks() {
        let exec = Executor::new(4);
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn borrowed_mutation_lands_before_return() {
        let exec = Executor::new(3);
        let mut data = vec![0u64; 1000];
        exec.scope(|s| {
            for (i, chunk) in data.chunks_mut(100).enumerate() {
                s.spawn(move || {
                    for x in chunk.iter_mut() {
                        *x = i as u64;
                    }
                });
            }
        });
        for (i, chunk) in data.chunks(100).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u64));
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let exec = Executor::new(1);
        assert_eq!(exec.threads(), 1);
        let mut hit = false;
        exec.scope(|s| s.spawn(|| hit = true));
        // `hit` is visible again after the scope: the task ran on this
        // thread during the join.
        assert!(hit);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let exec = Executor::new(2);
        let total = AtomicUsize::new(0);
        exec.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    Executor::global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let exec = Executor::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // Pool is still usable after the panic.
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn other_tasks_complete_despite_panic() {
        let exec = Executor::new(2);
        let counter = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                for i in 0..10 {
                    let counter = &counter;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("task 3");
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(counter.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn parallel_chunks_mut_is_deterministic() {
        let exec = Executor::new(4);
        let mut a = vec![0u32; 77];
        let mut b = vec![0u32; 77];
        exec.parallel_chunks_mut(&mut a, 10, |i, c| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = (i * 1000 + j) as u32;
            }
        });
        // Serial reference with identical chunking.
        for (i, c) in b.chunks_mut(10).enumerate() {
            for (j, x) in c.iter_mut().enumerate() {
                *x = (i * 1000 + j) as u32;
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_chunks_mut_empty_and_single() {
        let exec = Executor::new(4);
        let mut empty: Vec<u32> = vec![];
        exec.parallel_chunks_mut(&mut empty, 8, |_, _| panic!("must not run"));
        let mut one = vec![7u32];
        exec.parallel_chunks_mut(&mut one, 8, |i, c| {
            assert_eq!(i, 0);
            c[0] = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn global_pool_is_reused() {
        let a = Executor::global() as *const Executor;
        let b = Executor::global() as *const Executor;
        assert_eq!(a, b);
        assert!(Executor::global().threads() >= 1);
    }

    #[test]
    fn many_scopes_stress() {
        let exec = Executor::new(4);
        for round in 0..200 {
            let counter = AtomicUsize::new(0);
            exec.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
    }
}
