//! Property tests: the vectorized and scalar Shoup fast paths are
//! **bit-identical** to the legacy radix-2 reference path, and the
//! vector kernels' AVX2 and portable backends are bit-identical to each
//! other.
//!
//! The legacy reference is composed here from the public raw kernels
//! (`bit_reverse_permute` + `dit_in_place`, plus the `1/n` scale for the
//! inverse) rather than by flipping the process-wide kernel mode, so these
//! tests compare the code paths directly. Tests that *do* pin the
//! process-wide kernel mode or vector backend always restore the default
//! afterwards; every mode and backend produces identical outputs, so a
//! concurrent test observing the temporary switch still passes.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{BabyBear, Field, Goldilocks, TwoAdicField};
use unintt_ntt::{
    bit_reverse_permute, set_kernel_mode, set_vector_backend_override, KernelMode, Ntt,
    VectorBackend,
};

fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
}

/// Forward transform through the legacy radix-2 DIT kernels only.
fn legacy_forward<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F]) {
    bit_reverse_permute(values);
    ntt.dit_in_place(values);
}

/// Inverse transform (including the `1/n` scale) through the legacy
/// kernels only.
fn legacy_inverse<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F]) {
    bit_reverse_permute(values);
    ntt.inverse_dit_in_place(values);
    ntt.scale_by_n_inv(values);
}

/// Runs `f` with the process-wide kernel mode pinned, restoring the
/// default after. Outputs are mode-independent, so concurrent tests
/// observing the temporary switch still pass.
fn with_mode<R>(mode: KernelMode, f: impl FnOnce() -> R) -> R {
    set_kernel_mode(mode);
    let r = f();
    set_kernel_mode(KernelMode::default());
    r
}

/// One bit-identity check of a kernel mode against the legacy reference
/// at a given size/seed, both directions.
fn check_bitwise_match_mode<F: TwoAdicField>(
    mode: KernelMode,
    log_n: u32,
    seed: u64,
) -> Result<(), String> {
    let ntt = Ntt::<F>::new(log_n);
    let input = random_vec::<F>(log_n, seed);

    let mut got = input.clone();
    with_mode(mode, || ntt.forward(&mut got));
    let mut legacy = input.clone();
    legacy_forward(&ntt, &mut legacy);
    if got != legacy {
        return Err(format!(
            "forward {mode:?} mismatch at log_n={log_n} seed={seed}"
        ));
    }

    let mut got = input.clone();
    with_mode(mode, || ntt.inverse(&mut got));
    let mut legacy = input;
    legacy_inverse(&ntt, &mut legacy);
    if got != legacy {
        return Err(format!(
            "inverse {mode:?} mismatch at log_n={log_n} seed={seed}"
        ));
    }
    Ok(())
}

/// One bit-identity check at a given size/seed, both directions, under
/// the default (vector) kernels.
fn check_bitwise_match<F: TwoAdicField>(log_n: u32, seed: u64) -> Result<(), String> {
    check_bitwise_match_mode::<F>(KernelMode::Vector, log_n, seed)
}

/// AVX2-vs-portable equality of the vector backend, both directions.
/// Where no native kernel exists (non-x86_64, AVX2 absent, or an
/// unsupported field) both runs take the portable path and the check is
/// trivially true — the assertion stays meaningful without gating.
fn check_backend_match<F: TwoAdicField>(log_n: u32, seed: u64) -> Result<(), String> {
    let ntt = Ntt::<F>::new(log_n);
    let input = random_vec::<F>(log_n, seed);
    let run = |backend: Option<VectorBackend>, inverse: bool| {
        set_vector_backend_override(backend);
        let mut buf = input.clone();
        with_mode(KernelMode::Vector, || {
            if inverse {
                ntt.inverse(&mut buf)
            } else {
                ntt.forward(&mut buf)
            }
        });
        set_vector_backend_override(None);
        buf
    };
    for inverse in [false, true] {
        let portable = run(Some(VectorBackend::Portable), inverse);
        let auto = run(None, inverse);
        if portable != auto {
            return Err(format!(
                "backend mismatch (inverse={inverse}) at log_n={log_n} seed={seed}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn goldilocks_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(check_bitwise_match::<Goldilocks>(log_n, seed), Ok(()));
    }

    #[test]
    fn babybear_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(check_bitwise_match::<BabyBear>(log_n, seed), Ok(()));
    }

    #[test]
    fn goldilocks_scalar_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(
            check_bitwise_match_mode::<Goldilocks>(KernelMode::Fast, log_n, seed),
            Ok(())
        );
    }

    #[test]
    fn babybear_scalar_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(
            check_bitwise_match_mode::<BabyBear>(KernelMode::Fast, log_n, seed),
            Ok(())
        );
    }

    #[test]
    fn goldilocks_backends_match(log_n in 1u32..=14, seed in any::<u64>()) {
        prop_assert_eq!(check_backend_match::<Goldilocks>(log_n, seed), Ok(()));
    }

    #[test]
    fn babybear_backends_match(log_n in 1u32..=14, seed in any::<u64>()) {
        prop_assert_eq!(check_backend_match::<BabyBear>(log_n, seed), Ok(()));
    }

    #[test]
    fn goldilocks_roundtrip_fast_then_legacy_inverse(log_n in 1u32..=12, seed in any::<u64>()) {
        // Mixed-path round-trip: forward on the fast path, inverse on the
        // legacy path. Only works because outputs are bit-identical.
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let input = random_vec::<Goldilocks>(log_n, seed);
        let mut data = input.clone();
        ntt.forward(&mut data);
        legacy_inverse(&ntt, &mut data);
        prop_assert_eq!(data, input);
    }
}

/// Deterministic sweep guaranteeing **every** `log_n` in `1..=16` is
/// exercised for both fields and both directions (the proptest above
/// samples sizes randomly).
#[test]
fn every_size_1_to_16_matches_bitwise() {
    for log_n in 1..=16u32 {
        for seed in [0u64, 0x5eed + u64::from(log_n)] {
            check_bitwise_match::<Goldilocks>(log_n, seed).unwrap();
            check_bitwise_match::<BabyBear>(log_n, seed).unwrap();
        }
    }
}

/// Deterministic sweep of every size for the scalar fast kernels too.
#[test]
fn every_size_1_to_16_scalar_fast_matches_bitwise() {
    for log_n in 1..=16u32 {
        let seed = 0xfa57 + u64::from(log_n);
        check_bitwise_match_mode::<Goldilocks>(KernelMode::Fast, log_n, seed).unwrap();
        check_bitwise_match_mode::<BabyBear>(KernelMode::Fast, log_n, seed).unwrap();
    }
}

/// Tail sizes below and around the lane widths (Goldilocks packs 4
/// lanes, BabyBear 8): every size where a fused pass's column count `q`
/// is not a lane multiple must fall through to the scalar remainder
/// loops and still match the reference bit-for-bit, on both backends.
#[test]
fn non_power_of_lane_tail_sizes_match_bitwise() {
    for log_n in 1..=6u32 {
        for seed in [1u64, 0x7a11 + u64::from(log_n)] {
            check_bitwise_match::<Goldilocks>(log_n, seed).unwrap();
            check_bitwise_match::<BabyBear>(log_n, seed).unwrap();
            check_backend_match::<Goldilocks>(log_n, seed).unwrap();
            check_backend_match::<BabyBear>(log_n, seed).unwrap();
        }
    }
}

/// AVX2-vs-portable equality at every size through the direct-kernel
/// range boundary sizes (deterministic counterpart of the proptest).
#[test]
fn every_size_backends_match_bitwise() {
    for log_n in 1..=14u32 {
        let seed = 0xbacc + u64::from(log_n);
        check_backend_match::<Goldilocks>(log_n, seed).unwrap();
        check_backend_match::<BabyBear>(log_n, seed).unwrap();
    }
}
