//! Property tests: the Shoup/lazy fast path is **bit-identical** to the
//! legacy radix-2 reference path.
//!
//! The legacy reference is composed here from the public raw kernels
//! (`bit_reverse_permute` + `dit_in_place`, plus the `1/n` scale for the
//! inverse) rather than by flipping the process-wide kernel mode, so these
//! tests compare the two code paths directly and stay independent of any
//! concurrent mode switching.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{BabyBear, Field, Goldilocks, TwoAdicField};
use unintt_ntt::{bit_reverse_permute, Ntt};

fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
}

/// Forward transform through the legacy radix-2 DIT kernels only.
fn legacy_forward<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F]) {
    bit_reverse_permute(values);
    ntt.dit_in_place(values);
}

/// Inverse transform (including the `1/n` scale) through the legacy
/// kernels only.
fn legacy_inverse<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F]) {
    bit_reverse_permute(values);
    ntt.inverse_dit_in_place(values);
    ntt.scale_by_n_inv(values);
}

/// One bit-identity check at a given size/seed, both directions.
fn check_bitwise_match<F: TwoAdicField>(log_n: u32, seed: u64) -> Result<(), String> {
    let ntt = Ntt::<F>::new(log_n);
    let input = random_vec::<F>(log_n, seed);

    let mut fast = input.clone();
    ntt.forward(&mut fast);
    let mut legacy = input.clone();
    legacy_forward(&ntt, &mut legacy);
    if fast != legacy {
        return Err(format!("forward mismatch at log_n={log_n} seed={seed}"));
    }

    let mut fast = input.clone();
    ntt.inverse(&mut fast);
    let mut legacy = input;
    legacy_inverse(&ntt, &mut legacy);
    if fast != legacy {
        return Err(format!("inverse mismatch at log_n={log_n} seed={seed}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn goldilocks_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(check_bitwise_match::<Goldilocks>(log_n, seed), Ok(()));
    }

    #[test]
    fn babybear_fast_matches_legacy(log_n in 1u32..=16, seed in any::<u64>()) {
        prop_assert_eq!(check_bitwise_match::<BabyBear>(log_n, seed), Ok(()));
    }

    #[test]
    fn goldilocks_roundtrip_fast_then_legacy_inverse(log_n in 1u32..=12, seed in any::<u64>()) {
        // Mixed-path round-trip: forward on the fast path, inverse on the
        // legacy path. Only works because outputs are bit-identical.
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let input = random_vec::<Goldilocks>(log_n, seed);
        let mut data = input.clone();
        ntt.forward(&mut data);
        legacy_inverse(&ntt, &mut data);
        prop_assert_eq!(data, input);
    }
}

/// Deterministic sweep guaranteeing **every** `log_n` in `1..=16` is
/// exercised for both fields and both directions (the proptest above
/// samples sizes randomly).
#[test]
fn every_size_1_to_16_matches_bitwise() {
    for log_n in 1..=16u32 {
        for seed in [0u64, 0x5eed + log_n as u64] {
            check_bitwise_match::<Goldilocks>(log_n, seed).unwrap();
            check_bitwise_match::<BabyBear>(log_n, seed).unwrap();
        }
    }
}
