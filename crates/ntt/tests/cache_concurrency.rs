//! Concurrency properties of the process-wide caches and the fast
//! kernels: many executor-pool workers constructing [`Ntt`] contexts and
//! transforming simultaneously must neither deadlock nor diverge from the
//! single-threaded results.
//!
//! This is the access pattern of the `unintt-serve` proving service: a
//! long-lived process where every dispatch builds contexts for whatever
//! `(field, log_n)` the coalesced batch needs, from whichever pool worker
//! picked the task up.

use std::sync::Mutex;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_exec::Executor;
use unintt_ff::{BabyBear, Field, Goldilocks, TwoAdicField};
use unintt_ntt::{Direction, Ntt};

fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
}

/// One transform through a freshly constructed context (so every call
/// goes through the shared table/plan caches).
fn transform<F: TwoAdicField>(log_n: u32, seed: u64, direction: Direction) -> Vec<F> {
    let ntt = Ntt::<F>::new(log_n);
    let mut data = random_vec::<F>(log_n, seed);
    match direction {
        Direction::Forward => ntt.forward(&mut data),
        Direction::Inverse => ntt.inverse(&mut data),
    }
    data
}

/// Runs the same task grid serially and on the pool; every slot must be
/// bit-identical.
fn check_concurrent_matches_serial(log_ns: &[u32], seeds: &[u64]) {
    // Task list: (log_n, seed, direction) over both fields.
    let mut tasks = Vec::new();
    for &log_n in log_ns {
        for &seed in seeds {
            tasks.push((log_n, seed, Direction::Forward));
            tasks.push((log_n, seed, Direction::Inverse));
        }
    }

    let serial_g: Vec<Vec<Goldilocks>> = tasks
        .iter()
        .map(|&(log_n, seed, dir)| transform::<Goldilocks>(log_n, seed, dir))
        .collect();
    let serial_b: Vec<Vec<BabyBear>> = tasks
        .iter()
        .map(|&(log_n, seed, dir)| transform::<BabyBear>(log_n, seed, dir))
        .collect();

    let mut par_g: Vec<Vec<Goldilocks>> = vec![Vec::new(); tasks.len()];
    let mut par_b: Vec<Vec<BabyBear>> = vec![Vec::new(); tasks.len()];
    Executor::global().scope(|s| {
        for ((slot_g, slot_b), &(log_n, seed, dir)) in
            par_g.iter_mut().zip(par_b.iter_mut()).zip(tasks.iter())
        {
            s.spawn(move || {
                *slot_g = transform::<Goldilocks>(log_n, seed, dir);
                *slot_b = transform::<BabyBear>(log_n, seed, dir);
            });
        }
    });

    assert_eq!(par_g, serial_g, "Goldilocks results must be bit-identical");
    assert_eq!(par_b, serial_b, "BabyBear results must be bit-identical");
}

#[test]
fn pool_workers_share_caches_without_divergence() {
    check_concurrent_matches_serial(&[4, 6, 8, 10, 12], &[1, 2, 3, 4]);
}

#[test]
fn repeated_rounds_do_not_deadlock() {
    // Several scope generations against the same global caches: a lost
    // wakeup or a lock inversion in the cache layer would hang here.
    for round in 0..8 {
        check_concurrent_matches_serial(&[5, 7, 9], &[round as u64, round as u64 + 100]);
    }
}

#[test]
fn nested_scopes_hit_caches_safely() {
    // The serving layer runs batched transforms from inside pool tasks:
    // an inner scope per outer task, all sharing one cache.
    let expected: Vec<Goldilocks> = transform::<Goldilocks>(8, 7, Direction::Forward);
    let results: Mutex<Vec<Vec<Goldilocks>>> = Mutex::new(Vec::new());
    Executor::global().scope(|outer| {
        for _ in 0..4 {
            let results = &results;
            let expected = &expected;
            outer.spawn(move || {
                Executor::global().scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(move || {
                            let got = transform::<Goldilocks>(8, 7, Direction::Forward);
                            assert_eq!(&got, expected);
                            results.lock().unwrap().push(got);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(results.lock().unwrap().len(), 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary size/seed mixes: concurrent cache-mediated transforms
    /// stay bit-identical to serial execution.
    #[test]
    fn concurrent_transform_matches_serial(
        log_a in 3u32..11,
        log_b in 3u32..11,
        seed in 0u64..1_000,
    ) {
        let mut serial: Vec<Vec<Goldilocks>> = Vec::new();
        for &(log_n, s) in &[(log_a, seed), (log_b, seed + 1), (log_a, seed + 2)] {
            serial.push(transform::<Goldilocks>(log_n, s, Direction::Forward));
        }
        let mut parallel: Vec<Vec<Goldilocks>> = vec![Vec::new(); 3];
        Executor::global().scope(|s| {
            for (slot, &(log_n, sd)) in parallel
                .iter_mut()
                .zip([(log_a, seed), (log_b, seed + 1), (log_a, seed + 2)].iter())
            {
                s.spawn(move || {
                    *slot = transform::<Goldilocks>(log_n, sd, Direction::Forward);
                });
            }
        });
        prop_assert_eq!(parallel, serial);
    }
}
