//! Vectorized, runtime-specialized NTT kernels
//! ([`crate::KernelMode::Vector`], the default).
//!
//! This module is the third kernel family next to `fast` (scalar Shoup)
//! and the legacy radix-2 DIT path. Three ideas compose:
//!
//! * **Lane-packed butterflies** — the transform body works on
//!   `[F; LANES]` register blocks through the const-generic layer on
//!   [`unintt_ff::ShoupField`] (portable), or through explicit AVX2
//!   `std::arch` kernels on x86_64 when the CPU reports the feature at
//!   runtime (`is_x86_feature_detected!`). Both backends compute exact
//!   canonical residues, so they are bit-identical to each other and to
//!   the scalar paths.
//! * **Radix-4/8 stage fusion** — two (AVX2) or three (portable) DIF
//!   butterfly layers run per memory pass with intermediates held in
//!   registers, halving-to-thirding pass count and twiddle traffic
//!   relative to the stage-at-a-time scalar loop.
//! * **A specialized-plan cache** — [`VectorPlan`] instances are built
//!   once per `(field, log_n)` (covering both directions and every
//!   [`KernelMode`] toggle) and memoized in [`crate::cache`]; a plan
//!   pins its backend choice, pre-extracted native twiddle banks, and
//!   the bit-reversal pair table, so per-transform dispatch is one enum
//!   match with no per-stage branching.
//!
//! AVX2 kernels fuse radix-4 (radix-8 would need >16 ymm live values and
//! spill); the portable path fuses radix-8 since its "registers" are
//! compiler-scheduled locals. Goldilocks AVX2 multiplies via the full
//! 64×64 product + ε-reduction rather than Shoup (a Shoup product needs
//! seven `vpmuludq`-class ops against four, and its `[0, 2p)` result
//! overflows the 64-bit lane), so its twiddle bank stores only the plain
//! `w` words — half the scalar plan's footprint.

use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use unintt_ff::{BabyBear, Goldilocks, ShoupTwiddle, TwoAdicField};

use crate::fast::{self, RowPath};
use crate::twiddle::TwiddleTable;
use crate::{bit_reverse_permute, cache};

/// Largest `log_n` the direct (single-buffer) vector kernel handles;
/// larger sizes decompose six-step with vector row transforms. Higher
/// than the scalar path's threshold because the fused passes are
/// streaming (sequential loads/stores, no strided gathers), so the
/// working set can exceed L2 without the pass count paying for it.
pub const VECTOR_DIRECT_MAX_LOG_N: u32 = 20;

/// Which lane backend the vector kernels execute on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorBackend {
    /// Explicit `std::arch` SIMD (AVX2 on x86_64), selected when the CPU
    /// reports the feature at runtime and the field has a native kernel.
    Native,
    /// The portable const-generic lane path (always available).
    Portable,
}

/// 0 = auto-detect, 1 = force portable, 2 = prefer native.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides backend selection for [`KernelMode::Vector`] transforms.
///
/// `Some(VectorBackend::Portable)` forces the portable lane path even
/// where AVX2 is available (A/B testing and the bit-identity proptests);
/// `Some(VectorBackend::Native)` or `None` restore auto-detection (a
/// native request still falls back to portable where no native kernel
/// exists). Outputs are bit-identical on every backend.
pub fn set_vector_backend_override(backend: Option<VectorBackend>) {
    let enc = match backend {
        None => 0,
        Some(VectorBackend::Portable) => 1,
        Some(VectorBackend::Native) => 2,
    };
    BACKEND_OVERRIDE.store(enc, Ordering::Relaxed);
}

fn portable_forced() -> bool {
    BACKEND_OVERRIDE.load(Ordering::Relaxed) == 1
}

/// The backend [`KernelMode::Vector`] transforms over `F` would use for
/// a size in the direct range (reporting hook for benches and docs).
pub fn active_vector_backend<F: TwoAdicField>() -> VectorBackend {
    if !portable_forced() && native_kernel::<F>(VECTOR_DIRECT_MAX_LOG_N) != NativeKernel::None {
        VectorBackend::Native
    } else {
        VectorBackend::Portable
    }
}

/// Native (explicit-SIMD) kernel selected for a plan at build time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NativeKernel {
    /// No native kernel: portable lane path.
    None,
    /// 4×u64 AVX2 Goldilocks kernel.
    GoldilocksAvx2,
    /// 8×u64 AVX-512 Goldilocks kernel (wide stages; the register-resident
    /// tail reuses the AVX2 shuffle pass).
    GoldilocksAvx512,
    /// 8×u32 AVX2 BabyBear kernel.
    BabyBearAvx2,
}

/// The native kernel available for `(F, log_n)` on this CPU. The AVX2
/// kernels need at least two vectors of data for their shuffle tails
/// (`log_n ≥ 3` Goldilocks, `≥ 4` BabyBear); smaller sizes take the
/// portable path, which handles every size. Goldilocks upgrades to the
/// 8-lane AVX-512 stage drivers where `avx512f`+`avx512dq` are present
/// (the twiddle bank layout is shared with the AVX2 kernel, so the
/// upgrade is pure dispatch).
fn native_kernel<F: TwoAdicField>(log_n: u32) -> NativeKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            if TypeId::of::<F>() == TypeId::of::<Goldilocks>() && log_n >= 3 {
                if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512dq")
                {
                    return NativeKernel::GoldilocksAvx512;
                }
                return NativeKernel::GoldilocksAvx2;
            }
            if TypeId::of::<F>() == TypeId::of::<BabyBear>() && log_n >= 4 {
                return NativeKernel::BabyBearAvx2;
            }
        }
    }
    let _ = log_n;
    NativeKernel::None
}

/// Short human label for the backend the vector path would use for `F`
/// (reporting hook for benches and docs): `"avx512"`, `"avx2"`, or
/// `"portable"`.
pub fn active_backend_label<F: TwoAdicField>() -> &'static str {
    if portable_forced() {
        return "portable";
    }
    match native_kernel::<F>(VECTOR_DIRECT_MAX_LOG_N) {
        NativeKernel::GoldilocksAvx512 => "avx512",
        NativeKernel::GoldilocksAvx2 | NativeKernel::BabyBearAvx2 => "avx2",
        NativeKernel::None => "portable",
    }
}

/// Twiddle banks re-laid-out for the native kernels' load width, built
/// next to the generic per-stage tables at plan-build time.
enum NativeBank {
    /// Portable-only plan: the generic tables are the only layout.
    None,
    /// Goldilocks AVX2: plain `w` words per stage (`bank[s-1][j]`).
    U64(Vec<Vec<u64>>),
    /// BabyBear AVX2: split plain/quotient `u32` arrays per stage, so
    /// eight-lane loads need no deinterleaving shuffle.
    U32Pair {
        plain: Vec<Vec<u32>>,
        quot: Vec<Vec<u32>>,
    },
}

/// One direction's worth of kernel state: generic packed stage tables
/// (`stages[s-1][j]`, exactly the scalar fast path's layout) plus the
/// optional native re-layout.
struct DirPlan<F: TwoAdicField> {
    stages: Vec<Vec<ShoupTwiddle<F>>>,
    bank: NativeBank,
}

fn build_bank<F: TwoAdicField>(
    stages: &[Vec<ShoupTwiddle<F>>],
    native: NativeKernel,
) -> NativeBank {
    match native {
        NativeKernel::None => NativeBank::None,
        NativeKernel::GoldilocksAvx2 | NativeKernel::GoldilocksAvx512 => NativeBank::U64(
            stages
                .iter()
                .map(|st| st.iter().map(|t| t.w.to_canonical_u64()).collect())
                .collect(),
        ),
        NativeKernel::BabyBearAvx2 => NativeBank::U32Pair {
            plain: stages
                .iter()
                .map(|st| st.iter().map(|t| (t.aux & 0xffff_ffff) as u32).collect())
                .collect(),
            quot: stages
                .iter()
                .map(|st| st.iter().map(|t| (t.aux >> 32) as u32).collect())
                .collect(),
        },
    }
}

/// A monomorphized vector-kernel instance for one `(field, log_n)`:
/// both directions' twiddle banks, the prepared `1/n` constant, the
/// backend selection, and the bit-reversal pair table (held by `Arc` so
/// the plan keeps working even if every process-wide cache evicts it).
/// Cached in [`crate::cache::shared_vector_plan`].
pub(crate) struct VectorPlan<F: TwoAdicField> {
    log_n: u32,
    fwd: DirPlan<F>,
    inv: DirPlan<F>,
    n_inv: ShoupTwiddle<F>,
    bitrev: Option<Arc<Vec<(u32, u32)>>>,
    native: NativeKernel,
}

impl<F: TwoAdicField> VectorPlan<F> {
    pub(crate) fn new(table: &TwiddleTable<F>) -> Self {
        let log_n = table.log_n();
        let native = native_kernel::<F>(log_n);
        let fwd_stages = fast::pack_stages(table.forward_shoup(), log_n);
        let inv_stages = fast::pack_stages(table.inverse_shoup(), log_n);
        Self {
            log_n,
            fwd: DirPlan {
                bank: build_bank(&fwd_stages, native),
                stages: fwd_stages,
            },
            inv: DirPlan {
                bank: build_bank(&inv_stages, native),
                stages: inv_stages,
            },
            n_inv: F::shoup_prepare(table.n_inv()),
            bitrev: (log_n <= cache::MAX_CACHED_BITREV_BITS).then(|| cache::bitrev_pairs(log_n)),
            native,
        }
    }

    /// The bit-reversal pair table this plan pinned at build time.
    #[cfg(test)]
    pub(crate) fn bitrev_pairs(&self) -> Option<&Arc<Vec<(u32, u32)>>> {
        self.bitrev.as_ref()
    }

    /// The transform size this plan was built for.
    #[cfg(test)]
    pub(crate) fn log_n(&self) -> u32 {
        self.log_n
    }

    fn active_native(&self) -> NativeKernel {
        if portable_forced() {
            NativeKernel::None
        } else {
            self.native
        }
    }

    /// All DIF stages (no permutation), canonical output.
    fn run_stages(&self, values: &mut [F], dir: &DirPlan<F>) {
        match self.active_native() {
            #[cfg(target_arch = "x86_64")]
            NativeKernel::GoldilocksAvx2 => {
                let NativeBank::U64(bank) = &dir.bank else {
                    unreachable!("bank layout pinned at build")
                };
                let words =
                    unintt_ff::packed::gl_words_mut(cast_slice_mut::<F, Goldilocks>(values));
                // SAFETY: AVX2 presence was verified at plan build.
                unsafe { x86::gl_stages(words, bank, self.log_n) }
            }
            #[cfg(target_arch = "x86_64")]
            NativeKernel::GoldilocksAvx512 => {
                let NativeBank::U64(bank) = &dir.bank else {
                    unreachable!("bank layout pinned at build")
                };
                let words =
                    unintt_ff::packed::gl_words_mut(cast_slice_mut::<F, Goldilocks>(values));
                // SAFETY: AVX-512F/DQ (and AVX2 for the tail) presence was
                // verified at plan build.
                unsafe { x86::gl_stages_avx512(words, bank, self.log_n) }
            }
            #[cfg(target_arch = "x86_64")]
            NativeKernel::BabyBearAvx2 => {
                let NativeBank::U32Pair { plain, quot } = &dir.bank else {
                    unreachable!("bank layout pinned at build")
                };
                let words = unintt_ff::packed::bb_words_mut(cast_slice_mut::<F, BabyBear>(values));
                // SAFETY: AVX2 presence was verified at plan build.
                unsafe { x86::bb_stages(words, plain, quot, self.log_n) }
            }
            _ => portable_stages_dispatch(values, &dir.stages, self.log_n),
        }
    }

    fn apply_bitrev(&self, values: &mut [F]) {
        match &self.bitrev {
            Some(pairs) => {
                for &(i, j) in pairs.iter() {
                    values.swap(i as usize, j as usize);
                }
            }
            None => bit_reverse_permute(values),
        }
    }

    /// Forward transform, natural order in and out, canonical output.
    pub(crate) fn forward(&self, values: &mut [F]) {
        self.run_stages(values, &self.fwd);
        self.apply_bitrev(values);
    }

    /// Inverse transform including the `1/n` scale.
    pub(crate) fn inverse(&self, values: &mut [F]) {
        self.run_stages(values, &self.inv);
        self.apply_bitrev(values);
        for v in values.iter_mut() {
            *v = F::reduce_lane(F::shoup_mul(*v, &self.n_inv));
        }
    }
}

/// Reinterprets `&mut [F]` as the concrete field type `C`. Caller must
/// have established `TypeId::of::<F>() == TypeId::of::<C>()`.
fn cast_slice_mut<F: 'static, C: 'static>(values: &mut [F]) -> &mut [C] {
    debug_assert_eq!(TypeId::of::<F>(), TypeId::of::<C>());
    // SAFETY: F and C are the same type (checked above / by the caller's
    // kernel selection), so layout and validity are identical.
    unsafe { &mut *(values as *mut [F] as *mut [C]) }
}

/// Vector-mode forward NTT for any supported size (natural order in/out).
pub(crate) fn forward_vector<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= VECTOR_DIRECT_MAX_LOG_N {
        cache::shared_vector_plan::<F>(log_n).forward(values);
    } else {
        fast::six_step(table, values, false, RowPath::Vector);
    }
}

/// Vector-mode inverse NTT (includes the `1/n` scale).
pub(crate) fn inverse_vector<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= VECTOR_DIRECT_MAX_LOG_N {
        cache::shared_vector_plan::<F>(log_n).inverse(values);
    } else {
        fast::six_step(table, values, true, RowPath::Vector);
    }
}

/// Monomorphizes the portable kernel on the field's preferred lane
/// count. `F::LANES` cannot parameterize a const generic directly, so
/// the supported widths are enumerated here.
fn portable_stages_dispatch<F: TwoAdicField>(
    values: &mut [F],
    stages: &[Vec<ShoupTwiddle<F>>],
    log_n: u32,
) {
    match F::LANES {
        8 => portable_stages::<F, 8>(values, stages, log_n),
        4 => portable_stages::<F, 4>(values, stages, log_n),
        _ => portable_stages::<F, 1>(values, stages, log_n),
    }
}

/// Portable all-stages DIF kernel: greedy radix-8 fusion, then a radix-4
/// or radix-2 remainder, then the canonicalizing final stage. Same lazy
/// lane semantics as the scalar fast path — each fused group performs
/// the identical butterflies in the identical order, just with one
/// memory pass instead of two or three.
fn portable_stages<F: TwoAdicField, const L: usize>(
    values: &mut [F],
    stages: &[Vec<ShoupTwiddle<F>>],
    log_n: u32,
) {
    if log_n == 0 {
        return;
    }
    let mut s = log_n;
    // Fuse three layers while at least one non-final stage remains below.
    while s >= 4 {
        radix8_fused::<F, L>(values, s, stages);
        s -= 3;
    }
    if s == 3 {
        radix4_fused::<F, L>(values, 3, stages);
        s = 1;
    }
    if s == 2 {
        radix2_single::<F, L>(values, 2, stages);
    }
    // Final stage (s = 1): unit twiddle, canonicalizing stores.
    let t1 = &stages[0][0];
    for block in values.chunks_exact_mut(2) {
        let (a, b) = F::dif_butterfly(block[0], block[1], t1);
        block[0] = F::reduce_lane(a);
        block[1] = F::reduce_lane(b);
    }
}

#[inline(always)]
fn load_lanes<F: Copy, const L: usize>(src: &[F], j: usize) -> [F; L] {
    src[j..j + L].try_into().expect("lane window in bounds")
}

/// Three fused DIF layers (`s`, `s−1`, `s−2`): 8 strided streams, 12
/// butterflies per cell, 7 twiddle loads against 12 for the unfused
/// form, one memory pass against three.
fn radix8_fused<F: TwoAdicField, const L: usize>(
    values: &mut [F],
    s: u32,
    stages: &[Vec<ShoupTwiddle<F>>],
) {
    let m = 1usize << s;
    let q = m / 8;
    let t_s = &stages[(s - 1) as usize];
    let t_s1 = &stages[(s - 2) as usize];
    let t_s2 = &stages[(s - 3) as usize];
    for block in values.chunks_exact_mut(m) {
        let (x0, r) = block.split_at_mut(q);
        let (x1, r) = r.split_at_mut(q);
        let (x2, r) = r.split_at_mut(q);
        let (x3, r) = r.split_at_mut(q);
        let (x4, r) = r.split_at_mut(q);
        let (x5, r) = r.split_at_mut(q);
        let (x6, x7) = r.split_at_mut(q);
        let mut j = 0;
        while j + L <= q {
            let mut a0 = load_lanes::<F, L>(x0, j);
            let mut a1 = load_lanes::<F, L>(x1, j);
            let mut a2 = load_lanes::<F, L>(x2, j);
            let mut a3 = load_lanes::<F, L>(x3, j);
            let mut a4 = load_lanes::<F, L>(x4, j);
            let mut a5 = load_lanes::<F, L>(x5, j);
            let mut a6 = load_lanes::<F, L>(x6, j);
            let mut a7 = load_lanes::<F, L>(x7, j);
            F::dif_butterfly_lanes(&mut a0, &mut a4, &t_s[j..]);
            F::dif_butterfly_lanes(&mut a1, &mut a5, &t_s[j + q..]);
            F::dif_butterfly_lanes(&mut a2, &mut a6, &t_s[j + 2 * q..]);
            F::dif_butterfly_lanes(&mut a3, &mut a7, &t_s[j + 3 * q..]);
            F::dif_butterfly_lanes(&mut a0, &mut a2, &t_s1[j..]);
            F::dif_butterfly_lanes(&mut a1, &mut a3, &t_s1[j + q..]);
            F::dif_butterfly_lanes(&mut a4, &mut a6, &t_s1[j..]);
            F::dif_butterfly_lanes(&mut a5, &mut a7, &t_s1[j + q..]);
            F::dif_butterfly_lanes(&mut a0, &mut a1, &t_s2[j..]);
            F::dif_butterfly_lanes(&mut a2, &mut a3, &t_s2[j..]);
            F::dif_butterfly_lanes(&mut a4, &mut a5, &t_s2[j..]);
            F::dif_butterfly_lanes(&mut a6, &mut a7, &t_s2[j..]);
            x0[j..j + L].copy_from_slice(&a0);
            x1[j..j + L].copy_from_slice(&a1);
            x2[j..j + L].copy_from_slice(&a2);
            x3[j..j + L].copy_from_slice(&a3);
            x4[j..j + L].copy_from_slice(&a4);
            x5[j..j + L].copy_from_slice(&a5);
            x6[j..j + L].copy_from_slice(&a6);
            x7[j..j + L].copy_from_slice(&a7);
            j += L;
        }
        while j < q {
            let bf = |u: &mut F, v: &mut F, t: &ShoupTwiddle<F>| {
                let (a, b) = F::dif_butterfly(*u, *v, t);
                *u = a;
                *v = b;
            };
            bf(&mut x0[j], &mut x4[j], &t_s[j]);
            bf(&mut x1[j], &mut x5[j], &t_s[j + q]);
            bf(&mut x2[j], &mut x6[j], &t_s[j + 2 * q]);
            bf(&mut x3[j], &mut x7[j], &t_s[j + 3 * q]);
            bf(&mut x0[j], &mut x2[j], &t_s1[j]);
            bf(&mut x1[j], &mut x3[j], &t_s1[j + q]);
            bf(&mut x4[j], &mut x6[j], &t_s1[j]);
            bf(&mut x5[j], &mut x7[j], &t_s1[j + q]);
            bf(&mut x0[j], &mut x1[j], &t_s2[j]);
            bf(&mut x2[j], &mut x3[j], &t_s2[j]);
            bf(&mut x4[j], &mut x5[j], &t_s2[j]);
            bf(&mut x6[j], &mut x7[j], &t_s2[j]);
            j += 1;
        }
    }
}

/// Two fused DIF layers (`s`, `s−1`): 4 streams, 4 butterflies per cell,
/// 3 twiddle loads against 4 unfused.
fn radix4_fused<F: TwoAdicField, const L: usize>(
    values: &mut [F],
    s: u32,
    stages: &[Vec<ShoupTwiddle<F>>],
) {
    let m = 1usize << s;
    let q = m / 4;
    let t_s = &stages[(s - 1) as usize];
    let t_s1 = &stages[(s - 2) as usize];
    for block in values.chunks_exact_mut(m) {
        let (x0, r) = block.split_at_mut(q);
        let (x1, r) = r.split_at_mut(q);
        let (x2, x3) = r.split_at_mut(q);
        let mut j = 0;
        while j + L <= q {
            let mut a0 = load_lanes::<F, L>(x0, j);
            let mut a1 = load_lanes::<F, L>(x1, j);
            let mut a2 = load_lanes::<F, L>(x2, j);
            let mut a3 = load_lanes::<F, L>(x3, j);
            F::dif_butterfly_lanes(&mut a0, &mut a2, &t_s[j..]);
            F::dif_butterfly_lanes(&mut a1, &mut a3, &t_s[j + q..]);
            F::dif_butterfly_lanes(&mut a0, &mut a1, &t_s1[j..]);
            F::dif_butterfly_lanes(&mut a2, &mut a3, &t_s1[j..]);
            x0[j..j + L].copy_from_slice(&a0);
            x1[j..j + L].copy_from_slice(&a1);
            x2[j..j + L].copy_from_slice(&a2);
            x3[j..j + L].copy_from_slice(&a3);
            j += L;
        }
        while j < q {
            let bf = |u: &mut F, v: &mut F, t: &ShoupTwiddle<F>| {
                let (a, b) = F::dif_butterfly(*u, *v, t);
                *u = a;
                *v = b;
            };
            bf(&mut x0[j], &mut x2[j], &t_s[j]);
            bf(&mut x1[j], &mut x3[j], &t_s[j + q]);
            bf(&mut x0[j], &mut x1[j], &t_s1[j]);
            bf(&mut x2[j], &mut x3[j], &t_s1[j]);
            j += 1;
        }
    }
}

/// One lane-packed DIF layer (odd remainders of the fusion schedule).
fn radix2_single<F: TwoAdicField, const L: usize>(
    values: &mut [F],
    s: u32,
    stages: &[Vec<ShoupTwiddle<F>>],
) {
    let m = 1usize << s;
    let half = m / 2;
    let tw = &stages[(s - 1) as usize][..half];
    for block in values.chunks_exact_mut(m) {
        let (lo, hi) = block.split_at_mut(half);
        let mut j = 0;
        while j + L <= half {
            let mut u = load_lanes::<F, L>(lo, j);
            let mut v = load_lanes::<F, L>(hi, j);
            F::dif_butterfly_lanes(&mut u, &mut v, &tw[j..]);
            lo[j..j + L].copy_from_slice(&u);
            hi[j..j + L].copy_from_slice(&v);
            j += L;
        }
        while j < half {
            let (a, b) = F::dif_butterfly(lo[j], hi[j], &tw[j]);
            lo[j] = a;
            hi[j] = b;
            j += 1;
        }
    }
}

/// Explicit AVX2 kernels. Stage drivers carry
/// `#[target_feature(enable = "avx2")]`; the `unintt_ff::packed::avx2`
/// primitives are `#[inline(always)]` and specialize when inlined here.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use unintt_ff::packed::avx2::{bb_add, bb_shoup_mul, bb_sub, gl_add, gl_mul, gl_sub};
    use unintt_ff::packed::avx512 as w8;

    /// All Goldilocks DIF stages, canonical in/out. Schedule: an odd
    /// parity-fixing radix-2 pass, fused radix-4 pairs down to stage 3,
    /// then both sub-vector stages (`m = 4, 2`) in one register-resident
    /// shuffle pass.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `words.len() == 1 << log_n`, `log_n ≥ 3`, `bank`
    /// holding the per-stage plain twiddle words.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gl_stages(words: &mut [u64], bank: &[Vec<u64>], log_n: u32) {
        debug_assert!(log_n >= 3);
        debug_assert_eq!(words.len(), 1usize << log_n);
        let mut s = log_n;
        if (log_n - 2) % 2 == 1 {
            gl_radix2(words, s, &bank[(s - 1) as usize]);
            s -= 1;
        }
        while s >= 4 {
            gl_radix4(words, s, &bank[(s - 1) as usize], &bank[(s - 2) as usize]);
            s -= 2;
        }
        debug_assert_eq!(s, 2);
        gl_tail(words, &bank[1]);
    }

    /// All Goldilocks DIF stages at AVX-512 width, canonical in/out.
    /// Schedule: fused radix-8 triples while the narrowest of the three
    /// strided streams still fills a 512-bit vector (`s ≥ 6`), then a
    /// radix-4 / radix-2 remainder, then the `m = 4, 2` shuffle tail on
    /// the existing AVX2 kernels — their column counts are below the
    /// 512-bit load width, and every lane is canonical at each stage
    /// boundary, so the hand-off is free.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F, AVX-512DQ, and AVX2; `words.len() == 1 <<
    /// log_n`, `log_n ≥ 3`, `bank` holding the per-stage plain twiddle
    /// words.
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    pub(super) unsafe fn gl_stages_avx512(words: &mut [u64], bank: &[Vec<u64>], log_n: u32) {
        debug_assert!(log_n >= 3);
        debug_assert_eq!(words.len(), 1usize << log_n);
        let mut s = log_n;
        while s >= 6 {
            gl_radix8_512(
                words,
                s,
                &bank[(s - 1) as usize],
                &bank[(s - 2) as usize],
                &bank[(s - 3) as usize],
            );
            s -= 3;
        }
        if s == 5 {
            gl_radix4_512(words, 5, &bank[4], &bank[3]);
            s = 3;
        }
        if s == 4 {
            gl_radix4(words, 4, &bank[3], &bank[2]);
            s = 2;
        }
        if s == 3 {
            gl_radix2(words, 3, &bank[2]);
            s = 2;
        }
        debug_assert_eq!(s, 2);
        gl_tail(words, &bank[1]);
    }

    /// Three fused DIF layers (stages `s`, `s−1`, `s−2`) at 8-lane
    /// width: 8 strided streams, 12 butterflies and 7 twiddle loads per
    /// cell, one memory pass instead of three. Same pairings and twiddle
    /// indexing as the portable `radix8_fused`. Needs `q = m/8 ≥ 8`,
    /// i.e. `s ≥ 6`.
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn gl_radix8_512(words: &mut [u64], s: u32, tw_s: &[u64], tw_s1: &[u64], tw_s2: &[u64]) {
        let m = 1usize << s;
        let q = m / 8;
        debug_assert!(q >= 8 && tw_s.len() >= 4 * q && tw_s1.len() >= 2 * q && tw_s2.len() >= q);
        let tws = tw_s.as_ptr();
        let tws1 = tw_s1.as_ptr();
        let tws2 = tw_s2.as_ptr();
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < q {
                let px: [*mut u64; 8] = [
                    p.add(j),
                    p.add(j + q),
                    p.add(j + 2 * q),
                    p.add(j + 3 * q),
                    p.add(j + 4 * q),
                    p.add(j + 5 * q),
                    p.add(j + 6 * q),
                    p.add(j + 7 * q),
                ];
                let mut a0 = _mm512_loadu_si512(px[0].cast());
                let mut a1 = _mm512_loadu_si512(px[1].cast());
                let mut a2 = _mm512_loadu_si512(px[2].cast());
                let mut a3 = _mm512_loadu_si512(px[3].cast());
                let mut a4 = _mm512_loadu_si512(px[4].cast());
                let mut a5 = _mm512_loadu_si512(px[5].cast());
                let mut a6 = _mm512_loadu_si512(px[6].cast());
                let mut a7 = _mm512_loadu_si512(px[7].cast());
                // Stage s: halves at stride 4q.
                let w0 = _mm512_loadu_si512(tws.add(j).cast());
                let w1 = _mm512_loadu_si512(tws.add(j + q).cast());
                let w2 = _mm512_loadu_si512(tws.add(j + 2 * q).cast());
                let w3 = _mm512_loadu_si512(tws.add(j + 3 * q).cast());
                let t = w8::gl_sub(a0, a4);
                a0 = w8::gl_add(a0, a4);
                a4 = w8::gl_mul(t, w0);
                let t = w8::gl_sub(a1, a5);
                a1 = w8::gl_add(a1, a5);
                a5 = w8::gl_mul(t, w1);
                let t = w8::gl_sub(a2, a6);
                a2 = w8::gl_add(a2, a6);
                a6 = w8::gl_mul(t, w2);
                let t = w8::gl_sub(a3, a7);
                a3 = w8::gl_add(a3, a7);
                a7 = w8::gl_mul(t, w3);
                // Stage s−1: halves at stride 2q inside each half-block.
                let u0 = _mm512_loadu_si512(tws1.add(j).cast());
                let u1 = _mm512_loadu_si512(tws1.add(j + q).cast());
                let t = w8::gl_sub(a0, a2);
                a0 = w8::gl_add(a0, a2);
                a2 = w8::gl_mul(t, u0);
                let t = w8::gl_sub(a1, a3);
                a1 = w8::gl_add(a1, a3);
                a3 = w8::gl_mul(t, u1);
                let t = w8::gl_sub(a4, a6);
                a4 = w8::gl_add(a4, a6);
                a6 = w8::gl_mul(t, u0);
                let t = w8::gl_sub(a5, a7);
                a5 = w8::gl_add(a5, a7);
                a7 = w8::gl_mul(t, u1);
                // Stage s−2: adjacent streams.
                let v0 = _mm512_loadu_si512(tws2.add(j).cast());
                let t = w8::gl_sub(a0, a1);
                a0 = w8::gl_add(a0, a1);
                a1 = w8::gl_mul(t, v0);
                let t = w8::gl_sub(a2, a3);
                a2 = w8::gl_add(a2, a3);
                a3 = w8::gl_mul(t, v0);
                let t = w8::gl_sub(a4, a5);
                a4 = w8::gl_add(a4, a5);
                a5 = w8::gl_mul(t, v0);
                let t = w8::gl_sub(a6, a7);
                a6 = w8::gl_add(a6, a7);
                a7 = w8::gl_mul(t, v0);
                _mm512_storeu_si512(px[0].cast(), a0);
                _mm512_storeu_si512(px[1].cast(), a1);
                _mm512_storeu_si512(px[2].cast(), a2);
                _mm512_storeu_si512(px[3].cast(), a3);
                _mm512_storeu_si512(px[4].cast(), a4);
                _mm512_storeu_si512(px[5].cast(), a5);
                _mm512_storeu_si512(px[6].cast(), a6);
                _mm512_storeu_si512(px[7].cast(), a7);
                j += 8;
            }
        }
    }

    /// Fused radix-4 pair (stages `s`, `s−1`), 8-lane vectors, `q ≥ 16`.
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn gl_radix4_512(words: &mut [u64], s: u32, tw_s: &[u64], tw_s1: &[u64]) {
        let m = 1usize << s;
        let q = m / 4;
        debug_assert!(q >= 8 && tw_s.len() >= 2 * q && tw_s1.len() >= q);
        let tws = tw_s.as_ptr();
        let tws1 = tw_s1.as_ptr();
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < q {
                let pa = p.add(j);
                let pb = p.add(j + q);
                let pc = p.add(j + 2 * q);
                let pd = p.add(j + 3 * q);
                let a = _mm512_loadu_si512(pa.cast());
                let b = _mm512_loadu_si512(pb.cast());
                let c = _mm512_loadu_si512(pc.cast());
                let d = _mm512_loadu_si512(pd.cast());
                let w1 = _mm512_loadu_si512(tws.add(j).cast());
                let w2 = _mm512_loadu_si512(tws.add(j + q).cast());
                let w3 = _mm512_loadu_si512(tws1.add(j).cast());
                let t0 = w8::gl_add(a, c);
                let t1 = w8::gl_mul(w8::gl_sub(a, c), w1);
                let t2 = w8::gl_add(b, d);
                let t3 = w8::gl_mul(w8::gl_sub(b, d), w2);
                _mm512_storeu_si512(pa.cast(), w8::gl_add(t0, t2));
                _mm512_storeu_si512(pb.cast(), w8::gl_mul(w8::gl_sub(t0, t2), w3));
                _mm512_storeu_si512(pc.cast(), w8::gl_add(t1, t3));
                _mm512_storeu_si512(pd.cast(), w8::gl_mul(w8::gl_sub(t1, t3), w3));
                j += 8;
            }
        }
    }

    /// Fused radix-4 pair (stages `s`, `s−1`), 4-lane vectors, `q ≥ 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn gl_radix4(words: &mut [u64], s: u32, tw_s: &[u64], tw_s1: &[u64]) {
        let m = 1usize << s;
        let q = m / 4;
        debug_assert!(q >= 4 && tw_s.len() >= 2 * q && tw_s1.len() >= q);
        let tws = tw_s.as_ptr();
        let tws1 = tw_s1.as_ptr();
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < q {
                let pa = p.add(j);
                let pb = p.add(j + q);
                let pc = p.add(j + 2 * q);
                let pd = p.add(j + 3 * q);
                let a = _mm256_loadu_si256(pa.cast());
                let b = _mm256_loadu_si256(pb.cast());
                let c = _mm256_loadu_si256(pc.cast());
                let d = _mm256_loadu_si256(pd.cast());
                let w1 = _mm256_loadu_si256(tws.add(j).cast());
                let w2 = _mm256_loadu_si256(tws.add(j + q).cast());
                let w3 = _mm256_loadu_si256(tws1.add(j).cast());
                let t0 = gl_add(a, c);
                let t1 = gl_mul(gl_sub(a, c), w1);
                let t2 = gl_add(b, d);
                let t3 = gl_mul(gl_sub(b, d), w2);
                _mm256_storeu_si256(pa.cast(), gl_add(t0, t2));
                _mm256_storeu_si256(pb.cast(), gl_mul(gl_sub(t0, t2), w3));
                _mm256_storeu_si256(pc.cast(), gl_add(t1, t3));
                _mm256_storeu_si256(pd.cast(), gl_mul(gl_sub(t1, t3), w3));
                j += 4;
            }
        }
    }

    /// Single vector radix-2 stage, `half ≥ 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn gl_radix2(words: &mut [u64], s: u32, tw: &[u64]) {
        let m = 1usize << s;
        let half = m / 2;
        debug_assert!(half >= 4 && tw.len() >= half);
        let twp = tw.as_ptr();
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < half {
                let pu = p.add(j);
                let pv = p.add(j + half);
                let u = _mm256_loadu_si256(pu.cast());
                let v = _mm256_loadu_si256(pv.cast());
                let w = _mm256_loadu_si256(twp.add(j).cast());
                _mm256_storeu_si256(pu.cast(), gl_add(u, v));
                _mm256_storeu_si256(pv.cast(), gl_mul(gl_sub(u, v), w));
                j += 4;
            }
        }
    }

    /// Stages `m = 4` and `m = 2` fused over two-vector groups: block
    /// pairs are regrouped with cross-lane shuffles so both butterflies
    /// run at full width. The `m = 2` twiddle is `ω⁰ = 1`, so its
    /// product is elided (canonical lanes make the elision exact).
    #[target_feature(enable = "avx2")]
    unsafe fn gl_tail(words: &mut [u64], tw_m4: &[u64]) {
        debug_assert!(words.len() >= 8 && tw_m4.len() >= 2);
        let w = _mm256_setr_epi64x(
            tw_m4[0] as i64,
            tw_m4[1] as i64,
            tw_m4[0] as i64,
            tw_m4[1] as i64,
        );
        for chunk in words.chunks_exact_mut(8) {
            let p = chunk.as_mut_ptr();
            let a = _mm256_loadu_si256(p.cast());
            let b = _mm256_loadu_si256(p.add(4).cast());
            // m = 4: halves of two blocks regrouped per 128-bit lane.
            let u = _mm256_permute2x128_si256::<0x20>(a, b);
            let v = _mm256_permute2x128_si256::<0x31>(a, b);
            let s2 = gl_add(u, v);
            let d2 = gl_mul(gl_sub(u, v), w);
            let a = _mm256_permute2x128_si256::<0x20>(s2, d2);
            let b = _mm256_permute2x128_si256::<0x31>(s2, d2);
            // m = 2: adjacent pairs via 64-bit unpack (pair order within
            // the registers is permuted; the stores restore it).
            let u = _mm256_unpacklo_epi64(a, b);
            let v = _mm256_unpackhi_epi64(a, b);
            let s1 = gl_add(u, v);
            let d1 = gl_sub(u, v);
            _mm256_storeu_si256(p.cast(), _mm256_unpacklo_epi64(s1, d1));
            _mm256_storeu_si256(p.add(4).cast(), _mm256_unpackhi_epi64(s1, d1));
        }
    }

    /// All BabyBear DIF stages, canonical in/out. Schedule mirrors
    /// [`gl_stages`] with 8-lane vectors: parity radix-2, fused radix-4
    /// pairs down to stage 5, a full-width radix-2 at stage 4, then the
    /// three sub-vector stages (`m = 8, 4, 2`) in one shuffle pass.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `words.len() == 1 << log_n`, `log_n ≥ 4`, banks
    /// holding per-stage plain/quotient twiddle words.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bb_stages(
        words: &mut [u32],
        plain: &[Vec<u32>],
        quot: &[Vec<u32>],
        log_n: u32,
    ) {
        debug_assert!(log_n >= 4);
        debug_assert_eq!(words.len(), 1usize << log_n);
        let mut s = log_n;
        if (log_n - 4) % 2 == 1 {
            bb_radix2(words, s, &plain[(s - 1) as usize], &quot[(s - 1) as usize]);
            s -= 1;
        }
        while s >= 6 {
            bb_radix4(
                words,
                s,
                &plain[(s - 1) as usize],
                &quot[(s - 1) as usize],
                &plain[(s - 2) as usize],
                &quot[(s - 2) as usize],
            );
            s -= 2;
        }
        debug_assert_eq!(s, 4);
        bb_radix2(words, 4, &plain[3], &quot[3]);
        bb_tail(words, &plain[2], &quot[2], &plain[1], &quot[1]);
    }

    /// Fused radix-4 pair (stages `s`, `s−1`), 8-lane vectors, `q ≥ 16`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn bb_radix4(
        words: &mut [u32],
        s: u32,
        pl_s: &[u32],
        qt_s: &[u32],
        pl_s1: &[u32],
        qt_s1: &[u32],
    ) {
        let m = 1usize << s;
        let q = m / 4;
        debug_assert!(q >= 8 && pl_s.len() >= 2 * q && pl_s1.len() >= q);
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < q {
                let pa = p.add(j);
                let pb = p.add(j + q);
                let pc = p.add(j + 2 * q);
                let pd = p.add(j + 3 * q);
                let a = _mm256_loadu_si256(pa.cast());
                let b = _mm256_loadu_si256(pb.cast());
                let c = _mm256_loadu_si256(pc.cast());
                let d = _mm256_loadu_si256(pd.cast());
                let w1p = _mm256_loadu_si256(pl_s.as_ptr().add(j).cast());
                let w1q = _mm256_loadu_si256(qt_s.as_ptr().add(j).cast());
                let w2p = _mm256_loadu_si256(pl_s.as_ptr().add(j + q).cast());
                let w2q = _mm256_loadu_si256(qt_s.as_ptr().add(j + q).cast());
                let w3p = _mm256_loadu_si256(pl_s1.as_ptr().add(j).cast());
                let w3q = _mm256_loadu_si256(qt_s1.as_ptr().add(j).cast());
                let t0 = bb_add(a, c);
                let t1 = bb_shoup_mul(bb_sub(a, c), w1p, w1q);
                let t2 = bb_add(b, d);
                let t3 = bb_shoup_mul(bb_sub(b, d), w2p, w2q);
                _mm256_storeu_si256(pa.cast(), bb_add(t0, t2));
                _mm256_storeu_si256(pb.cast(), bb_shoup_mul(bb_sub(t0, t2), w3p, w3q));
                _mm256_storeu_si256(pc.cast(), bb_add(t1, t3));
                _mm256_storeu_si256(pd.cast(), bb_shoup_mul(bb_sub(t1, t3), w3p, w3q));
                j += 8;
            }
        }
    }

    /// Single vector radix-2 stage, `half ≥ 8`.
    #[target_feature(enable = "avx2")]
    unsafe fn bb_radix2(words: &mut [u32], s: u32, pl: &[u32], qt: &[u32]) {
        let m = 1usize << s;
        let half = m / 2;
        debug_assert!(half >= 8 && pl.len() >= half && qt.len() >= half);
        for block in words.chunks_exact_mut(m) {
            let p = block.as_mut_ptr();
            let mut j = 0usize;
            while j < half {
                let pu = p.add(j);
                let pv = p.add(j + half);
                let u = _mm256_loadu_si256(pu.cast());
                let v = _mm256_loadu_si256(pv.cast());
                let wp = _mm256_loadu_si256(pl.as_ptr().add(j).cast());
                let wq = _mm256_loadu_si256(qt.as_ptr().add(j).cast());
                _mm256_storeu_si256(pu.cast(), bb_add(u, v));
                _mm256_storeu_si256(pv.cast(), bb_shoup_mul(bb_sub(u, v), wp, wq));
                j += 8;
            }
        }
    }

    /// Stages `m = 8, 4, 2` fused over two-vector (16-element) groups
    /// with cross-lane shuffles; the final stage's unit twiddle product
    /// is elided (lanes are canonical throughout).
    #[target_feature(enable = "avx2")]
    unsafe fn bb_tail(
        words: &mut [u32],
        pl_m8: &[u32],
        qt_m8: &[u32],
        pl_m4: &[u32],
        qt_m4: &[u32],
    ) {
        debug_assert!(words.len() >= 16 && pl_m8.len() >= 4 && pl_m4.len() >= 2);
        let w8p = _mm256_broadcastsi128_si256(_mm_loadu_si128(pl_m8.as_ptr().cast()));
        let w8q = _mm256_broadcastsi128_si256(_mm_loadu_si128(qt_m8.as_ptr().cast()));
        let pack2 = |lo: u32, hi: u32| -> i64 { ((u64::from(hi) << 32) | u64::from(lo)) as i64 };
        let w4p = _mm256_set1_epi64x(pack2(pl_m4[0], pl_m4[1]));
        let w4q = _mm256_set1_epi64x(pack2(qt_m4[0], qt_m4[1]));
        for chunk in words.chunks_exact_mut(16) {
            let p = chunk.as_mut_ptr();
            let a = _mm256_loadu_si256(p.cast());
            let b = _mm256_loadu_si256(p.add(8).cast());
            // m = 8: vector halves regrouped per 128-bit lane.
            let u = _mm256_permute2x128_si256::<0x20>(a, b);
            let v = _mm256_permute2x128_si256::<0x31>(a, b);
            let s3 = bb_add(u, v);
            let d3 = bb_shoup_mul(bb_sub(u, v), w8p, w8q);
            let a = _mm256_permute2x128_si256::<0x20>(s3, d3);
            let b = _mm256_permute2x128_si256::<0x31>(s3, d3);
            // m = 4: 64-bit unpack pairs the (j, j+2) elements.
            let u = _mm256_unpacklo_epi64(a, b);
            let v = _mm256_unpackhi_epi64(a, b);
            let s2 = bb_add(u, v);
            let d2 = bb_shoup_mul(bb_sub(u, v), w4p, w4q);
            let a = _mm256_unpacklo_epi64(s2, d2);
            let b = _mm256_unpackhi_epi64(s2, d2);
            // m = 2: swap the middle 32-bit lanes of each quad so the
            // 64-bit unpack pairs adjacent elements; undo after.
            let ta = _mm256_shuffle_epi32::<0b1101_1000>(a);
            let tb = _mm256_shuffle_epi32::<0b1101_1000>(b);
            let u = _mm256_unpacklo_epi64(ta, tb);
            let v = _mm256_unpackhi_epi64(ta, tb);
            let s1 = bb_add(u, v);
            let d1 = bb_sub(u, v);
            let oa = _mm256_unpacklo_epi64(s1, d1);
            let ob = _mm256_unpackhi_epi64(s1, d1);
            _mm256_storeu_si256(p.cast(), _mm256_shuffle_epi32::<0b1101_1000>(oa));
            _mm256_storeu_si256(p.add(8).cast(), _mm256_shuffle_epi32::<0b1101_1000>(ob));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ntt;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Bn254Fr, Field};

    fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
    }

    /// Legacy-path oracle, independent of the process-wide kernel mode.
    fn legacy_forward<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F]) {
        bit_reverse_permute(values);
        ntt.dit_in_place(values);
    }

    fn vector_matches_legacy<F: TwoAdicField>(max_log: u32, seed: u64) {
        for log_n in 0..=max_log {
            let table = cache::shared_table::<F>(log_n);
            let ntt = Ntt::<F>::from_table(Arc::clone(&table));
            let input = random_vec::<F>(log_n, seed + u64::from(log_n));

            let mut expect = input.clone();
            legacy_forward(&ntt, &mut expect);
            let mut got = input.clone();
            forward_vector(&table, &mut got);
            assert_eq!(got, expect, "forward log_n={log_n}");

            let mut round = got;
            inverse_vector(&table, &mut round);
            assert_eq!(round, input, "roundtrip log_n={log_n}");
        }
    }

    #[test]
    fn vector_matches_legacy_goldilocks() {
        vector_matches_legacy::<Goldilocks>(13, 1000);
    }

    #[test]
    fn vector_matches_legacy_babybear() {
        vector_matches_legacy::<BabyBear>(13, 2000);
    }

    #[test]
    fn vector_matches_legacy_bn254_fallback() {
        vector_matches_legacy::<Bn254Fr>(9, 3000);
    }

    #[test]
    fn vector_six_step_matches_fast_path() {
        // Straddle the vector direct/six-step threshold.
        for log_n in [VECTOR_DIRECT_MAX_LOG_N, VECTOR_DIRECT_MAX_LOG_N + 1] {
            let table = cache::shared_table::<Goldilocks>(log_n);
            let input = random_vec::<Goldilocks>(log_n, 50 + u64::from(log_n));

            let mut expect = input.clone();
            fast::forward_fast(&table, &mut expect);
            let mut got = input.clone();
            forward_vector(&table, &mut got);
            assert_eq!(got, expect, "forward log_n={log_n}");

            inverse_vector(&table, &mut got);
            assert_eq!(got, input, "roundtrip log_n={log_n}");
        }
    }

    #[test]
    fn portable_backend_matches_native() {
        for log_n in [1u32, 3, 5, 8, 11] {
            let table = cache::shared_table::<Goldilocks>(log_n);
            let plan = VectorPlan::<Goldilocks>::new(&table);
            let input = random_vec::<Goldilocks>(log_n, 600 + u64::from(log_n));

            set_vector_backend_override(Some(VectorBackend::Portable));
            let mut portable = input.clone();
            plan.forward(&mut portable);
            set_vector_backend_override(None);

            let mut auto = input.clone();
            plan.forward(&mut auto);
            assert_eq!(auto, portable, "log_n={log_n}");
        }
    }

    #[test]
    fn plan_pins_bitrev_pairs() {
        let table = cache::shared_table::<Goldilocks>(10);
        let plan = VectorPlan::<Goldilocks>::new(&table);
        let pinned = plan.bitrev_pairs().expect("cached range");
        assert!(Arc::ptr_eq(pinned, &cache::bitrev_pairs(10)));
    }

    #[test]
    fn backend_report_is_consistent() {
        // Whatever the CPU, the reporting hook and the plan agree.
        let plan = VectorPlan::<Goldilocks>::new(&cache::shared_table::<Goldilocks>(8));
        match active_vector_backend::<Goldilocks>() {
            VectorBackend::Native => assert_ne!(plan.active_native(), NativeKernel::None),
            VectorBackend::Portable => assert_eq!(plan.active_native(), NativeKernel::None),
        }
    }
}
