//! Bit-reversal permutations.
//!
//! Radix-2 Cooley–Tukey NTTs naturally consume or produce data in
//! *bit-reversed* order: element `i` sits at position `reverse_bits(i)`.
//! This module provides the index helper and in-place/out-of-place
//! permutation routines shared by every NTT variant in the workspace.

/// Reverses the low `bits` bits of `i`.
///
/// ```
/// use unintt_ntt::reverse_bits;
/// assert_eq!(reverse_bits(0b001, 3), 0b100);
/// assert_eq!(reverse_bits(0b110, 3), 0b011);
/// ```
#[inline]
pub fn reverse_bits(i: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Applies the bit-reversal permutation in place.
///
/// For sizes up to `2^20` the swap pairs come from a process-wide
/// precomputed table (see [`crate::cache`]): the permutation loop then
/// reads the pair list sequentially instead of re-deriving each index,
/// and skips the `i < j` test on the half of the indices it would reject.
///
/// # Panics
///
/// Panics if `values.len()` is not a power of two.
pub fn bit_reverse_permute<T>(values: &mut [T]) {
    let n = values.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let bits = n.trailing_zeros();
    if bits <= crate::cache::MAX_CACHED_BITREV_BITS {
        for &(i, j) in crate::cache::bitrev_pairs(bits).iter() {
            values.swap(i as usize, j as usize);
        }
    } else {
        for i in 0..n {
            let j = reverse_bits(i, bits);
            if i < j {
                values.swap(i, j);
            }
        }
    }
}

/// Returns a new vector with elements in bit-reversed order.
pub fn bit_reversed<T: Clone>(values: &[T]) -> Vec<T> {
    let n = values.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| values[reverse_bits(i, bits)].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_bits_known_values() {
        assert_eq!(reverse_bits(0, 4), 0);
        assert_eq!(reverse_bits(1, 4), 8);
        assert_eq!(reverse_bits(0b1010, 4), 0b0101);
        assert_eq!(reverse_bits(5, 0), 0);
    }

    #[test]
    fn reverse_is_involution() {
        for bits in 1..10u32 {
            for i in 0..(1usize << bits) {
                assert_eq!(reverse_bits(reverse_bits(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn permute_is_involution() {
        let original: Vec<u32> = (0..64).collect();
        let mut v = original.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, original);
        bit_reverse_permute(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn permute_singleton_and_pair() {
        let mut one = [42];
        bit_reverse_permute(&mut one);
        assert_eq!(one, [42]);

        let mut two = [1, 2];
        bit_reverse_permute(&mut two);
        assert_eq!(two, [1, 2]);

        let mut four = [0, 1, 2, 3];
        bit_reverse_permute(&mut four);
        assert_eq!(four, [0, 2, 1, 3]);
    }

    #[test]
    fn bit_reversed_matches_in_place() {
        let original: Vec<u32> = (0..32).collect();
        let out = bit_reversed(&original);
        let mut inplace = original.clone();
        bit_reverse_permute(&mut inplace);
        assert_eq!(out, inplace);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_panics() {
        let mut v = [1, 2, 3];
        bit_reverse_permute(&mut v);
    }
}
