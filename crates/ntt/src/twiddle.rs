//! Twiddle-factor tables.
//!
//! A [`TwiddleTable`] caches the powers of a primitive root of unity for a
//! fixed domain size, in both forward and inverse direction, so repeated
//! NTTs over the same domain pay the precomputation once. Tables are cheap
//! to clone conceptually but large, so the NTT contexts share them by
//! reference.

use std::sync::OnceLock;

use unintt_ff::{ShoupTwiddle, TwoAdicField};

/// Precomputed twiddle factors for NTTs of size `2^log_n`.
#[derive(Clone, Debug)]
pub struct TwiddleTable<F: TwoAdicField> {
    log_n: u32,
    /// `omega^j` for `j` in `0..n/2` (forward direction).
    forward: Vec<F>,
    /// `omega^{-j}` for `j` in `0..n/2`.
    inverse: Vec<F>,
    /// Shoup companions of `forward`, built lazily on first fast-kernel use.
    forward_shoup: OnceLock<Vec<ShoupTwiddle<F>>>,
    /// Shoup companions of `inverse`.
    inverse_shoup: OnceLock<Vec<ShoupTwiddle<F>>>,
    /// `n^{-1}`, the inverse-NTT output scale.
    n_inv: F,
    omega: F,
    omega_inv: F,
}

impl<F: TwoAdicField> TwiddleTable<F> {
    /// Builds the table for domain size `2^log_n`.
    ///
    /// # Panics
    ///
    /// Panics if `log_n` exceeds the field's two-adicity.
    pub fn new(log_n: u32) -> Self {
        let omega = F::two_adic_generator(log_n);
        let omega_inv = omega.inverse().expect("roots of unity are nonzero");
        let half = 1usize << log_n.saturating_sub(1);

        let mut forward = Vec::with_capacity(half);
        let mut inverse = Vec::with_capacity(half);
        let (mut fw, mut iv) = (F::ONE, F::ONE);
        for _ in 0..half.max(1) {
            forward.push(fw);
            inverse.push(iv);
            fw *= omega;
            iv *= omega_inv;
        }

        let n_inv = F::from_u64(1u64 << log_n)
            .inverse()
            .expect("n is nonzero in a field with adequate two-adicity");

        Self {
            log_n,
            forward,
            inverse,
            forward_shoup: OnceLock::new(),
            inverse_shoup: OnceLock::new(),
            n_inv,
            omega,
            omega_inv,
        }
    }

    /// Domain size exponent.
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// Domain size `n = 2^log_n`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// The primitive `n`-th root of unity the table was built from.
    pub fn omega(&self) -> F {
        self.omega
    }

    /// The inverse root `omega^{-1}`.
    pub fn omega_inv(&self) -> F {
        self.omega_inv
    }

    /// `n^{-1}` (inverse-transform scale factor).
    pub fn n_inv(&self) -> F {
        self.n_inv
    }

    /// Forward twiddles: `forward()[j] == omega^j`, `j < n/2`.
    pub fn forward(&self) -> &[F] {
        &self.forward
    }

    /// Inverse twiddles: `inverse()[j] == omega^{-j}`, `j < n/2`.
    pub fn inverse(&self) -> &[F] {
        &self.inverse
    }

    /// Shoup companions of [`Self::forward`], built on first access and
    /// shared thereafter.
    pub fn forward_shoup(&self) -> &[ShoupTwiddle<F>] {
        self.forward_shoup
            .get_or_init(|| self.forward.iter().map(|&w| F::shoup_prepare(w)).collect())
    }

    /// Shoup companions of [`Self::inverse`].
    pub fn inverse_shoup(&self) -> &[ShoupTwiddle<F>] {
        self.inverse_shoup
            .get_or_init(|| self.inverse.iter().map(|&w| F::shoup_prepare(w)).collect())
    }

    /// Returns `omega^e` via table lookup (reducing `e` mod `n`), using
    /// `omega^{n/2} = -1` to halve the table.
    pub fn root_pow(&self, e: usize) -> F {
        let n = self.n();
        let e = e & (n - 1);
        if n == 1 {
            return F::ONE;
        }
        if e < n / 2 {
            self.forward[e]
        } else {
            -self.forward[e - n / 2]
        }
    }

    /// Returns `omega^{-e}` via table lookup (the inverse-direction twin of
    /// [`Self::root_pow`]).
    pub fn root_pow_inv(&self, e: usize) -> F {
        let n = self.n();
        let e = e & (n - 1);
        if n == 1 {
            return F::ONE;
        }
        if e < n / 2 {
            self.inverse[e]
        } else {
            -self.inverse[e - n / 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_ff::{Field, Goldilocks};

    #[test]
    fn table_entries_are_root_powers() {
        let t = TwiddleTable::<Goldilocks>::new(4);
        let w = t.omega();
        for (j, &tw) in t.forward().iter().enumerate() {
            assert_eq!(tw, w.pow(j as u64));
        }
        for (j, &tw) in t.inverse().iter().enumerate() {
            assert_eq!(tw * w.pow(j as u64), Goldilocks::ONE);
        }
    }

    #[test]
    fn n_inv_scales() {
        let t = TwiddleTable::<Goldilocks>::new(5);
        assert_eq!(t.n_inv() * Goldilocks::from(32u64), Goldilocks::ONE);
    }

    #[test]
    fn root_pow_wraps_and_negates() {
        let t = TwiddleTable::<Goldilocks>::new(3);
        let w = t.omega();
        for e in 0..32 {
            assert_eq!(t.root_pow(e), w.pow(e as u64), "e={e}");
        }
    }

    #[test]
    fn root_pow_inv_mirrors_root_pow() {
        let t = TwiddleTable::<Goldilocks>::new(4);
        for e in 0..40 {
            assert_eq!(t.root_pow_inv(e) * t.root_pow(e), Goldilocks::ONE, "e={e}");
        }
    }

    #[test]
    fn shoup_lanes_pair_with_plain_twiddles() {
        use unintt_ff::ShoupField;
        let t = TwiddleTable::<Goldilocks>::new(5);
        let fwd = t.forward_shoup();
        assert_eq!(fwd.len(), t.forward().len());
        let x = Goldilocks::from(123_456_789u64);
        for (tw, &plain) in fwd.iter().zip(t.forward()) {
            assert_eq!(tw.w, plain);
            assert_eq!(Goldilocks::shoup_mul(x, tw), x * plain);
        }
        for (tw, &plain) in t.inverse_shoup().iter().zip(t.inverse()) {
            assert_eq!(tw.w, plain);
        }
    }

    #[test]
    fn size_one_domain() {
        let t = TwiddleTable::<Goldilocks>::new(0);
        assert_eq!(t.n(), 1);
        assert_eq!(t.omega(), Goldilocks::ONE);
        assert_eq!(t.root_pow(0), Goldilocks::ONE);
        assert_eq!(t.root_pow(7), Goldilocks::ONE);
    }
}
