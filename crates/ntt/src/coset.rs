//! Coset NTTs and low-degree extension (LDE).
//!
//! ZKP provers rarely evaluate polynomials on the "plain" subgroup `H`:
//! quotient computations need evaluations on a *coset* `g·H` (so the
//! vanishing polynomial is invertible), and FRI/STARK commitments need the
//! *low-degree extension* — the same polynomial evaluated on a domain
//! `blowup` times larger. Both reduce to scaling coefficients by powers of
//! the shift before a standard NTT.

use unintt_ff::{PrimeField, TwoAdicField};

use crate::Ntt;

/// Evaluates, in place, the polynomial with coefficients `coeffs` on the
/// coset `shift·H` where `H` is the size-`n` subgroup:
/// output `i` is `p(shift·ωⁱ)`.
///
/// # Panics
///
/// Panics if `coeffs.len()` differs from the context size.
pub fn coset_ntt<F: TwoAdicField>(ntt: &Ntt<F>, coeffs: &mut [F], shift: F) {
    assert_eq!(coeffs.len(), ntt.n(), "input length mismatch");
    // p(shift·x) has coefficients c_i · shiftⁱ.
    let mut s = F::ONE;
    for c in coeffs.iter_mut() {
        *c *= s;
        s *= shift;
    }
    ntt.forward(coeffs);
}

/// Inverse of [`coset_ntt`]: recovers coefficients from evaluations on
/// `shift·H`.
///
/// # Panics
///
/// Panics if `values.len()` differs from the context size, or if `shift`
/// is zero.
pub fn coset_intt<F: TwoAdicField>(ntt: &Ntt<F>, values: &mut [F], shift: F) {
    assert_eq!(values.len(), ntt.n(), "input length mismatch");
    ntt.inverse(values);
    let shift_inv = shift.inverse().expect("coset shift must be nonzero");
    let mut s = F::ONE;
    for c in values.iter_mut() {
        *c *= s;
        s *= shift_inv;
    }
}

/// Low-degree extension: given evaluations of a degree-`< n` polynomial on
/// the size-`n` subgroup, returns its evaluations on the size-`n·2^log_blowup`
/// coset `shift·H'`.
///
/// This is the STARK/FRI workhorse: interpolate (iNTT), zero-pad, coset-NTT
/// at the larger size.
///
/// # Panics
///
/// Panics if `evals.len()` is not a power of two or the blown-up size
/// exceeds the field two-adicity.
pub fn low_degree_extension<F: TwoAdicField>(evals: &[F], log_blowup: u32, shift: F) -> Vec<F> {
    let n = evals.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let log_n = n.trailing_zeros();
    let small = Ntt::<F>::new(log_n);
    let big = Ntt::<F>::new(log_n + log_blowup);

    let mut coeffs = evals.to_vec();
    small.inverse(&mut coeffs);
    coeffs.resize(n << log_blowup, F::ZERO);
    coset_ntt(&big, &mut coeffs, shift);
    coeffs
}

/// The standard coset shift: the field's multiplicative generator, which is
/// guaranteed to lie outside every proper power-of-two subgroup.
pub fn standard_shift<F: PrimeField>() -> F {
    F::GENERATOR
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{horner_eval, Field, Goldilocks, PrimeField};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn coset_ntt_evaluates_on_shifted_points() {
        let log_n = 4u32;
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let coeffs = random_vec(1 << log_n, 1);
        let shift = standard_shift::<Goldilocks>();

        let mut evals = coeffs.clone();
        coset_ntt(&ntt, &mut evals, shift);

        let omega = ntt.table().omega();
        for (i, &e) in evals.iter().enumerate() {
            let x = shift * omega.pow(i as u64);
            assert_eq!(e, horner_eval(&coeffs, x), "i={i}");
        }
    }

    #[test]
    fn coset_roundtrip() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let coeffs = random_vec(64, 2);
        let shift = Goldilocks::from_u64(3);
        let mut data = coeffs.clone();
        coset_ntt(&ntt, &mut data, shift);
        coset_intt(&ntt, &mut data, shift);
        assert_eq!(data, coeffs);
    }

    #[test]
    fn coset_with_unit_shift_is_plain_ntt() {
        let ntt = Ntt::<Goldilocks>::new(5);
        let coeffs = random_vec(32, 3);
        let mut plain = coeffs.clone();
        ntt.forward(&mut plain);
        let mut coset = coeffs.clone();
        coset_ntt(&ntt, &mut coset, Goldilocks::ONE);
        assert_eq!(plain, coset);
    }

    #[test]
    fn lde_agrees_with_direct_evaluation() {
        let log_n = 3u32;
        let n = 1usize << log_n;
        let coeffs = random_vec(n, 4);

        // Evaluate on H first.
        let small = Ntt::<Goldilocks>::new(log_n);
        let mut evals = coeffs.clone();
        small.forward(&mut evals);

        let shift = standard_shift::<Goldilocks>();
        let extended = low_degree_extension(&evals, 2, shift);
        assert_eq!(extended.len(), n * 4);

        let big_omega = Ntt::<Goldilocks>::new(log_n + 2).table().omega();
        for (i, &e) in extended.iter().enumerate() {
            let x = shift * big_omega.pow(i as u64);
            assert_eq!(e, horner_eval(&coeffs, x), "i={i}");
        }
    }

    #[test]
    fn lde_preserves_degree_bound() {
        // Extending then re-interpolating must give back the original
        // coefficients padded with zeros.
        let coeffs = random_vec(8, 5);
        let small = Ntt::<Goldilocks>::new(3);
        let mut evals = coeffs.clone();
        small.forward(&mut evals);

        let shift = standard_shift::<Goldilocks>();
        let mut extended = low_degree_extension(&evals, 1, shift);
        let big = Ntt::<Goldilocks>::new(4);
        coset_intt(&big, &mut extended, shift);
        assert_eq!(&extended[..8], &coeffs[..]);
        assert!(extended[8..].iter().all(|c| c.is_zero()));
    }
}
