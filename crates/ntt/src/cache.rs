//! Process-wide plan and twiddle caches.
//!
//! Engines, provers and benches construct [`crate::Ntt`] contexts for the
//! same `(field, log_n)` pairs over and over (the ZKP backend builds one
//! per proof, the FRI pipeline two per LDE, the cluster engines one per
//! shard size…). Tables and kernel plans are immutable once built, so the
//! whole process shares them: one bounded LRU map keyed by
//! `(TypeId, log_n)` behind a mutex, holding `Arc`s. Both transform
//! directions live in the same entry (forward and inverse lanes are built
//! together), so the key `(field, log_n)` covers the
//! `(field, log_n, direction)` plan space.
//!
//! **Boundedness.** A long-lived process (the `unintt-serve` proving
//! service) must not let a churn of tenant sizes grow these maps without
//! limit, so both caches are LRU-bounded at [`cache_capacity`] entries
//! (settable via [`set_cache_capacity`]). Eviction only drops the cache's
//! own `Arc`; outstanding contexts keep their tables alive, and a
//! re-request simply rebuilds. The default capacity (64 entries per
//! cache) is far above any workload in this repository, so eviction is a
//! safety valve, not a steady-state behaviour.
//!
//! The bit-reversal pair tables (see [`crate::bit_reverse_permute`]) are
//! cached here too, keyed by `log_n` alone — the permutation is
//! element-type agnostic and its entry count is already bounded by
//! [`MAX_CACHED_BITREV_BITS`].

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

use unintt_ff::TwoAdicField;

use crate::fast::DirectPlan;
use crate::twiddle::TwiddleTable;
use crate::vector::VectorPlan;

type AnyArc = Arc<dyn Any + Send + Sync>;

/// Default per-cache entry limit for the table and plan caches.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A capacity-bounded LRU map: `get` refreshes recency, `insert` evicts
/// the least-recently-used entry once the map exceeds its capacity.
///
/// Recency is a monotonically increasing tick, so the eviction victim is
/// always unique and independent of `HashMap` iteration order — a
/// requirement for the workspace-wide determinism guarantees.
pub(crate) struct BoundedCache<K, V> {
    entries: HashMap<K, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (clamped ≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(v, last)| {
            *last = tick;
            v.clone()
        })
    }

    /// Inserts `value` under `key` unless an entry already exists (a
    /// racing builder keeps the first copy, mirroring the old
    /// `entry().or_insert_with()` semantics), then evicts down to
    /// capacity. Returns the resident value.
    pub(crate) fn insert(&mut self, key: K, value: V) -> V {
        self.tick += 1;
        let tick = self.tick;
        let resident = self
            .entries
            .entry(key.clone())
            .or_insert_with(|| (value, tick));
        resident.1 = tick;
        let out = resident.0.clone();
        self.evict_to_capacity(Some(&key));
        out
    }

    /// Changes the capacity, evicting immediately if now over it.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_to_capacity(None);
    }

    /// Current capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if `key` currently resides in the cache (no recency bump).
    #[cfg(test)]
    pub(crate) fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    fn evict_to_capacity(&mut self, keep: Option<&K>) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| Some(*k) != keep)
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                }
                None => break, // only the protected key remains
            }
        }
    }
}

type TypedCache = Mutex<BoundedCache<(TypeId, u32), AnyArc>>;

fn table_cache() -> &'static TypedCache {
    static CACHE: OnceLock<TypedCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedCache::new(DEFAULT_CACHE_CAPACITY)))
}

fn plan_cache() -> &'static TypedCache {
    static CACHE: OnceLock<TypedCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedCache::new(DEFAULT_CACHE_CAPACITY)))
}

fn vector_plan_cache() -> &'static TypedCache {
    static CACHE: OnceLock<TypedCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedCache::new(DEFAULT_CACHE_CAPACITY)))
}

/// Sets the entry capacity of the process-wide twiddle-table and
/// kernel-plan caches (each holds at most this many `(field, log_n)`
/// entries; least-recently-used entries are evicted first). Values are
/// clamped to ≥ 1. Long-lived services call this once at startup.
pub fn set_cache_capacity(capacity: usize) {
    table_cache().lock().unwrap().set_capacity(capacity);
    plan_cache().lock().unwrap().set_capacity(capacity);
    vector_plan_cache().lock().unwrap().set_capacity(capacity);
}

/// The current per-cache entry capacity (see [`set_cache_capacity`]).
pub fn cache_capacity() -> usize {
    table_cache().lock().unwrap().capacity()
}

/// The shared twiddle table for `(F, log_n)`, built on first request.
///
/// # Panics
///
/// Panics if `log_n` exceeds the field's two-adicity (as
/// [`TwiddleTable::new`] does).
pub fn shared_table<F: TwoAdicField>(log_n: u32) -> Arc<TwiddleTable<F>> {
    let key = (TypeId::of::<F>(), log_n);
    if let Some(hit) = table_cache().lock().unwrap().get(&key) {
        return hit.downcast().expect("cache type invariant");
    }
    // Build outside the lock: large tables take real time and other sizes
    // shouldn't stall behind them. A racing builder just loses its copy.
    let built = Arc::new(TwiddleTable::<F>::new(log_n));
    table_cache()
        .lock()
        .unwrap()
        .insert(key, built as AnyArc)
        .downcast()
        .expect("cache type invariant")
}

/// The shared direct-kernel plan (per-stage Shoup tables) for `(F, log_n)`.
pub(crate) fn shared_plan<F: TwoAdicField>(log_n: u32) -> Arc<DirectPlan<F>> {
    let key = (TypeId::of::<F>(), log_n);
    if let Some(hit) = plan_cache().lock().unwrap().get(&key) {
        return hit.downcast().expect("cache type invariant");
    }
    let built = Arc::new(DirectPlan::new(&shared_table::<F>(log_n)));
    plan_cache()
        .lock()
        .unwrap()
        .insert(key, built as AnyArc)
        .downcast()
        .expect("cache type invariant")
}

/// The shared vectorized-kernel plan (lane-packed per-stage tables plus
/// the pre-interleaved native-lane banks) for `(F, log_n)`. One memoized,
/// monomorphized instance per `(field, log_n)` pair; both directions live
/// in the entry, so dispatch from [`crate::Ntt`] is a single cache probe
/// followed by an indirect call into the specialized kernel.
pub(crate) fn shared_vector_plan<F: TwoAdicField>(log_n: u32) -> Arc<VectorPlan<F>> {
    let key = (TypeId::of::<F>(), log_n);
    if let Some(hit) = vector_plan_cache().lock().unwrap().get(&key) {
        return hit.downcast().expect("cache type invariant");
    }
    let built = Arc::new(VectorPlan::new(&shared_table::<F>(log_n)));
    vector_plan_cache()
        .lock()
        .unwrap()
        .insert(key, built as AnyArc)
        .downcast()
        .expect("cache type invariant")
}

/// Largest `log_n` whose bit-reversal swap pairs are cached (a pair table
/// at `2^20` is 4 MiB; larger permutations fall back to on-the-fly index
/// computation — the fast NTT path never bit-reverses at those sizes
/// anyway, it decomposes six-step instead).
pub(crate) const MAX_CACHED_BITREV_BITS: u32 = 20;

/// A cached table of bit-reversal swap pairs.
type BitrevPairs = Arc<Vec<(u32, u32)>>;

/// The swap pairs `(i, j)` with `i < j = reverse_bits(i)` for a size-`2^bits`
/// bit-reversal permutation, shared process-wide.
pub(crate) fn bitrev_pairs(bits: u32) -> BitrevPairs {
    assert!(bits <= MAX_CACHED_BITREV_BITS);
    static CACHE: OnceLock<Mutex<HashMap<u32, BitrevPairs>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&bits) {
        return Arc::clone(hit);
    }
    let n = 1usize << bits;
    let mut pairs = Vec::new();
    for i in 0..n {
        let j = crate::bitrev::reverse_bits(i, bits);
        if i < j {
            pairs.push((i as u32, j as u32));
        }
    }
    let built = Arc::new(pairs);
    let mut guard = cache.lock().unwrap();
    Arc::clone(guard.entry(bits).or_insert(built))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_ff::{BabyBear, Goldilocks, PrimeField};

    #[test]
    fn tables_are_shared_per_field_and_size() {
        let a = shared_table::<Goldilocks>(6);
        let b = shared_table::<Goldilocks>(6);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_table::<Goldilocks>(7);
        assert!(!Arc::ptr_eq(&a, &c));
        // Different field, same log_n: distinct entries.
        let d = shared_table::<BabyBear>(6);
        assert_eq!(d.log_n(), 6);
    }

    #[test]
    fn shared_table_matches_fresh_table() {
        let shared = shared_table::<Goldilocks>(8);
        let fresh = TwiddleTable::<Goldilocks>::new(8);
        assert_eq!(shared.forward(), fresh.forward());
        assert_eq!(shared.inverse(), fresh.inverse());
        assert_eq!(shared.n_inv(), fresh.n_inv());
    }

    #[test]
    fn plans_are_shared() {
        let a = shared_plan::<Goldilocks>(5);
        let b = shared_plan::<Goldilocks>(5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn bitrev_pairs_are_shared_and_correct() {
        let p = bitrev_pairs(4);
        assert!(Arc::ptr_eq(&p, &bitrev_pairs(4)));
        // Applying the pairs must equal the naive permutation.
        let mut via_pairs: Vec<u32> = (0..16).collect();
        for &(i, j) in p.iter() {
            via_pairs.swap(i as usize, j as usize);
        }
        let mut naive: Vec<u32> = (0..16).collect();
        let n = naive.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = crate::bitrev::reverse_bits(i, bits);
            if i < j {
                naive.swap(i, j);
            }
        }
        assert_eq!(via_pairs, naive);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let mut cache: BoundedCache<u32, u32> = BoundedCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so that 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&1), "recently used entry must survive");
        assert!(!cache.contains(&2), "LRU entry must be evicted");
        assert!(cache.contains(&3));
    }

    #[test]
    fn bounded_cache_shrinks_on_capacity_change() {
        let mut cache: BoundedCache<u32, u32> = BoundedCache::new(8);
        for k in 0..8 {
            cache.insert(k, k);
        }
        // Refresh 6 and 7 so they are the most recent.
        cache.get(&6);
        cache.get(&7);
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&6) && cache.contains(&7));
    }

    #[test]
    fn bounded_cache_insert_keeps_first_copy() {
        let mut cache: BoundedCache<u32, u32> = BoundedCache::new(4);
        assert_eq!(cache.insert(1, 10), 10);
        // A racing builder's duplicate loses: the resident value wins.
        assert_eq!(cache.insert(1, 99), 10);
        assert_eq!(cache.get(&1), Some(10));
    }

    #[test]
    fn bounded_cache_capacity_clamps_to_one() {
        let mut cache: BoundedCache<u32, u32> = BoundedCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&2), "newest insert survives at capacity 1");
    }

    #[test]
    fn vector_plans_are_shared() {
        let a = shared_vector_plan::<Goldilocks>(5);
        let b = shared_vector_plan::<Goldilocks>(5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_vector_plan::<BabyBear>(5);
        assert_eq!(c.log_n(), 5);
    }

    #[test]
    fn evicted_vector_plan_keeps_working() {
        // Eviction safety: a plan Arc held by a live Ntt context must keep
        // its pinned bit-reversal pair table (and twiddle banks) usable
        // after the cache drops its own reference.
        let held = shared_vector_plan::<Goldilocks>(9);
        let pairs_before = held.bitrev_pairs().expect("log_n=9 pairs are cached");
        {
            let mut guard = vector_plan_cache().lock().unwrap();
            let snapshot = guard.capacity();
            guard.set_capacity(1);
            guard.set_capacity(snapshot);
        }
        // Force churn so the held entry is no longer guaranteed resident.
        for log_n in 0..4 {
            let _ = shared_vector_plan::<BabyBear>(log_n);
        }
        let pairs_after = held.bitrev_pairs().expect("pinned pairs survive eviction");
        assert!(Arc::ptr_eq(pairs_before, pairs_after));
        // And the plan still transforms correctly end-to-end.
        let input: Vec<Goldilocks> = (0..512u64).map(Goldilocks::from_u64).collect();
        let mut via_held = input.clone();
        held.forward(&mut via_held);
        let mut via_fresh = input;
        shared_vector_plan::<Goldilocks>(9).forward(&mut via_fresh);
        assert_eq!(via_held, via_fresh);
    }

    #[test]
    fn global_capacity_is_generous_by_default() {
        // The default must comfortably exceed every size the workspace
        // uses, so the ptr-sharing tests above stay meaningful.
        assert!(cache_capacity() >= 32);
    }
}
