//! Process-wide plan and twiddle caches.
//!
//! Engines, provers and benches construct [`crate::Ntt`] contexts for the
//! same `(field, log_n)` pairs over and over (the ZKP backend builds one
//! per proof, the FRI pipeline two per LDE, the cluster engines one per
//! shard size…). Tables and kernel plans are immutable once built, so the
//! whole process shares them: one `HashMap` keyed by `(TypeId, log_n)`
//! behind a mutex, holding `Arc`s. Both transform directions live in the
//! same entry (forward and inverse lanes are built together), so the key
//! `(field, log_n)` covers the `(field, log_n, direction)` plan space.
//!
//! The bit-reversal pair tables (see [`crate::bit_reverse_permute`]) are
//! cached here too, keyed by `log_n` alone — the permutation is
//! element-type agnostic.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use unintt_ff::TwoAdicField;

use crate::fast::DirectPlan;
use crate::twiddle::TwiddleTable;

type AnyArc = Arc<dyn Any + Send + Sync>;

fn table_cache() -> &'static Mutex<HashMap<(TypeId, u32), AnyArc>> {
    static CACHE: OnceLock<Mutex<HashMap<(TypeId, u32), AnyArc>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn plan_cache() -> &'static Mutex<HashMap<(TypeId, u32), AnyArc>> {
    static CACHE: OnceLock<Mutex<HashMap<(TypeId, u32), AnyArc>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared twiddle table for `(F, log_n)`, built on first request.
///
/// # Panics
///
/// Panics if `log_n` exceeds the field's two-adicity (as
/// [`TwiddleTable::new`] does).
pub fn shared_table<F: TwoAdicField>(log_n: u32) -> Arc<TwiddleTable<F>> {
    let key = (TypeId::of::<F>(), log_n);
    if let Some(hit) = table_cache().lock().unwrap().get(&key) {
        return Arc::clone(hit).downcast().expect("cache type invariant");
    }
    // Build outside the lock: large tables take real time and other sizes
    // shouldn't stall behind them. A racing builder just loses its copy.
    let built = Arc::new(TwiddleTable::<F>::new(log_n));
    let mut cache = table_cache().lock().unwrap();
    let entry = cache
        .entry(key)
        .or_insert_with(|| built as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry).downcast().expect("cache type invariant")
}

/// The shared direct-kernel plan (per-stage Shoup tables) for `(F, log_n)`.
pub(crate) fn shared_plan<F: TwoAdicField>(log_n: u32) -> Arc<DirectPlan<F>> {
    let key = (TypeId::of::<F>(), log_n);
    if let Some(hit) = plan_cache().lock().unwrap().get(&key) {
        return Arc::clone(hit).downcast().expect("cache type invariant");
    }
    let built = Arc::new(DirectPlan::new(&shared_table::<F>(log_n)));
    let mut cache = plan_cache().lock().unwrap();
    let entry = cache
        .entry(key)
        .or_insert_with(|| built as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry).downcast().expect("cache type invariant")
}

/// Largest `log_n` whose bit-reversal swap pairs are cached (a pair table
/// at `2^20` is 4 MiB; larger permutations fall back to on-the-fly index
/// computation — the fast NTT path never bit-reverses at those sizes
/// anyway, it decomposes six-step instead).
pub(crate) const MAX_CACHED_BITREV_BITS: u32 = 20;

/// A cached table of bit-reversal swap pairs.
type BitrevPairs = Arc<Vec<(u32, u32)>>;

/// The swap pairs `(i, j)` with `i < j = reverse_bits(i)` for a size-`2^bits`
/// bit-reversal permutation, shared process-wide.
pub(crate) fn bitrev_pairs(bits: u32) -> BitrevPairs {
    assert!(bits <= MAX_CACHED_BITREV_BITS);
    static CACHE: OnceLock<Mutex<HashMap<u32, BitrevPairs>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&bits) {
        return Arc::clone(hit);
    }
    let n = 1usize << bits;
    let mut pairs = Vec::new();
    for i in 0..n {
        let j = crate::bitrev::reverse_bits(i, bits);
        if i < j {
            pairs.push((i as u32, j as u32));
        }
    }
    let built = Arc::new(pairs);
    let mut guard = cache.lock().unwrap();
    Arc::clone(guard.entry(bits).or_insert(built))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_ff::{BabyBear, Goldilocks};

    #[test]
    fn tables_are_shared_per_field_and_size() {
        let a = shared_table::<Goldilocks>(6);
        let b = shared_table::<Goldilocks>(6);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_table::<Goldilocks>(7);
        assert!(!Arc::ptr_eq(&a, &c));
        // Different field, same log_n: distinct entries.
        let d = shared_table::<BabyBear>(6);
        assert_eq!(d.log_n(), 6);
    }

    #[test]
    fn shared_table_matches_fresh_table() {
        let shared = shared_table::<Goldilocks>(8);
        let fresh = TwiddleTable::<Goldilocks>::new(8);
        assert_eq!(shared.forward(), fresh.forward());
        assert_eq!(shared.inverse(), fresh.inverse());
        assert_eq!(shared.n_inv(), fresh.n_inv());
    }

    #[test]
    fn plans_are_shared() {
        let a = shared_plan::<Goldilocks>(5);
        let b = shared_plan::<Goldilocks>(5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn bitrev_pairs_are_shared_and_correct() {
        let p = bitrev_pairs(4);
        assert!(Arc::ptr_eq(&p, &bitrev_pairs(4)));
        // Applying the pairs must equal the naive permutation.
        let mut via_pairs: Vec<u32> = (0..16).collect();
        for &(i, j) in p.iter() {
            via_pairs.swap(i as usize, j as usize);
        }
        let mut naive: Vec<u32> = (0..16).collect();
        let n = naive.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = crate::bitrev::reverse_bits(i, bits);
            if i < j {
                naive.swap(i, j);
            }
        }
        assert_eq!(via_pairs, naive);
    }
}
