//! Polynomial multiplication via NTT.
//!
//! Cyclic convolution of zero-padded inputs gives the plain product; these
//! functions are the foundation of the ZKP crate's polynomial arithmetic
//! and the canonical "NTT is useful" demonstration.

use unintt_ff::{Field, TwoAdicField};

use crate::Ntt;

/// Multiplies two coefficient-form polynomials using NTT-based convolution.
///
/// The result has length `a.len() + b.len() - 1` (or 0 if either input is
/// empty). Runs in `O(n log n)` where `n` is the padded power-of-two size.
///
/// ```
/// use unintt_ff::{Goldilocks, PrimeField};
/// use unintt_ntt::poly_mul_ntt;
///
/// // (1 + x)(1 - x) = 1 - x²
/// let a = vec![Goldilocks::from_u64(1), Goldilocks::from_u64(1)];
/// let b = vec![Goldilocks::from_u64(1), -Goldilocks::from_u64(1)];
/// let p = poly_mul_ntt(&a, &b);
/// assert_eq!(p, vec![
///     Goldilocks::from_u64(1),
///     Goldilocks::from_u64(0),
///     -Goldilocks::from_u64(1),
/// ]);
/// ```
pub fn poly_mul_ntt<F: TwoAdicField>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    let log_n = n.trailing_zeros();
    let ntt = Ntt::<F>::new(log_n);

    let mut fa = a.to_vec();
    fa.resize(n, F::ZERO);
    let mut fb = b.to_vec();
    fb.resize(n, F::ZERO);

    ntt.forward(&mut fa);
    ntt.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ntt.inverse(&mut fa);
    fa.truncate(out_len);
    fa
}

/// Schoolbook polynomial multiplication (reference; `O(n²)`).
pub fn poly_mul_naive<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![F::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Cyclic convolution of two equal-length power-of-two sequences:
/// `out[k] = Σ_{i+j ≡ k (mod n)} a[i]·b[j]`.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn cyclic_convolution<F: TwoAdicField>(a: &[F], b: &[F]) -> Vec<F> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    assert!(a.len().is_power_of_two(), "length must be a power of two");
    let log_n = a.len().trailing_zeros();
    let ntt = Ntt::<F>::new(log_n);
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt.forward(&mut fa);
    ntt.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ntt.inverse(&mut fa);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Bn254Fr, Goldilocks};

    fn random_vec<F: Field>(n: usize, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| F::random(&mut rng)).collect()
    }

    #[test]
    fn mul_matches_naive_various_lengths() {
        for (la, lb) in [(1, 1), (2, 3), (7, 9), (16, 16), (33, 5), (100, 100)] {
            let a = random_vec::<Goldilocks>(la, la as u64);
            let b = random_vec::<Goldilocks>(lb, 1000 + lb as u64);
            assert_eq!(
                poly_mul_ntt(&a, &b),
                poly_mul_naive(&a, &b),
                "lengths {la}x{lb}"
            );
        }
    }

    #[test]
    fn mul_matches_naive_bn254() {
        let a = random_vec::<Bn254Fr>(20, 1);
        let b = random_vec::<Bn254Fr>(31, 2);
        assert_eq!(poly_mul_ntt(&a, &b), poly_mul_naive(&a, &b));
    }

    #[test]
    fn empty_inputs() {
        let a = random_vec::<Goldilocks>(5, 1);
        assert!(poly_mul_ntt::<Goldilocks>(&[], &a).is_empty());
        assert!(poly_mul_ntt::<Goldilocks>(&a, &[]).is_empty());
        assert!(poly_mul_naive::<Goldilocks>(&[], &[]).is_empty());
    }

    #[test]
    fn cyclic_convolution_wraps() {
        // a = x^(n-1), b = x  => cyclic product = x^n mod (x^n - 1) = 1.
        let n = 8;
        let mut a = vec![Goldilocks::ZERO; n];
        a[n - 1] = Goldilocks::ONE;
        let mut b = vec![Goldilocks::ZERO; n];
        b[1] = Goldilocks::ONE;
        let c = cyclic_convolution(&a, &b);
        assert_eq!(c[0], Goldilocks::ONE);
        assert!(c[1..].iter().all(|x| x.is_zero()));
    }

    #[test]
    fn cyclic_matches_reduced_plain_product() {
        let n = 16;
        let a = random_vec::<Goldilocks>(n, 3);
        let b = random_vec::<Goldilocks>(n, 4);
        let plain = poly_mul_naive(&a, &b);
        let mut reduced = vec![Goldilocks::ZERO; n];
        for (i, &c) in plain.iter().enumerate() {
            reduced[i % n] += c;
        }
        assert_eq!(cyclic_convolution(&a, &b), reduced);
    }
}
