//! Iterative radix-2 NTT kernels and the [`Ntt`] context.
//!
//! The context owns (shared) twiddle tables and exposes:
//!
//! * [`Ntt::forward`] / [`Ntt::inverse`] — natural-order in/out transforms;
//! * [`Ntt::dit_in_place`] / [`Ntt::dif_in_place`] — the raw
//!   decimation-in-time (bit-reversed input) and decimation-in-frequency
//!   (bit-reversed output) kernels, which the hierarchical engines compose;
//! * [`naive_dft`] — the O(n²) reference every fast path is tested against.

use std::sync::Arc;

use unintt_ff::{Field, TwoAdicField};

use crate::fast::{self, kernel_mode, KernelMode};
use crate::{bit_reverse_permute, cache, vector, TwiddleTable};

/// Direction of a transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Evaluate: coefficients → values on the subgroup.
    Forward,
    /// Interpolate: values → coefficients (includes the `1/n` scale).
    Inverse,
}

/// A reusable NTT context for a fixed power-of-two domain.
///
/// ```
/// use unintt_ff::{Field, Goldilocks, PrimeField};
/// use unintt_ntt::Ntt;
///
/// let ntt = Ntt::<Goldilocks>::new(3);
/// let original: Vec<Goldilocks> = (1..=8).map(Goldilocks::from_u64).collect();
/// let mut data = original.clone();
/// ntt.forward(&mut data);
/// ntt.inverse(&mut data);
/// assert_eq!(data, original);
/// ```
#[derive(Clone, Debug)]
pub struct Ntt<F: TwoAdicField> {
    table: Arc<TwiddleTable<F>>,
}

impl<F: TwoAdicField> Ntt<F> {
    /// Creates a context for size `2^log_n`. Twiddle tables are shared
    /// process-wide per `(field, log_n)` — see [`crate::shared_table`] —
    /// so repeated construction is cheap after the first.
    ///
    /// # Panics
    ///
    /// Panics if `log_n` exceeds the field's two-adicity.
    pub fn new(log_n: u32) -> Self {
        Self {
            table: cache::shared_table(log_n),
        }
    }

    /// Creates a context sharing an existing twiddle table.
    pub fn from_table(table: Arc<TwiddleTable<F>>) -> Self {
        Self { table }
    }

    /// The shared twiddle table.
    pub fn table(&self) -> &Arc<TwiddleTable<F>> {
        &self.table
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Domain size exponent.
    pub fn log_n(&self) -> u32 {
        self.table.log_n()
    }

    fn check_len(&self, len: usize) {
        assert_eq!(
            len,
            self.n(),
            "input length {len} does not match NTT domain size {}",
            self.n()
        );
    }

    /// Forward NTT, natural order in and out.
    ///
    /// Dispatches on the process-wide [`crate::kernel_mode`]: the default
    /// vectorized path (lane-packed fused butterflies, see
    /// [`crate::vector`]), the scalar fast path (Shoup/lazy butterflies,
    /// six-step blocking at large sizes) and the legacy bit-reverse + DIT
    /// path produce bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn forward(&self, values: &mut [F]) {
        self.check_len(values.len());
        match kernel_mode() {
            KernelMode::Vector => {
                unintt_telemetry::counter_add("ntt_dispatch_vector", 1);
                vector::forward_vector(&self.table, values);
            }
            KernelMode::Fast => {
                unintt_telemetry::counter_add("ntt_dispatch_fast", 1);
                fast::forward_fast(&self.table, values);
            }
            KernelMode::Legacy => {
                unintt_telemetry::counter_add("ntt_dispatch_legacy", 1);
                bit_reverse_permute(values);
                self.dit_in_place(values);
            }
        }
    }

    /// Inverse NTT, natural order in and out (includes the `1/n` scale).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn inverse(&self, values: &mut [F]) {
        self.check_len(values.len());
        match kernel_mode() {
            KernelMode::Vector => {
                unintt_telemetry::counter_add("ntt_dispatch_vector", 1);
                vector::inverse_vector(&self.table, values);
            }
            KernelMode::Fast => {
                unintt_telemetry::counter_add("ntt_dispatch_fast", 1);
                fast::inverse_fast(&self.table, values);
            }
            KernelMode::Legacy => {
                unintt_telemetry::counter_add("ntt_dispatch_legacy", 1);
                bit_reverse_permute(values);
                self.dit_in_place_with(values, self.table.inverse());
                let n_inv = self.table.n_inv();
                for v in values.iter_mut() {
                    *v *= n_inv;
                }
            }
        }
    }

    /// Decimation-in-time kernel: expects **bit-reversed** input, produces
    /// natural-order output. No scaling.
    pub fn dit_in_place(&self, values: &mut [F]) {
        self.dit_in_place_with(values, self.table.forward());
    }

    /// DIT kernel with an explicit twiddle slice (forward or inverse).
    fn dit_in_place_with(&self, values: &mut [F], twiddles: &[F]) {
        self.check_len(values.len());
        let log_n = self.log_n();
        let n = values.len();
        for s in 1..=log_n {
            let m = 1usize << s;
            let half = m / 2;
            let stride = log_n - s;
            for k in (0..n).step_by(m) {
                for j in 0..half {
                    let w = twiddles[j << stride];
                    let t = values[k + j + half] * w;
                    let u = values[k + j];
                    values[k + j] = u + t;
                    values[k + j + half] = u - t;
                }
            }
        }
    }

    /// Decimation-in-frequency kernel: natural-order input, **bit-reversed**
    /// output. No scaling.
    pub fn dif_in_place(&self, values: &mut [F]) {
        self.dif_in_place_with(values, self.table.forward());
    }

    /// Inverse-direction DIF kernel (bit-reversed output, inverse twiddles,
    /// no scaling). Composes with [`Ntt::dit_in_place`] for round-trips that
    /// avoid explicit permutation.
    pub fn inverse_dif_in_place(&self, values: &mut [F]) {
        self.dif_in_place_with(values, self.table.inverse());
    }

    /// Inverse-direction DIT kernel (bit-reversed input, inverse twiddles,
    /// no scaling).
    pub fn inverse_dit_in_place(&self, values: &mut [F]) {
        self.dit_in_place_with(values, self.table.inverse());
    }

    fn dif_in_place_with(&self, values: &mut [F], twiddles: &[F]) {
        self.check_len(values.len());
        let log_n = self.log_n();
        let n = values.len();
        for s in (1..=log_n).rev() {
            let m = 1usize << s;
            let half = m / 2;
            let stride = log_n - s;
            for k in (0..n).step_by(m) {
                for j in 0..half {
                    let w = twiddles[j << stride];
                    let u = values[k + j];
                    let v = values[k + j + half];
                    values[k + j] = u + v;
                    values[k + j + half] = (u - v) * w;
                }
            }
        }
    }

    /// Applies the final `1/n` scale of an inverse transform.
    pub fn scale_by_n_inv(&self, values: &mut [F]) {
        let n_inv = self.table.n_inv();
        for v in values.iter_mut() {
            *v *= n_inv;
        }
    }
}

/// O(n²) reference DFT: `out[k] = Σ_i input[i]·omega^{ik}`.
///
/// Accepts any root `omega` whose order equals `input.len()`; used as the
/// ground truth in tests throughout the workspace.
pub fn naive_dft<F: Field>(input: &[F], omega: F) -> Vec<F> {
    let n = input.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = F::ZERO;
        let wk = omega.pow(k as u64);
        let mut w = F::ONE;
        for &x in input {
            acc += x * w;
            w *= wk;
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{BabyBear, Bn254Fr, Goldilocks, PrimeField};

    fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
    }

    fn forward_matches_naive_generic<F: TwoAdicField>() {
        for log_n in 0..=8u32 {
            let ntt = Ntt::<F>::new(log_n);
            let input = random_vec::<F>(log_n, 100 + log_n as u64);
            let expected = naive_dft(&input, ntt.table().omega());
            let mut actual = input.clone();
            ntt.forward(&mut actual);
            assert_eq!(actual, expected, "log_n={log_n}");
        }
    }

    #[test]
    fn forward_matches_naive_goldilocks() {
        forward_matches_naive_generic::<Goldilocks>();
    }

    #[test]
    fn forward_matches_naive_babybear() {
        forward_matches_naive_generic::<BabyBear>();
    }

    #[test]
    fn forward_matches_naive_bn254fr() {
        forward_matches_naive_generic::<Bn254Fr>();
    }

    #[test]
    fn roundtrip_large() {
        let ntt = Ntt::<Goldilocks>::new(12);
        let original = random_vec::<Goldilocks>(12, 7);
        let mut data = original.clone();
        ntt.forward(&mut data);
        assert_ne!(data, original);
        ntt.inverse(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn dif_then_dit_is_identity_up_to_scale() {
        // DIF produces bit-reversed output which DIT consumes directly.
        let ntt = Ntt::<Goldilocks>::new(8);
        let original = random_vec::<Goldilocks>(8, 9);
        let mut data = original.clone();
        ntt.dif_in_place(&mut data);
        ntt.inverse_dit_in_place(&mut data);
        ntt.scale_by_n_inv(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn dif_equals_forward_in_bitrev_order() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let input = random_vec::<Goldilocks>(6, 11);

        let mut by_forward = input.clone();
        ntt.forward(&mut by_forward);

        let mut by_dif = input.clone();
        ntt.dif_in_place(&mut by_dif);
        bit_reverse_permute(&mut by_dif);

        assert_eq!(by_forward, by_dif);
    }

    #[test]
    fn ntt_of_delta_is_constant_one() {
        // NTT of e_0 = all-ones; NTT of constant c = (c·n, 0, 0, …) under
        // inverse.
        let ntt = Ntt::<Goldilocks>::new(5);
        let mut delta = vec![Goldilocks::ZERO; 32];
        delta[0] = Goldilocks::ONE;
        ntt.forward(&mut delta);
        assert!(delta.iter().all(|&x| x == Goldilocks::ONE));
    }

    #[test]
    fn ntt_is_linear() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let a = random_vec::<Goldilocks>(6, 1);
        let b = random_vec::<Goldilocks>(6, 2);
        let c = Goldilocks::from_u64(12345);

        let mut lhs: Vec<Goldilocks> = a.iter().zip(&b).map(|(&x, &y)| x * c + y).collect();
        ntt.forward(&mut lhs);

        let (mut fa, mut fb) = (a.clone(), b.clone());
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        let rhs: Vec<Goldilocks> = fa.iter().zip(&fb).map(|(&x, &y)| x * c + y).collect();

        assert_eq!(lhs, rhs);
    }

    #[test]
    fn size_one_and_two() {
        let ntt1 = Ntt::<Goldilocks>::new(0);
        let mut v = vec![Goldilocks::from_u64(9)];
        ntt1.forward(&mut v);
        assert_eq!(v[0].to_canonical_u64(), 9);

        let ntt2 = Ntt::<Goldilocks>::new(1);
        let mut v = vec![Goldilocks::from_u64(3), Goldilocks::from_u64(5)];
        ntt2.forward(&mut v);
        assert_eq!(v[0].to_canonical_u64(), 8);
        // omega for n=2 is -1: X[1] = 3 - 5 = -2
        assert_eq!(v[1], -Goldilocks::from_u64(2));
    }

    #[test]
    #[should_panic(expected = "does not match NTT domain size")]
    fn wrong_length_panics() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let mut v = vec![Goldilocks::ZERO; 8];
        ntt.forward(&mut v);
    }

    #[test]
    fn parseval_like_dot_product_preserved() {
        // <F(a), F(b̄)> = n·<a, b̄-reversed> style identity is awkward in
        // finite fields; instead check Σ X[k] = n·x[0] (k-sum picks the DC
        // term of the inverse).
        let ntt = Ntt::<Goldilocks>::new(7);
        let input = random_vec::<Goldilocks>(7, 3);
        let mut data = input.clone();
        ntt.forward(&mut data);
        let sum: Goldilocks = data.iter().copied().sum();
        assert_eq!(sum, input[0] * Goldilocks::from_u64(128));
    }
}
