//! Negacyclic (nega-wrapped) NTTs for arithmetic modulo `xⁿ + 1`.
//!
//! Lattice cryptography and some polynomial-commitment tricks multiply in
//! `F[x]/(xⁿ + 1)` rather than `F[x]/(xⁿ − 1)`. The negacyclic transform
//! handles this without zero-padding: pre-scale coefficient `i` by `ψⁱ`
//! where `ψ` is a primitive `2n`-th root of unity (`ψ² = ω`), run a plain
//! size-`n` NTT, and undo the scaling after the inverse transform.

use unintt_ff::{Field, TwoAdicField};

use crate::Ntt;

/// Negacyclic NTT context for size `2^log_n` (requires two-adicity
/// `>= log_n + 1` for the `2n`-th root).
#[derive(Clone, Debug)]
pub struct NegacyclicNtt<F: TwoAdicField> {
    ntt: Ntt<F>,
    /// ψⁱ for i in 0..n.
    psi_powers: Vec<F>,
    /// ψ⁻ⁱ for i in 0..n.
    psi_inv_powers: Vec<F>,
}

impl<F: TwoAdicField> NegacyclicNtt<F> {
    /// Creates a context for polynomials of length `2^log_n`.
    ///
    /// # Panics
    ///
    /// Panics if `log_n + 1` exceeds the field's two-adicity.
    pub fn new(log_n: u32) -> Self {
        let n = 1usize << log_n;
        let psi = F::two_adic_generator(log_n + 1);
        let psi_inv = psi.inverse().expect("roots of unity are nonzero");

        let mut psi_powers = Vec::with_capacity(n);
        let mut psi_inv_powers = Vec::with_capacity(n);
        let (mut p, mut q) = (F::ONE, F::ONE);
        for _ in 0..n {
            psi_powers.push(p);
            psi_inv_powers.push(q);
            p *= psi;
            q *= psi_inv;
        }

        Self {
            ntt: Ntt::new(log_n),
            psi_powers,
            psi_inv_powers,
        }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.ntt.n()
    }

    /// Forward negacyclic transform (natural order in and out).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn forward(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        for (v, &p) in values.iter_mut().zip(&self.psi_powers) {
            *v *= p;
        }
        self.ntt.forward(values);
    }

    /// Inverse negacyclic transform (natural order in and out).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn inverse(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        self.ntt.inverse(values);
        for (v, &q) in values.iter_mut().zip(&self.psi_inv_powers) {
            *v *= q;
        }
    }

    /// Multiplies two polynomials in `F[x]/(xⁿ + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if either input length differs from `self.n()`.
    pub fn negacyclic_mul(&self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), self.n(), "lhs length mismatch");
        assert_eq!(b.len(), self.n(), "rhs length mismatch");
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x *= *y;
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication (reference): `xⁿ ≡ −1`.
pub fn negacyclic_mul_naive<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    let n = a.len();
    let mut out = vec![F::ZERO; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = ai * bj;
            if i + j < n {
                out[i + j] += prod;
            } else {
                out[i + j - n] -= prod;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn roundtrip() {
        let nc = NegacyclicNtt::<Goldilocks>::new(6);
        let original = random_vec(64, 1);
        let mut data = original.clone();
        nc.forward(&mut data);
        nc.inverse(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn mul_matches_naive() {
        for log_n in [1u32, 3, 5, 8] {
            let n = 1usize << log_n;
            let nc = NegacyclicNtt::<Goldilocks>::new(log_n);
            let a = random_vec(n, 2 + log_n as u64);
            let b = random_vec(n, 90 + log_n as u64);
            assert_eq!(
                nc.negacyclic_mul(&a, &b),
                negacyclic_mul_naive(&a, &b),
                "log_n={log_n}"
            );
        }
    }

    #[test]
    fn x_to_n_wraps_to_minus_one() {
        // (x^(n-1)) * x = x^n ≡ -1
        let log_n = 4u32;
        let n = 1usize << log_n;
        let nc = NegacyclicNtt::<Goldilocks>::new(log_n);
        let mut a = vec![Goldilocks::ZERO; n];
        a[n - 1] = Goldilocks::ONE;
        let mut b = vec![Goldilocks::ZERO; n];
        b[1] = Goldilocks::ONE;
        let prod = nc.negacyclic_mul(&a, &b);
        assert_eq!(prod[0], -Goldilocks::ONE);
        assert!(prod[1..].iter().all(|c| c.is_zero()));
    }

    #[test]
    fn mul_by_one_is_identity() {
        let nc = NegacyclicNtt::<Goldilocks>::new(3);
        let a = random_vec(8, 3);
        let mut one = vec![Goldilocks::ZERO; 8];
        one[0] = Goldilocks::ONE;
        assert_eq!(nc.negacyclic_mul(&a, &one), a);
    }
}
