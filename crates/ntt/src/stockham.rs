//! Stockham auto-sort NTT.
//!
//! The Stockham formulation ping-pongs between two buffers and performs
//! the reordering *inside* each butterfly stage's store pattern, so no
//! standalone bit-reversal pass ever runs — the same "fold the permutation
//! into the addressing" philosophy UniNTT applies across the multi-GPU
//! hierarchy, here at the single-kernel scale. GPU NTT libraries favor it
//! because every access is stride-coalesced.
//!
//! This implementation is the recursive radix-2 decimation-in-frequency
//! variant: natural-order input, natural-order output, one scratch buffer.

use unintt_ff::TwoAdicField;

use crate::{Ntt, TwiddleTable};

/// Recursive DIF Stockham step.
///
/// Transforms `sub_n` interleaved sequences of stride `s` (total `x.len()`
/// elements). `in_x` says whether the current data lives in `x` (true) or
/// `y`; the result of this step lands in the *other* buffer. `stride_exp`
/// tracks the twiddle stride into the full-size table.
fn step<F: TwoAdicField>(
    sub_n: usize,
    s: usize,
    in_x: bool,
    x: &mut [F],
    y: &mut [F],
    table: &TwiddleTable<F>,
    twiddles: &[F],
) {
    if sub_n == 1 {
        if !in_x {
            x.copy_from_slice(y);
        }
        return;
    }
    let m = sub_n / 2;
    // Twiddle for butterfly p of a sub-problem of length sub_n:
    // ω_{sub_n}^p = ω_N^{p·(N/sub_n)} = table[p * N/sub_n].
    let stride = table.n() / sub_n;
    {
        let (src, dst): (&[F], &mut [F]) = if in_x { (&*x, y) } else { (&*y, x) };
        for p in 0..m {
            let w = twiddles[p * stride];
            for q in 0..s {
                let a = src[q + s * p];
                let b = src[q + s * (p + m)];
                dst[q + s * 2 * p] = a + b;
                dst[q + s * (2 * p + 1)] = (a - b) * w;
            }
        }
    }
    step(m, 2 * s, !in_x, x, y, table, twiddles);
}

impl<F: TwoAdicField> Ntt<F> {
    /// Forward NTT by the Stockham auto-sort algorithm (natural order in
    /// and out, no bit-reversal pass; uses one scratch allocation).
    ///
    /// Produces bit-identical results to [`Ntt::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn forward_stockham(&self, values: &mut [F]) {
        assert_eq!(
            values.len(),
            self.n(),
            "input length {} does not match NTT domain size {}",
            values.len(),
            self.n()
        );
        let mut scratch = vec![F::ZERO; values.len()];
        let table = self.table();
        step(
            values.len(),
            1,
            true,
            values,
            &mut scratch,
            table,
            table.forward(),
        );
    }

    /// Inverse NTT by the Stockham algorithm (includes the `1/n` scale).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn inverse_stockham(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        let mut scratch = vec![F::ZERO; values.len()];
        let table = self.table();
        step(
            values.len(),
            1,
            true,
            values,
            &mut scratch,
            table,
            table.inverse(),
        );
        self.scale_by_n_inv(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Bn254Fr, Field, Goldilocks};

    fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
    }

    #[test]
    fn stockham_matches_radix2_goldilocks() {
        for log_n in 0..=11u32 {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec::<Goldilocks>(log_n, log_n as u64);
            let mut expected = input.clone();
            ntt.forward(&mut expected);
            let mut actual = input.clone();
            ntt.forward_stockham(&mut actual);
            assert_eq!(actual, expected, "log_n={log_n}");
        }
    }

    #[test]
    fn stockham_matches_radix2_bn254() {
        let log_n = 8u32;
        let ntt = Ntt::<Bn254Fr>::new(log_n);
        let input = random_vec::<Bn254Fr>(log_n, 5);
        let mut expected = input.clone();
        ntt.forward(&mut expected);
        let mut actual = input.clone();
        ntt.forward_stockham(&mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn stockham_roundtrip() {
        let ntt = Ntt::<Goldilocks>::new(10);
        let input = random_vec::<Goldilocks>(10, 7);
        let mut data = input.clone();
        ntt.forward_stockham(&mut data);
        ntt.inverse_stockham(&mut data);
        assert_eq!(data, input);
    }

    #[test]
    fn stockham_inverse_matches_standard_inverse() {
        let ntt = Ntt::<Goldilocks>::new(9);
        let input = random_vec::<Goldilocks>(9, 8);
        let mut a = input.clone();
        ntt.inverse(&mut a);
        let mut b = input.clone();
        ntt.inverse_stockham(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_length_panics() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let mut v = vec![Goldilocks::ZERO; 8];
        ntt.forward_stockham(&mut v);
    }
}
