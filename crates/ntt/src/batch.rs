//! Batched NTTs: many independent transforms over the same domain.
//!
//! ZKP provers transform dozens of polynomials per round (witness columns,
//! quotient chunks, openings); batching lets them share one twiddle table
//! and, in the parallel variant, saturate all cores with embarrassing
//! parallelism.

use unintt_exec::Executor;
use unintt_ff::TwoAdicField;

use crate::{Direction, Ntt};

/// Applies the transform to every contiguous row of `data`.
///
/// `data` is interpreted as `data.len() / ntt.n()` rows, each of length
/// `ntt.n()`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of the domain size.
pub fn batch_transform<F: TwoAdicField>(ntt: &Ntt<F>, data: &mut [F], direction: Direction) {
    let n = ntt.n();
    assert_eq!(
        data.len() % n,
        0,
        "data length {} is not a multiple of domain size {n}",
        data.len()
    );
    for row in data.chunks_mut(n) {
        match direction {
            Direction::Forward => ntt.forward(row),
            Direction::Inverse => ntt.inverse(row),
        }
    }
}

/// Multithreaded version of [`batch_transform`]: rows are split into
/// `threads` contiguous chunks, executed as tasks on the process-wide
/// persistent worker pool ([`unintt_exec::Executor::global`]).
///
/// `threads` controls the *chunking* (and therefore the work decomposition
/// is deterministic regardless of pool size); the pool decides which
/// worker runs which chunk.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of the domain size or if
/// `threads == 0`.
pub fn batch_transform_parallel<F: TwoAdicField>(
    ntt: &Ntt<F>,
    data: &mut [F],
    direction: Direction,
    threads: usize,
) {
    let n = ntt.n();
    assert!(threads > 0, "thread count must be positive");
    assert_eq!(
        data.len() % n,
        0,
        "data length {} is not a multiple of domain size {n}",
        data.len()
    );
    let rows = data.len() / n;
    if rows == 0 {
        return;
    }
    let rows_per_thread = rows.div_ceil(threads);

    Executor::global().scope(|scope| {
        for chunk in data.chunks_mut(rows_per_thread * n) {
            scope.spawn(move || {
                for row in chunk.chunks_mut(n) {
                    match direction {
                        Direction::Forward => ntt.forward(row),
                        Direction::Inverse => ntt.inverse(row),
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn batch_matches_individual() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let rows = 5;
        let mut data = random_vec(rows * 16, 1);
        let mut expected = data.clone();
        for row in expected.chunks_mut(16) {
            ntt.forward(row);
        }
        batch_transform(&ntt, &mut data, Direction::Forward);
        assert_eq!(data, expected);
    }

    #[test]
    fn batch_roundtrip() {
        let ntt = Ntt::<Goldilocks>::new(5);
        let original = random_vec(8 * 32, 2);
        let mut data = original.clone();
        batch_transform(&ntt, &mut data, Direction::Forward);
        batch_transform(&ntt, &mut data, Direction::Inverse);
        assert_eq!(data, original);
    }

    #[test]
    fn parallel_matches_serial() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let original = random_vec(13 * 64, 3);
        let mut serial = original.clone();
        batch_transform(&ntt, &mut serial, Direction::Forward);
        for threads in [1, 2, 4, 7, 32] {
            let mut par = original.clone();
            batch_transform_parallel(&ntt, &mut par, Direction::Forward, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let mut data: Vec<Goldilocks> = vec![];
        batch_transform(&ntt, &mut data, Direction::Forward);
        batch_transform_parallel(&ntt, &mut data, Direction::Forward, 4);
    }

    #[test]
    fn single_row_parallel_matches_serial() {
        let ntt = Ntt::<Goldilocks>::new(5);
        let original = random_vec(32, 5);
        let mut serial = original.clone();
        ntt.forward(&mut serial);
        for threads in [1, 2, 8] {
            let mut par = original.clone();
            batch_transform_parallel(&ntt, &mut par, Direction::Forward, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_rows() {
        // rows_per_thread clamps to 1; extra threads get no chunk.
        let ntt = Ntt::<Goldilocks>::new(4);
        let original = random_vec(3 * 16, 6);
        let mut serial = original.clone();
        batch_transform(&ntt, &mut serial, Direction::Inverse);
        let mut par = original.clone();
        batch_transform_parallel(&ntt, &mut par, Direction::Inverse, 64);
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_roundtrip_inverse() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let original = random_vec(9 * 64, 7);
        let mut data = original.clone();
        batch_transform_parallel(&ntt, &mut data, Direction::Forward, 3);
        batch_transform_parallel(&ntt, &mut data, Direction::Inverse, 5);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let mut data = random_vec(16, 8);
        batch_transform_parallel(&ntt, &mut data, Direction::Forward, 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_batch_panics() {
        let ntt = Ntt::<Goldilocks>::new(4);
        let mut data = random_vec(17, 4);
        batch_transform(&ntt, &mut data, Direction::Forward);
    }
}
