//! Four-step (Bailey) NTT decomposition on the CPU.
//!
//! Splitting `N = N1·N2` and viewing the input as a row-major `N1×N2`
//! matrix `x[i1·N2 + i2]`, the DFT factors as
//!
//! ```text
//! X[k2·N1 + k1] = Σ_{i2} ω^{i2·k2·N1} · ( ω^{i2·k1} · Σ_{i1} x[i1·N2 + i2] · ω^{i1·k1·N2} )
//! ```
//!
//! i.e. four steps: ① length-`N1` NTTs down each of the `N2` columns,
//! ② an element-wise *twiddle* multiplication by `ω^{i2·k1}`, ③ length-`N2`
//! NTTs along each of the `N1` rows, ④ a transpose to restore natural
//! order. This is exactly the algebra the multi-GPU engines reuse; the CPU
//! version here is their correctness oracle, and the explicit transpose is
//! the "overhead" that UniNTT's fused addressing removes.

use unintt_ff::TwoAdicField;

use crate::{Ntt, TwiddleTable};

/// Transposes a row-major `rows×cols` matrix into a new `cols×rows` one.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn transpose<T: Copy>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    let mut out = Vec::with_capacity(data.len());
    for c in 0..cols {
        for r in 0..rows {
            out.push(data[r * cols + c]);
        }
    }
    out
}

/// Four-step NTT context for `N = 2^(log_n1 + log_n2)`.
#[derive(Clone, Debug)]
pub struct FourStepNtt<F: TwoAdicField> {
    inner: Ntt<F>,         // length-N1 transforms
    outer: Ntt<F>,         // length-N2 transforms
    full: TwiddleTable<F>, // ω for the full size, for step-② twiddles
}

impl<F: TwoAdicField> FourStepNtt<F> {
    /// Creates a context splitting `N = 2^log_n1 · 2^log_n2`.
    ///
    /// # Panics
    ///
    /// Panics if `log_n1 + log_n2` exceeds the field two-adicity.
    pub fn new(log_n1: u32, log_n2: u32) -> Self {
        Self {
            inner: Ntt::new(log_n1),
            outer: Ntt::new(log_n2),
            full: TwiddleTable::new(log_n1 + log_n2),
        }
    }

    /// Total domain size.
    pub fn n(&self) -> usize {
        self.full.n()
    }

    /// `N1`, the column-transform length.
    pub fn n1(&self) -> usize {
        self.inner.n()
    }

    /// `N2`, the row-transform length.
    pub fn n2(&self) -> usize {
        self.outer.n()
    }

    /// Forward NTT, natural order in and out.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn forward(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        let n1 = self.n1();
        let n2 = self.n2();

        // Step 0 (layout): transpose to make columns contiguous. This turns
        // the four-step into the "six-step" variant, trading strided access
        // for two extra transposes — the classic CPU/GPU formulation.
        let mut t = transpose(values, n1, n2); // now n2 rows × n1 cols: t[i2][i1]

        // Step ①: length-N1 NTT of every (now contiguous) column i2.
        for row in t.chunks_mut(n1) {
            self.inner.forward(row);
        }

        // Step ②: twiddle by ω^{i2·k1}.
        for i2 in 0..n2 {
            for k1 in 0..n1 {
                t[i2 * n1 + k1] *= self.full.root_pow(i2 * k1);
            }
        }

        // Transpose back: u[k1][i2].
        let mut u = transpose(&t, n2, n1);

        // Step ③: length-N2 NTT along each row k1.
        for row in u.chunks_mut(n2) {
            self.outer.forward(row);
        }

        // Step ④: transpose so X[k2·N1 + k1] lands at index k2·N1 + k1.
        let out = transpose(&u, n1, n2);
        values.copy_from_slice(&out);
    }

    /// Inverse NTT, natural order in and out (includes the `1/N` scale).
    pub fn inverse(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        let n1 = self.n1();
        let n2 = self.n2();

        // Run the forward steps with inverse roots, then scale. The inverse
        // of the factored DFT retraces the same structure with ω^{-1}.
        let mut u = transpose(values, n2, n1); // undo step ④: u[k1][k2]
        for row in u.chunks_mut(n2) {
            self.outer.inverse(row); // includes 1/N2
        }
        let mut t = transpose(&u, n1, n2); // t[i2][k1]
        for i2 in 0..n2 {
            for k1 in 0..n1 {
                let tw = self
                    .full
                    .root_pow(i2 * k1)
                    .inverse()
                    .expect("roots are nonzero");
                t[i2 * n1 + k1] *= tw;
            }
        }
        for row in t.chunks_mut(n1) {
            self.inner.inverse(row); // includes 1/N1
        }
        let out = transpose(&t, n2, n1);
        values.copy_from_slice(&out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks, PrimeField};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn transpose_basic() {
        let m = vec![1, 2, 3, 4, 5, 6]; // 2x3
        assert_eq!(transpose(&m, 2, 3), vec![1, 4, 2, 5, 3, 6]);
        let back = transpose(&transpose(&m, 2, 3), 3, 2);
        assert_eq!(back, m);
    }

    #[test]
    fn four_step_matches_radix2_all_splits() {
        let log_n = 8u32;
        let reference = Ntt::<Goldilocks>::new(log_n);
        let input = random_vec(1 << log_n, 5);
        let mut expected = input.clone();
        reference.forward(&mut expected);

        for log_n1 in 0..=log_n {
            let fs = FourStepNtt::<Goldilocks>::new(log_n1, log_n - log_n1);
            let mut actual = input.clone();
            fs.forward(&mut actual);
            assert_eq!(actual, expected, "split {log_n1}+{}", log_n - log_n1);
        }
    }

    #[test]
    fn four_step_roundtrip() {
        let fs = FourStepNtt::<Goldilocks>::new(5, 7);
        let input = random_vec(1 << 12, 6);
        let mut data = input.clone();
        fs.forward(&mut data);
        fs.inverse(&mut data);
        assert_eq!(data, input);
    }

    #[test]
    fn four_step_degenerate_splits() {
        // N1 = 1 or N2 = 1 degenerate to the plain transform.
        let input = random_vec(16, 8);
        let reference = Ntt::<Goldilocks>::new(4);
        let mut expected = input.clone();
        reference.forward(&mut expected);

        for (l1, l2) in [(0u32, 4u32), (4, 0)] {
            let fs = FourStepNtt::<Goldilocks>::new(l1, l2);
            let mut actual = input.clone();
            fs.forward(&mut actual);
            assert_eq!(actual, expected, "split {l1}+{l2}");
        }
    }

    #[test]
    fn four_step_size_two_by_two() {
        let fs = FourStepNtt::<Goldilocks>::new(1, 1);
        let mut v: Vec<Goldilocks> = (1..=4).map(Goldilocks::from_u64).collect();
        let reference = Ntt::<Goldilocks>::new(2);
        let mut expected = v.clone();
        reference.forward(&mut expected);
        fs.forward(&mut v);
        assert_eq!(v, expected);
    }
}
