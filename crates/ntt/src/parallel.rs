//! Multithreaded single-transform NTT.
//!
//! A single large NTT parallelizes stage by stage: early DIT stages consist
//! of many independent small blocks (parallelize across blocks); late
//! stages have few big blocks (parallelize across butterflies *within* a
//! block by splitting the block into its two halves and chunking both in
//! lockstep). This mirrors how a GPU grid covers the butterfly index space
//! and is the CPU wall-clock baseline for experiment E10.

use unintt_exec::Executor;
use unintt_ff::TwoAdicField;

use crate::{bit_reverse_permute, Ntt};

/// A multithreaded NTT over a fixed domain.
#[derive(Clone, Debug)]
pub struct ParallelNtt<F: TwoAdicField> {
    ntt: Ntt<F>,
    threads: usize,
}

impl<F: TwoAdicField> ParallelNtt<F> {
    /// Creates a parallel context with `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `log_n` exceeds the field two-adicity.
    pub fn new(log_n: u32, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Self {
            ntt: Ntt::new(log_n),
            threads,
        }
    }

    /// The underlying serial context.
    pub fn inner(&self) -> &Ntt<F> {
        &self.ntt
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.ntt.n()
    }

    /// Forward NTT, natural order in and out.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn forward(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        bit_reverse_permute(values);
        self.dit_stages(values, false);
    }

    /// Inverse NTT, natural order in and out (includes the `1/n` scale).
    pub fn inverse(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.n(), "input length mismatch");
        bit_reverse_permute(values);
        self.dit_stages(values, true);
        let n_inv = self.ntt.table().n_inv();
        let chunk = values.len().div_ceil(self.threads).max(1);
        Executor::global().scope(|scope| {
            for part in values.chunks_mut(chunk) {
                scope.spawn(move || {
                    for v in part {
                        *v *= n_inv;
                    }
                });
            }
        });
    }

    fn dit_stages(&self, values: &mut [F], inverse: bool) {
        let log_n = self.ntt.log_n();
        let n = values.len();
        let table = self.ntt.table();
        let twiddles: &[F] = if inverse {
            table.inverse()
        } else {
            table.forward()
        };

        for s in 1..=log_n {
            let m = 1usize << s;
            let half = m / 2;
            let stride = log_n - s;
            let blocks = n / m;

            if blocks >= self.threads {
                // Parallelize across whole blocks.
                let blocks_per_chunk = blocks.div_ceil(self.threads);
                Executor::global().scope(|scope| {
                    for chunk in values.chunks_mut(blocks_per_chunk * m) {
                        scope.spawn(move || {
                            for block in chunk.chunks_mut(m) {
                                let (lo, hi) = block.split_at_mut(half);
                                for j in 0..half {
                                    let w = twiddles[j << stride];
                                    let t = hi[j] * w;
                                    let u = lo[j];
                                    lo[j] = u + t;
                                    hi[j] = u - t;
                                }
                            }
                        });
                    }
                });
            } else {
                // Few big blocks: parallelize across butterflies within each.
                let chunk_len = half.div_ceil(self.threads).max(1);
                for block in values.chunks_mut(m) {
                    let (lo, hi) = block.split_at_mut(half);
                    Executor::global().scope(|scope| {
                        for (ci, (lc, hc)) in lo
                            .chunks_mut(chunk_len)
                            .zip(hi.chunks_mut(chunk_len))
                            .enumerate()
                        {
                            scope.spawn(move || {
                                let base = ci * chunk_len;
                                for (j, (u_ref, v_ref)) in
                                    lc.iter_mut().zip(hc.iter_mut()).enumerate()
                                {
                                    let w = twiddles[(base + j) << stride];
                                    let t = *v_ref * w;
                                    let u = *u_ref;
                                    *u_ref = u + t;
                                    *v_ref = u - t;
                                }
                            });
                        }
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn parallel_matches_serial_across_thread_counts() {
        let log_n = 10u32;
        let serial = Ntt::<Goldilocks>::new(log_n);
        let input = random_vec(1 << log_n, 1);
        let mut expected = input.clone();
        serial.forward(&mut expected);

        for threads in [1usize, 2, 3, 4, 8, 16] {
            let par = ParallelNtt::<Goldilocks>::new(log_n, threads);
            let mut actual = input.clone();
            par.forward(&mut actual);
            assert_eq!(actual, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_roundtrip() {
        let par = ParallelNtt::<Goldilocks>::new(9, 4);
        let original = random_vec(512, 2);
        let mut data = original.clone();
        par.forward(&mut data);
        par.inverse(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn tiny_sizes_with_many_threads() {
        for log_n in 0..4u32 {
            let par = ParallelNtt::<Goldilocks>::new(log_n, 16);
            let serial = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec(1 << log_n, 3);
            let mut expected = input.clone();
            serial.forward(&mut expected);
            let mut actual = input.clone();
            par.forward(&mut actual);
            assert_eq!(actual, expected, "log_n={log_n}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        let _ = ParallelNtt::<Goldilocks>::new(4, 0);
    }
}
