//! The fast host-side NTT path: Shoup/lazy butterflies, per-stage packed
//! twiddle tables, and a cache-blocked six-step decomposition.
//!
//! [`crate::Ntt::forward`]/[`crate::Ntt::inverse`] dispatch here by
//! default ([`KernelMode::Fast`]); the pre-existing radix-2 DIT kernels
//! remain available as [`KernelMode::Legacy`] for A/B comparison (the
//! harness exposes `--legacy-kernels`). **Both paths produce bit-identical
//! outputs**: every kernel computes the exact DFT over the field and
//! canonicalizes its lanes before returning, and canonical representations
//! are unique.
//!
//! Structure of the fast path:
//!
//! * `log_n ≤ DIRECT_MAX_LOG_N` — a decimation-in-frequency pass using
//!   [`unintt_ff::ShoupField::dif_butterfly`] on lazy lanes with
//!   *per-stage packed* twiddle tables (sequential reads, no `j << stride`
//!   gather), followed by a table-driven bit-reversal. Working set fits in
//!   cache, so the permutation is cheap here.
//! * larger sizes — the Bailey six-step factorization `N = N1·N2` with
//!   tile-blocked transposes: all row transforms run over contiguous,
//!   cache-resident rows via the direct path above, and the step-②
//!   twiddle multiplication is fused right after the inner transforms
//!   while each row is still hot. The bit-reversal of an 8 MiB array —
//!   pure random access in the legacy path — never happens.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use unintt_ff::{ShoupTwiddle, TwoAdicField};

use crate::twiddle::TwiddleTable;
use crate::{bit_reverse_permute, cache};

/// Which kernel family [`crate::Ntt`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Shoup/lazy butterflies + six-step blocking (default).
    Fast,
    /// The original radix-2 bit-reverse + DIT path.
    Legacy,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel family process-wide. Outputs are bit-identical in
/// both modes; this is a performance A/B switch, not a semantic one.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The currently selected kernel family.
pub fn kernel_mode() -> KernelMode {
    if KERNEL_MODE.load(Ordering::Relaxed) == 0 {
        KernelMode::Fast
    } else {
        KernelMode::Legacy
    }
}

/// Largest `log_n` the direct (single-pass) kernel handles; larger sizes
/// decompose six-step so the working set of every inner loop stays cache
/// sized. At `2^16` data + packed stage tables is ~1.5 MiB — L2-resident,
/// where the direct kernel still beats three transpose passes. Also bounds
/// the memory of cached per-stage plans.
pub(crate) const DIRECT_MAX_LOG_N: u32 = 16;

/// A direct-kernel plan: per-stage packed Shoup twiddles for both
/// directions plus the prepared inverse-scale constant. Cached
/// process-wide by `(field, log_n)` — see [`crate::cache`].
pub(crate) struct DirectPlan<F: TwoAdicField> {
    log_n: u32,
    /// `fwd_stages[s-1][j]` is the stage-`s` DIF twiddle `ω^{j·2^(log_n−s)}`,
    /// prepared; packed contiguously so stage loops read sequentially.
    fwd_stages: Vec<Vec<ShoupTwiddle<F>>>,
    inv_stages: Vec<Vec<ShoupTwiddle<F>>>,
    n_inv: ShoupTwiddle<F>,
}

fn pack_stages<F: TwoAdicField>(lane: &[ShoupTwiddle<F>], log_n: u32) -> Vec<Vec<ShoupTwiddle<F>>> {
    (1..=log_n)
        .map(|s| {
            let half = 1usize << (s - 1);
            let stride = log_n - s;
            (0..half).map(|j| lane[j << stride]).collect()
        })
        .collect()
}

impl<F: TwoAdicField> DirectPlan<F> {
    pub(crate) fn new(table: &TwiddleTable<F>) -> Self {
        let log_n = table.log_n();
        Self {
            log_n,
            fwd_stages: pack_stages(table.forward_shoup(), log_n),
            inv_stages: pack_stages(table.inverse_shoup(), log_n),
            n_inv: F::shoup_prepare(table.n_inv()),
        }
    }

    /// DIF stages on lazy lanes. When `canonicalize` is set the final
    /// stage folds [`ShoupField::reduce_lane`] into its stores; otherwise
    /// lanes stay lazy for a caller-fused final pass. All inner loops are
    /// zipped iterators so no bounds check survives into the hot path.
    /// (A fused radix-4 variant was measured and lost: holding four u128
    /// butterfly temporaries spills on this target.)
    fn dif_lazy(&self, values: &mut [F], stages: &[Vec<ShoupTwiddle<F>>], canonicalize: bool) {
        let log_n = self.log_n;
        if log_n == 0 {
            return;
        }
        for s in (2..=log_n).rev() {
            let m = 1usize << s;
            let half = m / 2;
            let tw = &stages[(s - 1) as usize][..half];
            for block in values.chunks_exact_mut(m) {
                let (lo, hi) = block.split_at_mut(half);
                for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let (a, b) = F::dif_butterfly(*u, *v, t);
                    *u = a;
                    *v = b;
                }
            }
        }
        // Final stage (s = 1): single unit twiddle per block pair.
        let t1 = &stages[0][0];
        if canonicalize {
            for block in values.chunks_exact_mut(2) {
                let (a, b) = F::dif_butterfly(block[0], block[1], t1);
                block[0] = F::reduce_lane(a);
                block[1] = F::reduce_lane(b);
            }
        } else {
            for block in values.chunks_exact_mut(2) {
                let (a, b) = F::dif_butterfly(block[0], block[1], t1);
                block[0] = a;
                block[1] = b;
            }
        }
    }

    /// Forward transform, natural order in and out, canonical output.
    pub(crate) fn forward(&self, values: &mut [F]) {
        self.dif_lazy(values, &self.fwd_stages, true);
        bit_reverse_permute(values);
    }

    /// Inverse transform including the `1/n` scale; the scale pass doubles
    /// as the lane canonicalization.
    pub(crate) fn inverse(&self, values: &mut [F]) {
        self.dif_lazy(values, &self.inv_stages, false);
        bit_reverse_permute(values);
        for v in values.iter_mut() {
            *v = F::reduce_lane(F::shoup_mul(*v, &self.n_inv));
        }
    }
}

/// Transpose tile edge: 32×32 Goldilocks elements = 8 KiB, comfortably two
/// L1-resident tiles (source and destination).
const TILE: usize = 32;

/// Blocked out-of-place transpose: `dst[c·rows + r] = src[r·cols + c]`
/// (same semantics as [`crate::transpose`], without the allocation).
fn transpose_blocked<F: Copy>(src: &[F], dst: &mut [F], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for rb in (0..rows).step_by(TILE) {
        let r_end = (rb + TILE).min(rows);
        for cb in (0..cols).step_by(TILE) {
            let c_end = (cb + TILE).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// In-place blocked transpose of an `n × n` matrix: swaps each
/// above-diagonal tile with its mirror and transposes diagonal tiles where
/// they sit. Same tiling as [`transpose_blocked`] but no second buffer and
/// half the memory passes of a transpose-then-copy sequence.
fn transpose_in_place_square<F: Copy>(a: &mut [F], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    for rb in (0..n).step_by(TILE) {
        let r_end = (rb + TILE).min(n);
        for r in rb..r_end {
            for c in (r + 1)..r_end {
                a.swap(r * n + c, c * n + r);
            }
        }
        for cb in ((rb + TILE)..n).step_by(TILE) {
            let c_end = (cb + TILE).min(n);
            for r in rb..r_end {
                for c in cb..c_end {
                    a.swap(r * n + c, c * n + r);
                }
            }
        }
    }
}

/// Multiplies `row[k]` by `ω^{±i2·k}` (step ② of six-step). Uses a pair of
/// interleaved running products restarted every `CHUNK` elements: no
/// strided table gathers, no per-element `pow`, and the two chains hide
/// multiplication latency. The chain update multiplies by the *fixed*
/// `step²`, so it runs as a Shoup product off one prepared constant.
fn twiddle_row<F: TwoAdicField>(row: &mut [F], table: &TwiddleTable<F>, i2: usize, inverse: bool) {
    if i2 == 0 {
        return;
    }
    const CHUNK: usize = 256;
    let root = |e: usize| {
        if inverse {
            table.root_pow_inv(e)
        } else {
            table.root_pow(e)
        }
    };
    let step = root(i2);
    let step2 = F::shoup_prepare(step * step);
    for (ci, chunk) in row.chunks_mut(CHUNK).enumerate() {
        let mut cur0 = root(i2 * ci * CHUNK);
        let mut cur1 = cur0 * step;
        for pair in chunk.chunks_exact_mut(2) {
            pair[0] *= cur0;
            pair[1] *= cur1;
            cur0 = F::reduce_lane(F::shoup_mul(cur0, &step2));
            cur1 = F::reduce_lane(F::shoup_mul(cur1, &step2));
        }
    }
}

/// Fast forward NTT for any supported size (natural order in/out).
pub(crate) fn forward_fast<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= DIRECT_MAX_LOG_N {
        cache::shared_plan::<F>(log_n).forward(values);
    } else {
        six_step(table, values, false);
    }
}

/// Fast inverse NTT (includes the `1/n` scale).
pub(crate) fn inverse_fast<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= DIRECT_MAX_LOG_N {
        cache::shared_plan::<F>(log_n).inverse(values);
    } else {
        six_step(table, values, true);
    }
}

/// Row-transform dispatch for six-step sub-problems (recurses back through
/// the size check, so `log_n > 2·DIRECT_MAX_LOG_N` still works).
fn rows_fast<F: TwoAdicField>(data: &mut [F], row_log: u32, inverse: bool) {
    let row_len = 1usize << row_log;
    if row_log <= DIRECT_MAX_LOG_N {
        let plan = cache::shared_plan::<F>(row_log);
        for row in data.chunks_exact_mut(row_len) {
            if inverse {
                plan.inverse(row);
            } else {
                plan.forward(row);
            }
        }
    } else {
        let table = cache::shared_table::<F>(row_log);
        for row in data.chunks_exact_mut(row_len) {
            if inverse {
                inverse_fast(&table, row);
            } else {
                forward_fast(&table, row);
            }
        }
    }
}

/// Cache-blocked six-step NTT for `N = N1·N2` (`N1 = 2^⌊log_n/2⌋`).
///
/// Forward: transpose → N2 inner NTTs (length N1) fused with step-②
/// twiddles → transpose → N1 outer NTTs (length N2) → transpose. The
/// inverse retraces the same structure with inverse roots; the `1/N1` and
/// `1/N2` scales inside the row inverses compose to the full `1/N`.
fn six_step<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F], inverse: bool) {
    let log_n = table.log_n();
    let l1 = log_n / 2;
    let l2 = log_n - l1;
    let n1 = 1usize << l1;
    let n2 = 1usize << l2;

    // Even log_n: the matrix is square, so every transpose runs in place —
    // no scratch buffer, and the transpose-then-copy tail collapses into a
    // single pass.
    if n1 == n2 {
        if !inverse {
            transpose_in_place_square(values, n1);
            for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
                rows_fast::<F>(row, l1, false);
                twiddle_row(row, table, i2, false);
            }
            transpose_in_place_square(values, n1);
            rows_fast::<F>(values, l2, false);
            transpose_in_place_square(values, n1);
        } else {
            transpose_in_place_square(values, n1);
            rows_fast::<F>(values, l2, true);
            transpose_in_place_square(values, n1);
            for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
                twiddle_row(row, table, i2, true);
                rows_fast::<F>(row, l1, true);
            }
            transpose_in_place_square(values, n1);
        }
        return;
    }

    let mut scratch = vec![F::ZERO; values.len()];
    if !inverse {
        // values[i1·n2 + i2] → scratch[i2·n1 + i1]: columns become rows.
        transpose_blocked(values, &mut scratch, n1, n2);
        for (i2, row) in scratch.chunks_exact_mut(n1).enumerate() {
            rows_fast::<F>(row, l1, false);
            twiddle_row(row, table, i2, false);
        }
        transpose_blocked(&scratch, values, n2, n1);
        rows_fast::<F>(values, l2, false);
        transpose_blocked(values, &mut scratch, n1, n2);
        values.copy_from_slice(&scratch);
    } else {
        // Exact mirror: undo the final transpose, outer inverses, undo the
        // middle transpose, un-twiddle + inner inverses, undo the first.
        transpose_blocked(values, &mut scratch, n2, n1);
        rows_fast::<F>(&mut scratch, l2, true);
        transpose_blocked(&scratch, values, n1, n2);
        for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
            twiddle_row(row, table, i2, true);
            rows_fast::<F>(row, l1, true);
        }
        transpose_blocked(values, &mut scratch, n2, n1);
        values.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ntt;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{BabyBear, Bn254Fr, Field, Goldilocks};

    fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
    }

    /// Runs `f` under the legacy kernels, restoring fast mode after.
    /// Outputs are mode-independent, so concurrent tests observing the
    /// temporary switch still pass.
    fn with_legacy<R>(f: impl FnOnce() -> R) -> R {
        set_kernel_mode(KernelMode::Legacy);
        let r = f();
        set_kernel_mode(KernelMode::Fast);
        r
    }

    fn fast_matches_legacy_generic<F: TwoAdicField>(max_log: u32) {
        for log_n in 0..=max_log {
            let ntt = Ntt::<F>::new(log_n);
            let input = random_vec::<F>(log_n, 42 + log_n as u64);

            let mut legacy_fwd = input.clone();
            with_legacy(|| ntt.forward(&mut legacy_fwd));
            let mut fast_fwd = input.clone();
            ntt.forward(&mut fast_fwd);
            assert_eq!(fast_fwd, legacy_fwd, "forward log_n={log_n}");

            let mut legacy_inv = input.clone();
            with_legacy(|| ntt.inverse(&mut legacy_inv));
            let mut fast_inv = input.clone();
            ntt.inverse(&mut fast_inv);
            assert_eq!(fast_inv, legacy_inv, "inverse log_n={log_n}");
        }
    }

    #[test]
    fn fast_matches_legacy_goldilocks_direct() {
        fast_matches_legacy_generic::<Goldilocks>(12);
    }

    #[test]
    fn fast_matches_legacy_babybear_direct() {
        fast_matches_legacy_generic::<BabyBear>(12);
    }

    #[test]
    fn fast_matches_legacy_bn254_fallback() {
        fast_matches_legacy_generic::<Bn254Fr>(9);
    }

    #[test]
    fn fast_matches_legacy_across_six_step_threshold() {
        // Straddle DIRECT_MAX_LOG_N so both the direct and the blocked
        // six-step path are exercised.
        for log_n in [DIRECT_MAX_LOG_N, DIRECT_MAX_LOG_N + 1, DIRECT_MAX_LOG_N + 2] {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec::<Goldilocks>(log_n, 7 + log_n as u64);

            let mut legacy = input.clone();
            with_legacy(|| ntt.forward(&mut legacy));
            let mut fast = input.clone();
            ntt.forward(&mut fast);
            assert_eq!(fast, legacy, "forward log_n={log_n}");

            let mut round = fast.clone();
            ntt.inverse(&mut round);
            assert_eq!(round, input, "roundtrip log_n={log_n}");
        }
    }

    #[test]
    fn six_step_babybear_roundtrip_and_match() {
        let log_n = DIRECT_MAX_LOG_N + 1;
        let ntt = Ntt::<BabyBear>::new(log_n);
        let input = random_vec::<BabyBear>(log_n, 99);
        let mut legacy = input.clone();
        with_legacy(|| ntt.forward(&mut legacy));
        let mut fast = input.clone();
        ntt.forward(&mut fast);
        assert_eq!(fast, legacy);
        ntt.inverse(&mut fast);
        assert_eq!(fast, input);
    }

    #[test]
    fn transpose_blocked_matches_reference() {
        for (rows, cols) in [(1usize, 64usize), (64, 1), (8, 8), (33, 70), (128, 32)] {
            let src: Vec<u32> = (0..rows * cols).map(|x| x as u32).collect();
            let mut dst = vec![0u32; rows * cols];
            transpose_blocked(&src, &mut dst, rows, cols);
            assert_eq!(dst, crate::transpose(&src, rows, cols), "{rows}x{cols}");
        }
    }

    #[test]
    fn transpose_in_place_square_matches_reference() {
        for n in [1usize, 8, 32, 33, 64, 100] {
            let src: Vec<u32> = (0..n * n).map(|x| x as u32).collect();
            let mut inplace = src.clone();
            transpose_in_place_square(&mut inplace, n);
            assert_eq!(inplace, crate::transpose(&src, n, n), "n={n}");
        }
    }

    #[test]
    fn kernel_mode_switch_roundtrips() {
        assert_eq!(kernel_mode(), KernelMode::Fast);
        set_kernel_mode(KernelMode::Legacy);
        assert_eq!(kernel_mode(), KernelMode::Legacy);
        set_kernel_mode(KernelMode::Fast);
        assert_eq!(kernel_mode(), KernelMode::Fast);
    }
}
