//! The fast host-side NTT path: Shoup/lazy butterflies, per-stage packed
//! twiddle tables, and a cache-blocked six-step decomposition.
//!
//! [`crate::Ntt::forward`]/[`crate::Ntt::inverse`] dispatch to the
//! vectorized kernels ([`KernelMode::Vector`], the default — see
//! [`crate::vector`]), to this module ([`KernelMode::Fast`]), or to the
//! pre-existing radix-2 DIT kernels ([`KernelMode::Legacy`]) for A/B
//! comparison (the harness exposes `--scalar-kernels` and
//! `--legacy-kernels`). **All paths produce bit-identical
//! outputs**: every kernel computes the exact DFT over the field and
//! canonicalizes its lanes before returning, and canonical representations
//! are unique.
//!
//! Structure of the fast path:
//!
//! * `log_n ≤ DIRECT_MAX_LOG_N` — a decimation-in-frequency pass using
//!   [`unintt_ff::ShoupField::dif_butterfly`] on lazy lanes with
//!   *per-stage packed* twiddle tables (sequential reads, no `j << stride`
//!   gather), followed by a table-driven bit-reversal. Working set fits in
//!   cache, so the permutation is cheap here.
//! * larger sizes — the Bailey six-step factorization `N = N1·N2` with
//!   tile-blocked transposes: all row transforms run over contiguous,
//!   cache-resident rows via the direct path above, and the step-②
//!   twiddle multiplication is fused right after the inner transforms
//!   while each row is still hot. The bit-reversal of an 8 MiB array —
//!   pure random access in the legacy path — never happens.

use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use unintt_ff::{Goldilocks, ShoupTwiddle, TwoAdicField};

use crate::twiddle::TwiddleTable;
use crate::{bit_reverse_permute, cache, vector};

/// Which kernel family [`crate::Ntt`] dispatches to.
///
/// All three families compute the exact DFT and canonicalize their
/// output lanes, so they are bit-identical; the mode is a performance
/// A/B switch, not a semantic one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelMode {
    /// Lane-packed (SIMD) Shoup butterflies with radix-4/8 stage fusion
    /// and per-`(field, log_n)` specialized plans (default); see
    /// [`crate::vector`]-level docs.
    #[default]
    Vector,
    /// Scalar Shoup/lazy butterflies + six-step blocking.
    Fast,
    /// The original radix-2 bit-reverse + DIT path.
    Legacy,
}

impl KernelMode {
    fn encode(self) -> u8 {
        match self {
            KernelMode::Vector => 0,
            KernelMode::Fast => 1,
            KernelMode::Legacy => 2,
        }
    }

    fn decode(v: u8) -> Self {
        match v {
            0 => KernelMode::Vector,
            1 => KernelMode::Fast,
            _ => KernelMode::Legacy,
        }
    }

    /// Stable lowercase name (telemetry gauges, bench reports).
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Vector => "vector",
            KernelMode::Fast => "fast",
            KernelMode::Legacy => "legacy",
        }
    }
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel family process-wide. Outputs are bit-identical in
/// every mode; this is a performance A/B switch, not a semantic one.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode.encode(), Ordering::Relaxed);
}

/// The currently selected kernel family.
pub fn kernel_mode() -> KernelMode {
    KernelMode::decode(KERNEL_MODE.load(Ordering::Relaxed))
}

/// Largest `log_n` the direct (single-pass) kernel handles; larger sizes
/// decompose six-step so the working set of every inner loop stays cache
/// sized. At `2^16` data + packed stage tables is ~1.5 MiB — L2-resident,
/// where the direct kernel still beats three transpose passes. Also bounds
/// the memory of cached per-stage plans.
pub(crate) const DIRECT_MAX_LOG_N: u32 = 16;

/// A direct-kernel plan: per-stage packed Shoup twiddles for both
/// directions plus the prepared inverse-scale constant. Cached
/// process-wide by `(field, log_n)` — see [`crate::cache`].
pub(crate) struct DirectPlan<F: TwoAdicField> {
    log_n: u32,
    /// `fwd_stages[s-1][j]` is the stage-`s` DIF twiddle `ω^{j·2^(log_n−s)}`,
    /// prepared; packed contiguously so stage loops read sequentially.
    fwd_stages: Vec<Vec<ShoupTwiddle<F>>>,
    inv_stages: Vec<Vec<ShoupTwiddle<F>>>,
    n_inv: ShoupTwiddle<F>,
}

pub(crate) fn pack_stages<F: TwoAdicField>(
    lane: &[ShoupTwiddle<F>],
    log_n: u32,
) -> Vec<Vec<ShoupTwiddle<F>>> {
    (1..=log_n)
        .map(|s| {
            let half = 1usize << (s - 1);
            let stride = log_n - s;
            (0..half).map(|j| lane[j << stride]).collect()
        })
        .collect()
}

impl<F: TwoAdicField> DirectPlan<F> {
    pub(crate) fn new(table: &TwiddleTable<F>) -> Self {
        let log_n = table.log_n();
        Self {
            log_n,
            fwd_stages: pack_stages(table.forward_shoup(), log_n),
            inv_stages: pack_stages(table.inverse_shoup(), log_n),
            n_inv: F::shoup_prepare(table.n_inv()),
        }
    }

    /// DIF stages on lazy lanes. When `canonicalize` is set the final
    /// stage folds [`ShoupField::reduce_lane`] into its stores; otherwise
    /// lanes stay lazy for a caller-fused final pass. All inner loops are
    /// zipped iterators so no bounds check survives into the hot path.
    /// (A fused radix-4 variant was measured and lost: holding four u128
    /// butterfly temporaries spills on this target.)
    fn dif_lazy(&self, values: &mut [F], stages: &[Vec<ShoupTwiddle<F>>], canonicalize: bool) {
        let log_n = self.log_n;
        if log_n == 0 {
            return;
        }
        for s in (2..=log_n).rev() {
            let m = 1usize << s;
            let half = m / 2;
            let tw = &stages[(s - 1) as usize][..half];
            for block in values.chunks_exact_mut(m) {
                let (lo, hi) = block.split_at_mut(half);
                for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let (a, b) = F::dif_butterfly(*u, *v, t);
                    *u = a;
                    *v = b;
                }
            }
        }
        // Final stage (s = 1): single unit twiddle per block pair.
        let t1 = &stages[0][0];
        if canonicalize {
            for block in values.chunks_exact_mut(2) {
                let (a, b) = F::dif_butterfly(block[0], block[1], t1);
                block[0] = F::reduce_lane(a);
                block[1] = F::reduce_lane(b);
            }
        } else {
            for block in values.chunks_exact_mut(2) {
                let (a, b) = F::dif_butterfly(block[0], block[1], t1);
                block[0] = a;
                block[1] = b;
            }
        }
    }

    /// Forward transform, natural order in and out, canonical output.
    pub(crate) fn forward(&self, values: &mut [F]) {
        self.dif_lazy(values, &self.fwd_stages, true);
        bit_reverse_permute(values);
    }

    /// Inverse transform including the `1/n` scale; the scale pass doubles
    /// as the lane canonicalization.
    pub(crate) fn inverse(&self, values: &mut [F]) {
        self.dif_lazy(values, &self.inv_stages, false);
        bit_reverse_permute(values);
        for v in values.iter_mut() {
            *v = F::reduce_lane(F::shoup_mul(*v, &self.n_inv));
        }
    }
}

/// Transpose tile edge: 32×32 Goldilocks elements = 8 KiB, comfortably two
/// L1-resident tiles (source and destination).
const TILE: usize = 32;

/// Blocked out-of-place transpose: `dst[c·rows + r] = src[r·cols + c]`
/// (same semantics as [`crate::transpose`], without the allocation).
fn transpose_blocked<F: Copy>(src: &[F], dst: &mut [F], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for rb in (0..rows).step_by(TILE) {
        let r_end = (rb + TILE).min(rows);
        for cb in (0..cols).step_by(TILE) {
            let c_end = (cb + TILE).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// In-place blocked transpose of an `n × n` matrix: swaps each
/// above-diagonal tile with its mirror and transposes diagonal tiles where
/// they sit. Same tiling as [`transpose_blocked`] but no second buffer and
/// half the memory passes of a transpose-then-copy sequence. 8-byte
/// fields on AVX2 hardware run 4×4 register micro-tiles instead of
/// element swaps (pure data movement, so the specialization is exact).
fn transpose_in_place_square<F: Copy + 'static>(a: &mut [F], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    #[cfg(target_arch = "x86_64")]
    if TypeId::of::<F>() == TypeId::of::<Goldilocks>()
        && n.is_multiple_of(4)
        && n >= 4
        && std::arch::is_x86_feature_detected!("avx2")
    {
        // SAFETY: F is Goldilocks (checked above), a transparent u64;
        // AVX2 presence was just verified.
        unsafe {
            let words = core::slice::from_raw_parts_mut(a.as_mut_ptr().cast::<u64>(), a.len());
            x86::transpose_in_place_square_u64(words, n);
        }
        return;
    }
    for rb in (0..n).step_by(TILE) {
        let r_end = (rb + TILE).min(n);
        for r in rb..r_end {
            for c in (r + 1)..r_end {
                a.swap(r * n + c, c * n + r);
            }
        }
        for cb in ((rb + TILE)..n).step_by(TILE) {
            let c_end = (cb + TILE).min(n);
            for r in rb..r_end {
                for c in cb..c_end {
                    a.swap(r * n + c, c * n + r);
                }
            }
        }
    }
}

/// Multiplies `row[k]` by `ω^{±i2·k}` (step ② of six-step). Uses a pair of
/// interleaved running products restarted every `CHUNK` elements: no
/// strided table gathers, no per-element `pow`, and the two chains hide
/// multiplication latency. The chain update multiplies by the *fixed*
/// `step²`, so it runs as a Shoup product off one prepared constant.
fn twiddle_row<F: TwoAdicField>(row: &mut [F], table: &TwiddleTable<F>, i2: usize, inverse: bool) {
    if i2 == 0 {
        return;
    }
    const CHUNK: usize = 256;
    let root = |e: usize| {
        if inverse {
            table.root_pow_inv(e)
        } else {
            table.root_pow(e)
        }
    };
    let step = root(i2);

    // Goldilocks + AVX-512: 32 running-product lanes (four 8-lane
    // vectors) instead of two. The powers `step^0..step^31` are built
    // once per row and every vector advances by `step^32`, so the
    // serial multiply chain is a quarter as deep and no mid-row
    // `root_pow` table lookups remain. Every lane value is the exact
    // canonical power `base·step^j` the scalar chains produce, and the
    // element product is the same exact field multiplication, so
    // outputs stay bit-identical.
    #[cfg(target_arch = "x86_64")]
    if TypeId::of::<F>() == TypeId::of::<Goldilocks>()
        && row.len() >= 32
        && row.len().is_multiple_of(32)
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: F is Goldilocks (checked above), transparent over u64.
        let words =
            unsafe { core::slice::from_raw_parts_mut(row.as_mut_ptr().cast::<u64>(), row.len()) };
        let gl = |x: F| -> Goldilocks {
            // SAFETY: same-type transmute, size checked by TypeId above.
            unsafe { *(&x as *const F).cast::<Goldilocks>() }
        };
        let step = gl(step);
        let mut cur = gl(root(0));
        let mut lanes = [0u64; 32];
        for l in lanes.iter_mut() {
            *l = unintt_ff::packed::gl_word(cur);
            cur *= step;
        }
        // `cur` has advanced 32 times: it is now `step^32`.
        // SAFETY: AVX-512F/DQ presence verified above; row length is a
        // multiple of 32.
        unsafe { x86::gl_twiddle_row(words, &lanes, unintt_ff::packed::gl_word(cur)) };
        return;
    }

    let step2 = F::shoup_prepare(step * step);
    for (ci, chunk) in row.chunks_mut(CHUNK).enumerate() {
        let mut cur0 = root(i2 * ci * CHUNK);
        let mut cur1 = cur0 * step;
        for pair in chunk.chunks_exact_mut(2) {
            pair[0] *= cur0;
            pair[1] *= cur1;
            cur0 = F::reduce_lane(F::shoup_mul(cur0, &step2));
            cur1 = F::reduce_lane(F::shoup_mul(cur1, &step2));
        }
    }
}

/// Explicit-SIMD helpers for the six-step surround (transposes and the
/// step-② twiddle pass). Pure data movement plus exact canonical field
/// products: bit-identical to the generic code they replace.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use unintt_ff::packed::avx512 as w8;

    /// Loads a 4×4 `u64` tile at `p` (row stride `n`), transposed.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p` must be valid for the 4 stride-`n` rows.
    #[inline(always)]
    unsafe fn load_transposed(p: *const u64, n: usize) -> [__m256i; 4] {
        let r0 = _mm256_loadu_si256(p.cast());
        let r1 = _mm256_loadu_si256(p.add(n).cast());
        let r2 = _mm256_loadu_si256(p.add(2 * n).cast());
        let r3 = _mm256_loadu_si256(p.add(3 * n).cast());
        let t0 = _mm256_unpacklo_epi64(r0, r1);
        let t1 = _mm256_unpackhi_epi64(r0, r1);
        let t2 = _mm256_unpacklo_epi64(r2, r3);
        let t3 = _mm256_unpackhi_epi64(r2, r3);
        [
            _mm256_permute2x128_si256::<0x20>(t0, t2),
            _mm256_permute2x128_si256::<0x20>(t1, t3),
            _mm256_permute2x128_si256::<0x31>(t0, t2),
            _mm256_permute2x128_si256::<0x31>(t1, t3),
        ]
    }

    /// Stores four row registers at `p` (row stride `n`).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p` must be valid for the 4 stride-`n` rows.
    #[inline(always)]
    unsafe fn store_tile(p: *mut u64, n: usize, t: [__m256i; 4]) {
        _mm256_storeu_si256(p.cast(), t[0]);
        _mm256_storeu_si256(p.add(n).cast(), t[1]);
        _mm256_storeu_si256(p.add(2 * n).cast(), t[2]);
        _mm256_storeu_si256(p.add(3 * n).cast(), t[3]);
    }

    /// In-place transpose of an `n × n` row-major `u64` matrix: the same
    /// macro-tiling as the generic path, with 4×4 register micro-tiles
    /// (unpack + 128-bit permute) instead of element swaps.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `a.len() == n·n` and `n % 4 == 0`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn transpose_in_place_square_u64(a: &mut [u64], n: usize) {
        debug_assert_eq!(a.len(), n * n);
        debug_assert!(n.is_multiple_of(4));
        let p = a.as_mut_ptr();
        for rb in (0..n).step_by(super::TILE) {
            let r_end = (rb + super::TILE).min(n);
            for cb in (rb..n).step_by(super::TILE) {
                let c_end = (cb + super::TILE).min(n);
                for r in (rb..r_end).step_by(4) {
                    let c_start = if cb == rb { r } else { cb };
                    for c in (c_start..c_end).step_by(4) {
                        if r == c {
                            let t = load_transposed(p.add(r * n + c), n);
                            store_tile(p.add(r * n + c), n, t);
                        } else {
                            let upper = load_transposed(p.add(r * n + c), n);
                            let lower = load_transposed(p.add(c * n + r), n);
                            store_tile(p.add(c * n + r), n, upper);
                            store_tile(p.add(r * n + c), n, lower);
                        }
                    }
                }
            }
        }
    }

    /// One full step-② twiddle row over Goldilocks words: `row[j] *=
    /// lanes[j mod 32]·step32^⌊j/32⌋` lane-wise, i.e. 32 running
    /// product chains — four 8-lane vectors seeded with
    /// `base·step^0..31` and each advanced by `step^32` — so four
    /// independent chains hide the multiply latency a single chain
    /// would serialize on.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F and AVX-512DQ; `row.len() % 32 == 0`; all
    /// inputs canonical.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn gl_twiddle_row(row: &mut [u64], lanes: &[u64; 32], step32: u64) {
        debug_assert_eq!(row.len() % 32, 0);
        let lp = lanes.as_ptr();
        let mut cur0 = _mm512_loadu_si512(lp.cast());
        let mut cur1 = _mm512_loadu_si512(lp.add(8).cast());
        let mut cur2 = _mm512_loadu_si512(lp.add(16).cast());
        let mut cur3 = _mm512_loadu_si512(lp.add(24).cast());
        let s32 = _mm512_set1_epi64(step32 as i64);
        let mut j = 0usize;
        while j < row.len() {
            let p = row.as_mut_ptr().add(j);
            let v0 = _mm512_loadu_si512(p.cast());
            let v1 = _mm512_loadu_si512(p.add(8).cast());
            let v2 = _mm512_loadu_si512(p.add(16).cast());
            let v3 = _mm512_loadu_si512(p.add(24).cast());
            _mm512_storeu_si512(p.cast(), w8::gl_mul(v0, cur0));
            _mm512_storeu_si512(p.add(8).cast(), w8::gl_mul(v1, cur1));
            _mm512_storeu_si512(p.add(16).cast(), w8::gl_mul(v2, cur2));
            _mm512_storeu_si512(p.add(24).cast(), w8::gl_mul(v3, cur3));
            cur0 = w8::gl_mul(cur0, s32);
            cur1 = w8::gl_mul(cur1, s32);
            cur2 = w8::gl_mul(cur2, s32);
            cur3 = w8::gl_mul(cur3, s32);
            j += 32;
        }
    }
}

/// Fast forward NTT for any supported size (natural order in/out).
pub(crate) fn forward_fast<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= DIRECT_MAX_LOG_N {
        cache::shared_plan::<F>(log_n).forward(values);
    } else {
        six_step(table, values, false, RowPath::Fast);
    }
}

/// Fast inverse NTT (includes the `1/n` scale).
pub(crate) fn inverse_fast<F: TwoAdicField>(table: &Arc<TwiddleTable<F>>, values: &mut [F]) {
    let log_n = table.log_n();
    if log_n <= DIRECT_MAX_LOG_N {
        cache::shared_plan::<F>(log_n).inverse(values);
    } else {
        six_step(table, values, true, RowPath::Fast);
    }
}

/// Which kernel family the six-step decomposition's row transforms run
/// on. The surrounding structure (transposes, step-② twiddles, scaling)
/// is identical; row outputs are bit-identical either way, so so is the
/// whole transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RowPath {
    /// Scalar Shoup plans ([`DirectPlan`]).
    Fast,
    /// Vectorized plans ([`crate::vector::VectorPlan`]).
    Vector,
}

/// Row-transform dispatch for six-step sub-problems (recurses back through
/// the size check, so `log_n > 2·DIRECT_MAX_LOG_N` still works).
fn rows_with<F: TwoAdicField>(data: &mut [F], row_log: u32, inverse: bool, rows: RowPath) {
    let row_len = 1usize << row_log;
    match rows {
        RowPath::Fast => {
            if row_log <= DIRECT_MAX_LOG_N {
                let plan = cache::shared_plan::<F>(row_log);
                for row in data.chunks_exact_mut(row_len) {
                    if inverse {
                        plan.inverse(row);
                    } else {
                        plan.forward(row);
                    }
                }
            } else {
                let table = cache::shared_table::<F>(row_log);
                for row in data.chunks_exact_mut(row_len) {
                    if inverse {
                        inverse_fast(&table, row);
                    } else {
                        forward_fast(&table, row);
                    }
                }
            }
        }
        RowPath::Vector => {
            if row_log <= vector::VECTOR_DIRECT_MAX_LOG_N {
                let plan = cache::shared_vector_plan::<F>(row_log);
                for row in data.chunks_exact_mut(row_len) {
                    if inverse {
                        plan.inverse(row);
                    } else {
                        plan.forward(row);
                    }
                }
            } else {
                let table = cache::shared_table::<F>(row_log);
                for row in data.chunks_exact_mut(row_len) {
                    if inverse {
                        vector::inverse_vector(&table, row);
                    } else {
                        vector::forward_vector(&table, row);
                    }
                }
            }
        }
    }
}

/// Cache-blocked six-step NTT for `N = N1·N2` (`N1 = 2^⌊log_n/2⌋`).
///
/// Forward: transpose → N2 inner NTTs (length N1) fused with step-②
/// twiddles → transpose → N1 outer NTTs (length N2) → transpose. The
/// inverse retraces the same structure with inverse roots; the `1/N1` and
/// `1/N2` scales inside the row inverses compose to the full `1/N`.
pub(crate) fn six_step<F: TwoAdicField>(
    table: &Arc<TwiddleTable<F>>,
    values: &mut [F],
    inverse: bool,
    rows: RowPath,
) {
    let log_n = table.log_n();
    let l1 = log_n / 2;
    let l2 = log_n - l1;
    let n1 = 1usize << l1;
    let n2 = 1usize << l2;

    // Even log_n: the matrix is square, so every transpose runs in place —
    // no scratch buffer, and the transpose-then-copy tail collapses into a
    // single pass.
    if n1 == n2 {
        if !inverse {
            transpose_in_place_square(values, n1);
            for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
                rows_with::<F>(row, l1, false, rows);
                twiddle_row(row, table, i2, false);
            }
            transpose_in_place_square(values, n1);
            rows_with::<F>(values, l2, false, rows);
            transpose_in_place_square(values, n1);
        } else {
            transpose_in_place_square(values, n1);
            rows_with::<F>(values, l2, true, rows);
            transpose_in_place_square(values, n1);
            for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
                twiddle_row(row, table, i2, true);
                rows_with::<F>(row, l1, true, rows);
            }
            transpose_in_place_square(values, n1);
        }
        return;
    }

    let mut scratch = vec![F::ZERO; values.len()];
    if !inverse {
        // values[i1·n2 + i2] → scratch[i2·n1 + i1]: columns become rows.
        transpose_blocked(values, &mut scratch, n1, n2);
        for (i2, row) in scratch.chunks_exact_mut(n1).enumerate() {
            rows_with::<F>(row, l1, false, rows);
            twiddle_row(row, table, i2, false);
        }
        transpose_blocked(&scratch, values, n2, n1);
        rows_with::<F>(values, l2, false, rows);
        transpose_blocked(values, &mut scratch, n1, n2);
        values.copy_from_slice(&scratch);
    } else {
        // Exact mirror: undo the final transpose, outer inverses, undo the
        // middle transpose, un-twiddle + inner inverses, undo the first.
        transpose_blocked(values, &mut scratch, n2, n1);
        rows_with::<F>(&mut scratch, l2, true, rows);
        transpose_blocked(&scratch, values, n1, n2);
        for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
            twiddle_row(row, table, i2, true);
            rows_with::<F>(row, l1, true, rows);
        }
        transpose_blocked(values, &mut scratch, n2, n1);
        values.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ntt;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{BabyBear, Bn254Fr, Field, Goldilocks};

    fn random_vec<F: Field>(log_n: u32, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
    }

    /// Runs `f` under the legacy kernels, restoring the default mode after.
    /// Outputs are mode-independent, so concurrent tests observing the
    /// temporary switch still pass.
    fn with_legacy<R>(f: impl FnOnce() -> R) -> R {
        set_kernel_mode(KernelMode::Legacy);
        let r = f();
        set_kernel_mode(KernelMode::default());
        r
    }

    /// Runs `f` with the fast (scalar six-step) kernels forced on.
    fn with_fast<R>(f: impl FnOnce() -> R) -> R {
        set_kernel_mode(KernelMode::Fast);
        let r = f();
        set_kernel_mode(KernelMode::default());
        r
    }

    fn fast_matches_legacy_generic<F: TwoAdicField>(max_log: u32) {
        for log_n in 0..=max_log {
            let ntt = Ntt::<F>::new(log_n);
            let input = random_vec::<F>(log_n, 42 + log_n as u64);

            let mut legacy_fwd = input.clone();
            with_legacy(|| ntt.forward(&mut legacy_fwd));
            let mut fast_fwd = input.clone();
            with_fast(|| ntt.forward(&mut fast_fwd));
            assert_eq!(fast_fwd, legacy_fwd, "forward log_n={log_n}");

            let mut legacy_inv = input.clone();
            with_legacy(|| ntt.inverse(&mut legacy_inv));
            let mut fast_inv = input.clone();
            with_fast(|| ntt.inverse(&mut fast_inv));
            assert_eq!(fast_inv, legacy_inv, "inverse log_n={log_n}");
        }
    }

    /// Dev profiling aid, not a correctness check: prints the per-phase
    /// split of one vector-row six-step at 2^22. Run with
    /// `cargo test -p unintt-ntt --release six_step_phase_profile -- --ignored --nocapture`.
    #[test]
    #[ignore = "profiling aid; wall-clock printout only"]
    fn six_step_phase_profile() {
        use std::time::Instant;
        let log_n = 22u32;
        let n1 = 1usize << (log_n / 2);
        let table = cache::shared_table::<Goldilocks>(log_n);
        let mut values = random_vec::<Goldilocks>(log_n, 7);

        let t = Instant::now();
        six_step(&table, &mut values, false, RowPath::Vector);
        println!("full six-step forward: {:?}", t.elapsed());

        let t = Instant::now();
        transpose_in_place_square(&mut values, n1);
        let one_transpose = t.elapsed();
        println!("one in-place transpose ({n1}x{n1}): {one_transpose:?}");

        let t = Instant::now();
        rows_with::<Goldilocks>(&mut values, log_n / 2, false, RowPath::Vector);
        println!(
            "one row pass ({n1} rows of 2^{}): {:?}",
            log_n / 2,
            t.elapsed()
        );

        let t = Instant::now();
        for (i2, row) in values.chunks_exact_mut(n1).enumerate() {
            twiddle_row(row, &table, i2, false);
        }
        println!("one twiddle pass: {:?}", t.elapsed());
    }

    #[test]
    fn fast_matches_legacy_goldilocks_direct() {
        fast_matches_legacy_generic::<Goldilocks>(12);
    }

    #[test]
    fn fast_matches_legacy_babybear_direct() {
        fast_matches_legacy_generic::<BabyBear>(12);
    }

    #[test]
    fn fast_matches_legacy_bn254_fallback() {
        fast_matches_legacy_generic::<Bn254Fr>(9);
    }

    #[test]
    fn fast_matches_legacy_across_six_step_threshold() {
        // Straddle DIRECT_MAX_LOG_N so both the direct and the blocked
        // six-step path are exercised.
        for log_n in [DIRECT_MAX_LOG_N, DIRECT_MAX_LOG_N + 1, DIRECT_MAX_LOG_N + 2] {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec::<Goldilocks>(log_n, 7 + log_n as u64);

            let mut legacy = input.clone();
            with_legacy(|| ntt.forward(&mut legacy));
            let mut fast = input.clone();
            with_fast(|| ntt.forward(&mut fast));
            assert_eq!(fast, legacy, "forward log_n={log_n}");

            let mut round = fast.clone();
            with_fast(|| ntt.inverse(&mut round));
            assert_eq!(round, input, "roundtrip log_n={log_n}");
        }
    }

    #[test]
    fn six_step_babybear_roundtrip_and_match() {
        let log_n = DIRECT_MAX_LOG_N + 1;
        let ntt = Ntt::<BabyBear>::new(log_n);
        let input = random_vec::<BabyBear>(log_n, 99);
        let mut legacy = input.clone();
        with_legacy(|| ntt.forward(&mut legacy));
        let mut fast = input.clone();
        with_fast(|| ntt.forward(&mut fast));
        assert_eq!(fast, legacy);
        with_fast(|| ntt.inverse(&mut fast));
        assert_eq!(fast, input);
    }

    #[test]
    fn transpose_blocked_matches_reference() {
        for (rows, cols) in [(1usize, 64usize), (64, 1), (8, 8), (33, 70), (128, 32)] {
            let src: Vec<u32> = (0..rows * cols).map(|x| x as u32).collect();
            let mut dst = vec![0u32; rows * cols];
            transpose_blocked(&src, &mut dst, rows, cols);
            assert_eq!(dst, crate::transpose(&src, rows, cols), "{rows}x{cols}");
        }
    }

    #[test]
    fn transpose_in_place_square_matches_reference() {
        for n in [1usize, 8, 32, 33, 64, 100] {
            let src: Vec<u32> = (0..n * n).map(|x| x as u32).collect();
            let mut inplace = src.clone();
            transpose_in_place_square(&mut inplace, n);
            assert_eq!(inplace, crate::transpose(&src, n, n), "n={n}");
        }
    }

    #[test]
    fn kernel_mode_switch_roundtrips() {
        assert_eq!(KernelMode::default(), KernelMode::Vector);
        for mode in [KernelMode::Legacy, KernelMode::Fast, KernelMode::Vector] {
            set_kernel_mode(mode);
            assert_eq!(kernel_mode(), mode);
        }
        set_kernel_mode(KernelMode::default());
    }
}
