//! # unintt-ntt — CPU Number Theoretic Transform library
//!
//! The reference NTT implementations for the UniNTT reproduction:
//!
//! * [`Ntt`] — radix-2 DIT/DIF kernels with shared twiddle tables
//!   (plus a stage-fused radix-4 kernel);
//! * [`FourStepNtt`] — the Bailey `N = N1·N2` decomposition with explicit
//!   transposes: the algebra the multi-GPU engines build on, and the
//!   "overhead-ful" formulation UniNTT improves;
//! * [`coset_ntt`] / [`low_degree_extension`] — coset evaluation and LDE
//!   as used by ZKP provers;
//! * [`NegacyclicNtt`] — transforms modulo `xⁿ + 1`;
//! * [`poly_mul_ntt`] / [`cyclic_convolution`] — convolution helpers;
//! * [`batch_transform`] / [`ParallelNtt`] — batched and multithreaded
//!   execution;
//! * [`naive_dft`] — the O(n²) oracle everything is tested against.
//!
//! Every transform here is *bit-exact*: fast paths are validated against
//! [`naive_dft`] in the test suites of each module.
//!
//! ```
//! use unintt_ff::{Goldilocks, PrimeField};
//! use unintt_ntt::poly_mul_ntt;
//!
//! let a = vec![Goldilocks::from_u64(2), Goldilocks::from_u64(1)]; // 2 + x
//! let b = vec![Goldilocks::from_u64(3), Goldilocks::from_u64(1)]; // 3 + x
//! let product = poly_mul_ntt(&a, &b); // 6 + 5x + x²
//! assert_eq!(product[1], Goldilocks::from_u64(5));
//! ```

#![warn(missing_docs)]

mod batch;
mod bitrev;
mod cache;
mod coset;
mod fast;
mod negacyclic;
mod parallel;
mod poly;
mod radix2;
mod radix4;
mod six_step;
mod stockham;
mod twiddle;
mod vector;

pub use batch::{batch_transform, batch_transform_parallel};
pub use bitrev::{bit_reverse_permute, bit_reversed, reverse_bits};
pub use cache::{cache_capacity, set_cache_capacity, shared_table, DEFAULT_CACHE_CAPACITY};
pub use coset::{coset_intt, coset_ntt, low_degree_extension, standard_shift};
pub use fast::{kernel_mode, set_kernel_mode, KernelMode};
pub use negacyclic::{negacyclic_mul_naive, NegacyclicNtt};
pub use parallel::ParallelNtt;
pub use poly::{cyclic_convolution, poly_mul_naive, poly_mul_ntt};
pub use radix2::{naive_dft, Direction, Ntt};
pub use six_step::{transpose, FourStepNtt};
pub use twiddle::TwiddleTable;
pub use vector::{
    active_backend_label, active_vector_backend, set_vector_backend_override, VectorBackend,
    VECTOR_DIRECT_MAX_LOG_N,
};
