//! Radix-4 (stage-fused) NTT kernel.
//!
//! A radix-4 butterfly is two radix-2 stages executed back-to-back on four
//! elements held in registers. On a GPU this halves the number of shared- or
//! global-memory round trips; here it serves as the higher-radix kernel the
//! UniNTT warp level instantiates and as an ablation point (radix-2 vs
//! radix-4 leaf kernels).
//!
//! The kernel has identical input/output semantics to
//! [`crate::Ntt::dit_in_place`]: bit-reversed input, natural-order output.

use unintt_ff::TwoAdicField;

use crate::Ntt;

impl<F: TwoAdicField> Ntt<F> {
    /// Radix-4 DIT kernel: bit-reversed input, natural-order output.
    ///
    /// Produces bit-identical results to [`Ntt::dit_in_place`] while
    /// touching each element half as many times. If `log_n` is odd the
    /// first stage runs as plain radix-2.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    pub fn dit_radix4_in_place(&self, values: &mut [F]) {
        assert_eq!(
            values.len(),
            self.n(),
            "input length {} does not match NTT domain size {}",
            values.len(),
            self.n()
        );
        let log_n = self.log_n();
        let n = values.len();
        let twiddles = self.table().forward();

        let mut s = 1u32;
        // Odd number of stages: burn one radix-2 stage first.
        if log_n % 2 == 1 {
            let m = 2usize;
            for k in (0..n).step_by(m) {
                let t = values[k + 1];
                let u = values[k];
                values[k] = u + t;
                values[k + 1] = u - t;
            }
            s = 2;
        }

        // Fused stage pairs (s, s+1).
        while s <= log_n {
            let m = 1usize << (s + 1); // block size after both stages
            let q = m / 4;
            let stride_lo = log_n - s; // twiddle stride for stage s
            let stride_hi = log_n - s - 1; // twiddle stride for stage s+1
            for k in (0..n).step_by(m) {
                for j in 0..q {
                    let w_lo = twiddles[j << stride_lo];
                    let w_hi0 = twiddles[j << stride_hi];
                    let w_hi1 = twiddles[(j + q) << stride_hi];

                    let x0 = values[k + j];
                    let x1 = values[k + j + q];
                    let x2 = values[k + j + 2 * q];
                    let x3 = values[k + j + 3 * q];

                    // Stage s: butterflies (x0,x1) and (x2,x3), same twiddle.
                    let t1 = x1 * w_lo;
                    let a0 = x0 + t1;
                    let a1 = x0 - t1;
                    let t3 = x3 * w_lo;
                    let a2 = x2 + t3;
                    let a3 = x2 - t3;

                    // Stage s+1: butterflies (a0,a2) and (a1,a3).
                    let t2 = a2 * w_hi0;
                    values[k + j] = a0 + t2;
                    values[k + j + 2 * q] = a0 - t2;
                    let t4 = a3 * w_hi1;
                    values[k + j + q] = a1 + t4;
                    values[k + j + 3 * q] = a1 - t4;
                }
            }
            s += 2;
        }
    }

    /// Forward NTT via the radix-4 kernel (natural order in and out).
    pub fn forward_radix4(&self, values: &mut [F]) {
        crate::bit_reverse_permute(values);
        self.dit_radix4_in_place(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};

    fn random_vec(log_n: u32, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << log_n)
            .map(|_| Goldilocks::random(&mut rng))
            .collect()
    }

    #[test]
    fn radix4_matches_radix2_even_stages() {
        for log_n in [2u32, 4, 6, 8, 10] {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec(log_n, log_n as u64);
            let mut r2 = input.clone();
            let mut r4 = input.clone();
            ntt.forward(&mut r2);
            ntt.forward_radix4(&mut r4);
            assert_eq!(r2, r4, "log_n={log_n}");
        }
    }

    #[test]
    fn radix4_matches_radix2_odd_stages() {
        for log_n in [1u32, 3, 5, 7, 9] {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let input = random_vec(log_n, 50 + log_n as u64);
            let mut r2 = input.clone();
            let mut r4 = input.clone();
            ntt.forward(&mut r2);
            ntt.forward_radix4(&mut r4);
            assert_eq!(r2, r4, "log_n={log_n}");
        }
    }

    #[test]
    fn radix4_trivial_sizes() {
        let ntt = Ntt::<Goldilocks>::new(0);
        let mut v = vec![Goldilocks::from(5u64)];
        ntt.forward_radix4(&mut v);
        assert_eq!(v[0], Goldilocks::from(5u64));
    }
}
