//! Integration tests for fleet failover: a cluster killed mid-burst
//! under every scheduling policy must fail zero accepted jobs and
//! reproduce the fault-free output bits; the whole run must be
//! deterministic; and enabling telemetry must not move the simulated
//! clock by a nanosecond.

use std::collections::BTreeMap;

use unintt_serve::{
    ChaosPlan, FleetConfig, FleetReport, FleetService, JobId, SchedulerPolicy, ServiceConfig,
    WorkloadSpec,
};

/// A bursty multi-tenant stream long enough that the kill lands while
/// work is genuinely in flight.
fn stream() -> WorkloadSpec {
    WorkloadSpec::bursty(0xfa11_0e75, 96, 50_000.0)
}

fn fleet(policy: SchedulerPolicy, chaos: ChaosPlan) -> FleetService {
    FleetService::new(FleetConfig {
        clusters: 3,
        base: ServiceConfig {
            policy,
            ..ServiceConfig::default()
        },
        chaos,
        ..FleetConfig::default()
    })
}

fn run(policy: SchedulerPolicy, chaos: ChaosPlan) -> FleetReport {
    let mut service = fleet(policy, chaos);
    service.submit_all(stream().generate());
    service.run()
}

/// The kill plan every test reuses: cluster 0 dies a quarter of the way
/// into the fault-free horizon and comes back at 70%.
fn kill_plan(horizon_ns: f64) -> ChaosPlan {
    ChaosPlan::kill_revive(0, horizon_ns * 0.25, horizon_ns * 0.7)
}

#[test]
fn kill_mid_burst_fails_no_accepted_jobs_under_any_policy() {
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Priority,
        SchedulerPolicy::ShortestJobFirst,
    ] {
        let baseline = run(policy, ChaosPlan::none());
        assert!(baseline.zero_accepted_failures(), "{policy:?} baseline");

        let chaos = run(policy, kill_plan(baseline.metrics.horizon_ns));
        assert!(
            chaos.zero_accepted_failures(),
            "{policy:?}: a kill must never fail an accepted job"
        );
        assert!(
            chaos.fleet.quarantines >= 1,
            "{policy:?}: the kill must trip a breaker"
        );
        // Failover must not change a single output bit: every job
        // completed in both runs produced the same digest.
        let base: BTreeMap<JobId, u64> = baseline.digests();
        let with_chaos = chaos.digests();
        for (id, digest) in &base {
            if let Some(d) = with_chaos.get(id) {
                assert_eq!(d, digest, "{policy:?}: job {id:?} changed bits");
            }
        }
        // The kill only removes capacity; nothing new may be shed.
        assert_eq!(
            chaos.metrics.completed() + chaos.metrics.deadline_exceeded(),
            baseline.metrics.completed() + baseline.metrics.deadline_exceeded(),
            "{policy:?}: accepted work is conserved across the kill"
        );
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    let first = run(
        SchedulerPolicy::Fifo,
        ChaosPlan::rolling(2, 400_000.0, 300_000.0, 250_000.0),
    );
    let second = run(
        SchedulerPolicy::Fifo,
        ChaosPlan::rolling(2, 400_000.0, 300_000.0, 250_000.0),
    );
    assert_eq!(first.fleet, second.fleet);
    assert_eq!(first.metrics.horizon_ns, second.metrics.horizon_ns);
    assert_eq!(first.metrics.classes, second.metrics.classes);
    assert_eq!(first.digests(), second.digests());
    assert_eq!(first.outcomes.len(), second.outcomes.len());
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.output_digest, b.output_digest);
    }
}

#[test]
fn telemetry_session_does_not_move_the_simulated_clock() {
    let silent = run(SchedulerPolicy::Fifo, ChaosPlan::none());
    let kill = kill_plan(silent.metrics.horizon_ns);

    let silent_chaos = run(SchedulerPolicy::Fifo, kill.clone());

    let guard = unintt_telemetry::start_session();
    let recorded_chaos = run(SchedulerPolicy::Fifo, kill);
    let session = unintt_telemetry::take_session();
    drop(guard);

    assert_eq!(
        silent_chaos.metrics.horizon_ns, recorded_chaos.metrics.horizon_ns,
        "recording telemetry must not change the simulated clock"
    );
    assert_eq!(silent_chaos.digests(), recorded_chaos.digests());
    assert_eq!(silent_chaos.fleet, recorded_chaos.fleet);
    assert!(
        !session.instants.is_empty(),
        "the recorded run must actually emit fleet instants"
    );
}
