//! Intra-lease stream overlap, verified end to end: overlapped runs are
//! bit-identical to serialized runs across proof shapes, seeds, queue
//! counts and fault injection; one queue under the streamed loop
//! reproduces the serial clocks exactly; and the per-queue telemetry
//! story reconciles with the scheduler's own stage accounting.

use proptest::prelude::*;
use unintt_gpu_sim::InterferenceModel;
use unintt_serve::{
    JobSpec, ProofService, ServiceConfig, ServiceReport, WorkloadMix, WorkloadSpec,
};
use unintt_telemetry::SpanLevel;

/// A mixed stream with the proof jobs submitted as stage DAGs (the only
/// class the stream scheduler overlaps).
fn dag_stream(seed: u64, jobs: usize, load_jobs_per_s: f64) -> Vec<JobSpec> {
    let spec = WorkloadSpec {
        mix: WorkloadMix {
            raw: 0.5,
            plonk: 0.25,
            stark: 0.25,
        },
        ..WorkloadSpec::raw_only(seed, jobs, load_jobs_per_s)
    };
    spec.generate()
        .into_iter()
        .map(|s| JobSpec {
            class: s.class.pipelined(),
            ..s
        })
        .collect()
}

fn run_with(cfg: ServiceConfig, stream: &[JobSpec]) -> ServiceReport {
    let mut service = ProofService::new(cfg);
    service.submit_all(stream.iter().copied());
    service.run()
}

fn digests(report: &ServiceReport) -> Vec<(u64, u64)> {
    report
        .outcomes
        .iter()
        .map(|o| (o.id.0, o.output_digest))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Overlapped stage dispatch never changes a single output bit:
    /// every queue count and both interference models produce the same
    /// per-job digests as the serialized path, across seeds and loads.
    #[test]
    fn overlap_is_bit_identical_to_serialized(
        seed in any::<u64>(),
        load in 5_000.0f64..100_000.0,
    ) {
        let stream = dag_stream(seed, 12, load);
        let serial = run_with(ServiceConfig::default(), &stream);
        prop_assert!(serial.all_completed());
        for k in 1usize..=4 {
            for model in [InterferenceModel::default_model(), InterferenceModel::conservative()] {
                let streamed = run_with(
                    ServiceConfig {
                        streams_per_lease: k,
                        interference: model,
                        ..ServiceConfig::default()
                    },
                    &stream,
                );
                prop_assert!(streamed.all_completed());
                prop_assert_eq!(
                    digests(&serial),
                    digests(&streamed),
                    "outputs must not depend on queue count (k={})", k
                );
            }
        }
    }

    /// Bit-identity survives injected raw-batch faults: lease
    /// degradation and repair reshuffle the schedule around the
    /// overlapped stages, but every digest still matches.
    #[test]
    fn overlap_is_bit_identical_under_faults(seed in any::<u64>()) {
        let stream = dag_stream(seed, 12, 60_000.0);
        let faulty = |k: usize| ServiceConfig {
            streams_per_lease: k,
            fault_rates: Some(unintt_gpu_sim::FaultRates {
                drop_p: 0.01,
                device_loss_p: 0.004,
                ..Default::default()
            }),
            ..ServiceConfig::default()
        };
        let serial = run_with(faulty(1), &stream);
        prop_assert!(serial.all_completed(), "faults degrade, never fail");
        for k in 2usize..=4 {
            let streamed = run_with(faulty(k), &stream);
            prop_assert!(streamed.all_completed());
            prop_assert_eq!(digests(&serial), digests(&streamed), "k={}", k);
        }
    }
}

/// The streamed event loop at one queue is not just output-identical to
/// the serial path — it reproduces its *clocks* exactly: every outcome
/// timestamp, the per-kind stage attribution, and every metric down to
/// per-lease dispatch counts match bit-for-bit. The one exception is
/// the time-attribution accumulators (per-lease `busy_ns`/`occupancy`
/// and per-kind `stage_ns`): the streamed path integrates queue
/// residency piecewise across event advances while the serial path adds
/// each stage's duration once — same value, different float summation
/// order, so those get a 1e-9 relative tolerance instead of bit
/// equality.
#[test]
fn one_queue_stream_loop_reproduces_serial_clocks_exactly() {
    for seed in [3u64, 17, 0xe20] {
        let stream = dag_stream(seed, 16, 40_000.0);
        let serial = run_with(ServiceConfig::default(), &stream);
        let forced = run_with(
            ServiceConfig {
                force_stream_loop: true,
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(serial.all_completed());
        assert_eq!(serial.outcomes, forced.outcomes, "seed {seed}");
        let kinds: Vec<_> = serial.stage_ns.keys().collect();
        assert_eq!(kinds, forced.stage_ns.keys().collect::<Vec<_>>());
        for (kind, &s_ns) in &serial.stage_ns {
            let f_ns = forced.stage_ns[kind];
            assert!(
                ((s_ns - f_ns) / s_ns).abs() < 1e-9,
                "seed {seed} {kind}: {s_ns} vs {f_ns}"
            );
        }

        let (sm, fm) = (&serial.metrics, &forced.metrics);
        assert_eq!(sm.horizon_ns, fm.horizon_ns, "seed {seed}");
        assert_eq!(sm.classes, fm.classes, "seed {seed}");
        assert_eq!(sm.batch_histogram, fm.batch_histogram, "seed {seed}");
        assert_eq!(sm.dispatches, fm.dispatches, "seed {seed}");
        assert_eq!(sm.peak_queue_depth, fm.peak_queue_depth, "seed {seed}");
        assert_eq!(sm.leases.len(), fm.leases.len());
        for (sl, fl) in sm.leases.iter().zip(&fm.leases) {
            assert_eq!(sl.id, fl.id);
            assert_eq!(sl.dispatches, fl.dispatches, "seed {seed} lease {}", sl.id);
            assert_eq!(sl.repairs, fl.repairs, "seed {seed} lease {}", sl.id);
            assert!(
                ((sl.busy_ns - fl.busy_ns) / sl.busy_ns).abs() < 1e-9,
                "seed {seed} lease {}: busy {} vs {}",
                sl.id,
                sl.busy_ns,
                fl.busy_ns
            );
        }
    }
}

/// Two runs of the overlapped scheduler are bit-identical to each other
/// — determinism is not weakened by the multi-queue model.
#[test]
fn overlapped_runs_replay_bit_identically() {
    let stream = dag_stream(21, 16, 60_000.0);
    let cfg = ServiceConfig {
        streams_per_lease: 3,
        ..ServiceConfig::default()
    };
    let a = run_with(cfg.clone(), &stream);
    let b = run_with(cfg, &stream);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.stage_ns, b.stage_ns);
}

/// With complementary stages co-resident, the mixed-load horizon under
/// two queues must not regress past the serialized schedule.
#[test]
fn overlap_never_lengthens_the_horizon() {
    let stream = dag_stream(5, 24, 80_000.0);
    let serial = run_with(ServiceConfig::default(), &stream);
    let streamed = run_with(
        ServiceConfig {
            streams_per_lease: 2,
            ..ServiceConfig::default()
        },
        &stream,
    );
    assert!(serial.all_completed() && streamed.all_completed());
    assert!(
        streamed.metrics.horizon_ns <= serial.metrics.horizon_ns + 1e-6,
        "overlap must not slow the service: {} vs {}",
        streamed.metrics.horizon_ns,
        serial.metrics.horizon_ns
    );
}

/// The telemetry story matches the scheduler's books: per-queue stage
/// spans (`lease{l}.q{q}` tracks) sum to exactly the per-kind stage
/// attribution the report carries, the co-scheduling counters fire, and
/// the occupancy gauges are present.
#[test]
fn per_queue_spans_reconcile_with_stage_accounting() {
    let stream = dag_stream(9, 16, 60_000.0);
    let guard = unintt_telemetry::start_session();
    let report = run_with(
        ServiceConfig {
            streams_per_lease: 2,
            ..ServiceConfig::default()
        },
        &stream,
    );
    let session = unintt_telemetry::take_session();
    let registry = unintt_telemetry::registry_snapshot();
    drop(guard);
    assert!(report.all_completed());

    // Every DAG stage span lives on a lease{l}.q{q} track...
    let stage_spans: Vec<_> = session
        .spans
        .iter()
        .filter(|s| s.level == SpanLevel::Serve && s.category == "stage")
        .collect();
    assert!(!stage_spans.is_empty(), "the stream must run DAG stages");
    for s in &stage_spans {
        assert!(
            s.track.contains(".q"),
            "stage spans carry their queue in the track name: {}",
            s.track
        );
    }
    // ...and their durations sum to the report's stage attribution,
    // the serve-side analogue of the E16 device reconciliation.
    let span_total: f64 = stage_spans.iter().map(|s| s.duration_ns()).sum();
    let stage_total: f64 = report.stage_ns.values().sum();
    assert!(
        ((span_total - stage_total) / stage_total).abs() < 1e-9,
        "span durations {span_total} ns must match stage accounting {stage_total} ns"
    );

    assert!(
        registry
            .counters
            .get("serve_dag_stages")
            .copied()
            .unwrap_or(0)
            > 0,
        "stage dispatches counted"
    );
    assert!(
        registry
            .counters
            .get("sim_costream_pairs")
            .copied()
            .unwrap_or(0)
            > 0,
        "at this load some stages must actually co-schedule"
    );
    assert!(registry.gauges.contains_key("sim_stream_occupancy"));
    assert!(registry.gauges.contains_key("sim_stream_occupancy_peak"));
}

/// The `--serial-streams` override beats the configured queue count (it
/// exists so one harness flag can force every experiment back to the
/// serialized schedule). Installed and cleared inside one test so the
/// process-wide state never leaks into concurrent tests — this is the
/// only test in this binary touching it.
#[test]
fn serial_streams_override_wins_over_config() {
    let stream = dag_stream(31, 10, 40_000.0);
    let serial = run_with(ServiceConfig::default(), &stream);
    unintt_core::set_streams_override(Some(1));
    let overridden = run_with(
        ServiceConfig {
            streams_per_lease: 4,
            ..ServiceConfig::default()
        },
        &stream,
    );
    unintt_core::set_streams_override(None);
    assert_eq!(serial.outcomes, overridden.outcomes);
    assert_eq!(serial.metrics, overridden.metrics);
    assert_eq!(serial.stage_ns, overridden.stage_ns);
}
