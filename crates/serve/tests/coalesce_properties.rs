//! Property-based tests of the batch coalescer: conservation (every
//! offered job lands in exactly one released batch) and window-clock
//! sanity, fuzzed over arbitrary interleavings of `offer`, `close_due`
//! and `flush`.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use unintt_ntt::Direction;
use unintt_serve::{
    Coalescer, JobClass, JobId, JobSpec, Priority, QueuedJob, ReadyBatch, ServiceField,
};

/// One step of a driven coalescer session. Times advance by the step's
/// `dt`, so any generated sequence is a valid simulated-clock history.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Offer a job of the given shape index after `dt` ns.
    Offer { shape: usize, dt: f64 },
    /// Close due windows after `dt` ns.
    CloseDue { dt: f64 },
    /// Flush everything after `dt` ns.
    Flush { dt: f64 },
}

/// A small palette of shapes: coalescable raw-NTT variants plus two
/// singleton classes (no batch key).
fn shape(idx: usize) -> JobClass {
    match idx % 6 {
        0 => JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 8,
            direction: Direction::Forward,
        },
        1 => JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 8,
            direction: Direction::Inverse,
        },
        2 => JobClass::RawNtt {
            field: ServiceField::BabyBear,
            log_n: 8,
            direction: Direction::Forward,
        },
        3 => JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 10,
            direction: Direction::Forward,
        },
        4 => JobClass::PlonkProve { log_gates: 5 },
        _ => JobClass::StarkCommit {
            log_trace: 8,
            columns: 4,
        },
    }
}

/// A seeded random interleaving weighted toward offers.
fn ops_from_seed(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let dt = rng.gen::<f64>() * 60_000.0;
            match rng.gen_range(0..7) {
                0..=3 => Op::Offer {
                    shape: rng.gen_range(0..6) as usize,
                    dt,
                },
                4..=5 => Op::CloseDue { dt },
                _ => Op::Flush { dt },
            }
        })
        .collect()
}

fn offer(coalescer: &mut Coalescer, id: u64, s: usize, now: f64) -> Option<ReadyBatch> {
    coalescer.offer(
        QueuedJob {
            id: JobId(id),
            spec: JobSpec {
                tenant: (id % 3) as u32,
                class: shape(s),
                priority: Priority::Normal,
                deadline_ns: None,
                arrival_ns: now,
            },
        },
        now,
    )
}

/// Drives the ops and returns `(released batches, offered job count)`.
fn drive(window_ns: f64, max_batch: usize, ops: &[Op]) -> (Vec<ReadyBatch>, u64) {
    let mut coalescer = Coalescer::new(window_ns, max_batch);
    let mut now = 0.0f64;
    let mut next_id = 0u64;
    let mut released = Vec::new();
    for op in ops {
        match *op {
            Op::Offer { shape: s, dt } => {
                now += dt;
                released.extend(offer(&mut coalescer, next_id, s, now));
                next_id += 1;
                // Note: an overdue window may stay open here — closing
                // is the caller's job via `close_due`, not `offer`'s.
            }
            Op::CloseDue { dt } => {
                now += dt;
                released.extend(coalescer.close_due(now));
                if let Some(t) = coalescer.next_close_ns() {
                    assert!(t > now, "surviving window {t} was already due at {now}");
                }
            }
            Op::Flush { dt } => {
                now += dt;
                released.extend(coalescer.flush(now));
                assert_eq!(
                    coalescer.next_close_ns(),
                    None,
                    "flush empties every window"
                );
                assert_eq!(coalescer.queued(), 0);
            }
        }
    }
    released.extend(coalescer.flush(now));
    (released, next_id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: across any interleaving of offers, window closes
    /// and flushes, every offered job appears in exactly one released
    /// batch — nothing is lost, nothing is duplicated.
    #[test]
    fn every_job_released_exactly_once(
        seed in any::<u64>(),
        windowless in any::<bool>(),
        window_ns in 1.0f64..100_000.0,
        max_batch in 1usize..20,
        op_count in 0usize..60,
    ) {
        let window_ns = if windowless { 0.0 } else { window_ns };
        let (released, offered) = drive(window_ns, max_batch, &ops_from_seed(seed, op_count));
        let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
        for batch in &released {
            for job in &batch.jobs {
                *seen.entry(job.id.0).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(seen.len() as u64, offered, "every job released");
        prop_assert!(seen.values().all(|&n| n == 1), "no job released twice");
    }

    /// Shape discipline: every released batch is homogeneous — all
    /// members share the batch's key — and never exceeds `max_batch`.
    /// Singleton classes always ride alone with no key.
    #[test]
    fn batches_are_homogeneous_and_capped(
        seed in any::<u64>(),
        window_ns in 1.0f64..100_000.0,
        max_batch in 1usize..20,
        op_count in 0usize..60,
    ) {
        let (released, _) = drive(window_ns, max_batch, &ops_from_seed(seed, op_count));
        for batch in &released {
            match batch.key {
                Some(key) => {
                    prop_assert!(batch.jobs.len() <= max_batch);
                    prop_assert!(batch
                        .jobs
                        .iter()
                        .all(|j| j.spec.class.batch_key() == Some(key)));
                }
                None => {
                    prop_assert_eq!(batch.jobs.len(), 1, "singletons ride alone");
                    prop_assert!(batch.jobs[0].spec.class.batch_key().is_none());
                }
            }
        }
    }

    /// The window clock is monotone along any history: a `close_due`
    /// call at time `t_k` only releases batches whose ready instant lies
    /// in `(t_{k-1}, t_k]` — anything due earlier was already released
    /// by the previous call, so ready times never run backwards across
    /// calls (within one call the coalescer orders by key, not time).
    #[test]
    fn close_times_are_monotone_across_calls(
        seed in any::<u64>(),
        window_ns in 1.0f64..100_000.0,
        max_batch in 2usize..20,
        op_count in 0usize..60,
    ) {
        let mut coalescer = Coalescer::new(window_ns, max_batch);
        let mut now = 0.0f64;
        let mut next_id = 0u64;
        let mut prev_call = f64::NEG_INFINITY;
        for op in ops_from_seed(seed, op_count) {
            match op {
                Op::Offer { shape: s, dt } => {
                    now += dt;
                    let _ = offer(&mut coalescer, next_id, s, now);
                    next_id += 1;
                }
                Op::CloseDue { dt } | Op::Flush { dt } => {
                    now += dt;
                    for batch in coalescer.close_due(now) {
                        prop_assert!(
                            batch.ready_ns > prev_call && batch.ready_ns <= now,
                            "batch ready at {} outside ({}, {}]",
                            batch.ready_ns,
                            prev_call,
                            now
                        );
                    }
                    prev_call = now;
                }
            }
        }
    }
}
