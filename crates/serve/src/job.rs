//! Typed jobs: what tenants submit through the service front door.

use unintt_ntt::Direction;

use crate::coalesce::BatchKey;

/// Service-wide job identifier, assigned at submission in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Scheduling priority class (derived `Ord`: `Low < Normal < High`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort background work.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive interactive work.
    High,
}

/// The field a raw NTT job runs over.
///
/// (PLONK proofs are always BN254-Fr and STARK commits always Goldilocks
/// internally; this tag only parameterizes [`JobClass::RawNtt`].)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceField {
    /// The 64-bit Goldilocks field.
    Goldilocks,
    /// The 31-bit BabyBear field.
    BabyBear,
}

impl ServiceField {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceField::Goldilocks => "Goldilocks",
            ServiceField::BabyBear => "BabyBear",
        }
    }
}

/// Which proof a [`JobClass::ProveDag`] job decomposes into stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DagKind {
    /// A PLONK proof over the canned circuit of `2^log_gates` gates.
    Plonk {
        /// Circuit size exponent.
        log_gates: u32,
    },
    /// A STARK trace commitment over the canned trace.
    Stark {
        /// Trace length exponent.
        log_trace: u32,
        /// Number of trace columns.
        columns: usize,
    },
}

impl DagKind {
    /// The monolithic job class producing the bit-identical output.
    pub fn monolithic_class(self) -> JobClass {
        match self {
            DagKind::Plonk { log_gates } => JobClass::PlonkProve { log_gates },
            DagKind::Stark { log_trace, columns } => JobClass::StarkCommit { log_trace, columns },
        }
    }
}

/// What a job asks the service to do.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobClass {
    /// One standalone NTT of `2^log_n` elements. These are the jobs the
    /// batch coalescer groups: every raw job with the same
    /// `(field, log_n, direction)` in a window shares one batched
    /// dispatch.
    RawNtt {
        /// Field of the transform.
        field: ServiceField,
        /// Transform size exponent.
        log_n: u32,
        /// Forward (evaluate) or inverse (interpolate).
        direction: Direction,
    },
    /// A full PLONK proof over a canned circuit of `2^log_gates` gates
    /// (BN254). Never coalesced — each proof is its own dispatch.
    PlonkProve {
        /// Circuit size exponent.
        log_gates: u32,
    },
    /// A STARK trace commitment (LDE → Merkle → FRI) over `columns`
    /// Goldilocks columns of `2^log_trace` rows. Never coalesced.
    StarkCommit {
        /// Trace length exponent.
        log_trace: u32,
        /// Number of trace columns.
        columns: usize,
    },
    /// The same proof as [`JobClass::PlonkProve`] /
    /// [`JobClass::StarkCommit`], but submitted as a stage DAG: instead
    /// of holding one lease for the whole proof, the scheduler
    /// dispatches individual ready stages (NTT batches, MSM commits,
    /// Merkle/FRI rounds) under the ordinary lease policies, interleaved
    /// with other tenants' work. The finished output is bit-identical to
    /// the monolithic class.
    ProveDag {
        /// Which proof to decompose.
        kind: DagKind,
    },
}

impl JobClass {
    /// Short class name for per-class metrics.
    pub fn name(&self) -> &'static str {
        match self {
            JobClass::RawNtt { .. } => "raw-ntt",
            JobClass::PlonkProve { .. } => "plonk-prove",
            JobClass::StarkCommit { .. } => "stark-commit",
            JobClass::ProveDag { .. } => "prove-dag",
        }
    }

    /// The stage-scheduled form of this class: proofs become
    /// [`JobClass::ProveDag`] jobs over the same fixture (so outputs stay
    /// bit-identical); raw NTTs are unchanged.
    pub fn pipelined(self) -> Self {
        match self {
            JobClass::PlonkProve { log_gates } => JobClass::ProveDag {
                kind: DagKind::Plonk { log_gates },
            },
            JobClass::StarkCommit { log_trace, columns } => JobClass::ProveDag {
                kind: DagKind::Stark { log_trace, columns },
            },
            other => other,
        }
    }

    /// The monolithic form of this class (inverse of
    /// [`JobClass::pipelined`]).
    pub fn monolithic(self) -> Self {
        match self {
            JobClass::ProveDag { kind } => kind.monolithic_class(),
            other => other,
        }
    }

    /// The coalescing key, if this class batches. Only raw NTT jobs
    /// coalesce; proofs and commitments are always singleton dispatches.
    pub fn batch_key(&self) -> Option<BatchKey> {
        match *self {
            JobClass::RawNtt {
                field,
                log_n,
                direction,
            } => Some(BatchKey {
                field,
                log_n,
                forward: direction == Direction::Forward,
            }),
            _ => None,
        }
    }

    /// A deterministic a-priori cost estimate in abstract units, used by
    /// the shortest-job-first scheduler. Shapes matter, absolute scale
    /// does not: raw NTTs cost `n·log n`, a PLONK proof the equivalent of
    /// its ~18 domain-sized transforms plus MSMs on a 22×-more-expensive
    /// field, and a STARK commit its per-column LDEs plus hashing.
    pub fn estimated_cost(&self) -> f64 {
        match *self {
            JobClass::RawNtt { log_n, .. } => {
                let n = (1u64 << log_n) as f64;
                n * log_n as f64
            }
            JobClass::PlonkProve { log_gates } => {
                let n = (1u64 << log_gates) as f64;
                // 18 transforms on 4n-sized domains, 22× field-mul cost,
                // plus 7 MSMs charged as ~10 muls per point.
                18.0 * 4.0 * n * (log_gates + 2) as f64 * 22.0 + 7.0 * 10.0 * n * 22.0
            }
            JobClass::StarkCommit { log_trace, columns } => {
                let n = (1u64 << log_trace) as f64;
                // Per column: iNTT(n) + coset NTT(4n); plus Merkle/FRI
                // hashing charged as ~40 units per extended row.
                columns as f64 * (n * log_trace as f64 + 4.0 * n * (log_trace + 2) as f64)
                    + 40.0 * 4.0 * n
            }
            // The DAG form does the same total work as its monolithic
            // equivalent; SJF should rank them identically.
            JobClass::ProveDag { kind } => kind.monolithic_class().estimated_cost(),
        }
    }
}

/// A submitted job: class, tenant, scheduling attributes and arrival
/// time on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Tenant identifier (informational; metrics are per-class).
    pub tenant: u32,
    /// What to run.
    pub class: JobClass,
    /// Scheduling priority (used by the priority policy).
    pub priority: Priority,
    /// Optional completion deadline on the simulated clock; jobs that
    /// finish later are counted as deadline misses (they still complete).
    pub deadline_ns: Option<f64>,
    /// Arrival time on the simulated clock, ns.
    pub arrival_ns: f64,
}

impl JobSpec {
    /// A `Normal`-priority job with no deadline arriving at `arrival_ns`.
    pub fn new(tenant: u32, class: JobClass, arrival_ns: f64) -> Self {
        Self {
            tenant,
            class,
            priority: Priority::Normal,
            deadline_ns: None,
            arrival_ns,
        }
    }
}

/// Why admission control turned a job away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue was full at the job's arrival: the service
    /// sheds rather than queue unboundedly (backpressure).
    QueueFull {
        /// Jobs queued at the rejection instant.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The fleet was saturated and graceful degradation shed this job:
    /// Bulk (low-priority) traffic is shed at the soft capacity,
    /// latency-sensitive traffic only at the hard cap. Counted
    /// separately from hard [`AdmissionError::QueueFull`] rejections.
    Overloaded {
        /// Jobs queued fleet-wide at the shed instant.
        depth: usize,
        /// The soft capacity the depth exceeded.
        soft_capacity: usize,
        /// Priority of the shed job (Low sheds first).
        priority: Priority,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { depth, capacity } => {
                write!(f, "queue full: {depth} jobs queued, capacity {capacity}")
            }
            AdmissionError::Overloaded {
                depth,
                soft_capacity,
                priority,
            } => {
                write!(
                    f,
                    "overloaded: {depth} jobs queued over soft capacity {soft_capacity}, \
                     shed {priority:?}-priority job"
                )
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Terminal state of a job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobStatus {
    /// Ran to completion (output verified when the service is configured
    /// to check).
    Completed,
    /// Turned away by admission control; never ran.
    Rejected(AdmissionError),
    /// Accepted, but cancelled at dequeue because its deadline had
    /// already passed while it sat queued — the service refuses to burn
    /// GPU time on a result nobody can use.
    DeadlineExceeded {
        /// The deadline the job could no longer meet, simulated ns.
        deadline_ns: f64,
    },
}

/// What the service reports back for one job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: u32,
    /// Class name (see [`JobClass::name`]).
    pub class_name: &'static str,
    /// Terminal state.
    pub status: JobStatus,
    /// Arrival time, simulated ns.
    pub arrival_ns: f64,
    /// Completion (or rejection) time, simulated ns.
    pub completed_ns: f64,
    /// Size of the coalesced batch this job rode in (1 for singletons,
    /// 0 for rejected jobs that never ran).
    pub batch_size: usize,
    /// Transient-fault retries absorbed while running this job.
    pub retries: u64,
    /// Degraded re-plans (node evictions) absorbed while running.
    pub replans: u32,
    /// True if the job completed after its deadline.
    pub missed_deadline: bool,
    /// FNV-1a digest of the job's output: the raw-NTT result vector,
    /// the serialized proof, or the trace commitment (0 for jobs that
    /// never ran). Lets chaos experiments assert that a job
    /// re-dispatched after a failover produced the bit-identical result
    /// a fault-free run would have, and lets E19 assert DAG-scheduled
    /// proofs match their monolithic twins byte for byte.
    pub output_digest: u64,
}

impl JobOutcome {
    /// Sojourn time (queueing + coalescing window + service), ns.
    pub fn latency_ns(&self) -> f64 {
        self.completed_ns - self.arrival_ns
    }

    /// True if the job ran to completion.
    pub fn completed(&self) -> bool {
        self.status == JobStatus::Completed
    }

    /// True if admission control accepted the job (it may still have
    /// been cancelled later for a hopeless deadline).
    pub fn accepted(&self) -> bool {
        !matches!(self.status, JobStatus::Rejected(_))
    }

    /// True if the job was cancelled at dequeue for a hopeless deadline.
    pub fn deadline_exceeded(&self) -> bool {
        matches!(self.status, JobStatus::DeadlineExceeded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn raw_jobs_coalesce_by_shape() {
        let a = JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 10,
            direction: Direction::Forward,
        };
        let b = JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 10,
            direction: Direction::Forward,
        };
        let c = JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 10,
            direction: Direction::Inverse,
        };
        let d = JobClass::RawNtt {
            field: ServiceField::BabyBear,
            log_n: 10,
            direction: Direction::Forward,
        };
        assert_eq!(a.batch_key(), b.batch_key());
        assert_ne!(a.batch_key(), c.batch_key(), "direction splits batches");
        assert_ne!(a.batch_key(), d.batch_key(), "field splits batches");
        assert!(JobClass::PlonkProve { log_gates: 5 }.batch_key().is_none());
        assert!(JobClass::StarkCommit {
            log_trace: 8,
            columns: 4
        }
        .batch_key()
        .is_none());
    }

    #[test]
    fn cost_estimates_rank_sanely() {
        let raw = JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n: 10,
            direction: Direction::Forward,
        };
        let plonk = JobClass::PlonkProve { log_gates: 10 };
        let stark = JobClass::StarkCommit {
            log_trace: 10,
            columns: 4,
        };
        assert!(raw.estimated_cost() < stark.estimated_cost());
        assert!(stark.estimated_cost() < plonk.estimated_cost());
    }
}
