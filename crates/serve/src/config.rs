//! Service configuration: queue bounds, coalescing window, lease shape,
//! scheduling policy and fault-injection knobs.

use unintt_core::{CommMode, RecoveryPolicy};
use unintt_gpu_sim::{FaultRates, InterferenceModel};
use unintt_ntt::KernelMode;

/// How the dispatcher orders ready batches when a lease frees up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Oldest ready batch first (by ready time, then submission order).
    #[default]
    Fifo,
    /// Highest job priority first (a batch inherits the maximum priority
    /// of its members); FIFO among equals.
    Priority,
    /// Smallest estimated batch cost first (see
    /// [`crate::JobClass::estimated_cost`]); FIFO among equals.
    ShortestJobFirst,
}

impl SchedulerPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Priority => "priority",
            SchedulerPolicy::ShortestJobFirst => "sjf",
        }
    }
}

/// The slice of the simulated cluster one lease owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseShape {
    /// Nodes per lease (must be a power of two for the cluster engine).
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl LeaseShape {
    /// Total GPUs the lease spans.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

impl Default for LeaseShape {
    fn default() -> Self {
        Self {
            nodes: 2,
            gpus_per_node: 2,
        }
    }
}

/// Tunables for [`crate::ProofService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Admission-control bound: jobs queued (coalescing + ready) beyond
    /// this are rejected with [`crate::AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Coalescing window, simulated ns: a batch stays open this long
    /// after its first job before dispatch. `0.0` disables coalescing —
    /// every job dispatches as a singleton.
    pub batch_window_ns: f64,
    /// A batch closes early once it holds this many jobs.
    pub max_batch: usize,
    /// Dispatch ordering policy.
    pub policy: SchedulerPolicy,
    /// Number of GPU leases the cluster is partitioned into (batches run
    /// concurrently, one per lease).
    pub num_leases: usize,
    /// Shape of each lease.
    pub lease: LeaseShape,
    /// Fixed per-dispatch cost, simulated ns: lease acquisition, plan
    /// staging and host-side marshalling. Charged once per batch — this
    /// is what coalescing amortizes.
    pub dispatch_overhead_ns: f64,
    /// Fixed per-stage cost for [`crate::JobClass::ProveDag`] jobs,
    /// simulated ns: much smaller than `dispatch_overhead_ns` because a
    /// stage reuses the proof's already-staged state — it only pays
    /// lease hand-off and kernel launch setup.
    pub stage_overhead_ns: f64,
    /// Time to replace a lease whose every node died, simulated ns.
    pub repair_ns: f64,
    /// Fault-recovery policy handed to the cluster engine.
    pub recovery: RecoveryPolicy,
    /// Seed for per-dispatch fault plans (only used when `fault_rates`
    /// is set).
    pub fault_seed: u64,
    /// When set, every raw-NTT dispatch runs under seeded fault
    /// injection with these rates. PLONK and STARK jobs run fault-free
    /// (their backends own separate machines; see DESIGN.md).
    pub fault_rates: Option<FaultRates>,
    /// Check every raw-NTT output bit-for-bit against the CPU reference
    /// (and verify proofs/commitments). Costs host time, not simulated
    /// time.
    pub verify_outputs: bool,
    /// Exchange scheduling for the cluster engines this service builds:
    /// [`CommMode::Overlapped`] (default) pipelines chunk transfers
    /// against compute; [`CommMode::Blocking`] is the legacy schedule.
    /// Outputs are bit-identical either way; only simulated time moves.
    pub comm_mode: CommMode,
    /// Host-side NTT kernel family for the real transforms behind each
    /// dispatch ([`KernelMode::Vector`] by default). Bit-identical across
    /// modes; only host wall time changes.
    pub kernel_mode: KernelMode,
    /// Compute queues per lease for [`crate::JobClass::ProveDag`] stage
    /// dispatch, `1..=4`. At `1` (the default) the service takes the
    /// historical serialized code path; at `2..=4` stages of *different*
    /// resource classes ([`unintt_gpu_sim::ResourceClass`]) co-reside on
    /// one lease and both advance under the `interference` slowdown,
    /// while same-class stages still serialize. Outputs are bit-identical
    /// at every setting — only simulated clocks move. The process-wide
    /// [`unintt_core::set_streams_override`] (harness `--serial-streams`)
    /// takes precedence over this field.
    pub streams_per_lease: usize,
    /// Pairwise slowdown factors applied to co-resident stages when
    /// `streams_per_lease > 1`.
    pub interference: InterferenceModel,
    /// Testing/validation knob: run the multi-queue scheduler loop even
    /// at `streams_per_lease == 1` (which normally takes the literal
    /// serial code path). Lets tests assert the streamed event loop
    /// reproduces the serial clocks exactly at one queue.
    pub force_stream_loop: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 512,
            batch_window_ns: 25_000.0,
            max_batch: 16,
            policy: SchedulerPolicy::Fifo,
            num_leases: 2,
            lease: LeaseShape::default(),
            dispatch_overhead_ns: 40_000.0,
            stage_overhead_ns: 2_000.0,
            repair_ns: 5.0e9,
            recovery: RecoveryPolicy::default(),
            fault_seed: 0x5eed_5e17e,
            fault_rates: None,
            verify_outputs: true,
            comm_mode: CommMode::Overlapped,
            kernel_mode: KernelMode::default(),
            streams_per_lease: 1,
            interference: InterferenceModel::default_model(),
            force_stream_loop: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.max_batch > 1);
        assert!(cfg.num_leases >= 1);
        assert!(cfg.lease.nodes.is_power_of_two());
        assert!(cfg.dispatch_overhead_ns > 0.0);
        assert_eq!(cfg.policy, SchedulerPolicy::Fifo);
        assert_eq!(cfg.comm_mode, CommMode::Overlapped);
        assert_eq!(cfg.kernel_mode, KernelMode::Vector);
        assert_eq!(cfg.streams_per_lease, 1, "serialized dispatch by default");
        assert_eq!(cfg.interference, InterferenceModel::default_model());
        assert!(!cfg.force_stream_loop);
    }
}
