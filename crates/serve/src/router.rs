//! The shard router: picks which cluster a job lands on.
//!
//! Routing is **rendezvous (highest-random-weight) hashing** over the
//! `(tenant, shape)` key: every candidate cluster gets a deterministic
//! weight and the maximum wins. Same-shaped jobs from the same tenant
//! therefore land on the same cluster — maximizing the coalescer's
//! chances of batching them — while distinct keys spread across the
//! fleet. When a cluster drops out of the candidate set (quarantine,
//! chaos kill) only the keys it owned move; every other key keeps its
//! home, which keeps failovers from scrambling warm batches fleet-wide.

use crate::job::JobClass;

/// Deterministic rendezvous router over cluster indices.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    seed: u64,
}

impl ShardRouter {
    /// A router whose placement is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The routing key for one job: tenant plus the job's coalescable
    /// shape. Raw NTTs key on `(field, log_n)` — direction is excluded
    /// deliberately, so a tenant's forward/inverse pairs share a home
    /// and its batches alternate on one warm cluster.
    pub fn shard_key(&self, tenant: u32, class: &JobClass) -> u64 {
        let shape = match *class {
            JobClass::RawNtt { field, log_n, .. } => {
                0x10_0000 | (u64::from(log_n) << 4) | field as u64
            }
            JobClass::PlonkProve { log_gates } => 0x20_0000 | u64::from(log_gates),
            JobClass::StarkCommit { log_trace, columns } => {
                0x30_0000 | (u64::from(log_trace) << 16) | columns as u64
            }
            // A DAG job homes where its monolithic twin would: same
            // fixture, same warm caches.
            JobClass::ProveDag { kind } => {
                return self.shard_key(tenant, &kind.monolithic_class());
            }
        };
        mix(self.seed ^ (u64::from(tenant) << 40) ^ shape)
    }

    /// The winning cluster for `(tenant, class)` among `candidates`, or
    /// `None` when no cluster is routable. Ties (astronomically rare)
    /// break toward the lower cluster index for determinism.
    pub fn route(&self, tenant: u32, class: &JobClass, candidates: &[usize]) -> Option<usize> {
        let key = self.shard_key(tenant, class);
        candidates
            .iter()
            .map(|&c| (mix(key ^ (c as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)), c))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, c)| c)
    }
}

/// `splitmix64` finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use unintt_ntt::Direction;

    use super::*;
    use crate::job::ServiceField;

    fn raw(log_n: u32, direction: Direction) -> JobClass {
        JobClass::RawNtt {
            field: ServiceField::Goldilocks,
            log_n,
            direction,
        }
    }

    #[test]
    fn same_key_same_home() {
        let r = ShardRouter::new(42);
        let all = [0, 1, 2, 3];
        let a = r.route(7, &raw(12, Direction::Forward), &all);
        let b = r.route(7, &raw(12, Direction::Forward), &all);
        assert_eq!(a, b);
        assert_eq!(
            a,
            r.route(7, &raw(12, Direction::Inverse), &all),
            "direction does not split the home"
        );
    }

    #[test]
    fn keys_spread_across_the_fleet() {
        let r = ShardRouter::new(42);
        let all = [0, 1, 2, 3];
        let mut homes = std::collections::BTreeSet::new();
        for tenant in 0..16 {
            for log_n in 8..16 {
                homes.insert(r.route(tenant, &raw(log_n, Direction::Forward), &all));
            }
        }
        assert_eq!(homes.len(), 4, "128 keys must reach every cluster");
    }

    #[test]
    fn removing_a_cluster_only_moves_its_keys() {
        let r = ShardRouter::new(42);
        let all = [0, 1, 2, 3];
        let survivors = [0, 1, 3];
        for tenant in 0..32 {
            let class = raw(10 + tenant % 6, Direction::Forward);
            let before = r.route(tenant, &class, &all).expect("candidates");
            let after = r.route(tenant, &class, &survivors).expect("candidates");
            if before != 2 {
                assert_eq!(before, after, "unaffected keys keep their home");
            } else {
                assert_ne!(after, 2, "orphaned keys re-home to a survivor");
            }
        }
    }

    #[test]
    fn empty_candidate_set_routes_nowhere() {
        let r = ShardRouter::new(42);
        assert_eq!(r.route(0, &raw(10, Direction::Forward), &[]), None);
    }

    #[test]
    fn seed_changes_the_placement() {
        let all = [0, 1, 2, 3];
        let a = ShardRouter::new(1);
        let b = ShardRouter::new(2);
        let moved = (0..64)
            .filter(|&t| {
                a.route(t, &raw(12, Direction::Forward), &all)
                    != b.route(t, &raw(12, Direction::Forward), &all)
            })
            .count();
        assert!(moved > 16, "different seeds shuffle placements: {moved}");
    }
}
