//! The proving service: front door, admission control, the
//! discrete-event scheduler loop, and dispatch onto GPU leases.
//!
//! Everything runs on the **simulated clock**: jobs carry arrival
//! timestamps, batches occupy leases for exactly the time the cluster
//! simulation charges, and the coalescing window is simulated time. Two
//! runs over the same submissions and configuration are therefore
//! bit-identical — including under fault injection, whose plans are
//! seeded per dispatch.
//!
//! Transforms are *functionally executed* (not just cost-modelled): with
//! `verify_outputs` on, every raw-NTT result is checked bit-for-bit
//! against a CPU reference computed through [`unintt_ntt::batch`]'s
//! batched path, every PLONK proof is verified, and every STARK
//! commitment is checked. The execution machinery itself lives in
//! [`crate::dispatch`], shared with the multi-cluster fleet runner.

use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;

use unintt_gpu_sim::{FieldSpec, StreamSet};
use unintt_pipeline::{ProofDag, ProofPipeline};

use crate::coalesce::{Coalescer, QueuedJob, ReadyBatch};
use crate::config::ServiceConfig;
use crate::dispatch::{self, DispatchKey, EngineCaches};
use crate::job::{
    AdmissionError, DagKind, JobClass, JobId, JobOutcome, JobSpec, JobStatus, ServiceField,
};
use crate::lease::LeasePool;
use crate::metrics::ServiceMetrics;

/// Everything one run produced: per-job outcomes plus the metrics
/// snapshot.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// One entry per submitted job, sorted by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregated metrics.
    pub metrics: ServiceMetrics,
    /// Lease-occupied simulated time per DAG stage kind, summed over
    /// every [`JobClass::ProveDag`] job (empty when none ran). This is
    /// the per-stage time attribution experiment E19 reports.
    pub stage_ns: BTreeMap<&'static str, f64>,
}

impl ServiceReport {
    /// True when every submitted job ran to completion.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::completed)
    }
}

/// The multi-tenant proving service front door.
///
/// Submissions accumulate (directly via [`submit`](Self::submit) or
/// drained from a channel via [`ingest`](Self::ingest)); a call to
/// [`run`](Self::run) then plays the whole stream through the simulated
/// service and returns the report.
pub struct ProofService {
    cfg: ServiceConfig,
    backlog: Vec<QueuedJob>,
    next_id: u64,
}

impl ProofService {
    /// A service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self {
            cfg,
            backlog: Vec::new(),
            next_id: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Submits one job, returning its id. Admission control runs at the
    /// job's simulated arrival instant during [`run`](Self::run), not
    /// here.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.backlog.push(QueuedJob { id, spec });
        id
    }

    /// Submits a whole stream.
    pub fn submit_all(&mut self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobId> {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Drains every job currently buffered in `rx` (the channel front
    /// door for producers on other threads) into the backlog.
    pub fn ingest(&mut self, rx: &Receiver<JobSpec>) -> Vec<JobId> {
        let mut ids = Vec::new();
        while let Ok(spec) = rx.try_recv() {
            ids.push(self.submit(spec));
        }
        ids
    }

    /// Jobs waiting to be played.
    pub fn pending(&self) -> usize {
        self.backlog.len()
    }

    /// Plays every submitted job through the service on the simulated
    /// clock and returns the report. The backlog is consumed; the service
    /// can be reused for a fresh stream afterwards.
    pub fn run(&mut self) -> ServiceReport {
        let backlog = std::mem::take(&mut self.backlog);
        Runner::new(self.cfg.clone()).run(backlog)
    }
}

/// One [`JobClass::ProveDag`] job being executed stage-by-stage: the
/// staged pipeline, its validated DAG, and per-stage completion times on
/// the simulated clock.
struct ActiveDag {
    job: QueuedJob,
    kind: DagKind,
    pipe: ProofPipeline,
    dag: ProofDag,
    /// Simulated completion instant per stage (`None` = not run yet).
    completion: Vec<Option<f64>>,
    /// Stage has been dispatched (streamed scheduler: it may still be
    /// in flight on a queue, with `completion` not yet committed). The
    /// serial path commits completion at dispatch and never reads this.
    started: Vec<bool>,
    /// When the first stage started executing (for the lifecycle spans).
    first_start_ns: Option<f64>,
}

/// One in-flight DAG stage in the streamed scheduler: everything needed
/// to commit its completion when its queue drains.
struct PendingStage {
    job: JobId,
    si: usize,
    lease: usize,
    queue: usize,
    start_ns: f64,
    seq: u64,
    stage_name: String,
    kind_name: &'static str,
}

/// The discrete-event execution engine behind [`ProofService::run`].
struct Runner {
    cfg: ServiceConfig,
    pool: LeasePool,
    coalescer: Coalescer,
    ready: Vec<ReadyBatch>,
    dags: Vec<ActiveDag>,
    outcomes: Vec<JobOutcome>,
    batch_sizes: Vec<usize>,
    stage_ns: BTreeMap<&'static str, f64>,
    peak_queue: usize,
    dispatch_seq: u64,
    caches: EngineCaches,
}

impl Runner {
    fn new(cfg: ServiceConfig) -> Self {
        let pool = LeasePool::new(cfg.num_leases, cfg.lease);
        let coalescer = Coalescer::new(cfg.batch_window_ns, cfg.max_batch);
        Self {
            cfg,
            pool,
            coalescer,
            ready: Vec::new(),
            dags: Vec::new(),
            outcomes: Vec::new(),
            batch_sizes: Vec::new(),
            stage_ns: BTreeMap::new(),
            peak_queue: 0,
            dispatch_seq: 0,
            caches: EngineCaches::new(),
        }
    }

    /// The queue count this run uses: the process-wide override (the
    /// harness `--serial-streams` flag) wins, else the configured value.
    fn effective_streams(&self) -> usize {
        let k = unintt_core::streams_override()
            .map(|v| v as usize)
            .unwrap_or(self.cfg.streams_per_lease);
        assert!(
            (1..=unintt_core::MAX_STREAMS_PER_LEASE as usize).contains(&k),
            "streams_per_lease must be 1..={}, got {k}",
            unintt_core::MAX_STREAMS_PER_LEASE
        );
        k
    }

    /// Routes the run: one queue per lease takes the *literal*
    /// historical serial path (so `streams_per_lease = 1` reproduces its
    /// clocks bit-for-bit by construction); two or more queues — or the
    /// `force_stream_loop` testing knob — take the multi-queue
    /// discrete-event loop.
    fn run(self, backlog: Vec<QueuedJob>) -> ServiceReport {
        let k = self.effective_streams();
        if k > 1 || self.cfg.force_stream_loop {
            self.run_streamed(backlog, k)
        } else {
            self.run_serial(backlog)
        }
    }

    /// The serial event loop: advance the simulated clock to the next
    /// window close, lease release, or arrival; process everything due;
    /// repeat until the stream is drained. One dispatch (batch or DAG
    /// stage) occupies a lease exclusively for its whole duration.
    fn run_serial(mut self, mut backlog: Vec<QueuedJob>) -> ServiceReport {
        backlog.sort_by(|a, b| {
            a.spec
                .arrival_ns
                .partial_cmp(&b.spec.arrival_ns)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        loop {
            let t_arrival = backlog.get(next_arrival).map(|j| j.spec.arrival_ns);
            let t_close = self.coalescer.next_close_ns();
            let t_lease = if self.ready.is_empty() {
                None
            } else {
                Some(self.pool.next_free_ns())
            };
            // The next instant a DAG stage could start: its dependencies
            // complete AND a lease frees up.
            let t_stage = self
                .next_stage_avail()
                .map(|avail| avail.max(self.pool.next_free_ns()));
            let Some(t) = [t_arrival, t_close, t_lease, t_stage]
                .into_iter()
                .flatten()
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                })
            else {
                break;
            };
            now = now.max(t);

            // 1. Close every coalescing window that has expired.
            let closed = self.coalescer.close_due(now);
            for batch in &closed {
                unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                    name: "window-flush".into(),
                    kind: unintt_telemetry::InstantKind::CoalescerFlush,
                    track: "coalescer".into(),
                    t_ns: now,
                    attrs: vec![("jobs", batch.len().into())],
                });
            }
            self.ready.extend(closed);

            // 2. Admit arrivals due by now (in arrival, then id order).
            while next_arrival < backlog.len() && backlog[next_arrival].spec.arrival_ns <= now {
                let job = backlog[next_arrival];
                next_arrival += 1;
                self.admit(job, now);
            }

            // 3. Dispatch ready work — coalesced batches and ready DAG
            // stages compete for free leases under one policy ordering
            // (batches win exact ties).
            while self.pool.any_free(now) {
                let lease_id = self.pool.earliest().id;
                let batch = dispatch::next_batch_index(&self.ready, self.cfg.policy);
                let stage = self.next_ready_stage(now);
                match (batch, stage) {
                    (Some((bi, bk)), Some((_, _, sk)))
                        if bk.cmp_under(&sk, self.cfg.policy) != std::cmp::Ordering::Greater =>
                    {
                        let batch = self.ready.swap_remove(bi);
                        self.dispatch(batch, lease_id, now);
                    }
                    (Some(_), Some((di, si, _))) => self.dispatch_stage(di, si, lease_id, now),
                    (Some((bi, _)), None) => {
                        let batch = self.ready.swap_remove(bi);
                        self.dispatch(batch, lease_id, now);
                    }
                    (None, Some((di, si, _))) => self.dispatch_stage(di, si, lease_id, now),
                    (None, None) => break,
                }
            }
        }

        self.outcomes.sort_by_key(|o| o.id);
        debug_assert!(self.dags.is_empty(), "every DAG ran to completion");
        debug_assert_eq!(
            self.outcomes.len(),
            backlog.len(),
            "every job is accounted for"
        );
        let metrics = ServiceMetrics::build(
            &self.outcomes,
            &self.batch_sizes,
            self.peak_queue,
            &self.pool,
        );
        ServiceReport {
            outcomes: self.outcomes,
            metrics,
            stage_ns: self.stage_ns,
        }
    }

    /// The multi-queue event loop: every lease carries a [`StreamSet`]
    /// of `k` typed compute queues, so a compute-bound MSM stage and a
    /// memory-bound NTT stage of *different* proofs (or independent
    /// stages of one proof) co-reside on one lease, both advancing under
    /// the interference-model slowdown instead of serializing.
    /// Same-class stages still serialize — the set rejects them at
    /// admission. Raw batches and monolithic proofs keep exclusive
    /// occupancy: they need a lease with no batch in flight *and* every
    /// queue drained.
    ///
    /// Outputs are bit-identical to the serial loop because stage
    /// execution stays functional-at-dispatch: `run_stage` mutates proof
    /// state the instant the stage is admitted, in DAG dependency order
    /// with totally ordered transcript barriers, while the overlap model
    /// only decides when the *completion* commits on the simulated
    /// clock.
    fn run_streamed(mut self, mut backlog: Vec<QueuedJob>, k: usize) -> ServiceReport {
        self.cfg.interference.validate();
        let mut streams: Vec<StreamSet> = (0..self.pool.len())
            .map(|_| StreamSet::new(k, self.cfg.interference))
            .collect();
        // Last instant each lease released work (batch end or stage
        // completion). Ordering accepting leases by this replicates the
        // serial path's earliest-free lease selection at one queue.
        let mut release_ns = vec![0.0f64; self.pool.len()];
        let mut pending: BTreeMap<u64, PendingStage> = BTreeMap::new();

        backlog.sort_by(|a, b| {
            a.spec
                .arrival_ns
                .partial_cmp(&b.spec.arrival_ns)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        loop {
            // 1. Close every coalescing window that has expired.
            let closed = self.coalescer.close_due(now);
            for batch in &closed {
                unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                    name: "window-flush".into(),
                    kind: unintt_telemetry::InstantKind::CoalescerFlush,
                    track: "coalescer".into(),
                    t_ns: now,
                    attrs: vec![("jobs", batch.len().into())],
                });
            }
            self.ready.extend(closed);

            // 2. Admit arrivals due by now (in arrival, then id order).
            while next_arrival < backlog.len() && backlog[next_arrival].spec.arrival_ns <= now {
                let job = backlog[next_arrival];
                next_arrival += 1;
                self.admit(job, now);
            }

            // 3. Dispatch everything placeable at `now`. Batches and DAG
            // stages compete under one policy ordering (batches win
            // exact ties); a batch blocked by stage residency waits
            // while complementary stages keep flowing (the scheduler is
            // work-conserving across classes).
            loop {
                let batch = dispatch::next_batch_index(&self.ready, self.cfg.policy).and_then(
                    |(bi, key)| {
                        self.idle_lease(&streams, &release_ns, now)
                            .map(|l| (bi, key, l))
                    },
                );
                let stage = self.next_ready_stage_streamed(now, &streams, &release_ns);
                match (batch, stage) {
                    (Some((bi, bk, lease)), Some((_, _, _, sk)))
                        if bk.cmp_under(&sk, self.cfg.policy) != std::cmp::Ordering::Greater =>
                    {
                        let batch = self.ready.swap_remove(bi);
                        self.dispatch(batch, lease, now);
                    }
                    (Some(_), Some((di, si, lease, _))) => {
                        self.start_stage(di, si, lease, now, &mut streams, &mut pending);
                    }
                    (Some((bi, _, lease)), None) => {
                        let batch = self.ready.swap_remove(bi);
                        self.dispatch(batch, lease, now);
                    }
                    (None, Some((di, si, lease, _))) => {
                        self.start_stage(di, si, lease, now, &mut streams, &mut pending);
                    }
                    (None, None) => break,
                }
            }

            // 4. The next event: an arrival, a window close, a lease
            // coming free (batch end or repair), or an in-flight stage
            // completing. Everything due at `now` was already processed,
            // so every candidate is strictly in the future.
            let t_arrival = backlog.get(next_arrival).map(|j| j.spec.arrival_ns);
            let t_close = self.coalescer.next_close_ns();
            // The earliest *future* lease-free instant. Not
            // `next_free_ns()`: that is the global minimum, and a lease
            // whose only work is in its queues keeps a stale
            // `free_at_ns <= now` that would mask a busier lease's batch
            // ending later — exactly the wake-up a waiting stage needs.
            let t_lease = if self.ready.is_empty() && self.dags.is_empty() {
                None
            } else {
                self.pool
                    .leases()
                    .iter()
                    .map(|l| l.free_at_ns)
                    .filter(|&t| t > now && t.is_finite())
                    .min_by(f64::total_cmp)
            };
            let t_complete = streams
                .iter()
                .filter_map(StreamSet::earliest_completion_ns)
                .min_by(f64::total_cmp);
            let Some(t) = [t_arrival, t_close, t_lease, t_complete]
                .into_iter()
                .flatten()
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                })
            else {
                break;
            };
            debug_assert!(t > now, "events must advance the simulated clock");
            now = now.max(t);

            // 5. Advance every queue to `now` and commit the stages
            // finishing there, in (lease, queue) order.
            for l in 0..streams.len() {
                streams[l].advance_to(now);
                for fin in streams[l].take_finished() {
                    let p = pending.remove(&fin.key).expect("known in-flight stage");
                    release_ns[l] = release_ns[l].max(now);
                    self.complete_stage(p, now);
                }
            }
        }

        // Queue-residency wall time becomes lease busy time. Batches
        // and stages never overlap on one lease (batches require every
        // queue drained), so the union adds cleanly to the batch time
        // already accumulated in `busy_ns`.
        for (l, ss) in streams.iter().enumerate() {
            debug_assert!(ss.is_idle(), "queues drained at shutdown");
            self.pool.lease_mut(l).busy_ns += ss.busy_union_ns;
        }
        debug_assert!(pending.is_empty(), "no stage left in flight");

        self.outcomes.sort_by_key(|o| o.id);
        debug_assert!(self.dags.is_empty(), "every DAG ran to completion");
        debug_assert_eq!(
            self.outcomes.len(),
            backlog.len(),
            "every job is accounted for"
        );
        let metrics = ServiceMetrics::build(
            &self.outcomes,
            &self.batch_sizes,
            self.peak_queue,
            &self.pool,
        );
        ServiceReport {
            outcomes: self.outcomes,
            metrics,
            stage_ns: self.stage_ns,
        }
    }

    /// The lease a coalesced batch or monolithic proof would run on in
    /// streamed mode: no batch in flight *and* every queue drained
    /// (batches occupy the whole device). Longest-idle first, then
    /// lowest id — the serial path's ordering.
    fn idle_lease(&self, streams: &[StreamSet], release_ns: &[f64], now: f64) -> Option<usize> {
        let leases = self.pool.leases();
        (0..leases.len())
            .filter(|&l| leases[l].free_at_ns <= now && streams[l].is_idle())
            .min_by(|&a, &b| {
                let ka = leases[a].free_at_ns.max(release_ns[a]);
                let kb = leases[b].free_at_ns.max(release_ns[b]);
                ka.total_cmp(&kb).then(a.cmp(&b))
            })
    }

    /// The ready DAG stage the streamed scheduler would start at `now`,
    /// with the lease it lands on: candidates are ordered by the
    /// dispatch policy (exactly like [`Self::next_ready_stage`]), and
    /// the first one some lease can accept wins — a stage whose class
    /// is resident everywhere is skipped this round so complementary
    /// work behind it keeps flowing. The lease minimizes
    /// (interference penalty, idle-since, id): spread first, then pair
    /// complementary classes.
    fn next_ready_stage_streamed(
        &self,
        now: f64,
        streams: &[StreamSet],
        release_ns: &[f64],
    ) -> Option<(usize, usize, usize, DispatchKey)> {
        let mut cands: Vec<(usize, usize, DispatchKey)> = Vec::new();
        for (di, dag) in self.dags.iter().enumerate() {
            let per_stage_cost = dag.job.spec.class.estimated_cost() / dag.dag.len() as f64;
            for s in 0..dag.dag.len() {
                if dag.started[s]
                    || dag.completion[s].is_some()
                    || dag.dag.nodes()[s].kind.is_barrier()
                {
                    continue;
                }
                let Some(avail) = Self::stage_avail(dag, s) else {
                    continue;
                };
                if avail > now {
                    continue;
                }
                cands.push((
                    di,
                    s,
                    DispatchKey {
                        ready_ns: avail,
                        priority: dag.job.spec.priority,
                        cost: per_stage_cost,
                        id: dag.job.id,
                    },
                ));
            }
        }
        cands.sort_by(|a, b| a.2.cmp_under(&b.2, self.cfg.policy));
        let leases = self.pool.leases();
        for (di, s, key) in cands {
            let class = self.dags[di].dag.nodes()[s].kind.resource_class();
            let lease = (0..leases.len())
                .filter(|&l| leases[l].free_at_ns <= now && streams[l].can_accept(class))
                .min_by(|&a, &b| {
                    streams[a]
                        .join_penalty(class)
                        .total_cmp(&streams[b].join_penalty(class))
                        .then(
                            (leases[a].free_at_ns.max(release_ns[a]))
                                .total_cmp(&leases[b].free_at_ns.max(release_ns[b])),
                        )
                        .then(a.cmp(&b))
                });
            if let Some(l) = lease {
                return Some((di, s, l, key));
            }
        }
        None
    }

    /// Functionally executes one ready stage at `now` and admits its
    /// simulated duration to a queue of lease `lease_id`. The proof
    /// state mutates *here*, at dispatch; the completion (and with it
    /// every dependent stage) commits when the queue drains.
    fn start_stage(
        &mut self,
        di: usize,
        si: usize,
        lease_id: usize,
        now: f64,
        streams: &mut [StreamSet],
        pending: &mut BTreeMap<u64, PendingStage>,
    ) {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        let dag = &mut self.dags[di];
        // Fault-free like the serial stage path (see dispatch_stage).
        let elapsed = dag
            .pipe
            .run_stage(si, &self.cfg.recovery)
            .expect("DAG stages run fault-free in the service")
            + self.cfg.stage_overhead_ns;
        dag.started[si] = true;
        dag.first_start_ns.get_or_insert(now);
        let node = &dag.dag.nodes()[si];
        let class = node.kind.resource_class();
        let joining = !streams[lease_id].is_idle();
        let queue = streams[lease_id].admit(seq, class, elapsed);
        pending.insert(
            seq,
            PendingStage {
                job: dag.job.id,
                si,
                lease: lease_id,
                queue,
                start_ns: now,
                seq,
                stage_name: node.name.clone(),
                kind_name: node.kind.name(),
            },
        );
        unintt_telemetry::counter_add("serve_dag_stages", 1);
        self.pool.lease_mut(lease_id).dispatches += 1;
        if unintt_telemetry::recording() {
            if joining {
                unintt_telemetry::counter_add("sim_costream_pairs", 1);
            }
            let occ =
                streams.iter().map(|s| s.in_flight() as f64).sum::<f64>() / streams.len() as f64;
            unintt_telemetry::gauge_set("sim_stream_occupancy", occ);
            unintt_telemetry::gauge_max("sim_stream_occupancy_peak", occ);
        }
    }

    /// Commits one stage completion at `now` — its stretched end under
    /// the interference model — emitting the per-queue span, cascading
    /// unblocked barriers, and retiring the DAG when this was its last
    /// stage.
    fn complete_stage(&mut self, p: PendingStage, now: f64) {
        let di = self
            .dags
            .iter()
            .position(|d| d.job.id == p.job)
            .expect("completing stage belongs to an active DAG");
        self.dags[di].completion[p.si] = Some(now);
        *self.stage_ns.entry(p.kind_name).or_insert(0.0) += now - p.start_ns;
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id: unintt_telemetry::fresh_id(),
            parent: None,
            name: p.stage_name.clone(),
            level: unintt_telemetry::SpanLevel::Serve,
            category: "stage",
            track: format!("lease{}.q{}", p.lease, p.queue),
            t_start_ns: p.start_ns,
            t_end_ns: now,
            attrs: vec![
                ("kind", p.kind_name.into()),
                ("job", p.job.0.into()),
                ("seq", p.seq.into()),
                ("queue", (p.queue as u64).into()),
            ],
        });
        self.cascade_barriers(di);
        if self.dags[di].pipe.is_complete() {
            self.finish_dag(di);
        }
    }

    /// Jobs waiting (coalescing + ready + in-progress DAG proofs), the
    /// admission-control depth.
    fn queue_depth(&self) -> usize {
        self.coalescer.queued()
            + self.ready.iter().map(ReadyBatch::len).sum::<usize>()
            + self.dags.len()
    }

    /// Admission control + coalescer offer for one arrival.
    fn admit(&mut self, job: QueuedJob, now: f64) {
        let depth = self.queue_depth();
        if depth >= self.cfg.queue_capacity {
            self.outcomes.push(JobOutcome {
                id: job.id,
                tenant: job.spec.tenant,
                class_name: job.spec.class.name(),
                status: JobStatus::Rejected(AdmissionError::QueueFull {
                    depth,
                    capacity: self.cfg.queue_capacity,
                }),
                arrival_ns: job.spec.arrival_ns,
                completed_ns: now,
                batch_size: 0,
                retries: 0,
                replans: 0,
                missed_deadline: false,
                output_digest: 0,
            });
            unintt_telemetry::counter_add("serve_jobs_rejected", 1);
            return;
        }
        if let JobClass::ProveDag { kind } = job.spec.class {
            // DAG jobs skip the coalescer: the pipeline is staged once at
            // admission (over the same fixtures the monolithic runners
            // use) and its ready stages then compete for leases directly.
            let pipe = dispatch::build_dag(&mut self.caches, &self.cfg, kind);
            let dag = pipe.dag();
            let completion = vec![None; dag.len()];
            let started = vec![false; dag.len()];
            self.dags.push(ActiveDag {
                job,
                kind,
                pipe,
                dag,
                completion,
                started,
                first_start_ns: None,
            });
        } else if let Some(batch) = self.coalescer.offer(job, now) {
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: "batch-full".into(),
                kind: unintt_telemetry::InstantKind::CoalescerFlush,
                track: "coalescer".into(),
                t_ns: now,
                attrs: vec![("jobs", batch.len().into())],
            });
            self.ready.push(batch);
        }
        self.peak_queue = self.peak_queue.max(self.queue_depth());
        if unintt_telemetry::recording() {
            unintt_telemetry::counter_add("serve_jobs_admitted", 1);
            unintt_telemetry::gauge_set("serve_queue_depth", self.queue_depth() as f64);
            unintt_telemetry::gauge_max("serve_queue_depth_peak", self.peak_queue as f64);
        }
    }

    /// Runs one batch on lease `lease_id` (the caller picks it — the
    /// earliest-free lease on the serial path, the longest-idle fully
    /// drained lease on the streamed path), charging simulated time and
    /// recording outcomes. Members whose deadline already passed are
    /// cancelled here, at dequeue, before the lease is touched.
    fn dispatch(&mut self, batch: ReadyBatch, lease_id: usize, now: f64) {
        debug_assert!(!batch.is_empty());
        let (jobs, expired) = dispatch::split_expired(batch.jobs, now);
        if !expired.is_empty() {
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: "deadline-cancel".into(),
                kind: unintt_telemetry::InstantKind::Shed,
                track: "admission".into(),
                t_ns: now,
                attrs: vec![("jobs", expired.len().into())],
            });
            unintt_telemetry::counter_add("serve_deadline_cancelled", expired.len() as u64);
            self.outcomes.extend(expired);
        }
        if jobs.is_empty() {
            return;
        }
        let batch_len = jobs.len();
        self.batch_sizes.push(batch_len);
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        debug_assert!(
            self.pool.leases()[lease_id].free_at_ns <= now,
            "dispatch requires a free lease"
        );

        match batch.key {
            Some(key) => {
                let field_spec = match key.field {
                    ServiceField::Goldilocks => FieldSpec::goldilocks(),
                    ServiceField::BabyBear => FieldSpec::babybear(),
                };
                let mut cluster = self.pool.lease_mut(lease_id).build_cluster(field_spec);
                let result = dispatch::run_raw_batch(
                    &mut self.caches,
                    &self.cfg,
                    key,
                    &jobs,
                    &mut cluster,
                    seq,
                    now,
                );
                for c in &result.completions {
                    self.outcomes.push(dispatch::commit_completion(c));
                }
                let done = now + result.elapsed_ns;
                unintt_telemetry::record_span(|| unintt_telemetry::Span {
                    id: unintt_telemetry::fresh_id(),
                    parent: None,
                    name: "dispatch".into(),
                    level: unintt_telemetry::SpanLevel::Serve,
                    category: "dispatch",
                    track: format!("lease{lease_id}"),
                    t_start_ns: now,
                    t_end_ns: done,
                    attrs: vec![
                        ("jobs", batch_len.into()),
                        ("seq", seq.into()),
                        ("class", "raw-ntt".into()),
                    ],
                });
                let lease = self.pool.lease_mut(lease_id);
                lease.absorb_losses(&cluster);
                lease.free_at_ns = done;
                lease.busy_ns += result.elapsed_ns;
                lease.dispatches += 1;
                if !result.leftover.is_empty() {
                    // The lease ran out of healthy nodes mid-batch: swap
                    // it for fresh hardware and requeue the unfinished
                    // tail. No job is ever failed.
                    lease.repair(done, self.cfg.repair_ns);
                    unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                        name: "lease-repair".into(),
                        kind: unintt_telemetry::InstantKind::LeaseRepair,
                        track: format!("lease{lease_id}"),
                        t_ns: done,
                        attrs: vec![("requeued", result.leftover.len().into())],
                    });
                    self.ready.push(ReadyBatch {
                        key: Some(key),
                        jobs: result.leftover,
                        ready_ns: done,
                    });
                } else if lease.is_dead() {
                    lease.repair(done, self.cfg.repair_ns);
                    unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                        name: "lease-repair".into(),
                        kind: unintt_telemetry::InstantKind::LeaseRepair,
                        track: format!("lease{lease_id}"),
                        t_ns: done,
                        attrs: vec![],
                    });
                }
            }
            None => {
                let job = jobs[0];
                let (sim_ns, output_digest) = match job.spec.class {
                    JobClass::PlonkProve { log_gates } => {
                        dispatch::run_plonk(&mut self.caches, &self.cfg, log_gates)
                    }
                    JobClass::StarkCommit { log_trace, columns } => {
                        dispatch::run_stark(&mut self.caches, &self.cfg, log_trace, columns)
                    }
                    JobClass::RawNtt { .. } => unreachable!("raw jobs always carry a batch key"),
                    JobClass::ProveDag { .. } => {
                        unreachable!("DAG jobs are admitted to the stage scheduler")
                    }
                };
                let elapsed = sim_ns + self.cfg.dispatch_overhead_ns;
                let done = now + elapsed;
                dispatch::record_job_spans(
                    job.id,
                    job.spec.class.name(),
                    job.spec.arrival_ns,
                    now,
                    done,
                    1,
                );
                unintt_telemetry::record_span(|| unintt_telemetry::Span {
                    id: unintt_telemetry::fresh_id(),
                    parent: None,
                    name: "dispatch".into(),
                    level: unintt_telemetry::SpanLevel::Serve,
                    category: "dispatch",
                    track: format!("lease{lease_id}"),
                    t_start_ns: now,
                    t_end_ns: done,
                    attrs: vec![
                        ("jobs", 1u64.into()),
                        ("seq", seq.into()),
                        ("class", job.spec.class.name().into()),
                    ],
                });
                self.outcomes.push(JobOutcome {
                    id: job.id,
                    tenant: job.spec.tenant,
                    class_name: job.spec.class.name(),
                    status: JobStatus::Completed,
                    arrival_ns: job.spec.arrival_ns,
                    completed_ns: done,
                    batch_size: 1,
                    retries: 0,
                    replans: 0,
                    missed_deadline: job.spec.deadline_ns.is_some_and(|d| done > d),
                    output_digest,
                });
                let lease = self.pool.lease_mut(lease_id);
                lease.free_at_ns = done;
                lease.busy_ns += elapsed;
                lease.dispatches += 1;
            }
        }
    }

    /// The availability instant of one not-yet-run stage: its latest
    /// dependency completion (the job's arrival for root stages), or
    /// `None` while any dependency is still outstanding.
    fn stage_avail(dag: &ActiveDag, s: usize) -> Option<f64> {
        let node = &dag.dag.nodes()[s];
        let mut avail = dag.job.spec.arrival_ns;
        for &d in &node.deps {
            avail = avail.max(dag.completion[d]?);
        }
        Some(avail)
    }

    /// Earliest availability over every dispatchable charged stage of
    /// every active DAG (barriers cascade for free, so they never gate
    /// the event clock).
    fn next_stage_avail(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for dag in &self.dags {
            for s in 0..dag.dag.len() {
                if dag.completion[s].is_some() || dag.dag.nodes()[s].kind.is_barrier() {
                    continue;
                }
                if let Some(avail) = Self::stage_avail(dag, s) {
                    best = Some(best.map_or(avail, |b: f64| b.min(avail)));
                }
            }
        }
        best
    }

    /// The charged stage the policy would dispatch at `now`, as
    /// `(dag index, stage index, key)` — stages whose dependencies have
    /// all completed by `now`. Per-stage cost for shortest-job-first is
    /// the job's estimate split evenly across its stages, so one big
    /// proof's stages rank like the medium jobs they effectively are.
    fn next_ready_stage(&self, now: f64) -> Option<(usize, usize, DispatchKey)> {
        let mut best: Option<(usize, usize, DispatchKey)> = None;
        for (di, dag) in self.dags.iter().enumerate() {
            let per_stage_cost = dag.job.spec.class.estimated_cost() / dag.dag.len() as f64;
            for s in 0..dag.dag.len() {
                if dag.completion[s].is_some() || dag.dag.nodes()[s].kind.is_barrier() {
                    continue;
                }
                let Some(avail) = Self::stage_avail(dag, s) else {
                    continue;
                };
                if avail > now {
                    continue;
                }
                let key = DispatchKey {
                    ready_ns: avail,
                    priority: dag.job.spec.priority,
                    cost: per_stage_cost,
                    id: dag.job.id,
                };
                let better = match &best {
                    None => true,
                    Some((_, _, bk)) => {
                        key.cmp_under(bk, self.cfg.policy) == std::cmp::Ordering::Less
                    }
                };
                if better {
                    best = Some((di, s, key));
                }
            }
        }
        best
    }

    /// Runs one ready DAG stage on lease `lease_id`, charging its
    /// simulated time plus the per-stage overhead, then cascades any
    /// barrier stages it unblocked. Completing the final stage commits
    /// the job's outcome.
    fn dispatch_stage(&mut self, di: usize, si: usize, lease_id: usize, now: f64) {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        debug_assert!(
            self.pool.leases()[lease_id].free_at_ns <= now,
            "dispatch requires a free lease"
        );
        let dag = &mut self.dags[di];
        // DAG stages run fault-free in the service, like the monolithic
        // proof dispatches (their backends own machines separate from the
        // lease's raw-NTT cluster); stage replay under injected faults is
        // covered by the pipeline and prover test suites.
        let elapsed = dag
            .pipe
            .run_stage(si, &self.cfg.recovery)
            .expect("DAG stages run fault-free in the service")
            + self.cfg.stage_overhead_ns;
        let done = now + elapsed;
        dag.completion[si] = Some(done);
        dag.first_start_ns.get_or_insert(now);
        let node = &dag.dag.nodes()[si];
        *self.stage_ns.entry(node.kind.name()).or_insert(0.0) += elapsed;
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id: unintt_telemetry::fresh_id(),
            parent: None,
            name: node.name.clone(),
            level: unintt_telemetry::SpanLevel::Serve,
            category: "stage",
            track: format!("lease{lease_id}"),
            t_start_ns: now,
            t_end_ns: done,
            attrs: vec![
                ("kind", node.kind.name().into()),
                ("job", dag.job.id.0.into()),
                ("seq", seq.into()),
            ],
        });
        unintt_telemetry::counter_add("serve_dag_stages", 1);
        {
            let lease = self.pool.lease_mut(lease_id);
            lease.free_at_ns = done;
            lease.busy_ns += elapsed;
            lease.dispatches += 1;
        }
        self.cascade_barriers(di);
        if self.dags[di].pipe.is_complete() {
            self.finish_dag(di);
        }
    }

    /// Runs every barrier stage whose dependencies are complete. Barriers
    /// are transcript/assembly points: host-only, charge-free, never
    /// occupying a lease — they complete at their latest dependency's
    /// completion instant.
    fn cascade_barriers(&mut self, di: usize) {
        let dag = &mut self.dags[di];
        loop {
            let mut progressed = false;
            for s in 0..dag.dag.len() {
                if dag.completion[s].is_some() || !dag.dag.nodes()[s].kind.is_barrier() {
                    continue;
                }
                let Some(avail) = Self::stage_avail(dag, s) else {
                    continue;
                };
                dag.pipe
                    .run_stage(s, &self.cfg.recovery)
                    .expect("barrier stages are host-only and cannot fault");
                dag.completion[s] = Some(avail);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Commits a completed DAG job: verifies the output (when
    /// configured), records its lifecycle spans and outcome, and retires
    /// the DAG.
    fn finish_dag(&mut self, di: usize) {
        let dag = self.dags.remove(di);
        let done = dag
            .completion
            .iter()
            .map(|c| c.expect("complete DAG has every stage timed"))
            .fold(0.0f64, f64::max);
        if self.cfg.verify_outputs {
            dispatch::verify_dag_output(&mut self.caches, dag.kind, &dag.pipe);
        }
        let digest = dag
            .pipe
            .output_digest()
            .expect("complete pipeline has a digest");
        let exec_start = dag.first_start_ns.unwrap_or(dag.job.spec.arrival_ns);
        dispatch::record_job_spans(
            dag.job.id,
            dag.job.spec.class.name(),
            dag.job.spec.arrival_ns,
            exec_start,
            done,
            1,
        );
        self.batch_sizes.push(1);
        self.outcomes.push(JobOutcome {
            id: dag.job.id,
            tenant: dag.job.spec.tenant,
            class_name: dag.job.spec.class.name(),
            status: JobStatus::Completed,
            arrival_ns: dag.job.spec.arrival_ns,
            completed_ns: done,
            batch_size: 1,
            retries: 0,
            replans: 0,
            missed_deadline: dag.job.spec.deadline_ns.is_some_and(|d| done > d),
            output_digest: digest,
        });
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    use unintt_ntt::Direction;

    use super::*;
    use crate::config::SchedulerPolicy;
    use crate::job::Priority;
    use crate::workload::WorkloadSpec;

    fn raw_spec(log_n: u32, direction: Direction, arrival_ns: f64) -> JobSpec {
        JobSpec::new(
            0,
            JobClass::RawNtt {
                field: ServiceField::Goldilocks,
                log_n,
                direction,
            },
            arrival_ns,
        )
    }

    fn run_stream(cfg: ServiceConfig, stream: &[JobSpec]) -> ServiceReport {
        let mut service = ProofService::new(cfg);
        service.submit_all(stream.iter().copied());
        service.run()
    }

    #[test]
    fn overlapped_comm_is_reachable_from_dispatch_and_faster() {
        use unintt_core::CommMode;
        // The same raw-NTT stream under both exchange schedules: every
        // job still completes (verify_outputs bit-checks each against the
        // CPU reference), and the overlapped default finishes the horizon
        // sooner because exchange wire time hides behind compute.
        let stream: Vec<JobSpec> = (0..6)
            .map(|i| raw_spec(14, Direction::Forward, i as f64 * 1_000.0))
            .collect();
        let overlapped = run_stream(ServiceConfig::default(), &stream);
        let blocking = run_stream(
            ServiceConfig {
                comm_mode: CommMode::Blocking,
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(overlapped.all_completed() && blocking.all_completed());
        assert!(
            overlapped.metrics.horizon_ns < blocking.metrics.horizon_ns,
            "overlap must shorten the service horizon: {} vs {}",
            overlapped.metrics.horizon_ns,
            blocking.metrics.horizon_ns
        );
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let stream = WorkloadSpec::raw_only(42, 24, 50_000.0).generate();
        let cfg = ServiceConfig::default();
        let a = run_stream(cfg.clone(), &stream);
        let b = run_stream(cfg, &stream);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn kernel_mode_never_moves_the_simulated_clock() {
        use unintt_ntt::KernelMode;
        // Host kernel selection is a physical-host concern only: the
        // simulated clock, every outcome, and every digest must be
        // identical across all three modes (verify_outputs bit-checks
        // each job against the CPU reference on the selected kernels),
        // and identical again when a telemetry session records the run.
        let stream: Vec<JobSpec> = (0..4)
            .map(|i| raw_spec(12, Direction::Forward, i as f64 * 2_000.0))
            .collect();
        let run_with = |mode: KernelMode| {
            run_stream(
                ServiceConfig {
                    kernel_mode: mode,
                    ..ServiceConfig::default()
                },
                &stream,
            )
        };
        let vector = run_with(KernelMode::Vector);
        for mode in [KernelMode::Fast, KernelMode::Legacy] {
            let other = run_with(mode);
            assert_eq!(vector.outcomes, other.outcomes, "{mode:?}");
            assert_eq!(vector.metrics, other.metrics, "{mode:?}");
        }
        // Telemetry on: same clock, and the dispatch guard published the
        // pinned mode as the `sim_kernel_mode` gauge (0 = vector).
        let guard = unintt_telemetry::start_session();
        let traced = run_with(KernelMode::Vector);
        let registry = unintt_telemetry::registry_snapshot();
        drop(guard);
        assert_eq!(vector.outcomes, traced.outcomes);
        assert_eq!(vector.metrics, traced.metrics);
        assert_eq!(registry.gauges.get("sim_kernel_mode"), Some(&0.0));
    }

    #[test]
    fn coalescing_amortizes_dispatch_overhead() {
        // A burst of identical-shape jobs at high offered load: with a
        // window they share dispatches (and the fixed overhead); with
        // window 0 every job pays it alone.
        let stream: Vec<JobSpec> = (0..24)
            .map(|i| raw_spec(8, Direction::Forward, i as f64 * 1_000.0))
            .collect();
        let coalesced = run_stream(
            ServiceConfig {
                batch_window_ns: 50_000.0,
                ..ServiceConfig::default()
            },
            &stream,
        );
        let singleton = run_stream(
            ServiceConfig {
                batch_window_ns: 0.0,
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(coalesced.all_completed() && singleton.all_completed());
        assert!(
            coalesced.metrics.mean_batch_size() > 1.5,
            "window should actually group jobs: mean {}",
            coalesced.metrics.mean_batch_size()
        );
        assert!((singleton.metrics.mean_batch_size() - 1.0).abs() < 1e-9);
        assert!(
            coalesced.metrics.horizon_ns < singleton.metrics.horizon_ns,
            "coalescing should shorten the makespan: {} vs {}",
            coalesced.metrics.horizon_ns,
            singleton.metrics.horizon_ns
        );
    }

    #[test]
    fn admission_control_sheds_when_full() {
        // One slow lease and a tiny queue: a dense burst must overflow.
        let stream: Vec<JobSpec> = (0..16)
            .map(|i| raw_spec(10, Direction::Forward, i as f64))
            .collect();
        let report = run_stream(
            ServiceConfig {
                queue_capacity: 4,
                batch_window_ns: 0.0,
                max_batch: 1,
                num_leases: 1,
                ..ServiceConfig::default()
            },
            &stream,
        );
        let rejected = report.metrics.rejected();
        assert!(rejected > 0, "the burst must overflow a 4-deep queue");
        assert!(report
            .outcomes
            .iter()
            .filter(|o| !o.completed())
            .all(|o| matches!(
                o.status,
                JobStatus::Rejected(AdmissionError::QueueFull { capacity: 4, .. })
            )));
        // Completed jobs still verified bit-for-bit (verify_outputs on).
        assert_eq!(report.metrics.completed() + rejected, stream.len());
    }

    #[test]
    fn priority_policy_reorders_ready_batches() {
        // Lease occupied by job 0; jobs 1 (Low) and 2 (High) are both
        // ready before it frees. FIFO runs 1 first, Priority runs 2.
        let mut stream = vec![
            raw_spec(10, Direction::Forward, 0.0),
            raw_spec(8, Direction::Forward, 10.0),
            raw_spec(8, Direction::Inverse, 20.0),
        ];
        stream[1].priority = Priority::Low;
        stream[2].priority = Priority::High;
        let base = ServiceConfig {
            batch_window_ns: 0.0,
            num_leases: 1,
            ..ServiceConfig::default()
        };

        let fifo = run_stream(base.clone(), &stream);
        assert!(fifo.outcomes[1].completed_ns < fifo.outcomes[2].completed_ns);

        let prio = run_stream(
            ServiceConfig {
                policy: SchedulerPolicy::Priority,
                ..base
            },
            &stream,
        );
        assert!(
            prio.outcomes[2].completed_ns < prio.outcomes[1].completed_ns,
            "high priority should overtake: {} vs {}",
            prio.outcomes[2].completed_ns,
            prio.outcomes[1].completed_ns
        );
    }

    #[test]
    fn shortest_job_first_runs_cheap_batches_first() {
        // Lease busy with job 0; a big job (1) then a small job (2)
        // become ready. SJF runs the small one first despite FIFO order.
        let stream = vec![
            raw_spec(10, Direction::Forward, 0.0),
            raw_spec(12, Direction::Forward, 10.0),
            raw_spec(8, Direction::Forward, 20.0),
        ];
        let report = run_stream(
            ServiceConfig {
                policy: SchedulerPolicy::ShortestJobFirst,
                batch_window_ns: 0.0,
                num_leases: 1,
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(
            report.outcomes[2].completed_ns < report.outcomes[1].completed_ns,
            "SJF should run the 2^8 job before the 2^12 job"
        );
    }

    #[test]
    fn channel_front_door_feeds_the_service() {
        let (tx, rx) = mpsc::channel();
        for i in 0..6 {
            tx.send(raw_spec(8, Direction::Forward, i as f64 * 5_000.0))
                .expect("receiver alive");
        }
        let mut service = ProofService::new(ServiceConfig::default());
        let ids = service.ingest(&rx);
        assert_eq!(ids.len(), 6);
        assert_eq!(service.pending(), 6);
        let report = service.run();
        assert!(report.all_completed());
        assert_eq!(report.outcomes.len(), 6);
    }

    #[test]
    fn hopeless_deadlines_cancel_at_dequeue() {
        // Job 0's deadline passes while it sits in the coalescing window
        // (default 25 µs): it is cancelled at dequeue with a typed
        // status, never occupying a lease. Job 1 shares the batch and
        // still runs.
        let mut hopeless = raw_spec(10, Direction::Forward, 0.0);
        hopeless.deadline_ns = Some(1.0);
        let mut easy = raw_spec(10, Direction::Forward, 0.0);
        easy.deadline_ns = Some(1e12);
        let report = run_stream(ServiceConfig::default(), &[hopeless, easy]);
        assert!(report.outcomes[0].deadline_exceeded());
        assert!(
            matches!(
                report.outcomes[0].status,
                JobStatus::DeadlineExceeded { deadline_ns } if deadline_ns == 1.0
            ),
            "the typed status carries the missed deadline"
        );
        assert!(report.outcomes[0].accepted(), "cancelled ≠ rejected");
        assert_eq!(report.outcomes[0].batch_size, 0, "never dispatched");
        assert!(report.outcomes[1].completed());
        assert!(!report.outcomes[1].missed_deadline);
        assert_eq!(report.metrics.deadline_exceeded(), 1);
        assert_eq!(report.metrics.shed(), 0, "expiry is not overload shed");
        assert_eq!(report.metrics.completed(), 1);
    }

    #[test]
    fn achievable_deadlines_run_and_late_finishes_are_flagged() {
        // With coalescing off the job dequeues at arrival, before its
        // deadline passes — so it runs, finishes late, and is flagged as
        // a miss rather than cancelled.
        let mut tight = raw_spec(10, Direction::Forward, 0.0);
        tight.deadline_ns = Some(1.0);
        let report = run_stream(
            ServiceConfig {
                batch_window_ns: 0.0,
                ..ServiceConfig::default()
            },
            &[tight],
        );
        assert!(report.all_completed(), "in-flight jobs are never killed");
        assert!(report.outcomes[0].missed_deadline);
        assert_eq!(report.metrics.deadline_exceeded(), 0);
    }

    #[test]
    fn mixed_workload_runs_every_class() {
        let stream = vec![
            raw_spec(8, Direction::Forward, 0.0),
            JobSpec::new(1, JobClass::PlonkProve { log_gates: 5 }, 1_000.0),
            JobSpec::new(
                2,
                JobClass::StarkCommit {
                    log_trace: 6,
                    columns: 2,
                },
                2_000.0,
            ),
            raw_spec(8, Direction::Inverse, 3_000.0),
        ];
        let report = run_stream(ServiceConfig::default(), &stream);
        assert!(report.all_completed());
        assert_eq!(report.metrics.classes.len(), 3);
        assert!(report.metrics.classes["plonk-prove"].completed == 1);
        assert!(report.metrics.classes["stark-commit"].completed == 1);
        assert!(report.metrics.horizon_ns > 0.0);
        assert!(!report.metrics.render().is_empty());
    }

    #[test]
    fn dag_jobs_match_monolithic_digests() {
        // The same proofs submitted monolithically and as stage DAGs:
        // every output digest matches (same fixtures, same transcript),
        // and the DAG run attributes lease time per stage kind.
        let mono_stream = vec![
            JobSpec::new(0, JobClass::PlonkProve { log_gates: 5 }, 0.0),
            JobSpec::new(
                1,
                JobClass::StarkCommit {
                    log_trace: 6,
                    columns: 2,
                },
                1_000.0,
            ),
        ];
        let dag_stream: Vec<JobSpec> = mono_stream
            .iter()
            .map(|s| JobSpec {
                class: s.class.pipelined(),
                ..*s
            })
            .collect();
        let mono = run_stream(ServiceConfig::default(), &mono_stream);
        let dag = run_stream(ServiceConfig::default(), &dag_stream);
        assert!(mono.all_completed() && dag.all_completed());
        for (m, d) in mono.outcomes.iter().zip(&dag.outcomes) {
            assert_ne!(m.output_digest, 0, "proof outcomes are fingerprinted");
            assert_eq!(
                m.output_digest, d.output_digest,
                "DAG scheduling must not change proof bytes"
            );
            assert_eq!(d.class_name, "prove-dag");
        }
        assert!(mono.stage_ns.is_empty(), "no DAG jobs, no attribution");
        assert!(dag.stage_ns.contains_key("ntt"));
        assert!(dag.stage_ns.contains_key("msm"));
        assert!(dag.stage_ns.contains_key("fold"));
        assert!(
            !dag.stage_ns.contains_key("barrier"),
            "barriers are charge-free"
        );
    }

    #[test]
    fn dag_runs_are_bit_identical_and_interleave_with_raw_work() {
        // A mixed stream — raw batches plus DAG proofs — replays
        // bit-identically, and the DAG proofs' stages actually share the
        // horizon with raw dispatches rather than serializing after them.
        let mut stream: Vec<JobSpec> = (0..6)
            .map(|i| raw_spec(10, Direction::Forward, i as f64 * 20_000.0))
            .collect();
        stream.push(JobSpec::new(
            7,
            JobClass::PlonkProve { log_gates: 5 }.pipelined(),
            0.0,
        ));
        let a = run_stream(ServiceConfig::default(), &stream);
        let b = run_stream(ServiceConfig::default(), &stream);
        assert!(a.all_completed());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.stage_ns, b.stage_ns);
    }

    #[test]
    fn raw_outcomes_carry_stable_output_digests() {
        let stream = vec![
            raw_spec(8, Direction::Forward, 0.0),
            raw_spec(8, Direction::Forward, 10.0),
        ];
        let a = run_stream(ServiceConfig::default(), &stream);
        let b = run_stream(
            ServiceConfig {
                batch_window_ns: 0.0, // different batching, same outputs
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(a.all_completed() && b.all_completed());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_ne!(x.output_digest, 0, "raw outputs are fingerprinted");
            assert_eq!(
                x.output_digest, y.output_digest,
                "digests depend on the payload, not the batching"
            );
        }
        assert_ne!(
            a.outcomes[0].output_digest, a.outcomes[1].output_digest,
            "distinct payloads produce distinct digests"
        );
    }

    #[test]
    fn device_loss_degrades_but_never_fails_jobs() {
        let stream = WorkloadSpec::raw_only(9, 32, 100_000.0).generate();
        let report = run_stream(
            ServiceConfig {
                fault_rates: Some(unintt_gpu_sim::FaultRates {
                    drop_p: 0.01,
                    device_loss_p: 0.004,
                    ..Default::default()
                }),
                ..ServiceConfig::default()
            },
            &stream,
        );
        assert!(
            report.all_completed(),
            "faults must degrade, never fail: {:?}",
            report
                .outcomes
                .iter()
                .filter(|o| !o.completed())
                .collect::<Vec<_>>()
        );
        let absorbed: u64 = report
            .metrics
            .classes
            .values()
            .map(|c| c.retries + c.replans)
            .sum();
        assert!(
            absorbed > 0,
            "at these rates some fault should actually fire"
        );
    }
}
