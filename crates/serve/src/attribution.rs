//! Bottleneck attribution: fold cost-model category totals, DAG stage
//! times and fabric link occupancy into per-scope **verdicts** —
//! compute-bound / memory-bound / wire-bound / queue-bound — with the
//! fraction of time each resource absorbed.
//!
//! The simulator already attributes every kernel's roofline time to its
//! dominant cost category (`Stats::time_ns` in `unintt-gpu-sim`), so a
//! machine-level verdict is a pure fold: sum the per-device category
//! totals, group them into compute / memory / wire, and pick the
//! largest. This is the ZKProphet-style analysis ("where does ZKP time
//! go, per kernel class?") as an always-on report instead of a one-off
//! profiling study. Service-level rows add the dimension the device
//! counters cannot see: time jobs spent *waiting* rather than running,
//! the queue-bound verdict.
//!
//! Three entry points, by what evidence is in hand:
//!
//! * [`AttributionRow::from_machine`] — a live simulated [`Machine`]
//!   (device category totals + per-link fabric occupancy);
//! * [`AttributionReport::from_session`] — a drained telemetry
//!   [`Session`] (device spans by category, link-utilization markers),
//!   used by `harness attribute <experiment>`;
//! * [`AttributionReport::from_service_report`] — a [`ServiceReport`]
//!   (per-stage lease time + queue-wait vs execution split).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use unintt_gpu_sim::{Category, Machine};
use unintt_pipeline::StageKind;
use unintt_telemetry::{InstantKind, Session, SpanLevel};

use crate::service::ServiceReport;

/// What a scope's time is dominated by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Arithmetic throughput dominates (e.g. MSM window accumulation).
    ComputeBound,
    /// Memory traffic dominates (global/shared/shuffle — large-N NTT).
    MemoryBound,
    /// Interconnect transfer dominates (cross-device/node exchanges).
    WireBound,
    /// Waiting dominates: jobs queue far longer than they execute.
    QueueBound,
}

impl Verdict {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::ComputeBound => "compute-bound",
            Verdict::MemoryBound => "memory-bound",
            Verdict::WireBound => "wire-bound",
            Verdict::QueueBound => "queue-bound",
        }
    }
}

/// One attributed scope: a `(device-class, stage-kind)` cell, a DAG
/// stage, or the service queue.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributionRow {
    /// What this row attributes, e.g. `"a100x8/ntt"` or `"stage/msm"`.
    pub scope: String,
    /// Total attributed simulated time, ns.
    pub total_ns: f64,
    /// Fraction absorbed by arithmetic.
    pub compute_frac: f64,
    /// Fraction absorbed by memory traffic (global + shared + shuffle).
    pub memory_frac: f64,
    /// Fraction absorbed by the interconnect.
    pub wire_frac: f64,
    /// Everything else (launch overhead, fault handling, queue wait).
    pub other_frac: f64,
    /// Busiest fabric link's occupancy over the horizon, when known.
    pub peak_link_utilization: Option<f64>,
    /// The dominant resource.
    pub verdict: Verdict,
}

/// Picks the dominant resource. Queue-bound is decided separately (it
/// needs wait-vs-run evidence, not category totals); ties break in
/// compute → memory → wire order so reports are deterministic.
fn classify(compute: f64, memory: f64, wire: f64) -> Verdict {
    if compute >= memory && compute >= wire {
        Verdict::ComputeBound
    } else if memory >= wire {
        Verdict::MemoryBound
    } else {
        Verdict::WireBound
    }
}

fn row_from_parts(
    scope: String,
    compute: f64,
    memory: f64,
    wire: f64,
    other: f64,
    peak_link_utilization: Option<f64>,
) -> AttributionRow {
    let total = compute + memory + wire + other;
    let frac = |x: f64| if total > 0.0 { x / total } else { 0.0 };
    AttributionRow {
        scope,
        total_ns: total,
        compute_frac: frac(compute),
        memory_frac: frac(memory),
        wire_frac: frac(wire),
        other_frac: frac(other),
        peak_link_utilization,
        verdict: classify(compute, memory, wire),
    }
}

/// Groups a cost category into the verdict axes.
fn category_axes(cat: Category, ns: f64) -> (f64, f64, f64, f64) {
    match cat {
        Category::Compute => (ns, 0.0, 0.0, 0.0),
        Category::GlobalMem | Category::SharedMem | Category::Shuffle => (0.0, ns, 0.0, 0.0),
        Category::Interconnect => (0.0, 0.0, ns, 0.0),
        Category::Launch | Category::Fault => (0.0, 0.0, 0.0, ns),
    }
}

impl AttributionRow {
    /// Attributes one simulated machine after a run: folds the merged
    /// per-device category totals and the fabric's per-link occupancy.
    pub fn from_machine(scope: impl Into<String>, machine: &Machine) -> Self {
        let stats = machine.stats();
        let (mut compute, mut memory, mut wire, mut other) = (0.0, 0.0, 0.0, 0.0);
        for cat in Category::ALL {
            let (c, m, w, o) = category_axes(cat, stats.time_ns.get(cat));
            compute += c;
            memory += m;
            wire += w;
            other += o;
        }
        let horizon = machine.max_clock_ns();
        let peak = machine
            .fabric()
            .links()
            .iter()
            .map(|l| {
                if horizon > 0.0 {
                    l.busy_ns / horizon
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max);
        let peak = (horizon > 0.0 && !machine.fabric().links().is_empty()).then_some(peak);
        row_from_parts(scope.into(), compute, memory, wire, other, peak)
    }

    /// One line: scope, verdict, and the fraction split.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:<13} {:>7.3} ms | compute {:>4.0}% mem {:>4.0}% wire {:>4.0}% other {:>4.0}%",
            self.scope,
            self.verdict.as_str(),
            self.total_ns * 1e-6,
            100.0 * self.compute_frac,
            100.0 * self.memory_frac,
            100.0 * self.wire_frac,
            100.0 * self.other_frac,
        );
        if let Some(u) = self.peak_link_utilization {
            let _ = write!(out, " | peak link {:.0}%", 100.0 * u);
        }
        out
    }
}

/// A set of attributed scopes, renderable as a table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributionReport {
    /// One row per attributed scope, in deterministic scope order.
    pub rows: Vec<AttributionRow>,
}

impl AttributionReport {
    /// Folds a drained telemetry session: device-level spans group by
    /// `(track, category)` into one row per track, and
    /// [`InstantKind::LinkUtilization`] markers supply each track's
    /// peak link occupancy. Tracks with no device spans produce no row.
    pub fn from_session(session: &Session) -> Self {
        let mut per_track: BTreeMap<String, (f64, f64, f64, f64)> = BTreeMap::new();
        for s in &session.spans {
            if s.level != SpanLevel::Device {
                continue;
            }
            // Device tracks are "<machine>/gpuN"; attribute to the machine.
            let scope = s
                .track
                .rsplit_once('/')
                .map_or(s.track.as_str(), |(m, _)| m);
            let axes = per_track.entry(scope.to_string()).or_default();
            let ns = s.duration_ns();
            match s.category {
                "compute" => axes.0 += ns,
                "global-mem" | "shared-mem" | "shuffle" => axes.1 += ns,
                "interconnect" => axes.2 += ns,
                _ => axes.3 += ns,
            }
        }
        let mut peaks: BTreeMap<String, f64> = BTreeMap::new();
        for i in &session.instants {
            if i.kind != InstantKind::LinkUtilization {
                continue;
            }
            for (key, value) in &i.attrs {
                if *key == "utilization" {
                    if let unintt_telemetry::AttrValue::F64(u) = value {
                        let p = peaks.entry(i.track.clone()).or_insert(0.0);
                        if *u > *p {
                            *p = *u;
                        }
                    }
                }
            }
        }
        let rows = per_track
            .into_iter()
            .map(|(scope, (c, m, w, o))| {
                let peak = peaks.get(&scope).copied();
                row_from_parts(scope, c, m, w, o, peak)
            })
            .collect();
        Self { rows }
    }

    /// Attributes a service run: one row per DAG stage kind (lease time
    /// under the stage's [`StageKind::resource_class`]) plus a
    /// `service/queue` row comparing sojourn time against lease-busy
    /// execution time — when completed jobs spend more time waiting
    /// than every lease spent running, the service is queue-bound.
    pub fn from_service_report(report: &ServiceReport) -> Self {
        let mut rows = Vec::new();
        for (&name, &ns) in &report.stage_ns {
            let class = StageKind::from_tag(name).map(StageKind::resource_class);
            // Mixed stages split evenly; the compute-first tie-break then
            // labels them compute-bound deterministically.
            let (c, m) = match class {
                Some(unintt_gpu_sim::ResourceClass::Compute) => (ns, 0.0),
                Some(unintt_gpu_sim::ResourceClass::Memory) => (0.0, ns),
                _ => (ns / 2.0, ns / 2.0),
            };
            rows.push(row_from_parts(
                format!("stage/{name}"),
                c,
                m,
                0.0,
                0.0,
                None,
            ));
        }
        let busy_ns: f64 = report.metrics.leases.iter().map(|l| l.busy_ns).sum();
        let sojourn_ns: f64 = report
            .metrics
            .classes
            .values()
            .map(|c| c.latency.mean_ns * c.completed as f64)
            .sum();
        let wait_ns = (sojourn_ns - busy_ns).max(0.0);
        let mut queue = row_from_parts(
            String::from("service/queue"),
            busy_ns,
            0.0,
            0.0,
            wait_ns,
            None,
        );
        if wait_ns > busy_ns {
            queue.verdict = Verdict::QueueBound;
        }
        rows.push(queue);
        Self { rows }
    }

    /// Appends a row built elsewhere (e.g. per-machine cells).
    pub fn push(&mut self, row: AttributionRow) {
        self.rows.push(row);
    }

    /// Multi-line table, one row per scope.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_telemetry::{AttrValue, Instant, Span};

    #[test]
    fn classify_breaks_ties_deterministically() {
        assert_eq!(classify(1.0, 1.0, 1.0), Verdict::ComputeBound);
        assert_eq!(classify(0.0, 1.0, 1.0), Verdict::MemoryBound);
        assert_eq!(classify(0.0, 0.0, 1.0), Verdict::WireBound);
    }

    fn device_span(track: &str, category: &'static str, ns: f64) -> Span {
        Span {
            id: 1,
            parent: None,
            name: "k".into(),
            level: SpanLevel::Device,
            category,
            track: track.into(),
            t_start_ns: 0.0,
            t_end_ns: ns,
            attrs: vec![],
        }
    }

    #[test]
    fn session_fold_groups_tracks_and_categories() {
        let session = Session {
            spans: vec![
                device_span("m0/gpu0", "compute", 60.0),
                device_span("m0/gpu1", "global-mem", 30.0),
                device_span("m0/gpu0", "interconnect", 10.0),
                device_span("m1/gpu0", "shuffle", 5.0),
            ],
            instants: vec![Instant {
                name: "gpu0→gpu1".into(),
                kind: InstantKind::LinkUtilization,
                track: "m0".into(),
                t_ns: 100.0,
                attrs: vec![("utilization", AttrValue::F64(0.8))],
            }],
        };
        let report = AttributionReport::from_session(&session);
        assert_eq!(report.rows.len(), 2);
        let m0 = &report.rows[0];
        assert_eq!(m0.scope, "m0");
        assert_eq!(m0.verdict, Verdict::ComputeBound);
        assert!((m0.total_ns - 100.0).abs() < 1e-9);
        assert!((m0.wire_frac - 0.1).abs() < 1e-9);
        assert_eq!(m0.peak_link_utilization, Some(0.8));
        let m1 = &report.rows[1];
        assert_eq!(m1.verdict, Verdict::MemoryBound);
        assert_eq!(m1.peak_link_utilization, None);
    }

    #[test]
    fn stage_rows_follow_resource_classes() {
        let mut stage_ns = BTreeMap::new();
        stage_ns.insert("msm", 50.0);
        stage_ns.insert("ntt", 40.0);
        stage_ns.insert("hash", 10.0);
        let report = ServiceReport {
            outcomes: vec![],
            metrics: Default::default(),
            stage_ns,
        };
        let attr = AttributionReport::from_service_report(&report);
        let by_scope: BTreeMap<_, _> = attr
            .rows
            .iter()
            .map(|r| (r.scope.as_str(), r.verdict))
            .collect();
        assert_eq!(by_scope["stage/msm"], Verdict::ComputeBound);
        assert_eq!(by_scope["stage/ntt"], Verdict::MemoryBound);
        assert_eq!(
            by_scope["stage/hash"],
            Verdict::ComputeBound,
            "mixed stages split evenly; compute wins the tie-break"
        );
    }

    #[test]
    fn queue_bound_when_waiting_dominates() {
        use crate::metrics::{LatencyStats, LeaseMetrics, ServiceMetrics};
        let mut metrics = ServiceMetrics::default();
        metrics.leases.push(LeaseMetrics {
            id: 0,
            dispatches: 10,
            busy_ns: 1_000.0,
            occupancy: 0.1,
            repairs: 0,
        });
        let class = metrics.classes.entry("raw-ntt").or_default();
        class.completed = 10;
        class.latency = LatencyStats {
            count: 10,
            mean_ns: 5_000.0,
            ..Default::default()
        };
        let report = ServiceReport {
            outcomes: vec![],
            metrics,
            stage_ns: BTreeMap::new(),
        };
        let attr = AttributionReport::from_service_report(&report);
        let queue = attr
            .rows
            .iter()
            .find(|r| r.scope == "service/queue")
            .unwrap();
        assert_eq!(queue.verdict, Verdict::QueueBound);
        assert!(queue.other_frac > 0.9, "wait dominates: {queue:?}");
    }
}
