//! Seeded synthetic workloads: multi-tenant job streams with Poisson
//! arrivals, for experiments and tests.

use rand::{rngs::StdRng, Rng, SeedableRng};
use unintt_ntt::Direction;

use crate::job::{JobClass, JobSpec, Priority, ServiceField};

/// Relative class frequencies in a generated stream (need not sum to 1;
/// only ratios matter; all-zero means raw-only).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadMix {
    /// Weight of raw NTT jobs.
    pub raw: f64,
    /// Weight of PLONK proof jobs.
    pub plonk: f64,
    /// Weight of STARK commitment jobs.
    pub stark: f64,
}

impl WorkloadMix {
    /// Raw NTT jobs only — the coalescing-sensitive workload.
    pub fn raw_only() -> Self {
        Self {
            raw: 1.0,
            plonk: 0.0,
            stark: 0.0,
        }
    }

    /// A mostly-raw mix with some full proofs and commitments.
    pub fn mixed() -> Self {
        Self {
            raw: 0.8,
            plonk: 0.1,
            stark: 0.1,
        }
    }
}

/// Parameters of a synthetic job stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Seed for everything: arrivals, classes, shapes, priorities.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean arrival rate (Poisson), jobs per simulated second.
    pub offered_load_jobs_per_s: f64,
    /// Class mix.
    pub mix: WorkloadMix,
    /// Raw-NTT sizes are drawn uniformly from `log_n_min..=log_n_max`.
    pub log_n_min: u32,
    /// See `log_n_min`.
    pub log_n_max: u32,
    /// Tenant ids are drawn from `0..tenants`.
    pub tenants: u32,
    /// When set, each job gets `deadline = arrival + slack`.
    pub deadline_slack_ns: Option<f64>,
    /// Burstiness in `[0, 1)`: `0.0` is a plain Poisson stream; higher
    /// values drive a two-state (on/off) modulated process where bursts
    /// arrive `1/(1−burstiness)` times faster than the mean and the gaps
    /// between bursts stretch to compensate, keeping the overall offered
    /// load unchanged.
    pub burstiness: f64,
}

impl WorkloadSpec {
    /// A raw-NTT-only stream at `offered_load_jobs_per_s`, sizes 2^8–2^10,
    /// four tenants.
    pub fn raw_only(seed: u64, jobs: usize, offered_load_jobs_per_s: f64) -> Self {
        Self {
            seed,
            jobs,
            offered_load_jobs_per_s,
            mix: WorkloadMix::raw_only(),
            log_n_min: 8,
            log_n_max: 10,
            tenants: 4,
            deadline_slack_ns: None,
            burstiness: 0.0,
        }
    }

    /// A bursty multi-tenant stream: the chaos harness's default shape.
    /// On/off arrival modulation (see [`burstiness`](Self::burstiness))
    /// concentrates jobs into bursts while the long-run rate stays at
    /// `offered_load_jobs_per_s`.
    pub fn bursty(seed: u64, jobs: usize, offered_load_jobs_per_s: f64) -> Self {
        Self {
            burstiness: 0.7,
            tenants: 6,
            ..Self::raw_only(seed, jobs, offered_load_jobs_per_s)
        }
    }

    /// Generates the stream: jobs sorted by arrival time, with
    /// exponential interarrival gaps of mean `1/offered_load`.
    pub fn generate(&self) -> Vec<JobSpec> {
        assert!(
            self.offered_load_jobs_per_s > 0.0,
            "offered load must be positive"
        );
        assert!(self.log_n_min <= self.log_n_max, "empty log_n range");
        assert!(
            (0.0..1.0).contains(&self.burstiness),
            "burstiness must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mean_gap_ns = 1e9 / self.offered_load_jobs_per_s;
        let total_weight = (self.mix.raw + self.mix.plonk + self.mix.stark).max(f64::MIN_POSITIVE);

        // On/off modulation: inside a burst gaps shrink by (1−b); the
        // single off-gap after each burst stretches so the long-run rate
        // is still `offered_load`. Mean burst length is fixed at 8 jobs.
        const MEAN_BURST_JOBS: f64 = 8.0;
        let on_gap_ns = mean_gap_ns * (1.0 - self.burstiness);
        let off_gap_ns = mean_gap_ns * (1.0 + (MEAN_BURST_JOBS - 1.0) * self.burstiness);
        let mut burst_left = 0usize;

        let mut specs = Vec::with_capacity(self.jobs);
        let mut now = 0.0f64;
        for _ in 0..self.jobs {
            // Inverse-CDF exponential gap; 1−u keeps the argument in (0,1].
            let u: f64 = rng.gen();
            let exp = -(1.0 - u).max(f64::MIN_POSITIVE).ln();
            if self.burstiness <= 0.0 {
                now += exp * mean_gap_ns;
            } else if burst_left == 0 {
                now += exp * off_gap_ns;
                // Geometric burst length with the configured mean.
                let v: f64 = rng.gen();
                burst_left = 1
                    + (-(1.0 - v).max(f64::MIN_POSITIVE).ln() * (MEAN_BURST_JOBS - 1.0)).round()
                        as usize;
            } else {
                now += exp * on_gap_ns;
                burst_left -= 1;
            }

            let class = {
                let pick: f64 = rng.gen::<f64>() * total_weight;
                if pick < self.mix.raw || total_weight <= f64::MIN_POSITIVE {
                    let field = if rng.gen::<bool>() {
                        ServiceField::Goldilocks
                    } else {
                        ServiceField::BabyBear
                    };
                    let log_n = self.log_n_min
                        + rng.gen_range(0..u64::from(self.log_n_max - self.log_n_min + 1)) as u32;
                    let direction = if rng.gen::<bool>() {
                        Direction::Forward
                    } else {
                        Direction::Inverse
                    };
                    JobClass::RawNtt {
                        field,
                        log_n,
                        direction,
                    }
                } else if pick < self.mix.raw + self.mix.plonk {
                    JobClass::PlonkProve { log_gates: 6 }
                } else {
                    JobClass::StarkCommit {
                        log_trace: 8,
                        columns: 4,
                    }
                }
            };

            let priority = match rng.gen_range(0..10) {
                0..=1 => Priority::Low,
                2..=7 => Priority::Normal,
                _ => Priority::High,
            };
            let tenant = rng.gen_range(0..u64::from(self.tenants.max(1))) as u32;

            specs.push(JobSpec {
                tenant,
                class,
                priority,
                deadline_ns: self.deadline_slack_ns.map(|slack| now + slack),
                arrival_ns: now,
            });
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::raw_only(7, 64, 20_000.0);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = WorkloadSpec::raw_only(1, 32, 20_000.0).generate();
        let b = WorkloadSpec::raw_only(2, 32, 20_000.0).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_roughly_right() {
        let rate = 10_000.0;
        let jobs = 500;
        let stream = WorkloadSpec::raw_only(3, jobs, rate).generate();
        assert_eq!(stream.len(), jobs);
        assert!(stream
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let span_s = stream.last().expect("non-empty").arrival_ns * 1e-9;
        let empirical = jobs as f64 / span_s;
        assert!(
            (empirical / rate - 1.0).abs() < 0.25,
            "empirical rate {empirical:.0} too far from {rate:.0}"
        );
    }

    #[test]
    fn mixed_streams_contain_every_class() {
        let spec = WorkloadSpec {
            mix: WorkloadMix::mixed(),
            ..WorkloadSpec::raw_only(11, 200, 5_000.0)
        };
        let stream = spec.generate();
        let raw = stream
            .iter()
            .filter(|j| matches!(j.class, JobClass::RawNtt { .. }))
            .count();
        let plonk = stream
            .iter()
            .filter(|j| matches!(j.class, JobClass::PlonkProve { .. }))
            .count();
        let stark = stream
            .iter()
            .filter(|j| matches!(j.class, JobClass::StarkCommit { .. }))
            .count();
        assert!(raw > plonk && raw > stark);
        assert!(plonk > 0 && stark > 0);
    }

    #[test]
    fn bursty_streams_keep_the_rate_but_clump() {
        let rate = 10_000.0;
        let jobs = 2_000;
        let smooth = WorkloadSpec::raw_only(9, jobs, rate).generate();
        let bursty = WorkloadSpec::bursty(9, jobs, rate).generate();
        assert_eq!(bursty, WorkloadSpec::bursty(9, jobs, rate).generate());

        let span = |s: &[JobSpec]| s.last().expect("non-empty").arrival_ns * 1e-9;
        let bursty_rate = jobs as f64 / span(&bursty);
        assert!(
            (bursty_rate / rate - 1.0).abs() < 0.3,
            "long-run rate preserved: {bursty_rate:.0} vs {rate:.0}"
        );

        // Burstiness shows up as a higher coefficient of variation of
        // interarrival gaps than the Poisson baseline (CV ≈ 1).
        let cv = |s: &[JobSpec]| {
            let gaps: Vec<f64> = s
                .windows(2)
                .map(|w| w[1].arrival_ns - w[0].arrival_ns)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&bursty) > cv(&smooth) * 1.2,
            "bursty CV {:.2} must exceed smooth CV {:.2}",
            cv(&bursty),
            cv(&smooth)
        );
    }

    #[test]
    fn deadlines_track_arrivals() {
        let spec = WorkloadSpec {
            deadline_slack_ns: Some(1_000.0),
            ..WorkloadSpec::raw_only(5, 16, 1_000.0)
        };
        for job in spec.generate() {
            assert_eq!(job.deadline_ns, Some(job.arrival_ns + 1_000.0));
        }
    }
}
