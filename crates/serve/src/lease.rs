//! GPU leases: fixed slices of the simulated cluster that batches run on.
//!
//! Each lease owns a `nodes × gpus_per_node` slice. A dispatch builds a
//! fresh [`Cluster`] for the batch's field (cost models are per-field),
//! re-applying any device losses the lease has accumulated — so a lease
//! degraded by an earlier fault stays degraded until repaired. A lease
//! whose every node has lost a GPU is taken out of service for
//! `repair_ns` and comes back whole.

use unintt_core::{Cluster, NetworkConfig};
use unintt_gpu_sim::{presets, FieldSpec};

use crate::config::LeaseShape;

/// One schedulable slice of the cluster.
#[derive(Debug)]
pub struct Lease {
    /// Stable index, used as the deterministic tie-breaker.
    pub id: usize,
    shape: LeaseShape,
    /// Simulated instant the current (or last) dispatch finishes.
    pub free_at_ns: f64,
    /// Total simulated time spent running batches.
    pub busy_ns: f64,
    /// Batches dispatched on this lease.
    pub dispatches: u64,
    /// Times the lease was swapped for fresh hardware.
    pub repairs: u32,
    /// `(node, device)` pairs lost to injected device-loss faults, in
    /// discovery order.
    dead: Vec<(usize, usize)>,
}

impl Lease {
    fn new(id: usize, shape: LeaseShape) -> Self {
        Self {
            id,
            shape,
            free_at_ns: 0.0,
            busy_ns: 0.0,
            dispatches: 0,
            repairs: 0,
            dead: Vec::new(),
        }
    }

    /// Builds the simulated cluster slice for one dispatch, with this
    /// lease's accumulated device losses re-applied.
    pub fn build_cluster(&self, field: FieldSpec) -> Cluster {
        let node_cfg = presets::a100_nvlink(self.shape.gpus_per_node);
        let mut cluster = Cluster::new(
            self.shape.nodes,
            node_cfg,
            NetworkConfig::infiniband_400g(),
            field,
        );
        if unintt_telemetry::recording() {
            for node in 0..self.shape.nodes {
                cluster
                    .node_mut(node)
                    .set_label(format!("lease{}-node{node}", self.id));
            }
        }
        for &(node, device) in &self.dead {
            cluster.node_mut(node).fail_device(device);
        }
        cluster
    }

    /// Folds the post-dispatch device state back into the lease: any GPU
    /// found dead in `cluster` stays dead for future dispatches.
    pub fn absorb_losses(&mut self, cluster: &Cluster) {
        for node in 0..self.shape.nodes {
            let machine = cluster.node(node);
            for device in 0..machine.num_devices() {
                if !machine.is_alive(device) && !self.dead.contains(&(node, device)) {
                    self.dead.push((node, device));
                }
            }
        }
    }

    /// Nodes with every GPU still alive.
    pub fn healthy_nodes(&self) -> usize {
        (0..self.shape.nodes)
            .filter(|&n| !self.dead.iter().any(|&(dn, _)| dn == n))
            .count()
    }

    /// True when no healthy node remains: the cluster engine cannot plan
    /// even a degraded run, so the lease must be repaired.
    pub fn is_dead(&self) -> bool {
        self.healthy_nodes() == 0
    }

    /// Swaps the lease for fresh hardware: losses clear, and the lease
    /// rejoins the pool at `now + repair_ns`.
    pub fn repair(&mut self, now: f64, repair_ns: f64) {
        self.dead.clear();
        self.repairs += 1;
        self.free_at_ns = self.free_at_ns.max(now) + repair_ns;
    }

    /// GPUs currently lost.
    pub fn lost_devices(&self) -> usize {
        self.dead.len()
    }

    /// The lease shape.
    pub fn shape(&self) -> LeaseShape {
        self.shape
    }
}

/// The fixed pool of leases the scheduler draws from.
#[derive(Debug)]
pub struct LeasePool {
    leases: Vec<Lease>,
}

impl LeasePool {
    /// A pool of `count` identical leases (`count` clamped to ≥ 1).
    pub fn new(count: usize, shape: LeaseShape) -> Self {
        Self {
            leases: (0..count.max(1)).map(|id| Lease::new(id, shape)).collect(),
        }
    }

    /// The lease that frees earliest (ties broken by lowest id).
    pub fn earliest(&mut self) -> &mut Lease {
        let idx = self
            .leases
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.free_at_ns
                    .partial_cmp(&b.free_at_ns)
                    .expect("lease clocks are finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
            .expect("pool is never empty");
        &mut self.leases[idx]
    }

    /// The earliest instant any lease is free.
    pub fn next_free_ns(&self) -> f64 {
        self.leases
            .iter()
            .map(|l| l.free_at_ns)
            .fold(f64::INFINITY, f64::min)
    }

    /// True if some lease is free at `now`.
    pub fn any_free(&self, now: f64) -> bool {
        self.leases.iter().any(|l| l.free_at_ns <= now)
    }

    /// Mutable access to one lease by id.
    pub fn lease_mut(&mut self, id: usize) -> &mut Lease {
        &mut self.leases[id]
    }

    /// All leases, for metrics.
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// Number of leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Never true — pools hold at least one lease.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_breaks_ties_by_id() {
        let mut pool = LeasePool::new(3, LeaseShape::default());
        assert_eq!(pool.earliest().id, 0);
        pool.leases[0].free_at_ns = 100.0;
        assert_eq!(pool.earliest().id, 1);
        pool.leases[1].free_at_ns = 50.0;
        pool.leases[2].free_at_ns = 50.0;
        assert_eq!(pool.earliest().id, 1, "equal clocks resolve by id");
    }

    #[test]
    fn losses_persist_across_dispatch_clusters() {
        let mut lease = Lease::new(0, LeaseShape::default());
        let mut cluster = lease.build_cluster(FieldSpec::goldilocks());
        cluster.node_mut(1).fail_device(0);
        lease.absorb_losses(&cluster);
        assert_eq!(lease.lost_devices(), 1);
        assert_eq!(lease.healthy_nodes(), 1);

        // The next cluster for this lease comes up with the same GPU dead.
        let next = lease.build_cluster(FieldSpec::babybear());
        assert!(!next.node(1).is_alive(0));
        assert!(next.node(0).is_alive(0));
    }

    #[test]
    fn repair_clears_losses_and_charges_time() {
        let mut lease = Lease::new(0, LeaseShape::default());
        let mut cluster = lease.build_cluster(FieldSpec::goldilocks());
        cluster.node_mut(0).fail_device(0);
        cluster.node_mut(1).fail_device(1);
        lease.absorb_losses(&cluster);
        assert!(lease.is_dead());

        lease.repair(1_000.0, 5_000.0);
        assert!(!lease.is_dead());
        assert_eq!(lease.lost_devices(), 0);
        assert_eq!(lease.free_at_ns, 6_000.0);
        assert_eq!(lease.repairs, 1);
    }
}
