//! The batch coalescer: groups compatible raw-NTT jobs arriving within a
//! time window into one batched dispatch.
//!
//! Compatibility is exact shape equality — same field, same size, same
//! direction — because only then can the jobs share a cluster plan and
//! twiddle set. A batch closes when its window expires, when it reaches
//! the size cap, or when the service drains. Non-batchable jobs (proofs,
//! commitments) pass straight through as singleton batches.

use std::collections::BTreeMap;

use crate::job::{JobId, JobSpec, ServiceField};

/// The coalescing key: jobs with equal keys share one dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchKey {
    /// Field of the transform.
    pub field: ServiceField,
    /// Transform size exponent.
    pub log_n: u32,
    /// `true` for forward transforms (`Direction` itself is not `Ord`).
    pub forward: bool,
}

/// A job sitting in the service: its id plus the submitted spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueuedJob {
    /// Service-assigned id (also the deterministic tie-breaker).
    pub id: JobId,
    /// The submission.
    pub spec: JobSpec,
}

/// A closed batch, ready for the dispatcher.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadyBatch {
    /// The shared shape, or `None` for a singleton non-batchable job.
    pub key: Option<BatchKey>,
    /// Members in admission order.
    pub jobs: Vec<QueuedJob>,
    /// When the batch became ready, simulated ns.
    pub ready_ns: f64,
}

impl ReadyBatch {
    /// Number of member jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the batch has no members (never produced by the
    /// coalescer; useful for defensive checks).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Deterministic FIFO tie-breaker: the earliest member id.
    pub fn first_id(&self) -> JobId {
        self.jobs.first().map(|j| j.id).unwrap_or(JobId(u64::MAX))
    }
}

/// One open (still-collecting) batch.
#[derive(Debug)]
struct OpenBatch {
    jobs: Vec<QueuedJob>,
    /// When the first member arrived; the window runs from here.
    opened_ns: f64,
}

/// Time/size-windowed batch coalescer. All state is keyed through a
/// `BTreeMap` so close order is deterministic.
#[derive(Debug)]
pub struct Coalescer {
    window_ns: f64,
    max_batch: usize,
    open: BTreeMap<BatchKey, OpenBatch>,
}

impl Coalescer {
    /// A coalescer with the given window and size cap (`max_batch` is
    /// clamped to at least 1).
    pub fn new(window_ns: f64, max_batch: usize) -> Self {
        Self {
            window_ns,
            max_batch: max_batch.max(1),
            open: BTreeMap::new(),
        }
    }

    /// Offers one admitted job at simulated time `now`. Returns any batch
    /// this job completes immediately: a singleton for non-batchable
    /// classes or a zero window, or a full batch that hit `max_batch`.
    pub fn offer(&mut self, job: QueuedJob, now: f64) -> Option<ReadyBatch> {
        let Some(key) = job.spec.class.batch_key() else {
            return Some(ReadyBatch {
                key: None,
                jobs: vec![job],
                ready_ns: now,
            });
        };
        if self.window_ns <= 0.0 || self.max_batch == 1 {
            return Some(ReadyBatch {
                key: Some(key),
                jobs: vec![job],
                ready_ns: now,
            });
        }
        let open = self.open.entry(key).or_insert_with(|| OpenBatch {
            jobs: Vec::new(),
            opened_ns: now,
        });
        open.jobs.push(job);
        if open.jobs.len() >= self.max_batch {
            let open = self.open.remove(&key).expect("batch just filled");
            return Some(ReadyBatch {
                key: Some(key),
                jobs: open.jobs,
                ready_ns: now,
            });
        }
        None
    }

    /// The earliest instant an open batch's window expires, if any.
    pub fn next_close_ns(&self) -> Option<f64> {
        self.open
            .values()
            .map(|b| b.opened_ns + self.window_ns)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Closes every open batch whose window has expired by `now`, in key
    /// order.
    pub fn close_due(&mut self, now: f64) -> Vec<ReadyBatch> {
        let due: Vec<BatchKey> = self
            .open
            .iter()
            .filter(|(_, b)| b.opened_ns + self.window_ns <= now)
            .map(|(&k, _)| k)
            .collect();
        due.into_iter()
            .map(|key| {
                let open = self.open.remove(&key).expect("key collected above");
                ReadyBatch {
                    key: Some(key),
                    jobs: open.jobs,
                    ready_ns: open.opened_ns + self.window_ns,
                }
            })
            .collect()
    }

    /// Closes everything regardless of windows (service drain), stamping
    /// readiness at `now`.
    pub fn flush(&mut self, now: f64) -> Vec<ReadyBatch> {
        let open = std::mem::take(&mut self.open);
        open.into_iter()
            .map(|(key, b)| ReadyBatch {
                key: Some(key),
                jobs: b.jobs,
                ready_ns: now,
            })
            .collect()
    }

    /// Jobs currently waiting in open batches (the coalescer's share of
    /// the admission-control queue depth).
    pub fn queued(&self) -> usize {
        self.open.values().map(|b| b.jobs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use unintt_ntt::Direction;

    use super::*;
    use crate::job::JobClass;

    fn raw(id: u64, log_n: u32, arrival: f64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            spec: JobSpec::new(
                0,
                JobClass::RawNtt {
                    field: ServiceField::Goldilocks,
                    log_n,
                    direction: Direction::Forward,
                },
                arrival,
            ),
        }
    }

    #[test]
    fn window_groups_compatible_jobs() {
        let mut c = Coalescer::new(100.0, 16);
        assert!(c.offer(raw(0, 10, 0.0), 0.0).is_none());
        assert!(c.offer(raw(1, 10, 40.0), 40.0).is_none());
        // Different size opens a separate batch.
        assert!(c.offer(raw(2, 11, 50.0), 50.0).is_none());
        assert_eq!(c.queued(), 3);
        assert_eq!(c.next_close_ns(), Some(100.0));

        let closed = c.close_due(100.0);
        assert_eq!(closed.len(), 1, "only the first window is due");
        assert_eq!(closed[0].len(), 2);
        assert_eq!(closed[0].jobs[0].id, JobId(0));
        assert_eq!(closed[0].jobs[1].id, JobId(1));
        assert_eq!(c.queued(), 1);

        let rest = c.close_due(150.0);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].jobs[0].id, JobId(2));
    }

    #[test]
    fn size_cap_closes_early() {
        let mut c = Coalescer::new(1e9, 3);
        assert!(c.offer(raw(0, 10, 0.0), 0.0).is_none());
        assert!(c.offer(raw(1, 10, 1.0), 1.0).is_none());
        let full = c.offer(raw(2, 10, 2.0), 2.0).expect("cap reached");
        assert_eq!(full.len(), 3);
        assert_eq!(full.ready_ns, 2.0);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn zero_window_means_singletons() {
        let mut c = Coalescer::new(0.0, 16);
        let b = c.offer(raw(0, 10, 5.0), 5.0).expect("immediate");
        assert_eq!(b.len(), 1);
        assert!(b.key.is_some());
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn proofs_pass_straight_through() {
        let mut c = Coalescer::new(1e9, 16);
        let job = QueuedJob {
            id: JobId(7),
            spec: JobSpec::new(1, JobClass::PlonkProve { log_gates: 6 }, 3.0),
        };
        let b = c.offer(job, 3.0).expect("singleton");
        assert_eq!(b.key, None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn flush_drains_all_open_batches() {
        let mut c = Coalescer::new(1e9, 16);
        c.offer(raw(0, 10, 0.0), 0.0);
        c.offer(raw(1, 11, 0.0), 0.0);
        let drained = c.flush(12.0);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|b| b.ready_ns == 12.0));
        assert_eq!(c.queued(), 0);
    }
}
