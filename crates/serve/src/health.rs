//! Per-cluster health tracking: a four-state machine driven by dispatch
//! results and probe jobs, with consecutive-failure circuit breaking and
//! exponential-backoff half-open recovery on the simulated clock.
//!
//! ```text
//!            failures < threshold          lost nodes
//!   Healthy ──────────────────────▶ Degraded
//!      ▲  ◀────────────────────────   │
//!      │      success resets          │ breaker trips
//!      │                              ▼
//!   Repairing ◀── probe succeeds ── Quarantined ──▶ (probe fails:
//!      │        (half-open)            ▲                backoff × 2)
//!      └── warmup elapses ─────────────┘
//! ```
//!
//! Backoff between probes grows exponentially per consecutive trip and
//! carries deterministic seeded jitter (a `splitmix64` draw over the
//! `(seed, cluster, trip)` triple) so co-quarantined clusters don't
//! probe in lockstep — yet two runs of the same fleet are bit-identical.

/// Tunables for the per-cluster [`HealthMachine`].
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Consecutive dispatch failures that trip the circuit breaker.
    pub failure_threshold: u32,
    /// First-trip backoff before the half-open probe, simulated ns.
    pub backoff_base_ns: f64,
    /// Backoff ceiling, simulated ns.
    pub backoff_max_ns: f64,
    /// Fractional jitter applied to each backoff (0.1 = ±10%).
    pub jitter_frac: f64,
    /// Simulated duration of one half-open probe job.
    pub probe_ns: f64,
    /// Warmup after a successful probe before the cluster re-admits
    /// production traffic (Repairing → Healthy), simulated ns.
    pub repair_warmup_ns: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            backoff_base_ns: 2.0e6,
            backoff_max_ns: 1.0e9,
            jitter_frac: 0.1,
            probe_ns: 100_000.0,
            repair_warmup_ns: 500_000.0,
            seed: 0x48ea_1742_5eed_0001,
        }
    }
}

/// Where a cluster sits in its health lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Serving normally.
    #[default]
    Healthy,
    /// Serving, but impaired (lost nodes or absorbed failures); the
    /// router prefers Healthy clusters and uses Degraded ones as
    /// fallback.
    Degraded,
    /// Circuit breaker open: no production traffic; a half-open probe is
    /// scheduled after the current backoff.
    Quarantined,
    /// Probe succeeded; warming back up before re-admission.
    Repairing,
}

impl HealthState {
    /// Short name for reports and telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Repairing => "repairing",
        }
    }
}

/// The health state machine for one cluster.
#[derive(Clone, Debug)]
pub struct HealthMachine {
    cfg: HealthConfig,
    cluster: usize,
    state: HealthState,
    consecutive_failures: u32,
    /// Consecutive breaker trips without an intervening recovery —
    /// drives the exponential backoff.
    trips: u32,
    /// When Quarantined: the earliest instant the half-open probe may
    /// launch. When Repairing: when warmup completes.
    next_transition_ns: f64,
    /// Lifetime count of breaker trips (metrics).
    pub total_quarantines: u64,
    /// Lifetime count of probes launched (metrics).
    pub total_probes: u64,
}

impl HealthMachine {
    /// A Healthy machine for cluster `cluster`.
    pub fn new(cfg: HealthConfig, cluster: usize) -> Self {
        Self {
            cfg,
            cluster,
            state: HealthState::Healthy,
            consecutive_failures: 0,
            trips: 0,
            next_transition_ns: f64::INFINITY,
            total_quarantines: 0,
            total_probes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// True when the router may send production traffic here.
    pub fn routable(&self) -> bool {
        matches!(self.state, HealthState::Healthy | HealthState::Degraded)
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// The next instant this machine wants the event loop's attention
    /// (probe launch or warmup completion), or `None` when idle.
    pub fn next_event_ns(&self) -> Option<f64> {
        match self.state {
            HealthState::Quarantined | HealthState::Repairing => Some(self.next_transition_ns),
            _ => None,
        }
    }

    /// A dispatch on this cluster succeeded: reset the failure streak;
    /// a Degraded cluster that strings together successes is re-promoted.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.trips = 0;
        if self.state == HealthState::Degraded {
            self.state = HealthState::Healthy;
        }
    }

    /// A dispatch on this cluster failed (lease died mid-batch, probe
    /// timeout, …). Returns `true` if this failure tripped the breaker
    /// into Quarantined.
    pub fn record_failure(&mut self, now: f64) -> bool {
        self.consecutive_failures += 1;
        if self.state == HealthState::Healthy {
            self.state = HealthState::Degraded;
        }
        if self.routable() && self.consecutive_failures >= self.cfg.failure_threshold {
            self.quarantine(now);
            return true;
        }
        false
    }

    /// Force the breaker open (chaos kill, whole-cluster loss): no
    /// production traffic until a probe succeeds.
    pub fn quarantine(&mut self, now: f64) {
        self.state = HealthState::Quarantined;
        self.total_quarantines += 1;
        self.trips += 1;
        self.next_transition_ns = now + self.backoff_ns();
    }

    /// True when the half-open probe is due.
    pub fn probe_due(&self, now: f64) -> bool {
        self.state == HealthState::Quarantined && now >= self.next_transition_ns
    }

    /// Resolve a half-open probe launched at `now`. On success the
    /// machine enters Repairing (warmup ends `probe_ns + repair_warmup_ns`
    /// later); on failure the backoff doubles and a new probe is
    /// scheduled. Returns the instant of the next transition.
    pub fn probe_result(&mut self, now: f64, ok: bool) -> f64 {
        debug_assert_eq!(self.state, HealthState::Quarantined, "probes are half-open");
        self.total_probes += 1;
        if ok {
            self.state = HealthState::Repairing;
            self.next_transition_ns = now + self.cfg.probe_ns + self.cfg.repair_warmup_ns;
        } else {
            self.trips += 1;
            self.next_transition_ns = now + self.cfg.probe_ns + self.backoff_ns();
        }
        self.next_transition_ns
    }

    /// Complete the Repairing warmup if due: the cluster returns to
    /// Healthy with a clean slate. Returns `true` on re-admission.
    pub fn try_readmit(&mut self, now: f64) -> bool {
        if self.state == HealthState::Repairing && now >= self.next_transition_ns {
            self.state = HealthState::Healthy;
            self.consecutive_failures = 0;
            self.trips = 0;
            self.next_transition_ns = f64::INFINITY;
            return true;
        }
        false
    }

    /// The current backoff: `base · 2^(trips−1)` capped at the ceiling,
    /// with deterministic ±`jitter_frac` seeded jitter.
    fn backoff_ns(&self) -> f64 {
        let exp = self.trips.saturating_sub(1).min(32);
        let raw = (self.cfg.backoff_base_ns * f64::from(1u32 << exp.min(30)))
            .min(self.cfg.backoff_max_ns);
        let draw = splitmix64(
            self.cfg
                .seed
                .wrapping_add((self.cluster as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(u64::from(self.trips).wrapping_mul(0xa076_1d64_78bd_642f)),
        );
        // Map the draw to [−jitter, +jitter].
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        raw * (1.0 + self.cfg.jitter_frac * (2.0 * unit - 1.0))
    }
}

/// The `splitmix64` mixer — one deterministic 64-bit draw per key.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            failure_threshold: 3,
            backoff_base_ns: 1_000.0,
            backoff_max_ns: 16_000.0,
            jitter_frac: 0.1,
            probe_ns: 100.0,
            repair_warmup_ns: 500.0,
            seed: 7,
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let mut m = HealthMachine::new(cfg(), 0);
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(!m.record_failure(10.0));
        assert_eq!(m.state(), HealthState::Degraded);
        assert!(!m.record_failure(20.0));
        assert!(m.record_failure(30.0), "third consecutive failure trips");
        assert_eq!(m.state(), HealthState::Quarantined);
        assert!(!m.routable());
    }

    #[test]
    fn success_resets_the_streak() {
        let mut m = HealthMachine::new(cfg(), 0);
        m.record_failure(10.0);
        m.record_failure(20.0);
        m.record_success();
        assert_eq!(m.state(), HealthState::Healthy, "degraded recovers");
        assert!(!m.record_failure(30.0));
        assert!(!m.record_failure(40.0));
        assert!(m.record_failure(50.0), "streak restarted after success");
    }

    #[test]
    fn half_open_recovery_walks_quarantine_to_healthy() {
        let mut m = HealthMachine::new(cfg(), 0);
        m.quarantine(1_000.0);
        assert!(!m.probe_due(1_000.0), "backoff holds the probe");
        let probe_at = m.next_event_ns().expect("probe scheduled");
        assert!(m.probe_due(probe_at));
        let warm_done = m.probe_result(probe_at, true);
        assert_eq!(m.state(), HealthState::Repairing);
        assert!(!m.try_readmit(warm_done - 1.0));
        assert!(m.try_readmit(warm_done));
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(m.routable());
    }

    #[test]
    fn failed_probes_back_off_exponentially_with_jitter() {
        let mut m = HealthMachine::new(cfg(), 0);
        m.quarantine(0.0);
        let first = m.next_event_ns().expect("scheduled") - 0.0;
        let mut gaps = vec![first];
        let mut t = first;
        for _ in 0..4 {
            let next = m.probe_result(t, false);
            gaps.push(next - t - m.cfg.probe_ns);
            t = next;
        }
        for w in gaps.windows(2).take(3) {
            assert!(
                w[1] > w[0] * 1.5,
                "backoff must grow roughly geometrically: {gaps:?}"
            );
        }
        let cap = cfg().backoff_max_ns * (1.0 + cfg().jitter_frac);
        assert!(
            gaps.iter().all(|&g| g <= cap),
            "backoff respects the ceiling: {gaps:?}"
        );
        // Jitter keeps the gap off the exact power-of-two grid.
        assert!((gaps[0] - 1_000.0).abs() > 1e-6, "jitter applied: {gaps:?}");
    }

    #[test]
    fn jitter_is_deterministic_but_varies_per_cluster() {
        let mut a1 = HealthMachine::new(cfg(), 0);
        let mut a2 = HealthMachine::new(cfg(), 0);
        let mut b = HealthMachine::new(cfg(), 1);
        a1.quarantine(0.0);
        a2.quarantine(0.0);
        b.quarantine(0.0);
        assert_eq!(
            a1.next_event_ns(),
            a2.next_event_ns(),
            "same seed+cluster → same jitter"
        );
        assert_ne!(
            a1.next_event_ns(),
            b.next_event_ns(),
            "different clusters desynchronize"
        );
    }

    #[test]
    fn readmission_resets_the_backoff_ladder() {
        let mut m = HealthMachine::new(cfg(), 0);
        m.quarantine(0.0);
        let first_gap = m.next_event_ns().expect("scheduled");
        let t = m.probe_result(first_gap, false); // trips ×2
        let t2 = m.probe_result(t, true);
        assert!(m.try_readmit(t2));
        m.quarantine(t2);
        let fresh_gap = m.next_event_ns().expect("scheduled") - t2;
        assert!(
            (fresh_gap - first_gap).abs() / first_gap < 0.25,
            "post-recovery backoff restarts near the base: {fresh_gap} vs {first_gap}"
        );
        assert_eq!(m.total_quarantines, 2);
        assert!(m.total_probes >= 2);
    }
}
