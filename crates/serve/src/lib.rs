//! `unintt-serve` — a multi-tenant proving service over the simulated
//! multi-GPU cluster.
//!
//! The crates below this one answer "how fast is one transform?"; this
//! crate answers the operational question a proving *service* faces:
//! many tenants submit raw NTTs, PLONK proofs and STARK commitments
//! concurrently — how should the cluster be shared?
//!
//! The pieces:
//!
//! * [`ProofService`] — the front door: typed [`JobSpec`] submissions
//!   (directly or drained from an `mpsc` channel), with priorities and
//!   deadlines.
//! * Admission control — a bounded queue; jobs beyond
//!   [`ServiceConfig::queue_capacity`] are shed with a typed
//!   [`AdmissionError::QueueFull`] instead of queueing unboundedly.
//! * [`Coalescer`] — groups raw-NTT jobs of identical
//!   `(field, log_n, direction)` shape arriving within
//!   [`ServiceConfig::batch_window_ns`] into one batched dispatch,
//!   amortizing the fixed per-dispatch overhead.
//! * GPU leases ([`LeasePool`]) — the cluster is partitioned into
//!   `num_leases` slices of `nodes × gpus_per_node`; each batch occupies
//!   one lease for exactly the simulated time the cluster charges.
//!   Device-loss faults degrade a lease (the engine re-plans over
//!   survivors, per `unintt_core::ClusterNttEngine::forward_with_recovery`);
//!   a fully dead lease is swapped for fresh hardware and its batch
//!   requeued — **jobs never fail**.
//! * [`ServiceMetrics`] — per-class throughput and latency percentiles,
//!   batch-size histogram, queue depth and lease occupancy.
//!
//! Everything is charged to the deterministic simulated clock: the same
//! submissions and configuration replay bit-identically, including under
//! seeded fault injection. See `DESIGN.md` ("Serving layer") and
//! experiment E14 in the bench harness.

#![warn(missing_docs)]

mod attribution;
mod coalesce;
mod config;
mod dispatch;
mod fleet;
mod health;
mod job;
mod lease;
mod metrics;
mod router;
mod service;
mod workload;

pub use attribution::{AttributionReport, AttributionRow, Verdict};
pub use coalesce::{BatchKey, Coalescer, QueuedJob, ReadyBatch};
pub use config::{LeaseShape, SchedulerPolicy, ServiceConfig};
pub use fleet::{
    ChaosEvent, ChaosKind, ChaosPlan, FleetConfig, FleetReport, FleetService, FleetStats,
    HedgeConfig,
};
pub use health::{HealthConfig, HealthMachine, HealthState};
pub use job::{
    AdmissionError, DagKind, JobClass, JobId, JobOutcome, JobSpec, JobStatus, Priority,
    ServiceField,
};
pub use lease::{Lease, LeasePool};
pub use metrics::{ClassMetrics, LatencyStats, LeaseMetrics, ServiceMetrics};
pub use router::ShardRouter;
pub use service::{ProofService, ServiceReport};
pub use unintt_gpu_sim::{InterferenceModel, ResourceClass};
pub use workload::{WorkloadMix, WorkloadSpec};
