//! Service metrics: per-class latency distributions, throughput, batch
//! shapes and lease occupancy — all on the simulated clock.

use std::collections::BTreeMap;

use crate::job::{AdmissionError, JobOutcome, JobStatus};
use crate::lease::{Lease, LeasePool};

/// Latency distribution summary, shared with the telemetry crate so
/// every consumer uses the same nearest-rank percentile math.
pub use unintt_telemetry::LatencyStats;
use unintt_telemetry::StreamHist;

/// Per-job-class counters and latency summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassMetrics {
    /// Jobs submitted (admitted + rejected).
    pub submitted: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs hard-rejected by admission control (queue full at arrival).
    pub rejected: usize,
    /// Jobs shed by overload backpressure (graceful degradation), kept
    /// separate from hard rejections and deadline cancellations.
    pub shed: usize,
    /// Accepted jobs cancelled at dequeue because their deadline had
    /// already passed — they never occupied a lease.
    pub deadline_exceeded: usize,
    /// Completed jobs that finished after their deadline.
    pub deadline_misses: usize,
    /// Transient-fault retries absorbed by this class's dispatches.
    pub retries: u64,
    /// Degraded re-plans absorbed by this class's dispatches.
    pub replans: u64,
    /// Sojourn-time distribution of completed jobs.
    ///
    /// Nearest-rank percentiles over the run's samples. The samples are
    /// collected transiently inside [`ServiceMetrics::build_parts`] and
    /// dropped once summarized — nothing retains them across the run —
    /// and these exact values back the byte-frozen BENCH tables. Fleet
    /// aggregation and anything long-lived reads [`Self::latency_hist`]
    /// instead.
    pub latency: LatencyStats,
    /// Streaming log-bucketed sojourn distribution of the same jobs:
    /// O(buckets) memory, mergeable across clusters, tail quantiles
    /// (p999) within [`unintt_telemetry::MAX_REL_ERROR`] relative error.
    pub latency_hist: StreamHist,
}

/// Snapshot of one lease's utilization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeaseMetrics {
    /// Lease id.
    pub id: usize,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Simulated time spent running batches, ns.
    pub busy_ns: f64,
    /// Fraction of the service horizon the lease was busy (0–1).
    pub occupancy: f64,
    /// Times the lease was swapped for fresh hardware.
    pub repairs: u32,
}

impl LeaseMetrics {
    /// Snapshot of one lease over a run of `horizon_ns`, reporting it
    /// under `id` (fleet runs renumber leases globally across clusters).
    pub fn from_lease(lease: &Lease, id: usize, horizon_ns: f64) -> Self {
        LeaseMetrics {
            id,
            dispatches: lease.dispatches,
            busy_ns: lease.busy_ns,
            occupancy: if horizon_ns > 0.0 {
                lease.busy_ns / horizon_ns
            } else {
                0.0
            },
            repairs: lease.repairs,
        }
    }
}

/// Everything the service measured over one run, on the simulated clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Simulated makespan: the last completion (or rejection) instant, ns.
    pub horizon_ns: f64,
    /// Per-class counters, keyed by [`crate::JobClass::name`].
    pub classes: BTreeMap<&'static str, ClassMetrics>,
    /// Dispatched-batch size histogram: `size → batches`.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Total batches dispatched.
    pub dispatches: u64,
    /// Peak admission-queue depth observed (coalescing + ready jobs).
    pub peak_queue_depth: usize,
    /// Per-lease utilization.
    pub leases: Vec<LeaseMetrics>,
}

impl ServiceMetrics {
    /// Builds the snapshot from run artifacts. `batch_sizes` holds one
    /// entry per dispatched batch.
    pub fn build(
        outcomes: &[JobOutcome],
        batch_sizes: &[usize],
        peak_queue_depth: usize,
        pool: &LeasePool,
    ) -> Self {
        let horizon_ns = Self::horizon(outcomes);
        let leases = pool
            .leases()
            .iter()
            .map(|l| LeaseMetrics::from_lease(l, l.id, horizon_ns))
            .collect();
        Self::build_parts(outcomes, batch_sizes, peak_queue_depth, leases)
    }

    /// The last completion (or rejection) instant across outcomes, ns.
    pub fn horizon(outcomes: &[JobOutcome]) -> f64 {
        outcomes
            .iter()
            .map(|o| o.completed_ns)
            .fold(0.0f64, f64::max)
    }

    /// Builds the snapshot from pre-assembled lease metrics — the fleet
    /// path, where leases come from several per-cluster pools.
    pub fn build_parts(
        outcomes: &[JobOutcome],
        batch_sizes: &[usize],
        peak_queue_depth: usize,
        leases: Vec<LeaseMetrics>,
    ) -> Self {
        let horizon_ns = Self::horizon(outcomes);

        let mut classes: BTreeMap<&'static str, ClassMetrics> = BTreeMap::new();
        let mut latencies: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        for o in outcomes {
            let c = classes.entry(o.class_name).or_default();
            c.submitted += 1;
            match o.status {
                JobStatus::Completed => {
                    c.completed += 1;
                    c.retries += o.retries;
                    c.replans += u64::from(o.replans);
                    if o.missed_deadline {
                        c.deadline_misses += 1;
                    }
                    c.latency_hist.observe(o.latency_ns());
                    latencies
                        .entry(o.class_name)
                        .or_default()
                        .push(o.latency_ns());
                }
                JobStatus::Rejected(AdmissionError::QueueFull { .. }) => c.rejected += 1,
                JobStatus::Rejected(AdmissionError::Overloaded { .. }) => c.shed += 1,
                JobStatus::DeadlineExceeded { .. } => c.deadline_exceeded += 1,
            }
        }
        for (name, samples) in &latencies {
            classes.get_mut(name).expect("class recorded above").latency =
                LatencyStats::from_samples(samples);
        }

        let mut batch_histogram = BTreeMap::new();
        for &size in batch_sizes {
            *batch_histogram.entry(size).or_insert(0u64) += 1;
        }

        Self {
            horizon_ns,
            classes,
            batch_histogram,
            dispatches: batch_sizes.len() as u64,
            peak_queue_depth,
            leases,
        }
    }

    /// Jobs completed across every class.
    pub fn completed(&self) -> usize {
        self.classes.values().map(|c| c.completed).sum()
    }

    /// Jobs hard-rejected across every class.
    pub fn rejected(&self) -> usize {
        self.classes.values().map(|c| c.rejected).sum()
    }

    /// Jobs shed by overload backpressure across every class.
    pub fn shed(&self) -> usize {
        self.classes.values().map(|c| c.shed).sum()
    }

    /// Accepted jobs cancelled for hopeless deadlines across every class.
    pub fn deadline_exceeded(&self) -> usize {
        self.classes.values().map(|c| c.deadline_exceeded).sum()
    }

    /// Completed-job throughput over the simulated horizon, jobs/s.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        if self.horizon_ns <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / (self.horizon_ns * 1e-9)
    }

    /// Mean dispatched-batch size.
    pub fn mean_batch_size(&self) -> f64 {
        let jobs: u64 = self
            .batch_histogram
            .iter()
            .map(|(&size, &n)| size as u64 * n)
            .sum();
        if self.dispatches == 0 {
            return 0.0;
        }
        jobs as f64 / self.dispatches as f64
    }

    /// Mean lease occupancy (0–1).
    pub fn mean_occupancy(&self) -> f64 {
        if self.leases.is_empty() {
            return 0.0;
        }
        self.leases.iter().map(|l| l.occupancy).sum::<f64>() / self.leases.len() as f64
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "horizon {:.3} ms | {} completed, {} rejected, {} shed, {} expired | \
             {:.0} jobs/s | {} batches (mean size {:.2}) | peak queue {} | occupancy {:.0}%",
            self.horizon_ns * 1e-6,
            self.completed(),
            self.rejected(),
            self.shed(),
            self.deadline_exceeded(),
            self.throughput_jobs_per_s(),
            self.dispatches,
            self.mean_batch_size(),
            self.peak_queue_depth,
            100.0 * self.mean_occupancy(),
        );
        for (name, c) in &self.classes {
            let _ = writeln!(
                out,
                "  {name:>12}: {}/{} ok ({} rejected, {} shed, {} expired, {} late) | \
                 p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs | {} retries, {} replans",
                c.completed,
                c.submitted,
                c.rejected,
                c.shed,
                c.deadline_exceeded,
                c.deadline_misses,
                c.latency.p50_ns * 1e-3,
                c.latency.p95_ns * 1e-3,
                c.latency.p99_ns * 1e-3,
                c.retries,
                c.replans,
            );
        }
        out
    }
}
