//! The fleet: several independent simulated clusters behind a shard
//! router, surviving injected chaos.
//!
//! Where [`crate::ProofService`] schedules one cluster, [`FleetService`]
//! runs `clusters` of them, each with its own [`LeasePool`], coalescer
//! and [`HealthMachine`]. A rendezvous [`ShardRouter`] places jobs by
//! `(tenant, shape)` so same-shaped work from one tenant lands on one
//! warm cluster and coalesces. Resilience machinery on top:
//!
//! * **Circuit breakers** — consecutive dispatch failures (or a chaos
//!   kill) trip a cluster into Quarantined; half-open probes with
//!   exponential backoff + seeded jitter re-admit it through Repairing.
//! * **Failover** — when a cluster dies mid-burst, its in-flight and
//!   queued jobs re-shard to survivors. Commit is idempotent, keyed by
//!   [`JobId`]: a job's result lands exactly once no matter how many
//!   times chaos forces a re-dispatch.
//! * **Hedged dispatch** — a batch whose projected completion overruns
//!   `hedge.factor ×` the running p99 is speculatively duplicated on
//!   another cluster; first result wins per job and the loser is
//!   cancelled, refunding its lease.
//! * **Deadline-aware admission + graceful degradation** — queued jobs
//!   whose deadline passes are cancelled at dequeue (typed
//!   [`JobStatus::DeadlineExceeded`]); past the fleet's soft capacity,
//!   Low-priority (bulk) traffic is shed before latency-sensitive
//!   traffic, and everything sheds at the hard cap.
//!
//! Everything stays on the deterministic simulated clock: the same
//! submissions, configuration and chaos plan replay bit-identically.

use std::collections::{BTreeMap, BTreeSet};

use unintt_gpu_sim::FieldSpec;
use unintt_telemetry::StreamHist;

use crate::coalesce::{BatchKey, Coalescer, QueuedJob, ReadyBatch};
use crate::config::ServiceConfig;
use crate::dispatch::{self, Completion, EngineCaches};
use crate::health::{HealthConfig, HealthMachine, HealthState};
use crate::job::{
    AdmissionError, JobClass, JobId, JobOutcome, JobSpec, JobStatus, Priority, ServiceField,
};
use crate::lease::LeasePool;
use crate::metrics::{LeaseMetrics, ServiceMetrics};
use crate::router::ShardRouter;
use crate::service::ServiceReport;

/// What chaos does to a cluster at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// The whole cluster drops: in-flight work past the kill instant is
    /// lost, queued work re-shards, the breaker opens.
    Kill,
    /// Replacement hardware comes up; the next half-open probe succeeds.
    Revive,
}

/// One scripted chaos action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEvent {
    /// When, simulated ns.
    pub t_ns: f64,
    /// Which cluster.
    pub cluster: usize,
    /// Kill or revive.
    pub kind: ChaosKind,
}

/// A seedable, scripted schedule of cluster kills and revivals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Events in firing order (sorted by time at run start).
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// No chaos: the fault-free baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill `cluster` at `t_kill_ns`, revive it at `t_revive_ns`.
    pub fn kill_revive(cluster: usize, t_kill_ns: f64, t_revive_ns: f64) -> Self {
        assert!(t_kill_ns < t_revive_ns, "revive must follow the kill");
        Self {
            events: vec![
                ChaosEvent {
                    t_ns: t_kill_ns,
                    cluster,
                    kind: ChaosKind::Kill,
                },
                ChaosEvent {
                    t_ns: t_revive_ns,
                    cluster,
                    kind: ChaosKind::Revive,
                },
            ],
        }
    }

    /// A rolling outage: clusters `0..count` die one after another,
    /// each down for `outage_ns` starting `stagger_ns` apart from
    /// `t_first_ns`.
    pub fn rolling(count: usize, t_first_ns: f64, stagger_ns: f64, outage_ns: f64) -> Self {
        let mut events = Vec::with_capacity(count * 2);
        for c in 0..count {
            let t = t_first_ns + c as f64 * stagger_ns;
            events.push(ChaosEvent {
                t_ns: t,
                cluster: c,
                kind: ChaosKind::Kill,
            });
            events.push(ChaosEvent {
                t_ns: t + outage_ns,
                cluster: c,
                kind: ChaosKind::Revive,
            });
        }
        Self { events }
    }
}

/// Straggler-hedging knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// A dispatch projected to overrun `factor ×` the running p99 batch
    /// duration is hedged.
    pub factor: f64,
    /// Batch-duration samples required before hedging arms (the p99 is
    /// meaningless on a handful of points).
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            factor: 3.0,
            min_samples: 16,
        }
    }
}

/// Tunables for [`FleetService`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of independent clusters.
    pub clusters: usize,
    /// Per-cluster configuration (leases, coalescing, policy, faults).
    pub base: ServiceConfig,
    /// Circuit-breaker and recovery tuning.
    pub health: HealthConfig,
    /// Straggler hedging; `None` disables it.
    pub hedge: Option<HedgeConfig>,
    /// Fleet-wide queued-job count past which Low-priority (bulk)
    /// arrivals are shed.
    pub soft_capacity: usize,
    /// Fleet-wide queued-job count past which every arrival is shed.
    pub hard_capacity: usize,
    /// Seed for the rendezvous shard router.
    pub router_seed: u64,
    /// Scripted kills and revivals.
    pub chaos: ChaosPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            clusters: 3,
            base: ServiceConfig::default(),
            health: HealthConfig::default(),
            hedge: Some(HedgeConfig::default()),
            soft_capacity: 768,
            hard_capacity: 1024,
            router_seed: 0xf1ee_7000_0000_0001,
            chaos: ChaosPlan::none(),
        }
    }
}

/// Resilience counters a fleet run accumulates on top of the usual
/// [`ServiceMetrics`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// Jobs re-sharded to a survivor after their cluster died.
    pub failovers: u64,
    /// Speculative (hedge) dispatches launched.
    pub hedges: u64,
    /// Jobs whose first result came from a hedge, not the primary.
    pub hedge_wins: u64,
    /// Losing halves of hedge pairs cancelled early (lease refunded).
    pub hedge_cancels: u64,
    /// Circuit-breaker trips (chaos kills included).
    pub quarantines: u64,
    /// Half-open probes launched.
    pub probes: u64,
    /// Clusters re-admitted after recovery.
    pub readmissions: u64,
    /// Accepted jobs cancelled at dequeue for hopeless deadlines.
    pub deadline_cancelled: u64,
    /// Jobs shed by overload backpressure, per tenant.
    pub shed_by_tenant: BTreeMap<u32, u64>,
    /// Fraction of the horizon each cluster was routable (0–1).
    pub availability: Vec<f64>,
    /// Health-state names at drain, one per cluster.
    pub final_states: Vec<&'static str>,
}

/// Everything one fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// One entry per submitted job, sorted by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregated service metrics (classes, latency, leases fleet-wide).
    pub metrics: ServiceMetrics,
    /// Resilience counters.
    pub fleet: FleetStats,
}

impl FleetReport {
    /// True when every *accepted* job reached a terminal success state:
    /// completed, or cancelled for a deadline nobody could meet. Shed
    /// and rejected jobs are excluded — they were never accepted. This
    /// is the chaos harness's "zero failures" criterion.
    pub fn zero_accepted_failures(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !o.accepted() || o.completed() || o.deadline_exceeded())
    }

    /// `JobId → output digest` for every completed raw-NTT job, for
    /// bit-identity comparison against a fault-free run.
    pub fn digests(&self) -> BTreeMap<JobId, u64> {
        self.outcomes
            .iter()
            .filter(|o| o.completed() && o.output_digest != 0)
            .map(|o| (o.id, o.output_digest))
            .collect()
    }

    /// Downgrades to a [`ServiceReport`] (drops the fleet counters).
    pub fn into_service_report(self) -> ServiceReport {
        ServiceReport {
            outcomes: self.outcomes,
            metrics: self.metrics,
            stage_ns: BTreeMap::new(),
        }
    }
}

/// The multi-cluster front door. Mirrors [`crate::ProofService`]:
/// submissions accumulate, [`run`](Self::run) plays the stream.
pub struct FleetService {
    cfg: FleetConfig,
    backlog: Vec<QueuedJob>,
    next_id: u64,
}

impl FleetService {
    /// A fleet with the given configuration.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.clusters >= 1, "a fleet needs at least one cluster");
        assert!(
            cfg.soft_capacity <= cfg.hard_capacity,
            "soft capacity cannot exceed the hard cap"
        );
        Self {
            cfg,
            backlog: Vec::new(),
            next_id: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Submits one job, returning its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.backlog.push(QueuedJob { id, spec });
        id
    }

    /// Submits a whole stream.
    pub fn submit_all(&mut self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobId> {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Jobs waiting to be played.
    pub fn pending(&self) -> usize {
        self.backlog.len()
    }

    /// Plays every submitted job through the fleet on the simulated
    /// clock. The chaos plan (if any) fires on schedule. Panics if the
    /// plan leaves the whole fleet dead forever with work still queued —
    /// a chaos plan must revive enough capacity to drain.
    pub fn run(&mut self) -> FleetReport {
        let backlog = std::mem::take(&mut self.backlog);
        FleetRunner::new(self.cfg.clone()).run(backlog)
    }
}

/// One cluster's scheduler state inside the fleet.
struct ClusterState {
    pool: LeasePool,
    coalescer: Coalescer,
    ready: Vec<ReadyBatch>,
    health: HealthMachine,
    /// Chaos switch: `false` between a Kill and its Revive. Distinct
    /// from health — a revived cluster stays quarantined until a probe
    /// succeeds.
    alive: bool,
    /// Availability accounting: when the current routable stretch began,
    /// and routable time banked so far.
    routable_since: Option<f64>,
    routable_total_ns: f64,
}

impl ClusterState {
    fn queued(&self) -> usize {
        self.coalescer.queued() + self.ready.iter().map(ReadyBatch::len).sum::<usize>()
    }

    /// Close the current routable stretch (breaker tripping or drain).
    fn bank_routable(&mut self, now: f64) {
        if let Some(since) = self.routable_since.take() {
            self.routable_total_ns += now - since;
        }
    }
}

/// A dispatched batch whose results have not all committed yet.
struct InFlight {
    seq: u64,
    cluster: usize,
    lease: usize,
    key: Option<BatchKey>,
    /// Per-job results in completion-time order; `cursor` marks how many
    /// have been offered for commit.
    completions: Vec<Completion>,
    cursor: usize,
    done_ns: f64,
    is_hedge: bool,
    /// The paired dispatch (primary ↔ hedge), by seq.
    partner: Option<u64>,
}

/// The discrete-event engine behind [`FleetService::run`].
struct FleetRunner {
    cfg: FleetConfig,
    clusters: Vec<ClusterState>,
    router: ShardRouter,
    caches: EngineCaches,
    in_flight: Vec<InFlight>,
    /// Hedges scheduled but not yet launched: `(fire_ns, primary_seq)`.
    pending_hedges: Vec<(f64, u64)>,
    /// Accepted jobs with no routable cluster right now; re-offered on
    /// the next re-admission.
    parked: Vec<QueuedJob>,
    committed: BTreeSet<JobId>,
    /// Live in-flight copies per uncommitted job; a job whose coverage
    /// drops to zero uncommitted must be re-sharded.
    coverage: BTreeMap<JobId, u32>,
    outcomes: Vec<JobOutcome>,
    batch_sizes: Vec<usize>,
    peak_queue: usize,
    dispatch_seq: u64,
    /// Streaming batch wall-time distribution, the hedge deadline's p99
    /// source. A log-bucketed histogram rather than a full sample vec:
    /// memory stays O(buckets) over arbitrarily long runs, and the
    /// bucketed p99's ≤0.8 % relative error is noise against the 3×
    /// hedge factor applied on top of it.
    samples: StreamHist,
    chaos: Vec<ChaosEvent>,
    chaos_idx: usize,
    stats: FleetStats,
}

impl FleetRunner {
    fn new(cfg: FleetConfig) -> Self {
        let clusters = (0..cfg.clusters)
            .map(|c| ClusterState {
                pool: LeasePool::new(cfg.base.num_leases, cfg.base.lease),
                coalescer: Coalescer::new(cfg.base.batch_window_ns, cfg.base.max_batch),
                ready: Vec::new(),
                health: HealthMachine::new(cfg.health, c),
                alive: true,
                routable_since: Some(0.0),
                routable_total_ns: 0.0,
            })
            .collect();
        let mut chaos = cfg.chaos.events.clone();
        chaos.sort_by(|a, b| {
            a.t_ns
                .partial_cmp(&b.t_ns)
                .expect("chaos times are finite")
                .then(a.cluster.cmp(&b.cluster))
        });
        let router = ShardRouter::new(cfg.router_seed);
        Self {
            cfg,
            clusters,
            router,
            caches: EngineCaches::new(),
            in_flight: Vec::new(),
            pending_hedges: Vec::new(),
            parked: Vec::new(),
            committed: BTreeSet::new(),
            coverage: BTreeMap::new(),
            outcomes: Vec::new(),
            batch_sizes: Vec::new(),
            peak_queue: 0,
            dispatch_seq: 0,
            samples: StreamHist::new(),
            chaos,
            chaos_idx: 0,
            stats: FleetStats::default(),
        }
    }

    fn run(mut self, mut backlog: Vec<QueuedJob>) -> FleetReport {
        backlog.sort_by(|a, b| {
            a.spec
                .arrival_ns
                .partial_cmp(&b.spec.arrival_ns)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        let total = backlog.len();
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        // Livelock guard: every iteration must either advance `now` or
        // change state; a bound far above any real run turns a stuck
        // event loop into a diagnosable panic instead of a hang.
        let iter_cap = 1_000_000 + 100 * total as u64;
        let mut iters = 0u64;
        loop {
            iters += 1;
            assert!(
                iters < iter_cap,
                "fleet event loop stalled at t={now} ns \
                 (arrivals {next_arrival}/{}, {} in flight, {} parked)",
                backlog.len(),
                self.in_flight.len(),
                self.parked.len(),
            );
            let work_remaining = next_arrival < backlog.len()
                || !self.parked.is_empty()
                || !self.in_flight.is_empty()
                || !self.pending_hedges.is_empty()
                || self.clusters.iter().any(|c| c.queued() > 0);
            let Some(t) = self.next_event_ns(&backlog, next_arrival, work_remaining) else {
                break;
            };
            now = now.max(t);

            // Order matters for determinism and semantics: results that
            // completed by `now` commit before chaos can destroy them;
            // health transitions precede routing; dispatch goes last so
            // it sees every batch that became ready at this instant.
            self.commit_due(now);
            self.retire_due(now);
            self.fire_chaos(now);
            self.step_health(now);
            self.launch_due_hedges(now);
            for c in 0..self.clusters.len() {
                if self.clusters[c].alive {
                    let closed = self.clusters[c].coalescer.close_due(now);
                    self.clusters[c].ready.extend(closed);
                }
            }
            while next_arrival < backlog.len() && backlog[next_arrival].spec.arrival_ns <= now {
                let job = backlog[next_arrival];
                next_arrival += 1;
                self.admit(job, now);
            }
            self.retry_parked(now);
            self.dispatch_all(now);
        }

        assert!(
            self.parked.is_empty() && self.coverage.values().all(|&c| c == 0),
            "fleet drained every accepted job — chaos plans must revive \
             enough capacity to finish"
        );
        self.outcomes.sort_by_key(|o| o.id);
        assert_eq!(self.outcomes.len(), total, "every job is accounted for");

        let horizon = ServiceMetrics::horizon(&self.outcomes);
        for c in self.clusters.iter_mut() {
            c.bank_routable(horizon);
        }
        self.stats.availability = self
            .clusters
            .iter()
            .map(|c| {
                if horizon > 0.0 {
                    c.routable_total_ns / horizon
                } else {
                    1.0
                }
            })
            .collect();
        self.stats.final_states = self
            .clusters
            .iter()
            .map(|c| c.health.state().name())
            .collect();
        let leases: Vec<LeaseMetrics> = self
            .clusters
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| {
                let base = ci * self.cfg.base.num_leases;
                c.pool
                    .leases()
                    .iter()
                    .map(move |l| LeaseMetrics::from_lease(l, base + l.id, horizon))
            })
            .collect();
        let metrics =
            ServiceMetrics::build_parts(&self.outcomes, &self.batch_sizes, self.peak_queue, leases);
        FleetReport {
            outcomes: self.outcomes,
            metrics,
            fleet: self.stats,
        }
    }

    /// The next instant anything happens, or `None` when drained. With
    /// no work left, health probes stop mattering (they would otherwise
    /// tick forever on a permanently dead cluster) — only remaining
    /// chaos events are still played out.
    fn next_event_ns(
        &self,
        backlog: &[QueuedJob],
        next_arrival: usize,
        work_remaining: bool,
    ) -> Option<f64> {
        let mut t: Option<f64> = None;
        let mut consider = |x: f64| {
            t = Some(t.map_or(x, |a: f64| a.min(x)));
        };
        if let Some(j) = backlog.get(next_arrival) {
            consider(j.spec.arrival_ns);
        }
        if !work_remaining {
            if let Some(e) = self.chaos.get(self.chaos_idx) {
                consider(e.t_ns);
            }
            return t;
        }
        for c in &self.clusters {
            if c.alive {
                if let Some(x) = c.coalescer.next_close_ns() {
                    consider(x);
                }
                if c.health.routable() && !c.ready.is_empty() {
                    consider(c.pool.next_free_ns());
                }
            }
            if let Some(x) = c.health.next_event_ns() {
                consider(x);
            }
        }
        for f in &self.in_flight {
            if let Some(c) = f.completions.get(f.cursor) {
                consider(c.outcome.completed_ns);
            }
            consider(f.done_ns);
        }
        for &(at, _) in &self.pending_hedges {
            consider(at);
        }
        if let Some(e) = self.chaos.get(self.chaos_idx) {
            consider(e.t_ns);
        }
        t
    }

    /// Fleet-wide queued jobs (admission-control depth).
    fn queue_depth(&self) -> usize {
        self.clusters
            .iter()
            .map(ClusterState::queued)
            .sum::<usize>()
            + self.parked.len()
    }

    /// Clusters the router may target, Healthy tier preferred.
    fn routable_clusters(&self) -> Vec<usize> {
        let healthy: Vec<usize> = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive && c.health.state() == HealthState::Healthy)
            .map(|(i, _)| i)
            .collect();
        if !healthy.is_empty() {
            return healthy;
        }
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive && c.health.routable())
            .map(|(i, _)| i)
            .collect()
    }

    /// Admission: backpressure sheds (bulk first), then shard routing.
    fn admit(&mut self, job: QueuedJob, now: f64) {
        let depth = self.queue_depth();
        let over_hard = depth >= self.cfg.hard_capacity;
        let over_soft = depth >= self.cfg.soft_capacity;
        if over_hard || (over_soft && job.spec.priority == Priority::Low) {
            self.shed(job, depth, now);
            return;
        }
        self.place(job, now);
        self.peak_queue = self.peak_queue.max(self.queue_depth());
        if unintt_telemetry::recording() {
            unintt_telemetry::counter_add("serve_jobs_admitted", 1);
            unintt_telemetry::gauge_set("serve_queue_depth", self.queue_depth() as f64);
            unintt_telemetry::gauge_max("serve_queue_depth_peak", self.peak_queue as f64);
        }
    }

    /// Graceful degradation: record an `Overloaded` shed.
    fn shed(&mut self, job: QueuedJob, depth: usize, now: f64) {
        let tenant = job.spec.tenant;
        self.outcomes.push(JobOutcome {
            id: job.id,
            tenant,
            class_name: job.spec.class.name(),
            status: JobStatus::Rejected(AdmissionError::Overloaded {
                depth,
                soft_capacity: self.cfg.soft_capacity,
                priority: job.spec.priority,
            }),
            arrival_ns: job.spec.arrival_ns,
            completed_ns: now,
            batch_size: 0,
            retries: 0,
            replans: 0,
            missed_deadline: false,
            output_digest: 0,
        });
        *self.stats.shed_by_tenant.entry(tenant).or_insert(0) += 1;
        unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
            name: "overload-shed".into(),
            kind: unintt_telemetry::InstantKind::Shed,
            track: "admission".into(),
            t_ns: now,
            attrs: vec![("tenant", u64::from(tenant).into())],
        });
        unintt_telemetry::counter_add("sim_shed_jobs", 1);
        unintt_telemetry::counter_add_labeled("serve_shed_jobs", "tenant", u64::from(tenant), 1);
    }

    /// Routes one accepted job to its shard's coalescer (or parks it
    /// when nothing is routable).
    fn place(&mut self, job: QueuedJob, now: f64) {
        let candidates = self.routable_clusters();
        let Some(target) = self
            .router
            .route(job.spec.tenant, &job.spec.class, &candidates)
        else {
            self.parked.push(job);
            return;
        };
        let cluster = &mut self.clusters[target];
        if let Some(batch) = cluster.coalescer.offer(job, now) {
            cluster.ready.push(batch);
        }
    }

    /// Re-offers parked jobs once some cluster is routable again.
    fn retry_parked(&mut self, now: f64) {
        if self.parked.is_empty() || self.routable_clusters().is_empty() {
            return;
        }
        let mut parked = std::mem::take(&mut self.parked);
        parked.sort_by_key(|j| j.id);
        for job in parked {
            self.place(job, now);
        }
    }

    /// Commits every in-flight result due by `now`, idempotently — the
    /// first copy of a job's result wins; duplicates are dropped. Then
    /// cancels hedge-pair losers made fully redundant.
    fn commit_due(&mut self, now: f64) {
        // Gather (time, seq) of due completions and replay in global
        // deterministic order.
        loop {
            let mut best: Option<(f64, u64, usize)> = None;
            for (idx, f) in self.in_flight.iter().enumerate() {
                if let Some(c) = f.completions.get(f.cursor) {
                    let t = c.outcome.completed_ns;
                    if t <= now && best.is_none_or(|(bt, bs, _)| (t, f.seq) < (bt, bs)) {
                        best = Some((t, f.seq, idx));
                    }
                }
            }
            let Some((_, _, idx)) = best else { break };
            let f = &mut self.in_flight[idx];
            let c = f.completions[f.cursor].clone();
            f.cursor += 1;
            let id = c.outcome.id;
            let was_hedge = f.is_hedge;
            if self.committed.insert(id) {
                self.outcomes.push(dispatch::commit_completion(&c));
                if was_hedge {
                    self.stats.hedge_wins += 1;
                }
            }
        }
        self.cancel_redundant(now);
    }

    /// Cancels any live hedge-pair member whose every job is already
    /// committed (its partner won): the lease is refunded from `now`.
    fn cancel_redundant(&mut self, now: f64) {
        let mut cancelled: Vec<usize> = Vec::new();
        for (idx, f) in self.in_flight.iter().enumerate() {
            if f.partner.is_some()
                && f.done_ns > now
                && f.completions
                    .iter()
                    .all(|c| self.committed.contains(&c.outcome.id))
            {
                cancelled.push(idx);
            }
        }
        for &idx in cancelled.iter().rev() {
            let f = self.in_flight.swap_remove(idx);
            for c in &f.completions {
                self.uncover(c.outcome.id);
            }
            let lease = self.clusters[f.cluster].pool.lease_mut(f.lease);
            if lease.free_at_ns == f.done_ns {
                lease.busy_ns -= f.done_ns - now;
                lease.free_at_ns = now;
            }
            // Unlink the partner so it won't look for us later.
            if let Some(p) = f.partner {
                if let Some(partner) = self.in_flight.iter_mut().find(|g| g.seq == p) {
                    partner.partner = None;
                }
            }
            self.stats.hedge_cancels += 1;
        }
    }

    fn uncover(&mut self, id: JobId) {
        if let Some(n) = self.coverage.get_mut(&id) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.coverage.remove(&id);
            }
        }
    }

    /// Removes in-flights fully played out by `now`.
    fn retire_due(&mut self, now: f64) {
        let mut idx = 0;
        while idx < self.in_flight.len() {
            let f = &self.in_flight[idx];
            if f.done_ns <= now && f.cursor == f.completions.len() {
                let f = self.in_flight.swap_remove(idx);
                for c in &f.completions {
                    self.uncover(c.outcome.id);
                }
            } else {
                idx += 1;
            }
        }
    }

    /// Fires every chaos event due by `now`, in schedule order.
    fn fire_chaos(&mut self, now: f64) {
        while let Some(&e) = self.chaos.get(self.chaos_idx) {
            if e.t_ns > now {
                break;
            }
            self.chaos_idx += 1;
            match e.kind {
                ChaosKind::Kill => self.kill_cluster(e.cluster, e.t_ns),
                ChaosKind::Revive => {
                    self.clusters[e.cluster].alive = true;
                    // Replacement hardware: every lease comes back whole
                    // after the configured swap time.
                    let repair_ns = self.cfg.base.repair_ns;
                    let pool = &mut self.clusters[e.cluster].pool;
                    for l in 0..pool.len() {
                        let lease = pool.lease_mut(l);
                        lease.free_at_ns = lease.free_at_ns.min(e.t_ns);
                        lease.repair(e.t_ns, repair_ns);
                    }
                }
            }
        }
    }

    /// A whole cluster drops at `t`: quarantine it, lose its un-finished
    /// in-flight work, and re-shard everything to survivors.
    fn kill_cluster(&mut self, cluster: usize, t: f64) {
        let state = &mut self.clusters[cluster];
        state.alive = false;
        state.bank_routable(t);
        state.health.quarantine(t);
        self.stats.quarantines += 1;
        unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
            name: "cluster-kill".into(),
            kind: unintt_telemetry::InstantKind::Quarantine,
            track: format!("cluster{cluster}"),
            t_ns: t,
            attrs: vec![],
        });
        unintt_telemetry::counter_add("sim_quarantines", 1);

        // In-flight work on the dead cluster: results completed by `t`
        // were committed by `commit_due`; the rest are lost. Jobs whose
        // last live copy died re-shard to survivors.
        let mut orphans: Vec<QueuedJob> = Vec::new();
        let mut idx = 0;
        while idx < self.in_flight.len() {
            if self.in_flight[idx].cluster != cluster {
                idx += 1;
                continue;
            }
            let f = self.in_flight.swap_remove(idx);
            // Refund the lease for simulated time that never ran.
            let lease = self.clusters[cluster].pool.lease_mut(f.lease);
            if f.done_ns > t && lease.free_at_ns == f.done_ns {
                lease.busy_ns -= f.done_ns - t;
                lease.free_at_ns = t;
            }
            if let Some(p) = f.partner {
                if let Some(partner) = self.in_flight.iter_mut().find(|g| g.seq == p) {
                    partner.partner = None;
                }
            }
            for c in &f.completions {
                let id = c.outcome.id;
                self.uncover(id);
                if !self.committed.contains(&id) && !self.coverage.contains_key(&id) {
                    orphans.push(c.job);
                }
            }
        }
        // Queued work re-shards wholesale.
        let state = &mut self.clusters[cluster];
        let ready = std::mem::take(&mut state.ready);
        let flushed = state.coalescer.flush(t);
        let mut requeued: Vec<QueuedJob> = orphans;
        for b in ready.into_iter().chain(flushed) {
            requeued.extend(b.jobs);
        }
        requeued.sort_by_key(|j| j.id);
        let n = requeued.len() as u64;
        if n > 0 {
            self.stats.failovers += n;
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: "failover".into(),
                kind: unintt_telemetry::InstantKind::Failover,
                track: format!("cluster{cluster}"),
                t_ns: t,
                attrs: vec![("jobs", requeued.len().into())],
            });
            unintt_telemetry::counter_add("sim_failovers", n);
        }
        for job in requeued {
            self.place(job, t);
        }
    }

    /// Advances every health machine: due probes resolve (success iff
    /// the hardware is back), completed warmups re-admit.
    fn step_health(&mut self, now: f64) {
        for c in 0..self.clusters.len() {
            let alive = self.clusters[c].alive;
            let health = &mut self.clusters[c].health;
            if health.probe_due(now) {
                self.stats.probes += 1;
                health.probe_result(now, alive);
            }
            if health.try_readmit(now) {
                self.clusters[c].routable_since = Some(now);
                self.stats.readmissions += 1;
                unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                    name: "readmit".into(),
                    kind: unintt_telemetry::InstantKind::Quarantine,
                    track: format!("cluster{c}"),
                    t_ns: now,
                    attrs: vec![],
                });
            }
        }
    }

    /// Launches hedges whose deadline fired and whose primary is still
    /// live with uncommitted work.
    fn launch_due_hedges(&mut self, now: f64) {
        let mut due: Vec<u64> = Vec::new();
        self.pending_hedges.retain(|&(at, seq)| {
            if at <= now {
                due.push(seq);
                false
            } else {
                true
            }
        });
        due.sort_unstable();
        for seq in due {
            self.launch_hedge(seq, now);
        }
    }

    fn launch_hedge(&mut self, primary_seq: u64, now: f64) {
        let Some(pi) = self.in_flight.iter().position(|f| f.seq == primary_seq) else {
            return; // primary already killed or cancelled
        };
        let (p_cluster, p_key, stragglers): (usize, Option<BatchKey>, Vec<QueuedJob>) = {
            let p = &self.in_flight[pi];
            let jobs = p
                .completions
                .iter()
                .skip(p.cursor)
                .filter(|c| !self.committed.contains(&c.outcome.id))
                .map(|c| c.job)
                .collect();
            (p.cluster, p.key, jobs)
        };
        let Some(key) = p_key else { return };
        if stragglers.is_empty() {
            return;
        }
        // Pick the routable cluster (≠ primary) whose lease frees
        // soonest; ties break toward the lower index.
        let target = self
            .routable_clusters()
            .into_iter()
            .filter(|&c| c != p_cluster)
            .map(|c| (self.clusters[c].pool.next_free_ns(), c))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("lease clocks are finite")
                    .then(a.1.cmp(&b.1))
            })
            .map(|(_, c)| c);
        let Some(target) = target else { return };
        let start = self.clusters[target].pool.next_free_ns().max(now);
        let hedge_seq = self.dispatch_raw(target, key, stragglers, start, true, Some(primary_seq));
        if let Some(hs) = hedge_seq {
            if let Some(p) = self.in_flight.iter_mut().find(|f| f.seq == primary_seq) {
                p.partner = Some(hs);
            }
            self.stats.hedges += 1;
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: "hedge".into(),
                kind: unintt_telemetry::InstantKind::Hedge,
                track: format!("cluster{target}"),
                t_ns: now,
                attrs: vec![("primary", primary_seq.into())],
            });
            unintt_telemetry::counter_add("sim_hedges", 1);
        }
    }

    /// Dispatches every cluster's ready work onto its free leases.
    fn dispatch_all(&mut self, now: f64) {
        for c in 0..self.clusters.len() {
            loop {
                let cl = &self.clusters[c];
                if !(cl.alive && cl.health.routable())
                    || cl.ready.is_empty()
                    || !cl.pool.any_free(now)
                {
                    break;
                }
                let batch =
                    dispatch::take_next_batch(&mut self.clusters[c].ready, self.cfg.base.policy);
                self.dispatch_batch(c, batch, now);
            }
        }
    }

    /// One batch on cluster `c`: deadline-expire, then run.
    fn dispatch_batch(&mut self, c: usize, batch: ReadyBatch, now: f64) {
        let (jobs, expired) = dispatch::split_expired(batch.jobs, now);
        if !expired.is_empty() {
            let n = expired.len() as u64;
            self.stats.deadline_cancelled += n;
            unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
                name: "deadline-cancel".into(),
                kind: unintt_telemetry::InstantKind::Shed,
                track: format!("cluster{c}"),
                t_ns: now,
                attrs: vec![("jobs", expired.len().into())],
            });
            unintt_telemetry::counter_add("serve_deadline_cancelled", n);
            self.outcomes.extend(expired);
        }
        if jobs.is_empty() {
            return;
        }
        match batch.key {
            Some(key) => {
                self.dispatch_raw(c, key, jobs, now, false, None);
            }
            None => self.dispatch_singleton(c, jobs[0], now),
        }
    }

    /// Runs a raw batch on cluster `c` starting at `start`, registering
    /// the in-flight. Returns the dispatch seq (None if the batch lost
    /// every job to a dead-on-arrival lease — cannot happen in practice
    /// because dead leases were repaired at dispatch end).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_raw(
        &mut self,
        c: usize,
        key: BatchKey,
        jobs: Vec<QueuedJob>,
        start: f64,
        is_hedge: bool,
        partner: Option<u64>,
    ) -> Option<u64> {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        let field_spec = match key.field {
            ServiceField::Goldilocks => FieldSpec::goldilocks(),
            ServiceField::BabyBear => FieldSpec::babybear(),
        };
        let lease_id = {
            let lease = self.clusters[c].pool.earliest();
            lease.id
        };
        let mut cluster = self.clusters[c]
            .pool
            .lease_mut(lease_id)
            .build_cluster(field_spec);
        let mut result = dispatch::run_raw_batch(
            &mut self.caches,
            &self.cfg.base,
            key,
            &jobs,
            &mut cluster,
            seq,
            start,
        );
        // `start + elapsed` and the last per-job completion are the same
        // instant computed with different float association; clamp so no
        // completion lands (one ULP) after the in-flight's `done`.
        let mut done = start + result.elapsed_ns;
        if let Some(last) = result.completions.last() {
            done = done.max(last.outcome.completed_ns);
        }
        self.batch_sizes.push(jobs.len());
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id: unintt_telemetry::fresh_id(),
            parent: None,
            name: if is_hedge {
                "hedge-dispatch"
            } else {
                "dispatch"
            }
            .into(),
            level: unintt_telemetry::SpanLevel::Serve,
            category: "dispatch",
            track: format!("cluster{c}-lease{lease_id}"),
            t_start_ns: start,
            t_end_ns: done,
            attrs: vec![("jobs", jobs.len().into()), ("seq", seq.into())],
        });
        {
            let lease = self.clusters[c].pool.lease_mut(lease_id);
            lease.absorb_losses(&cluster);
            lease.free_at_ns = done;
            lease.busy_ns += result.elapsed_ns;
            lease.dispatches += 1;
        }
        // Health bookkeeping + leftover failover.
        if result.leftover.is_empty() {
            self.clusters[c].health.record_success();
        } else {
            let lease = self.clusters[c].pool.lease_mut(lease_id);
            lease.repair(done, self.cfg.base.repair_ns);
            let tripped = self.clusters[c].health.record_failure(done);
            if tripped {
                self.trip_breaker(c, done);
            }
            let leftover = std::mem::take(&mut result.leftover);
            self.stats.failovers += leftover.len() as u64;
            unintt_telemetry::counter_add("sim_failovers", leftover.len() as u64);
            for job in leftover {
                self.place(job, done);
            }
        }
        // Coverage + in-flight registration.
        for comp in &result.completions {
            *self.coverage.entry(comp.outcome.id).or_insert(0) += 1;
        }
        let has_completions = !result.completions.is_empty();
        // Hedge arming: only primaries hedge, and only once the p99 is
        // trustworthy.
        if !is_hedge && has_completions {
            if let Some(h) = self.cfg.hedge {
                if self.samples.count() as usize >= h.min_samples {
                    let p99 = self.samples.quantile(0.99);
                    let deadline = start + h.factor * p99;
                    if done > deadline {
                        self.pending_hedges.push((deadline, seq));
                    }
                }
            }
        }
        self.samples.observe(result.elapsed_ns);
        if has_completions {
            self.in_flight.push(InFlight {
                seq,
                cluster: c,
                lease: lease_id,
                key: Some(key),
                completions: result.completions,
                cursor: 0,
                done_ns: done,
                is_hedge,
                partner,
            });
            Some(seq)
        } else {
            None
        }
    }

    /// Runs one PLONK/STARK job on cluster `c` as an in-flight singleton.
    fn dispatch_singleton(&mut self, c: usize, job: QueuedJob, now: f64) {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        // The fleet runs DAG jobs monolithically (stage interleaving is a
        // single-cluster scheduler feature; the output bytes are the same
        // either way), so match on the monolithic form of the class.
        let (sim_ns, output_digest) = match job.spec.class.monolithic() {
            JobClass::PlonkProve { log_gates } => {
                dispatch::run_plonk(&mut self.caches, &self.cfg.base, log_gates)
            }
            JobClass::StarkCommit { log_trace, columns } => {
                dispatch::run_stark(&mut self.caches, &self.cfg.base, log_trace, columns)
            }
            JobClass::RawNtt { .. } => unreachable!("raw jobs always carry a batch key"),
            JobClass::ProveDag { .. } => unreachable!("monolithic() unwraps DAG classes"),
        };
        let elapsed = sim_ns + self.cfg.base.dispatch_overhead_ns;
        let done = now + elapsed;
        let lease_id = {
            let lease = self.clusters[c].pool.earliest();
            lease.id
        };
        {
            let lease = self.clusters[c].pool.lease_mut(lease_id);
            lease.free_at_ns = done;
            lease.busy_ns += elapsed;
            lease.dispatches += 1;
        }
        self.clusters[c].health.record_success();
        self.batch_sizes.push(1);
        *self.coverage.entry(job.id).or_insert(0) += 1;
        self.in_flight.push(InFlight {
            seq,
            cluster: c,
            lease: lease_id,
            key: None,
            completions: vec![Completion {
                outcome: JobOutcome {
                    id: job.id,
                    tenant: job.spec.tenant,
                    class_name: job.spec.class.name(),
                    status: JobStatus::Completed,
                    arrival_ns: job.spec.arrival_ns,
                    completed_ns: done,
                    batch_size: 1,
                    retries: 0,
                    replans: 0,
                    missed_deadline: job.spec.deadline_ns.is_some_and(|d| done > d),
                    output_digest,
                },
                exec_start_ns: now,
                job,
            }],
            cursor: 0,
            done_ns: done,
            is_hedge: false,
            partner: None,
        });
    }

    /// A breaker trip outside chaos (consecutive leftover failures):
    /// queued work re-shards away; in-flight work finishes normally.
    fn trip_breaker(&mut self, c: usize, now: f64) {
        self.clusters[c].bank_routable(now);
        self.stats.quarantines += 1;
        unintt_telemetry::record_instant(|| unintt_telemetry::Instant {
            name: "breaker-trip".into(),
            kind: unintt_telemetry::InstantKind::Quarantine,
            track: format!("cluster{c}"),
            t_ns: now,
            attrs: vec![],
        });
        unintt_telemetry::counter_add("sim_quarantines", 1);
        let ready = std::mem::take(&mut self.clusters[c].ready);
        let flushed = self.clusters[c].coalescer.flush(now);
        let mut requeued: Vec<QueuedJob> = Vec::new();
        for b in ready.into_iter().chain(flushed) {
            requeued.extend(b.jobs);
        }
        requeued.sort_by_key(|j| j.id);
        for job in requeued {
            self.place(job, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small_fleet(chaos: ChaosPlan) -> FleetConfig {
        FleetConfig {
            clusters: 3,
            chaos,
            ..FleetConfig::default()
        }
    }

    fn run_stream(cfg: FleetConfig, spec: &WorkloadSpec) -> FleetReport {
        let mut fleet = FleetService::new(cfg);
        fleet.submit_all(spec.generate());
        fleet.run()
    }

    #[test]
    fn fault_free_run_completes_everything() {
        let spec = WorkloadSpec::raw_only(11, 64, 20_000.0);
        let report = run_stream(small_fleet(ChaosPlan::none()), &spec);
        assert_eq!(report.outcomes.len(), 64);
        assert!(report.outcomes.iter().all(JobOutcome::completed));
        assert!(report.zero_accepted_failures());
        assert_eq!(report.fleet.failovers, 0);
        assert_eq!(report.fleet.quarantines, 0);
        assert!(report.fleet.availability.iter().all(|&a| a >= 0.999));
    }

    #[test]
    fn runs_are_bit_identical() {
        let spec = WorkloadSpec::bursty(12, 96, 30_000.0);
        let a = run_stream(small_fleet(ChaosPlan::none()), &spec);
        let b = run_stream(small_fleet(ChaosPlan::none()), &spec);
        assert_eq!(a.digests(), b.digests());
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.metrics.classes, b.metrics.classes);
    }

    #[test]
    fn kill_mid_burst_fails_over_with_identical_digests() {
        let spec = WorkloadSpec::bursty(13, 128, 50_000.0);
        let baseline = run_stream(small_fleet(ChaosPlan::none()), &spec);

        // Kill a cluster in the thick of the stream, revive it later.
        let horizon = baseline.metrics.horizon_ns;
        let chaos = ChaosPlan::kill_revive(0, horizon * 0.25, horizon * 0.75);
        let report = run_stream(small_fleet(chaos), &spec);

        assert!(report.zero_accepted_failures(), "no accepted job fails");
        assert_eq!(
            report.digests(),
            baseline.digests(),
            "chaos must not change any job's output bits"
        );
        assert!(report.fleet.quarantines >= 1);
        assert!(
            report.fleet.availability[0] < 0.999,
            "the killed cluster lost routable time: {:?}",
            report.fleet.availability
        );
    }

    #[test]
    fn backpressure_sheds_bulk_before_latency_traffic() {
        let cfg = FleetConfig {
            soft_capacity: 4,
            hard_capacity: 1024,
            ..small_fleet(ChaosPlan::none())
        };
        // A tight burst so depth crosses the soft cap while Low- and
        // High-priority jobs are interleaved.
        let spec = WorkloadSpec {
            burstiness: 0.9,
            ..WorkloadSpec::raw_only(14, 160, 2_000_000.0)
        };
        let report = run_stream(cfg, &spec);
        let shed_low = report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.status,
                    JobStatus::Rejected(AdmissionError::Overloaded {
                        priority: Priority::Low,
                        ..
                    })
                )
            })
            .count();
        let shed_high = report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.status,
                    JobStatus::Rejected(AdmissionError::Overloaded {
                        priority: Priority::High,
                        ..
                    })
                )
            })
            .count();
        assert!(shed_low > 0, "soft cap sheds bulk traffic");
        assert_eq!(shed_high, 0, "latency traffic rides through");
        assert_eq!(
            report.fleet.shed_by_tenant.values().sum::<u64>(),
            report.metrics.shed() as u64
        );
        assert!(report.zero_accepted_failures());
    }

    #[test]
    fn rolling_outage_drains_and_readmits() {
        let spec = WorkloadSpec::bursty(15, 96, 40_000.0);
        let baseline = run_stream(small_fleet(ChaosPlan::none()), &spec);
        let horizon = baseline.metrics.horizon_ns;
        let chaos = ChaosPlan::rolling(2, horizon * 0.2, horizon * 0.3, horizon * 0.25);
        let report = run_stream(small_fleet(chaos), &spec);
        assert!(report.zero_accepted_failures());
        assert_eq!(report.digests(), baseline.digests());
        assert!(report.fleet.readmissions >= 1, "{:?}", report.fleet);
        assert!(report
            .fleet
            .final_states
            .iter()
            .all(|&s| s == "healthy" || s == "repairing" || s == "quarantined"));
    }
}
